"""Unit tests for :mod:`repro.cluster.consensus`."""

import pytest

from repro.cluster import ConsensusClusterer, get_clusterer
from repro.cluster.common import Clustering
from repro.cluster.consensus import co_association_matrix
from repro.exceptions import ClusteringError


class TestCoAssociation:
    def test_identical_runs_give_binary_matrix(self):
        runs = [Clustering([0, 0, 1]), Clustering([0, 0, 1])]
        m = co_association_matrix(runs)
        assert m[[0], [1]] == 1.0
        assert m[[0], [2]] == 0.0
        assert m[[0], [0]] == 1.0

    def test_fractional_agreement(self):
        runs = [Clustering([0, 0, 1]), Clustering([0, 1, 1])]
        m = co_association_matrix(runs)
        assert m[[0], [1]] == 0.5
        assert m[[1], [2]] == 0.5
        assert m[[0], [2]] == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ClusteringError):
            co_association_matrix([])

    def test_rejects_size_mismatch(self):
        with pytest.raises(ClusteringError):
            co_association_matrix(
                [Clustering([0, 1]), Clustering([0, 1, 2])]
            )


class TestConsensusClusterer:
    def test_registered(self):
        assert isinstance(
            get_clusterer("consensus"), ConsensusClusterer
        )

    def test_recovers_planted_structure(self, two_blob_ugraph):
        c = ConsensusClusterer(base="metis", n_runs=3).cluster(
            two_blob_ugraph, 2
        )
        assert c.n_clusters == 2
        assert len(set(c.labels[:20].tolist())) == 1
        assert c.labels[0] != c.labels[-1]

    def test_reduces_variance_on_cora(self, cora_small):
        """Consensus quality is at least in the band of its base."""
        import repro

        u = repro.symmetrize(
            cora_small.graph, "degree_discounted", threshold=0.05
        )
        base_scores = []
        from repro.cluster import MetisClusterer

        for seed in range(3):
            clustering = MetisClusterer(seed=seed).cluster(u, 12)
            base_scores.append(
                repro.average_f_score(
                    clustering, cora_small.ground_truth
                )
            )
        consensus = ConsensusClusterer(
            base="metis", n_runs=3
        ).cluster(u, 12)
        consensus_score = repro.average_f_score(
            consensus, cora_small.ground_truth
        )
        assert consensus_score >= min(base_scores) - 5.0

    def test_falls_back_when_nothing_agrees(self):
        """Total disagreement (threshold 1.0 on noisy base) falls back
        to a base run instead of failing."""
        from repro.graph import UndirectedGraph

        # A graph with no structure at all.
        g = UndirectedGraph.from_edges(
            [(0, 1, 0.1), (2, 3, 0.1)], n_nodes=4
        )
        c = ConsensusClusterer(
            base="metis", n_runs=2, agreement_threshold=1.0
        ).cluster(g, 2)
        assert c.n_nodes == 4

    def test_rejects_bad_params(self):
        with pytest.raises(ClusteringError):
            ConsensusClusterer(n_runs=0)
        with pytest.raises(ClusteringError):
            ConsensusClusterer(agreement_threshold=2.0)

    def test_repr(self):
        assert "n_runs=5" in repr(ConsensusClusterer())
