"""Unit tests for :mod:`repro.cluster.louvain`."""

import numpy as np
import pytest

from repro.cluster import LouvainClusterer, get_clusterer
from repro.cluster.louvain import modularity
from repro.exceptions import ClusteringError
from repro.graph import UndirectedGraph
from tests.conftest import planted_two_cluster_ugraph


class TestModularity:
    def test_perfect_split_positive(self, two_blob_ugraph):
        labels = np.array([0] * 20 + [1] * 20)
        assert modularity(two_blob_ugraph.adjacency, labels) > 0.3

    def test_single_community_zero_ish(self, two_blob_ugraph):
        labels = np.zeros(40, dtype=int)
        assert modularity(two_blob_ugraph.adjacency, labels) == (
            pytest.approx(0.0, abs=0.05)
        )

    def test_good_beats_random(self, two_blob_ugraph, rng):
        good = np.array([0] * 20 + [1] * 20)
        random_labels = rng.integers(0, 2, size=40)
        adj = two_blob_ugraph.adjacency
        assert modularity(adj, good) > modularity(adj, random_labels)

    def test_resolution_shifts_value(self, two_blob_ugraph):
        labels = np.array([0] * 20 + [1] * 20)
        adj = two_blob_ugraph.adjacency
        assert modularity(adj, labels, resolution=2.0) < modularity(
            adj, labels, resolution=0.5
        )

    def test_empty_graph(self):
        g = UndirectedGraph.empty(3)
        assert modularity(g.adjacency, np.zeros(3, dtype=int)) == 0.0

    def test_rejects_wrong_length(self, two_blob_ugraph):
        with pytest.raises(ClusteringError):
            modularity(two_blob_ugraph.adjacency, np.zeros(3, dtype=int))


class TestLouvain:
    def test_registered(self):
        assert isinstance(get_clusterer("louvain"), LouvainClusterer)

    def test_two_blobs(self, two_blob_ugraph):
        c = LouvainClusterer().cluster(two_blob_ugraph)
        assert c.n_clusters == 2
        assert len(set(c.labels[:20].tolist())) == 1
        assert c.labels[0] != c.labels[-1]

    def test_ring_of_cliques(self):
        edges = []
        for block in range(5):
            base = block * 6
            for i in range(6):
                for j in range(i + 1, 6):
                    edges.append((base + i, base + j, 1.0))
            edges.append((base, ((block + 1) % 5) * 6, 0.1))
        g = UndirectedGraph.from_edges(edges, n_nodes=30)
        c = LouvainClusterer().cluster(g)
        assert c.n_clusters == 5

    def test_advisory_k(self, two_blob_ugraph):
        c = LouvainClusterer().cluster(two_blob_ugraph, 2)
        assert c.n_clusters == 2

    def test_higher_resolution_more_clusters(self):
        g = planted_two_cluster_ugraph(n_per_side=25)
        low = LouvainClusterer(resolution=0.5).cluster(g)
        high = LouvainClusterer(resolution=8.0).cluster(g)
        assert high.n_clusters >= low.n_clusters

    def test_improves_modularity_over_singletons(self, two_blob_ugraph):
        c = LouvainClusterer().cluster(two_blob_ugraph)
        adj = two_blob_ugraph.adjacency
        assert modularity(adj, c.labels) > modularity(
            adj, np.arange(40)
        )

    def test_isolated_nodes_form_own_clusters(self):
        g = UndirectedGraph.from_edges([(0, 1)], n_nodes=4)
        c = LouvainClusterer().cluster(g)
        assert c.labels[0] == c.labels[1]
        assert c.labels[2] != c.labels[3]

    def test_deterministic_given_seed(self, two_blob_ugraph):
        c1 = LouvainClusterer(seed=3).cluster(two_blob_ugraph)
        c2 = LouvainClusterer(seed=3).cluster(two_blob_ugraph)
        assert c1 == c2

    def test_rejects_bad_resolution(self):
        with pytest.raises(ClusteringError):
            LouvainClusterer(resolution=0.0)

    def test_repr(self):
        assert "resolution" in repr(LouvainClusterer())

    def test_works_in_pipeline(self, cora_small):
        import repro

        pipe = repro.SymmetrizeClusterPipeline(
            "degree_discounted", "louvain", threshold=0.05
        )
        result = pipe.run(
            cora_small.graph, ground_truth=cora_small.ground_truth
        )
        assert result.average_f > 30.0
