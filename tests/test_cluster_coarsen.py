"""Unit tests for :mod:`repro.cluster.coarsen`."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cluster.coarsen import (
    CoarseningHierarchy,
    build_hierarchy,
    contract,
    heavy_edge_matching,
)
from repro.exceptions import ClusteringError


def _path_graph(n, weights=None):
    """Path 0-1-2-...-(n-1) with optional per-edge weights."""
    if weights is None:
        weights = [1.0] * (n - 1)
    rows, cols, vals = [], [], []
    for i, w in enumerate(weights):
        rows += [i, i + 1]
        cols += [i + 1, i]
        vals += [w, w]
    return sp.coo_array((vals, (rows, cols)), shape=(n, n)).tocsr()


class TestHeavyEdgeMatching:
    def test_matched_pairs_are_adjacent(self):
        adj = sp.csr_array(
            np.array(
                [[0.0, 10.0, 1.0], [10.0, 0.0, 1.0], [1.0, 1.0, 0.0]]
            )
        )
        for seed in range(5):
            match = heavy_edge_matching(adj, np.random.default_rng(seed))
            for v in range(3):
                if match[v] != v:
                    assert adj[[v], [match[v]]] > 0

    def test_prefers_heavy_edge_when_visited_first(self):
        # Star around 0 with one heavy spoke: when the visit order
        # starts at node 0, greedy HEM must take the weight-10 edge.
        adj = sp.csr_array(
            np.array(
                [
                    [0.0, 10.0, 1.0, 1.0],
                    [10.0, 0.0, 0.0, 0.0],
                    [1.0, 0.0, 0.0, 0.0],
                    [1.0, 0.0, 0.0, 0.0],
                ]
            )
        )
        # Find seeds whose visit permutation starts at node 0.
        tested = 0
        for seed in range(50):
            if np.random.default_rng(seed).permutation(4)[0] != 0:
                continue
            match = heavy_edge_matching(
                adj, np.random.default_rng(seed)
            )
            assert match[0] == 1
            tested += 1
        assert tested > 0

    def test_disjoint_edges_always_matched(self):
        adj = sp.csr_array(
            np.array(
                [
                    [0.0, 10.0, 0.0, 0.0],
                    [10.0, 0.0, 0.0, 0.0],
                    [0.0, 0.0, 0.0, 1.0],
                    [0.0, 0.0, 1.0, 0.0],
                ]
            )
        )
        for seed in range(5):
            match = heavy_edge_matching(adj, np.random.default_rng(seed))
            assert match.tolist() == [1, 0, 3, 2]

    def test_isolated_nodes_unmatched(self):
        adj = sp.csr_array((3, 3))
        match = heavy_edge_matching(adj, np.random.default_rng(0))
        assert match.tolist() == [0, 1, 2]

    def test_respects_max_node_weight(self):
        adj = _path_graph(2)
        weights = np.array([10.0, 10.0])
        match = heavy_edge_matching(
            adj,
            np.random.default_rng(0),
            node_weights=weights,
            max_node_weight=15.0,
        )
        assert match.tolist() == [0, 1]  # match would exceed the cap

    def test_matching_involution(self, rng):
        adj = _path_graph(10)
        match = heavy_edge_matching(adj, rng)
        assert np.array_equal(match[match], np.arange(10))


class TestContract:
    def test_pair_contraction(self):
        adj = _path_graph(4)  # 0-1-2-3
        match = np.array([1, 0, 3, 2])  # contract (0,1) and (2,3)
        coarse, weights, mapping = contract(adj, match)
        assert coarse.shape == (2, 2)
        assert weights.tolist() == [2.0, 2.0]
        # One inter-super-node edge (1-2) of weight 1.
        assert coarse[[0], [1]] == 1.0
        # Internal edge weight lands on the diagonal (both halves).
        assert coarse.diagonal().tolist() == [2.0, 2.0]

    def test_mapping_indexes_coarse_nodes(self):
        adj = _path_graph(4)
        match = np.array([1, 0, 2, 3])  # only contract (0,1)
        coarse, _, mapping = contract(adj, match)
        assert coarse.shape == (3, 3)
        assert mapping[0] == mapping[1]
        assert len(set(mapping.tolist())) == 3

    def test_total_weight_preserved(self, rng):
        adj = _path_graph(8, weights=[1, 5, 2, 8, 1, 1, 3])
        match = heavy_edge_matching(adj, rng)
        coarse, _, _ = contract(adj, match)
        assert coarse.sum() == pytest.approx(adj.sum())

    def test_rejects_bad_match_length(self):
        with pytest.raises(ClusteringError):
            contract(_path_graph(4), np.array([0, 1]))


class TestBuildHierarchy:
    def test_coarsens_to_target(self, rng):
        adj = _path_graph(64)
        hierarchy = build_hierarchy(adj, rng, min_nodes=8)
        assert hierarchy.graphs[-1].shape[0] <= 8 * 2  # halving steps

    def test_single_level_when_small(self, rng):
        adj = _path_graph(4)
        hierarchy = build_hierarchy(adj, rng, min_nodes=10)
        assert hierarchy.n_levels == 1
        assert not hierarchy.mappings

    def test_rejects_bad_min_nodes(self, rng):
        with pytest.raises(ClusteringError):
            build_hierarchy(_path_graph(4), rng, min_nodes=0)

    def test_project_labels_roundtrip(self, rng):
        adj = _path_graph(32)
        hierarchy = build_hierarchy(adj, rng, min_nodes=4)
        coarse_n = hierarchy.graphs[-1].shape[0]
        labels = np.arange(coarse_n)
        fine = hierarchy.project_labels(labels)
        assert fine.shape == (32,)
        # Every fine node carries its coarsest ancestor's label.
        current = fine
        for mapping in hierarchy.mappings:
            # Consistency: nodes mapped together share labels.
            grouped = {}
            for v, m in enumerate(mapping):
                grouped.setdefault(m, set()).add(current[v])
            assert all(len(s) == 1 for s in grouped.values())
            current = np.array(
                [current[np.flatnonzero(mapping == m)[0]]
                 for m in range(mapping.max() + 1)]
            )

    def test_star_graph_stops_early(self, rng):
        # A star cannot be matched below ~n/2: only one edge can match.
        n = 40
        rows = [0] * (n - 1) + list(range(1, n))
        cols = list(range(1, n)) + [0] * (n - 1)
        adj = sp.coo_array(
            (np.ones(2 * (n - 1)), (rows, cols)), shape=(n, n)
        ).tocsr()
        hierarchy = build_hierarchy(adj, rng, min_nodes=2, max_levels=50)
        # Terminates (no infinite loop) with a small number of levels.
        assert hierarchy.n_levels < 10

    def test_balance_cap_limits_supernode_weight(self, rng):
        adj = _path_graph(100)
        hierarchy = build_hierarchy(
            adj, rng, min_nodes=10, balance_node_weights=True
        )
        cap = 3.0 * 100 / 10
        assert hierarchy.node_weights[-1].max() <= cap

    def test_empty_hierarchy_dataclass(self):
        h = CoarseningHierarchy()
        assert h.n_levels == 0
