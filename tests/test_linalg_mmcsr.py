"""Unit tests for :mod:`repro.linalg.mmcsr` — the out-of-core CSR
store — and the shard-vs-monolithic identity of the kernels built on
it.

The store is held to three standards: round-trips must equal scipy's
own canonical CSR bit-for-bit, a build that crashes at any point must
leave no partial store at the target path (``meta.json`` is the
commit record), and routing a kernel through ``n_jobs`` shard workers
must change nothing about its output bytes.
"""

import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import StorageError
from repro.linalg.mmcsr import MmapCSR, MmapCSRBuilder


def _random_csr(rng, shape=(60, 45), density=0.15) -> sp.csr_array:
    m = sp.random_array(shape, density=density, rng=rng, format="csr")
    m.sum_duplicates()
    m.sort_indices()
    return m


def _reference(rows, cols, vals, shape) -> sp.csr_array:
    ref = sp.coo_array((vals, (rows, cols)), shape=shape).tocsr()
    ref.sum_duplicates()
    ref.sort_indices()
    return ref


def _assert_equal_csr(
    store: MmapCSR, ref: sp.csr_array, exact_data: bool = True
) -> None:
    got = store.to_scipy()
    assert got.shape == ref.shape
    assert np.array_equal(got.indptr, ref.indptr.astype(got.indptr.dtype))
    assert np.array_equal(
        got.indices, ref.indices.astype(got.indices.dtype)
    )
    if exact_data:
        assert np.array_equal(got.data, ref.data.astype(np.float64))
    else:
        # Duplicate edges are summed in insertion order by the
        # builder and in scipy's own order by the reference — the
        # same multiset of floats, so only the last ULP may differ.
        assert np.allclose(
            got.data, ref.data.astype(np.float64), rtol=1e-12, atol=0
        )


class TestRoundTrip:
    def test_from_scipy_round_trip(self, rng, tmp_path):
        m = _random_csr(rng)
        store = MmapCSR.from_scipy(m, tmp_path / "m")
        _assert_equal_csr(store, m)
        assert store.nnz == m.nnz
        assert store.shape == m.shape

    def test_open_returns_equal_handle(self, rng, tmp_path):
        m = _random_csr(rng)
        MmapCSR.from_scipy(m, tmp_path / "m")
        reopened = MmapCSR.open(tmp_path / "m")
        _assert_equal_csr(reopened, m)

    def test_builder_matches_scipy_reference(self, rng, tmp_path):
        n_rows, n_cols = 200, 150
        rows = rng.integers(0, n_rows, size=5000)
        cols = rng.integers(0, n_cols, size=5000)
        vals = rng.random(5000)
        ref = _reference(rows, cols, vals, (n_rows, n_cols))
        with MmapCSRBuilder(
            tmp_path / "b", n_rows=n_rows, n_cols=n_cols
        ) as builder:
            # Uneven chunks, shuffled order: the builder must not care.
            for lo in (0, 17, 1200, 3000):
                hi = {0: 17, 17: 1200, 1200: 3000, 3000: 5000}[lo]
                builder.add_chunk(rows[lo:hi], cols[lo:hi], vals[lo:hi])
            store = builder.finalize()
        _assert_equal_csr(store, ref, exact_data=False)
        raw_pairs = len(set(zip(rows.tolist(), cols.tolist())))
        assert builder.n_duplicates == 5000 - raw_pairs

    def test_builder_square_inference(self, tmp_path):
        # Largest id on either endpoint defines the node universe.
        with MmapCSRBuilder(tmp_path / "sq", square=True) as builder:
            builder.add_chunk([0, 1], [7, 2], [1.0, 1.0])
            store = builder.finalize()
        assert store.shape == (8, 8)

    def test_empty_builder_with_declared_shape(self, tmp_path):
        with MmapCSRBuilder(tmp_path / "e", n_rows=4, n_cols=3) as b:
            store = b.finalize()
        assert store.shape == (4, 3)
        assert store.nnz == 0
        assert store.to_scipy().nnz == 0

    def test_window_views_match_slices(self, rng, tmp_path):
        m = _random_csr(rng, shape=(80, 30))
        store = MmapCSR.from_scipy(m, tmp_path / "m")
        for start, stop in ((0, 80), (10, 25), (79, 80), (40, 40)):
            window = store.to_scipy(rows=(start, stop))
            ref = m[start:stop]
            assert window.shape == (stop - start, 30)
            assert np.array_equal(
                np.diff(window.indptr), np.diff(ref.indptr)
            )
            assert np.array_equal(window.indices, ref.indices)
            assert np.array_equal(window.data, ref.data)

    def test_row_blocks_cover_once(self, rng, tmp_path):
        m = _random_csr(rng, shape=(50, 20))
        store = MmapCSR.from_scipy(m, tmp_path / "m")
        seen_rows = 0
        seen_nnz = 0
        for start, stop, window in store.row_blocks(16):
            assert stop - start <= 16
            assert start == seen_rows
            seen_rows = stop
            seen_nnz += window.nnz
        assert seen_rows == 50
        assert seen_nnz == m.nnz

    def test_pickle_is_path_only(self, rng, tmp_path):
        m = _random_csr(rng)
        store = MmapCSR.from_scipy(m, tmp_path / "m")
        payload = pickle.dumps(store)
        assert len(payload) < 1024
        _assert_equal_csr(pickle.loads(payload), m)

    def test_int32_indices_for_small_stores(self, rng, tmp_path):
        m = _random_csr(rng)
        store = MmapCSR.from_scipy(m, tmp_path / "m")
        assert store.indices.dtype == np.int32
        assert store.indptr.dtype == np.int32


class TestAtomicity:
    def test_crash_mid_build_leaves_no_store(self, tmp_path):
        """SIGKILL-grade exit between add_chunk and publish: the
        target path must not exist, and any scratch leftovers must
        not be openable as a store."""
        target = tmp_path / "crash"
        script = (
            "import os, sys\n"
            "from repro.linalg.mmcsr import MmapCSRBuilder\n"
            f"b = MmapCSRBuilder({str(target)!r}, n_rows=100, n_cols=100)\n"
            "b.add_chunk([0, 1, 2], [1, 2, 3], [1.0, 1.0, 1.0])\n"
            "os._exit(1)\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=Path(__file__).resolve().parents[1],
            env=env,
        )
        assert proc.returncode == 1
        assert not target.exists()
        leftovers = list(tmp_path.glob("crash.tmp-*"))
        assert leftovers  # the scratch dir is what the crash orphaned
        for leftover in leftovers:
            with pytest.raises(StorageError, match="missing meta.json"):
                MmapCSR.open(leftover)

    def test_exception_mid_finalize_leaves_no_store(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "boom"
        builder = MmapCSRBuilder(target, n_rows=10, n_cols=10)
        builder.add_chunk([0, 1], [1, 2], [1.0, 2.0])
        monkeypatch.setattr(
            "repro.linalg.mmcsr._publish",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        with pytest.raises(OSError, match="disk full"):
            builder.finalize()
        builder.abort()
        assert not target.exists()
        assert not list(tmp_path.glob("boom.tmp-*"))

    def test_abort_discards_scratch(self, tmp_path):
        target = tmp_path / "aborted"
        with MmapCSRBuilder(target, n_rows=5, n_cols=5) as builder:
            builder.add_chunk([0], [1], [1.0])
            # context manager exit without finalize() aborts
        assert not target.exists()
        assert not list(tmp_path.glob("aborted.tmp-*"))

    def test_open_rejects_missing_directory(self, tmp_path):
        with pytest.raises(StorageError, match="missing meta.json"):
            MmapCSR.open(tmp_path / "nothing")

    def test_open_rejects_malformed_meta(self, rng, tmp_path):
        MmapCSR.from_scipy(_random_csr(rng), tmp_path / "m")
        (tmp_path / "m" / "meta.json").write_text("{not json")
        with pytest.raises(StorageError, match="unreadable"):
            MmapCSR.open(tmp_path / "m")

    def test_open_rejects_wrong_format(self, rng, tmp_path):
        MmapCSR.from_scipy(_random_csr(rng), tmp_path / "m")
        (tmp_path / "m" / "meta.json").write_text('{"format": "v9"}')
        with pytest.raises(StorageError, match="unsupported"):
            MmapCSR.open(tmp_path / "m")

    def test_open_rejects_truncated_arrays(self, rng, tmp_path):
        store = MmapCSR.from_scipy(_random_csr(rng), tmp_path / "m")
        short = np.zeros(store.nnz - 1, dtype=np.float64)
        np.save(tmp_path / "m" / "data.npy", short)
        with pytest.raises(StorageError, match="capacity"):
            MmapCSR.open(tmp_path / "m")

    def test_builder_rejects_out_of_range_ids(self, tmp_path):
        builder = MmapCSRBuilder(tmp_path / "r", n_rows=3, n_cols=3)
        with pytest.raises(StorageError, match="out of range"):
            builder.add_chunk([5], [0], [1.0])
        builder.abort()

    def test_builder_rejects_negative_ids(self, tmp_path):
        builder = MmapCSRBuilder(tmp_path / "n")
        with pytest.raises(StorageError, match="negative"):
            builder.add_chunk([-1], [0], [1.0])
        builder.abort()


class TestShardDifferential:
    """Sharding is an execution strategy, not an approximation: the
    kernels must emit byte-identical CSR arrays for n_shards 1 and 4.
    """

    @staticmethod
    def _factor(rng):
        from repro.graph.generators import power_law_digraph

        graph = power_law_digraph(600, rng)
        from repro.symmetrize import DegreeDiscountedSymmetrization

        return (
            graph,
            DegreeDiscountedSymmetrization().pruning_factors(graph)[0],
        )

    def test_thresholded_gram_shard_identity(self, rng):
        from repro.linalg.allpairs import thresholded_gram_matrix

        _, factor = self._factor(rng)
        serial = thresholded_gram_matrix(
            factor, 0.2, block_size=64, n_jobs=None
        )
        sharded = thresholded_gram_matrix(
            factor, 0.2, block_size=64, n_jobs=4
        )
        assert serial.nnz > 0
        assert serial.indptr.tobytes() == sharded.indptr.tobytes()
        assert serial.indices.tobytes() == sharded.indices.tobytes()
        assert serial.data.tobytes() == sharded.data.tobytes()

    def test_degree_discounted_shard_identity(self, rng):
        from repro.symmetrize import DegreeDiscountedSymmetrization

        graph, _ = self._factor(rng)
        sym = DegreeDiscountedSymmetrization()
        serial = sym.apply_pruned(
            graph, 0.2, block_size=64, n_jobs=None
        ).adjacency.tocsr()
        sharded = sym.apply_pruned(
            graph, 0.2, block_size=64, n_jobs=4
        ).adjacency.tocsr()
        assert serial.nnz > 0
        assert serial.indptr.tobytes() == sharded.indptr.tobytes()
        assert serial.indices.tobytes() == sharded.indices.tobytes()
        assert serial.data.tobytes() == sharded.data.tobytes()
