"""Property-based tests (hypothesis) for core invariants.

These cover the mathematical guarantees the library's correctness
rests on: symmetry/non-negativity of every symmetrization, degree
monotonicity of discounting, pruning monotonicity, F-measure bounds,
sign-test bounds, coarsening conservation laws and clustering label
invariants — on randomly generated directed graphs.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.cluster.coarsen import build_hierarchy, contract, heavy_edge_matching
from repro.cluster.common import Clustering
from repro.eval.fmeasure import average_f_score
from repro.eval.groundtruth import GroundTruth
from repro.eval.significance import sign_test
from repro.graph import DirectedGraph, UndirectedGraph
from repro.graph.generators import power_law_digraph
from repro.linalg.sparse_utils import prune_matrix
from repro.symmetrize import get_symmetrization
from repro.validate import lenient

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def directed_graphs(draw, min_nodes=2, max_nodes=12):
    """A random small directed graph (possibly with isolated nodes)."""
    n = draw(st.integers(min_nodes, max_nodes))
    n_edges = draw(st.integers(0, n * (n - 1)))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.1, 10.0, allow_nan=False),
            ),
            min_size=0,
            max_size=n_edges,
        )
    )
    edges = [(i, j, w) for i, j, w in edges if i != j]
    return DirectedGraph.from_edges(edges, n_nodes=n)


@st.composite
def undirected_graphs(draw, min_nodes=2, max_nodes=12):
    """A random small undirected weighted graph."""
    n = draw(st.integers(min_nodes, max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.1, 5.0, allow_nan=False),
            ),
            min_size=0,
            max_size=3 * n,
        )
    )
    edges = [(i, j, w) for i, j, w in edges if i != j]
    return UndirectedGraph.from_edges(edges, n_nodes=n)


@st.composite
def power_law_digraphs(draw, min_nodes=10, max_nodes=40):
    """A random power-law digraph — the degree structure the paper's
    datasets share (hubs, dangling tails, reciprocity)."""
    n = draw(st.integers(min_nodes, max_nodes))
    seed = draw(st.integers(0, 2**32 - 1))
    return power_law_digraph(n, np.random.default_rng(seed))


SYM_NAMES = ["naive", "bibliometric", "degree_discounted"]

#: All four paper symmetrizations; random_walk runs pagerank so it is
#: kept out of the tiny-graph strategies above but exercised on the
#: power-law graphs below.
ALL_SYM_NAMES = SYM_NAMES + ["random_walk"]

# ---------------------------------------------------------------------------
# Symmetrization invariants
# ---------------------------------------------------------------------------


@given(power_law_digraphs(), st.sampled_from(ALL_SYM_NAMES))
@settings(max_examples=30, deadline=None)
def test_symmetrization_contract_on_power_law(graph, name):
    """Every symmetrization output on a power-law digraph is square,
    symmetric, finite, non-negative and zero-diagonal — the
    validate_symmetrization_output contract."""
    assume(graph.n_edges > 0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        u = get_symmetrization(name).apply(graph)
    adj = u.adjacency
    assert adj.shape == (graph.n_nodes, graph.n_nodes)
    if adj.nnz:
        assert np.all(np.isfinite(adj.data))
        assert adj.data.min() >= 0.0
        asym = abs(adj - adj.T)
        assert (asym.max() if asym.nnz else 0.0) == 0.0
        assert adj.diagonal().max() == 0.0


@given(directed_graphs(), st.sampled_from(ALL_SYM_NAMES))
@settings(max_examples=40, deadline=None)
def test_lenient_apply_is_total(graph, name):
    """In lenient mode no symmetrization raises on any random graph —
    degenerate shapes downgrade to warnings."""
    with lenient(), warnings.catch_warnings():
        warnings.simplefilter("ignore")
        u = get_symmetrization(name).apply(graph)
    assert u.n_nodes == graph.n_nodes


@given(directed_graphs(), st.floats(0.01, 1.0))
@settings(max_examples=30, deadline=None)
def test_degree_discounted_pruned_matches_exact(graph, threshold):
    """The §3.6 pruned fast path agrees with the exact path
    edge-for-edge at arbitrary thresholds."""
    dd = get_symmetrization("degree_discounted")
    exact = dd.apply(graph, threshold=threshold).adjacency
    fast = dd.apply_pruned(graph, threshold=threshold).adjacency
    assert exact.indptr.tolist() == fast.indptr.tolist()
    assert exact.indices.tolist() == fast.indices.tolist()
    if exact.nnz:
        np.testing.assert_allclose(
            fast.data, exact.data, rtol=1e-12, atol=0.0
        )


@given(directed_graphs(), st.sampled_from(SYM_NAMES))
@settings(max_examples=60, deadline=None)
def test_symmetrization_output_symmetric_nonnegative(graph, name):
    u = get_symmetrization(name).apply(graph)
    adj = u.adjacency
    asym = abs(adj - adj.T)
    assert (asym.max() if asym.nnz else 0.0) == 0.0
    if adj.nnz:
        assert adj.data.min() >= 0.0


@given(directed_graphs())
@settings(max_examples=40, deadline=None)
def test_naive_preserves_total_weight(graph):
    """Total weight of A + Aᵀ (off-diagonal) equals total input weight
    of non-loop edges — direction dropping loses nothing."""
    u = get_symmetrization("naive").apply(graph)
    input_weight = sum(
        w for i, j, w in graph.edges() if i != j
    )
    assert u.total_weight() == np.float64(input_weight) or abs(
        u.total_weight() - input_weight
    ) < 1e-9


@given(directed_graphs())
@settings(max_examples=40, deadline=None)
def test_degree_discounted_bounded_by_one_at_half(graph):
    """With alpha=beta=0.5 each similarity is a normalized dot product
    bounded by sqrt(d_o(i) d_o(j)) / (sqrt(d_o(i)) sqrt(d_o(j))) <= 2
    (1 from coupling + 1 from co-citation) for 0/1 graphs."""
    pattern = graph.adjacency.copy()
    if pattern.nnz == 0:
        return
    pattern.data[:] = 1.0
    binary = DirectedGraph(pattern)
    u = get_symmetrization("degree_discounted").apply(binary)
    if u.adjacency.nnz:
        assert u.adjacency.data.max() <= 2.0 + 1e-9


@given(directed_graphs(), st.floats(0.0, 3.0))
@settings(max_examples=40, deadline=None)
def test_prune_monotone(graph, threshold):
    u = get_symmetrization("bibliometric").apply(graph)
    pruned = prune_matrix(u.adjacency, threshold)
    assert pruned.nnz <= u.adjacency.nnz
    if pruned.nnz:
        assert pruned.data.min() >= threshold


# ---------------------------------------------------------------------------
# Coarsening conservation laws
# ---------------------------------------------------------------------------


@given(undirected_graphs())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_contract_preserves_total_weight_and_node_weight(graph):
    rng = np.random.default_rng(0)
    adj = graph.adjacency
    match = heavy_edge_matching(adj, rng)
    node_weights = np.ones(graph.n_nodes)
    coarse, coarse_weights, mapping = contract(adj, match, node_weights)
    assert coarse_weights.sum() == graph.n_nodes
    assert abs(coarse.sum() - adj.sum()) < 1e-9
    assert mapping.shape == (graph.n_nodes,)
    assert mapping.max() < coarse.shape[0] if graph.n_nodes else True


@given(undirected_graphs(min_nodes=4, max_nodes=20))
@settings(max_examples=30, deadline=None)
def test_hierarchy_levels_shrink(graph):
    rng = np.random.default_rng(1)
    hierarchy = build_hierarchy(graph.adjacency, rng, min_nodes=2)
    sizes = [g.shape[0] for g in hierarchy.graphs]
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))


@given(undirected_graphs(min_nodes=4, max_nodes=20))
@settings(max_examples=30, deadline=None)
def test_matching_is_involution(graph):
    rng = np.random.default_rng(2)
    match = heavy_edge_matching(graph.adjacency, rng)
    assert np.array_equal(match[match], np.arange(graph.n_nodes))


# ---------------------------------------------------------------------------
# Evaluation invariants
# ---------------------------------------------------------------------------


@given(
    st.lists(st.integers(0, 4), min_size=5, max_size=40),
    st.lists(st.integers(-1, 4), min_size=5, max_size=40),
)
@settings(max_examples=60, deadline=None)
def test_f_score_bounds(cluster_labels, truth_labels):
    n = min(len(cluster_labels), len(truth_labels))
    clustering = Clustering(cluster_labels[:n])
    gt = GroundTruth.from_labels(truth_labels[:n])
    if gt.n_categories == 0:
        return
    score = average_f_score(clustering, gt)
    assert 0.0 <= score <= 100.0


@given(st.lists(st.integers(0, 6), min_size=4, max_size=50))
@settings(max_examples=60, deadline=None)
def test_perfect_clustering_scores_100(labels):
    clustering = Clustering(labels)
    gt = GroundTruth.from_labels(np.asarray(labels))
    assert average_f_score(clustering, gt) == 100.0


@given(
    st.lists(st.booleans(), min_size=1, max_size=200),
    st.lists(st.booleans(), min_size=1, max_size=200),
)
@settings(max_examples=60, deadline=None)
def test_sign_test_p_value_bounds(a, b):
    n = min(len(a), len(b))
    result = sign_test(np.array(a[:n]), np.array(b[:n]))
    assert 0.0 <= result.p_value <= 1.0
    assert result.log10_p <= 0.0 + 1e-12


def test_sign_test_self_comparison_tie():
    a = np.array([True, False, True, True])
    result = sign_test(a, a)
    assert result.winner == "tie"
    assert result.p_value == 1.0


# ---------------------------------------------------------------------------
# Clustering label invariants
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(0, 100), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_clustering_labels_compacted(labels):
    c = Clustering(labels)
    assert c.labels.min() == 0
    assert c.labels.max() == c.n_clusters - 1
    assert c.sizes.sum() == c.n_nodes
    assert all(size > 0 for size in c.sizes)


@given(st.lists(st.integers(0, 10), min_size=2, max_size=40))
@settings(max_examples=40, deadline=None)
def test_clustering_members_partition(labels):
    c = Clustering(labels)
    all_members = np.concatenate(c.clusters())
    assert sorted(all_members.tolist()) == list(range(c.n_nodes))


@given(st.lists(st.integers(0, 10), min_size=2, max_size=40))
@settings(max_examples=40, deadline=None)
def test_clustering_invariant_under_relabeling(labels):
    """Renaming cluster ids consistently yields the same Clustering."""
    arr = np.asarray(labels)
    shifted = (arr + 100).tolist()
    assert Clustering(labels) == Clustering(shifted)


# ---------------------------------------------------------------------------
# Agreement metric invariants
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(0, 5), min_size=2, max_size=60))
@settings(max_examples=50, deadline=None)
def test_agreement_metrics_perfect_on_identity(labels):
    from repro.eval.agreement import (
        adjusted_rand_index,
        normalized_mutual_information,
        purity,
    )

    arr = np.asarray(labels)
    # A consistent relabeling of the same partition.
    permuted = (arr.max() - arr).astype(np.int64)
    assert purity(arr, permuted) == 1.0
    assert normalized_mutual_information(arr, permuted) == (
        1.0 if np.unique(arr).size == 1 else
        pytest.approx(1.0)
    )
    assert adjusted_rand_index(arr, permuted) == pytest.approx(1.0)


@given(
    st.lists(st.integers(0, 4), min_size=4, max_size=60),
    st.lists(st.integers(0, 4), min_size=4, max_size=60),
)
@settings(max_examples=50, deadline=None)
def test_agreement_metrics_bounded(a, b):
    from repro.eval.agreement import (
        adjusted_rand_index,
        normalized_mutual_information,
        purity,
    )

    n = min(len(a), len(b))
    la, lb = np.asarray(a[:n]), np.asarray(b[:n])
    assert 0.0 <= purity(la, lb) <= 1.0
    assert 0.0 <= normalized_mutual_information(la, lb) <= 1.0 + 1e-12
    assert -1.0 <= adjusted_rand_index(la, lb) <= 1.0 + 1e-12


# ---------------------------------------------------------------------------
# Variant symmetrizations
# ---------------------------------------------------------------------------


@given(directed_graphs())
@settings(max_examples=40, deadline=None)
def test_jaccard_bounded_by_two(graph):
    u = get_symmetrization("jaccard").apply(graph)
    if u.adjacency.nnz:
        assert u.adjacency.data.max() <= 2.0 + 1e-12


@given(directed_graphs(), st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_hybrid_bounded_by_normalized_parts(graph, lam):
    u = get_symmetrization("hybrid", lam=lam).apply(graph)
    # Each normalized part has max 1, so the mixture is <= 1.
    if u.adjacency.nnz:
        assert u.adjacency.data.max() <= 1.0 + 1e-9


# ---------------------------------------------------------------------------
# Louvain modularity invariant
# ---------------------------------------------------------------------------


@given(undirected_graphs(min_nodes=4, max_nodes=16))
@settings(max_examples=30, deadline=None)
def test_louvain_never_worse_than_singletons(graph):
    from repro.cluster import LouvainClusterer
    from repro.cluster.louvain import modularity

    clustering = LouvainClusterer().cluster(graph)
    adj = graph.adjacency
    assert modularity(adj, clustering.labels) >= modularity(
        adj, np.arange(graph.n_nodes)
    ) - 1e-9
