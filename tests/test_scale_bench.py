"""Tests for :mod:`repro.perf.scale_bench` — the out-of-core scale
harness behind ``repro bench --scale``.

The unmarked tests run a miniature sweep (a few thousand nodes) so
the schema, the regression block and the shard-vs-monolithic
differential stay honest in tier-1 time. The ``scale_smoke``-marked
test runs the real ~50k smoke configuration under a wall/memory
:class:`~repro.engine.policy.Budget` — the dedicated CI job
(``make scale-smoke``).
"""

import json
import os
from pathlib import Path

import pytest

from repro.cli import main
from repro.exceptions import ReproError
from repro.perf.bench import write_bench
from repro.perf.scale_bench import (
    MAX_PEAK_RSS_BYTES,
    REQUIRED_POINT_KEYS,
    SCALE_SCHEMA,
    format_scale_summary,
    run_scale_bench,
    scale_manifest,
    scale_smoke_enabled,
)


class TestScaleBenchMini:
    @pytest.fixture(scope="class")
    def mini_results(self):
        # Two tiny sizes: enough to exercise the mmap generation, the
        # sharded fan-out, the differential and the regression block.
        return run_scale_bench(
            sizes=[1500, 3000],
            n_jobs=2,
            block_size=256,
            shard_jobs=2,
        )

    def test_schema(self, mini_results):
        assert mini_results["schema"] == SCALE_SCHEMA
        for key in (
            "config",
            "environment",
            "points",
            "differential",
            "regression",
        ):
            assert key in mini_results, key
        for point in mini_results["points"]:
            assert REQUIRED_POINT_KEYS <= set(point), point
        json.dumps(mini_results)  # must be serializable

    def test_points_ascend_and_scale(self, mini_results):
        sizes = [p["n_nodes"] for p in mini_results["points"]]
        assert sizes == sorted(sizes) == [1500, 3000]
        for point in mini_results["points"]:
            assert point["n_edges"] > point["n_nodes"]
            assert point["store_bytes"] > 0
            assert point["generate_seconds"] >= 0
            assert point["symmetrize_seconds"] > 0

    def test_points_carry_shard_metrics(self, mini_results):
        for point in mini_results["points"]:
            assert point["metrics"]["shard_count"] >= 1
            assert point["metrics"]["peak_rss_bytes"] > 0
            assert "shard_bytes_spilled" in point["metrics"]

    def test_rss_recorded_and_under_floor(self, mini_results):
        reg = mini_results["regression"]
        assert reg["observed_peak_rss_bytes"] > 0
        assert reg["observed_peak_rss_bytes"] <= MAX_PEAK_RSS_BYTES
        assert reg["thresholds"]["max_peak_rss_bytes"] == (
            MAX_PEAK_RSS_BYTES
        )
        assert reg["passed"] is True
        assert reg["failures"] == []

    def test_differential_identical(self, mini_results):
        diff = mini_results["differential"]
        assert diff["n_nodes"] == 1500
        assert diff["identical"] is True
        assert mini_results["regression"]["differential_identical"]

    def test_manifest(self, mini_results):
        manifest = scale_manifest(mini_results)
        assert manifest.kind == "bench"
        assert manifest.name == "bench-scale"
        assert manifest.metrics["regression_passed"] == 1.0
        assert manifest.metrics["differential_identical"] == 1.0
        assert any(
            key.endswith("_symmetrize_seconds") for key in manifest.timings
        )

    def test_write_and_summary(self, mini_results, tmp_path):
        path = write_bench(mini_results, tmp_path / "scale.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCALE_SCHEMA
        text = format_scale_summary(mini_results)
        assert "regression: PASS" in text
        assert "identical=yes" in text

    def test_rejects_empty_sizes(self):
        with pytest.raises(ReproError, match="at least one size"):
            run_scale_bench(sizes=[])

    def test_rejects_bad_threshold(self):
        with pytest.raises(ReproError, match="positive threshold"):
            run_scale_bench(sizes=[100], threshold=0.0)


class TestScaleBenchCli:
    def test_bench_scale_subcommand(self, tmp_path, capsys):
        out = tmp_path / "BENCH_scale.json"
        code = main(
            [
                "bench",
                "--scale",
                "--sizes",
                "2000",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        results = json.loads(out.read_text())
        assert results["schema"] == SCALE_SCHEMA
        assert results["regression"]["passed"] is True
        stdout = capsys.readouterr().out
        assert "regression: PASS" in stdout

    def test_bench_scale_runlog(self, tmp_path, capsys):
        from repro.obs.manifest import read_manifests

        out = tmp_path / "BENCH_scale.json"
        log = tmp_path / "runs.jsonl"
        code = main(
            [
                "bench",
                "--scale",
                "--sizes",
                "2000",
                "-o",
                str(out),
                "--runlog",
                str(log),
            ]
        )
        assert code == 0
        manifests = read_manifests(log)
        assert len(manifests) == 1
        assert manifests[0].name == "bench-scale"


@pytest.mark.scale_smoke
@pytest.mark.skipif(
    not scale_smoke_enabled(),
    reason="minutes-scale; run via `make scale-smoke` "
    "(REPRO_SCALE_SMOKE=1)",
)
def test_scale_smoke_under_budget(tmp_path):
    """The CI-grade smoke: ~50k nodes through the mmap + shard path,
    metered against wall/memory ceilings, regression floor enforced."""
    from repro.engine.policy import Budget, BudgetMeter

    budget = Budget(wall_s=1200.0, mem_bytes=MAX_PEAK_RSS_BYTES)
    meter = BudgetMeter(budget, scope="scale-smoke")
    with meter:
        results = run_scale_bench(smoke=True)
    meter.enforce()
    # CI points REPRO_SCALE_BENCH_OUT at the workspace so the smoke's
    # BENCH_scale.json can be uploaded as a trajectory artifact.
    out = os.environ.get("REPRO_SCALE_BENCH_OUT")
    path = write_bench(
        results, Path(out) if out else tmp_path / "BENCH_scale.json"
    )
    loaded = json.loads(path.read_text())
    assert loaded["config"]["smoke"] is True
    assert loaded["points"][0]["n_nodes"] == 50_000
    assert loaded["regression"]["passed"] is True
    assert loaded["differential"]["identical"] is True
