"""Smoke tests: the runnable examples execute successfully.

Only the fast examples run in the default suite; the two larger
scenario scripts (`web_graph_hubs`, `social_network_scaling`) are
covered by the same code paths in the benchmark harness and are
exercised end-to-end there.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "guzmania_case_study.py",
    "bipartite_coclustering.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), script
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_present():
    expected = {
        "quickstart.py",
        "citation_clustering.py",
        "web_graph_hubs.py",
        "guzmania_case_study.py",
        "social_network_scaling.py",
        "bipartite_coclustering.py",
    }
    found = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert expected <= found
