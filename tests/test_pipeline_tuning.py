"""Unit tests for :mod:`repro.pipeline.tuning`."""

import pytest

from repro.exceptions import ReproError
from repro.pipeline.tuning import TuningPoint, tune_threshold


class TestTuneThreshold:
    def test_supervised_returns_best_point(self, cora_small):
        best, points = tune_threshold(
            cora_small.graph,
            "degree_discounted",
            "metis",
            n_clusters=12,
            ground_truth=cora_small.ground_truth,
            candidate_degrees=[10.0, 30.0],
        )
        assert len(points) == 2
        winner = max(points, key=lambda p: p.score)
        assert best == winner.threshold
        assert all(isinstance(p, TuningPoint) for p in points)
        assert all(p.seconds > 0 for p in points)

    def test_unsupervised_uses_ncut_proxy(self, cora_small):
        best, points = tune_threshold(
            cora_small.graph,
            "degree_discounted",
            "metis",
            n_clusters=12,
            candidate_degrees=[15.0, 40.0],
        )
        # Unsupervised scores are negative Ncut values.
        assert all(p.score <= 0 for p in points)
        assert best in {p.threshold for p in points}

    def test_edges_track_target_degree(self, cora_small):
        _, points = tune_threshold(
            cora_small.graph,
            "degree_discounted",
            "metis",
            n_clusters=8,
            candidate_degrees=[8.0, 50.0],
        )
        by_target = {p.target_degree: p.n_edges for p in points}
        assert by_target[8.0] <= by_target[50.0]

    def test_rejects_empty_candidates(self, cora_small):
        with pytest.raises(ReproError, match="non-empty"):
            tune_threshold(
                cora_small.graph, candidate_degrees=[]
            )

    def test_instances_accepted(self, cora_small):
        from repro.cluster import MetisClusterer
        from repro.symmetrize import DegreeDiscountedSymmetrization

        best, points = tune_threshold(
            cora_small.graph,
            DegreeDiscountedSymmetrization(),
            MetisClusterer(),
            n_clusters=6,
            candidate_degrees=[20.0],
        )
        assert len(points) == 1

    def test_deterministic(self, cora_small):
        kwargs = dict(
            symmetrization="degree_discounted",
            clusterer="metis",
            n_clusters=8,
            candidate_degrees=[12.0, 25.0],
        )
        b1, _ = tune_threshold(cora_small.graph, **kwargs)
        b2, _ = tune_threshold(cora_small.graph, **kwargs)
        assert b1 == b2
