"""Integration tests: the paper's qualitative claims end-to-end.

Each test exercises the full symmetrize-then-cluster framework and
checks a *shape* claim from the paper (who wins, what fails) rather
than absolute numbers.
"""

import numpy as np
import pytest

import repro
from repro.eval.fmeasure import average_f_score, correctly_clustered_mask
from repro.eval.significance import sign_test


class TestFigure1Claim:
    """§2.1.1 / Figure 1: the shared-neighbour pair clusters together
    under similarity symmetrizations but cannot under A + Aᵀ."""

    def test_naive_cannot_join_pair(self, figure1):
        g, roles = figure1
        u = repro.symmetrize(g, "naive")
        a, b = roles["pair"]
        assert not u.has_edge(a, b)

    @pytest.mark.parametrize("name", ["bibliometric", "degree_discounted"])
    def test_similarity_symmetrizations_join_pair(self, name, figure1):
        g, roles = figure1
        u = repro.symmetrize(g, name)
        a, b = roles["pair"]
        assert u.has_edge(a, b)

    def test_mlrmcl_on_dd_clusters_pair_together(self, figure1):
        g, roles = figure1
        u = repro.symmetrize(g, "degree_discounted")
        c = repro.MLRMCL(inflation=2.0).cluster(u)
        a, b = roles["pair"]
        assert c.labels[a] == c.labels[b]


class TestGuzmaniaCaseStudy:
    """§5.7: list-pattern clusters are recovered from the similarity
    graph; the species form their own cluster separate from the
    background."""

    def test_dd_isolates_species_cluster(self):
        g, roles = repro.guzmania_motif(n_species=12)
        u = repro.symmetrize(g, "degree_discounted")
        c = repro.MLRMCL(inflation=2.0).cluster(u)
        species_labels = set(c.labels[roles["species"]].tolist())
        assert len(species_labels) == 1
        # The species cluster does not swallow the background pages.
        label = species_labels.pop()
        background_labels = set(c.labels[roles["background"]].tolist())
        assert label not in background_labels


class TestCoraShapeClaims:
    """Figure 5-shaped claims on the cora-like dataset."""

    @pytest.fixture(scope="class")
    def scores(self, cora_small):
        results = {}
        for name, threshold in [
            ("naive", 0.0),
            ("random_walk", 0.0),
            ("bibliometric", 0.0),
            ("degree_discounted", 0.05),
        ]:
            pipe = repro.SymmetrizeClusterPipeline(
                name, "metis", threshold=threshold
            )
            run = pipe.run(
                cora_small.graph,
                n_clusters=12,
                ground_truth=cora_small.ground_truth,
            )
            results[name] = run
        return results

    def test_all_beat_chance(self, scores):
        for name, run in scores.items():
            assert run.average_f > 10.0, name

    def test_degree_discounted_wins(self, scores):
        dd = scores["degree_discounted"].average_f
        for other in ("naive", "random_walk"):
            assert dd > scores[other].average_f - 3.0, other

    def test_similarity_methods_beat_random_walk(self, scores):
        rw = scores["random_walk"].average_f
        assert scores["degree_discounted"].average_f > rw
        assert scores["bibliometric"].average_f > rw

    def test_sign_test_dd_vs_rw_significant(self, scores, cora_small):
        dd_mask = correctly_clustered_mask(
            scores["degree_discounted"].clustering,
            cora_small.ground_truth,
        )
        rw_mask = correctly_clustered_mask(
            scores["random_walk"].clustering, cora_small.ground_truth
        )
        result = sign_test(dd_mask, rw_mask)
        assert result.winner == "a"
        assert result.p_value < 0.01


class TestBestWCutComparison:
    """Figure 6-shaped claims: dd + any multilevel clusterer beats the
    directed spectral baseline, and is faster."""

    def test_dd_metis_beats_bestwcut(self, cora_small):
        import time

        pipe = repro.SymmetrizeClusterPipeline(
            "degree_discounted", "metis", threshold=0.05
        )
        dd_run = pipe.run(
            cora_small.graph,
            n_clusters=12,
            ground_truth=cora_small.ground_truth,
        )
        t0 = time.perf_counter()
        wcut_clustering = repro.best_wcut().cluster(cora_small.graph, 12)
        wcut_seconds = time.perf_counter() - t0
        wcut_f = average_f_score(wcut_clustering, cora_small.ground_truth)
        assert dd_run.average_f > wcut_f - 3.0


class TestWikiShapeClaims:
    """§5.3-shaped claims on the wikipedia-like dataset."""

    def test_bibliometric_pruning_pathology(self, wiki_small):
        """At a matched edge budget, pruned Bibliometric leaves far
        more singleton nodes than Degree-discounted (§5.3)."""
        from repro.symmetrize.pruning import (
            choose_threshold_for_degree,
            prune_graph,
            singleton_fraction,
        )

        dd_full = repro.get_symmetrization("degree_discounted").apply(
            wiki_small.graph
        )
        bib_full = repro.get_symmetrization("bibliometric").apply(
            wiki_small.graph
        )
        thr = choose_threshold_for_degree(dd_full, 20.0)
        dd = prune_graph(dd_full, thr)
        lo, hi = 0.0, float(bib_full.adjacency.max())
        for _ in range(30):
            mid = (lo + hi) / 2
            if prune_graph(bib_full, mid).n_edges > dd.n_edges:
                lo = mid
            else:
                hi = mid
        bib = prune_graph(bib_full, hi)
        assert singleton_fraction(bib) > singleton_fraction(dd)

    def test_dd_degree_distribution_hubless(self, wiki_small):
        """Figure 4: degree-discounting eliminates hub nodes —
        its max degree is far below the bibliometric graph's."""
        from repro.symmetrize.pruning import (
            choose_threshold_for_degree,
            prune_graph,
        )

        dd_full = repro.get_symmetrization("degree_discounted").apply(
            wiki_small.graph
        )
        thr = choose_threshold_for_degree(dd_full, 20.0)
        dd = prune_graph(dd_full, thr)
        naive = repro.symmetrize(wiki_small.graph, "naive")
        dd_max = dd.degrees(weighted=False).max()
        naive_max = naive.degrees(weighted=False).max()
        assert dd_max < naive_max

    def test_top_edges_differ_between_methods(self, wiki_small):
        """Table 5: Bibliometric's heaviest pairs involve hub nodes;
        degree-discounted's do not."""
        from repro.linalg.sparse_utils import top_k_entries

        indeg = wiki_small.graph.in_degrees()
        hub_cutoff = np.quantile(indeg, 0.999)
        bib = repro.get_symmetrization("bibliometric").apply(
            wiki_small.graph
        )
        dd = repro.get_symmetrization("degree_discounted").apply(
            wiki_small.graph
        )
        bib_top = top_k_entries(bib.adjacency, 5)
        dd_top = top_k_entries(dd.adjacency, 5)
        bib_hub_touch = sum(
            1
            for i, j, _ in bib_top
            if indeg[i] >= hub_cutoff or indeg[j] >= hub_cutoff
        )
        dd_hub_touch = sum(
            1
            for i, j, _ in dd_top
            if indeg[i] >= hub_cutoff or indeg[j] >= hub_cutoff
        )
        assert bib_hub_touch > dd_hub_touch


class TestAlphaBetaClaim:
    """Table 4's shape: some discounting beats no discounting."""

    def test_half_beats_zero(self, cora_small):
        points = repro.sweep_alpha_beta(
            cora_small.graph,
            configurations=[(0.5, 0.5), (0.0, 0.0)],
            clusterer="metis",
            n_clusters=12,
            ground_truth=cora_small.ground_truth,
            threshold=0.0,
        )
        by_param = {p.parameter: p.average_f for p in points}
        assert by_param[(0.5, 0.5)] > by_param[(0.0, 0.0)] - 3.0
