"""Unit tests for :mod:`repro.linalg.allpairs` (§3.6) and the
``apply_pruned`` fast path of the degree-discounted symmetrization.

The vectorized backend is held to the oracle standard: on every
corpus matrix its sparsity pattern must be *bit-identical* to the
pure-Python reference engine's, with or without the block fan-out.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SymmetrizationError
from repro.graph.generators import power_law_digraph
from repro.linalg.allpairs import BACKENDS, thresholded_gram_matrix
from repro.linalg.sparse_utils import prune_matrix
from repro.symmetrize import DegreeDiscountedSymmetrization

#: (backend, n_jobs) configurations every correctness test runs under.
ENGINES = [
    ("python", None),
    ("vectorized", None),
    ("vectorized", 2),
]


def _dense_reference(rows, threshold):
    full = (rows @ rows.T).tocsr()
    lil = full.tolil()
    lil.setdiag(0.0)
    return prune_matrix(lil.tocsr(), threshold)


def _assert_same_pattern(a, b):
    """Bit-identical CSR sparsity patterns (and matching values)."""
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.allclose(a.data, b.data, rtol=1e-12, atol=1e-14)


class TestThresholdedGram:
    @pytest.mark.parametrize("backend,n_jobs", ENGINES)
    def test_matches_dense_product(self, rng, backend, n_jobs):
        rows = sp.random_array(
            (30, 15), density=0.3, rng=rng, format="csr"
        )
        result = thresholded_gram_matrix(
            rows, 0.2, backend=backend, n_jobs=n_jobs
        )
        expected = _dense_reference(rows, 0.2)
        assert abs(result - expected).max() < 1e-12 if (
            (result - expected).nnz
        ) else True
        assert result.nnz == expected.nnz

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_high_threshold_empty(self, rng, backend):
        rows = sp.random_array(
            (10, 5), density=0.3, rng=rng, format="csr"
        )
        result = thresholded_gram_matrix(rows, 1e6, backend=backend)
        assert result.nnz == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_symmetric_output(self, rng, backend):
        rows = sp.random_array(
            (20, 10), density=0.4, rng=rng, format="csr"
        )
        result = thresholded_gram_matrix(rows, 0.1, backend=backend)
        assert abs(result - result.T).nnz == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_diagonal_excluded_by_default(self, backend):
        rows = sp.csr_array(np.eye(3))
        result = thresholded_gram_matrix(rows, 0.5, backend=backend)
        assert result.diagonal().sum() == 0.0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_include_diagonal(self, backend):
        rows = sp.csr_array(np.array([[2.0, 0.0], [0.0, 1.0]]))
        result = thresholded_gram_matrix(
            rows, 0.5, include_diagonal=True, backend=backend
        )
        assert result[[0], [0]] == 4.0
        assert result[[1], [1]] == 1.0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exact_pair_value(self, backend):
        rows = sp.csr_array(
            np.array([[1.0, 2.0, 0.0], [3.0, 0.0, 1.0]])
        )
        result = thresholded_gram_matrix(rows, 1.0, backend=backend)
        assert result[[0], [1]] == 3.0

    def test_rejects_zero_threshold(self):
        with pytest.raises(SymmetrizationError, match="positive"):
            thresholded_gram_matrix(sp.csr_array((2, 2)), 0.0)

    def test_rejects_negative_values(self):
        with pytest.raises(SymmetrizationError, match="non-negative"):
            thresholded_gram_matrix(
                sp.csr_array(np.array([[-1.0]])), 0.5
            )

    def test_rejects_unknown_backend(self):
        with pytest.raises(SymmetrizationError, match="backend"):
            thresholded_gram_matrix(
                sp.csr_array((2, 2)), 0.5, backend="cuda"
            )

    def test_rejects_bad_block_size(self):
        with pytest.raises(SymmetrizationError, match="block_size"):
            thresholded_gram_matrix(
                sp.csr_array((2, 2)), 0.5, block_size=0
            )

    @pytest.mark.parametrize("backend,n_jobs", ENGINES)
    @pytest.mark.parametrize(
        "empty_rows",
        [
            (),  # no empty rows
            (0, 1),  # leading empties
            (5, 9),  # trailing empty
            (0, 3, 4, 9),  # mixed, including a full empty block
        ],
    )
    def test_empty_row_edge_cases(self, rng, backend, n_jobs, empty_rows):
        dense = rng.random((10, 6)) * (rng.random((10, 6)) < 0.5)
        dense[list(empty_rows), :] = 0.0
        rows = sp.csr_array(dense)
        result = thresholded_gram_matrix(
            rows, 0.3, backend=backend, block_size=3, n_jobs=n_jobs
        )
        _assert_same_pattern(result, _dense_reference(rows, 0.3))

    @pytest.mark.parametrize("backend,n_jobs", ENGINES)
    def test_all_rows_prunable(self, backend, n_jobs):
        # Every row's total possible contribution stays below the
        # threshold, so nothing is ever indexed and the result is
        # empty — the prefix filter's degenerate extreme.
        rows = sp.csr_array(np.full((8, 4), 0.01))
        result = thresholded_gram_matrix(
            rows, 10.0, backend=backend, block_size=2, n_jobs=n_jobs
        )
        assert result.nnz == 0

    def test_all_empty_matrix(self):
        for backend in BACKENDS:
            result = thresholded_gram_matrix(
                sp.csr_array((6, 4)), 0.5, backend=backend
            )
            assert result.shape == (6, 6)
            assert result.nnz == 0

    @pytest.mark.parametrize("block_size", [1, 3, 64, 512])
    def test_block_size_invariance(self, rng, block_size):
        rows = sp.random_array(
            (40, 12), density=0.35, rng=rng, format="csr"
        )
        reference = thresholded_gram_matrix(rows, 0.25, backend="python")
        result = thresholded_gram_matrix(
            rows, 0.25, backend="vectorized", block_size=block_size
        )
        _assert_same_pattern(result, reference)

    def test_n_jobs_merges_exactly(self, rng):
        rows = sp.random_array(
            (60, 20), density=0.3, rng=rng, format="csr"
        )
        serial = thresholded_gram_matrix(
            rows, 0.2, backend="vectorized", block_size=8
        )
        parallel = thresholded_gram_matrix(
            rows, 0.2, backend="vectorized", block_size=8, n_jobs=3
        )
        _assert_same_pattern(serial, parallel)

    @given(st.integers(0, 1_000_000), st.floats(0.05, 2.0))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_dense(self, seed, threshold):
        rng = np.random.default_rng(seed)
        rows = sp.random_array(
            (15, 8), density=0.4, rng=rng, format="csr"
        )
        oracle = thresholded_gram_matrix(
            rows, threshold, backend="python"
        )
        expected = _dense_reference(rows, threshold)
        diff = (oracle - expected).tocsr()
        diff.eliminate_zeros()
        assert abs(diff).max() < 1e-9 if diff.nnz else True
        assert oracle.nnz == expected.nnz
        # The production engine must reproduce the oracle's sparsity
        # pattern bit for bit, serial and fanned out.
        for n_jobs in (None, 2):
            vectorized = thresholded_gram_matrix(
                rows,
                threshold,
                backend="vectorized",
                block_size=4,
                n_jobs=n_jobs,
            )
            _assert_same_pattern(vectorized, oracle)

    @given(st.integers(0, 1_000_000))
    @settings(max_examples=15, deadline=None)
    def test_property_diagonal_parity(self, seed):
        rng = np.random.default_rng(seed)
        rows = sp.random_array(
            (12, 6), density=0.5, rng=rng, format="csr"
        )
        oracle = thresholded_gram_matrix(
            rows, 0.3, include_diagonal=True, backend="python"
        )
        vectorized = thresholded_gram_matrix(
            rows,
            0.3,
            include_diagonal=True,
            backend="vectorized",
            block_size=5,
        )
        _assert_same_pattern(vectorized, oracle)


class TestCandidateBudget:
    """The per-span candidate cap must not change any output byte."""

    @staticmethod
    def _hub_matrix(rng):
        # A few dense "hub" columns shared by most rows make the
        # candidate count per block explode, forcing span splits.
        base = sp.random_array(
            (300, 40), density=0.05, rng=rng, format="csr"
        )
        hubs = sp.random_array(
            (300, 3), density=0.9, rng=rng, format="csr"
        )
        rows = sp.hstack([base, hubs]).tocsr()
        rows.sum_duplicates()
        rows.sort_indices()
        rows.data = np.abs(rows.data) + 0.01
        return rows

    @pytest.mark.parametrize("n_jobs", [None, 3])
    def test_tiny_cap_is_byte_identical(self, rng, monkeypatch, n_jobs):
        import repro.linalg.allpairs as allpairs

        rows = self._hub_matrix(rng)
        reference = thresholded_gram_matrix(
            rows, 0.2, backend="vectorized", block_size=64
        )
        monkeypatch.setattr(allpairs, "_MAX_BLOCK_CANDIDATES", 64)
        capped = thresholded_gram_matrix(
            rows, 0.2, backend="vectorized", block_size=64, n_jobs=n_jobs
        )
        assert capped.indptr.tobytes() == reference.indptr.tobytes()
        assert capped.indices.tobytes() == reference.indices.tobytes()
        assert capped.data.tobytes() == reference.data.tobytes()

    def test_row_spans_respect_budget_and_progress(self, rng):
        from repro.linalg.allpairs import (
            _row_spans,
            _suffix_column_counts,
        )

        rows = self._hub_matrix(rng)
        colcount = _suffix_column_counts(rows)
        spans = _row_spans(rows, colcount, cap=500)
        # Spans partition [0, n_rows) in order.
        assert spans[0][0] == 0
        assert spans[-1][1] == rows.shape[0]
        for (_, b_prev), (a_next, _) in zip(spans, spans[1:]):
            assert b_prev == a_next
        # Each multi-row span stays under the estimate budget.
        entry_cum = np.concatenate(
            ([0], np.cumsum(colcount[rows.indices], dtype=np.int64))
        )
        row_cum = entry_cum[rows.indptr]
        for a, b in spans:
            if b - a > 1:
                assert row_cum[b] - row_cum[a] <= 500


class TestApplyPruned:
    def test_matches_apply(self, rng):
        g = power_law_digraph(120, rng)
        sym = DegreeDiscountedSymmetrization()
        for threshold in (0.05, 0.15):
            ref = sym.apply(g, threshold=threshold)
            fast = sym.apply_pruned(g, threshold=threshold)
            # Agreement is exact up to float summation order: entries
            # present in both match to ~1 ULP, and the edge sets may
            # differ only by pairs whose value ties the threshold.
            ref_pattern = ref.adjacency.astype(bool)
            fast_pattern = fast.adjacency.astype(bool)
            shared = ref_pattern.multiply(fast_pattern)
            diff = abs(
                ref.adjacency.multiply(shared)
                - fast.adjacency.multiply(shared)
            ).tocsr()
            assert (diff.max() if diff.nnz else 0.0) < 1e-12
            disagreement = (ref_pattern != fast_pattern).tocoo()
            for i, j in zip(disagreement.row, disagreement.col):
                value = max(
                    ref.edge_weight(int(i), int(j)),
                    fast.edge_weight(int(i), int(j)),
                )
                assert abs(value - threshold) < 1e-9 * max(
                    threshold, 1.0
                ), (i, j, value)

    @pytest.mark.parametrize("backend,n_jobs", ENGINES)
    def test_backends_agree(self, rng, backend, n_jobs):
        g = power_law_digraph(100, rng)
        sym = DegreeDiscountedSymmetrization()
        reference = sym.apply_pruned(g, 0.1, backend="python")
        other = sym.apply_pruned(
            g, 0.1, backend=backend, n_jobs=n_jobs
        )
        diff = abs(reference.adjacency - other.adjacency).tocsr()
        assert (diff.max() if diff.nnz else 0.0) < 1e-12

    def test_coupling_only_variant(self, rng):
        g = power_law_digraph(80, rng)
        sym = DegreeDiscountedSymmetrization(include_cocitation=False)
        ref = sym.apply(g, threshold=0.1)
        fast = sym.apply_pruned(g, threshold=0.1)
        diff = abs(ref.adjacency - fast.adjacency).tocsr()
        assert (diff.max() if diff.nnz else 0.0) < 1e-12

    def test_pruning_factors_square(self, rng):
        # Y Yᵀ + Z Zᵀ must reproduce the full similarity matrix.
        g = power_law_digraph(60, rng)
        sym = DegreeDiscountedSymmetrization()
        factors = sym.pruning_factors(g)
        assert len(factors) == 2
        total = sum((Y @ Y.T).toarray() for Y in factors)
        expected = sym.compute_matrix(g).toarray()
        assert np.allclose(total, expected, atol=1e-12)

    def test_rejects_zero_threshold(self, triangle_digraph):
        with pytest.raises(SymmetrizationError, match="positive"):
            DegreeDiscountedSymmetrization().apply_pruned(
                triangle_digraph, 0.0
            )

    def test_rejects_log_discount(self, triangle_digraph):
        with pytest.raises(SymmetrizationError, match="numeric"):
            DegreeDiscountedSymmetrization(alpha="log").apply_pruned(
                triangle_digraph, 0.1
            )

    def test_preserves_node_names(self):
        from repro.graph import DirectedGraph

        g = DirectedGraph.from_edges(
            [(0, 2), (1, 2)], n_nodes=3, node_names=["a", "b", "c"]
        )
        out = DegreeDiscountedSymmetrization().apply_pruned(g, 0.1)
        assert out.node_names == ["a", "b", "c"]

    def test_no_self_loops(self, rng):
        g = power_law_digraph(60, rng)
        out = DegreeDiscountedSymmetrization().apply_pruned(g, 0.05)
        assert out.adjacency.diagonal().sum() == 0.0


class TestShardDescriptors:
    """The process fan-out must hand workers shard *descriptors*
    (store paths plus a chunk index), never pickled matrices."""

    class _CapturingPool:
        """Duck-typed WorkerPool that records each payload's pickled
        size and runs the worker function in-process."""

        def __init__(self):
            self.payload_bytes = []

        def run(self, fn, payloads, fallback=None):
            import pickle

            results = []
            for payload in payloads:
                self.payload_bytes.append(len(pickle.dumps(payload)))
                results.append(fn(payload))
            return results

        def close(self):
            pass

    def test_worker_payloads_under_1kb(self, rng):
        from repro.engine.pool import worker_pool

        g = power_law_digraph(400, rng)
        factor = DegreeDiscountedSymmetrization().pruning_factors(g)[0]
        serial = thresholded_gram_matrix(
            factor, 0.2, block_size=32, n_jobs=None
        )
        pool = self._CapturingPool()
        with worker_pool(4, pool=pool):
            sharded = thresholded_gram_matrix(
                factor, 0.2, block_size=32, n_jobs=4
            )
        assert pool.payload_bytes, "fan-out never reached the pool"
        assert max(pool.payload_bytes) < 1024
        _assert_same_pattern(serial, sharded)
