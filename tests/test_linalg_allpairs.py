"""Unit tests for :mod:`repro.linalg.allpairs` (§3.6) and the
``apply_pruned`` fast path of the degree-discounted symmetrization."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SymmetrizationError
from repro.graph.generators import power_law_digraph
from repro.linalg.allpairs import thresholded_gram_matrix
from repro.linalg.sparse_utils import prune_matrix
from repro.symmetrize import DegreeDiscountedSymmetrization


def _dense_reference(rows, threshold):
    full = (rows @ rows.T).tocsr()
    lil = full.tolil()
    lil.setdiag(0.0)
    return prune_matrix(lil.tocsr(), threshold)


class TestThresholdedGram:
    def test_matches_dense_product(self, rng):
        rows = sp.random_array(
            (30, 15), density=0.3, rng=rng, format="csr"
        )
        result = thresholded_gram_matrix(rows, 0.2)
        expected = _dense_reference(rows, 0.2)
        assert abs(result - expected).max() < 1e-12 if (
            (result - expected).nnz
        ) else True
        assert result.nnz == expected.nnz

    def test_high_threshold_empty(self, rng):
        rows = sp.random_array(
            (10, 5), density=0.3, rng=rng, format="csr"
        )
        result = thresholded_gram_matrix(rows, 1e6)
        assert result.nnz == 0

    def test_symmetric_output(self, rng):
        rows = sp.random_array(
            (20, 10), density=0.4, rng=rng, format="csr"
        )
        result = thresholded_gram_matrix(rows, 0.1)
        assert abs(result - result.T).nnz == 0

    def test_diagonal_excluded_by_default(self):
        rows = sp.csr_array(np.eye(3))
        result = thresholded_gram_matrix(rows, 0.5)
        assert result.diagonal().sum() == 0.0

    def test_include_diagonal(self):
        rows = sp.csr_array(np.array([[2.0, 0.0], [0.0, 1.0]]))
        result = thresholded_gram_matrix(
            rows, 0.5, include_diagonal=True
        )
        assert result[[0], [0]] == 4.0
        assert result[[1], [1]] == 1.0

    def test_exact_pair_value(self):
        rows = sp.csr_array(
            np.array([[1.0, 2.0, 0.0], [3.0, 0.0, 1.0]])
        )
        result = thresholded_gram_matrix(rows, 1.0)
        assert result[[0], [1]] == 3.0

    def test_rejects_zero_threshold(self):
        with pytest.raises(SymmetrizationError, match="positive"):
            thresholded_gram_matrix(sp.csr_array((2, 2)), 0.0)

    def test_rejects_negative_values(self):
        with pytest.raises(SymmetrizationError, match="non-negative"):
            thresholded_gram_matrix(
                sp.csr_array(np.array([[-1.0]])), 0.5
            )

    @given(st.integers(0, 1_000_000), st.floats(0.05, 2.0))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_dense(self, seed, threshold):
        rng = np.random.default_rng(seed)
        rows = sp.random_array(
            (15, 8), density=0.4, rng=rng, format="csr"
        )
        result = thresholded_gram_matrix(rows, threshold)
        expected = _dense_reference(rows, threshold)
        diff = (result - expected).tocsr()
        diff.eliminate_zeros()
        assert abs(diff).max() < 1e-9 if diff.nnz else True
        assert result.nnz == expected.nnz


class TestApplyPruned:
    def test_matches_apply(self, rng):
        g = power_law_digraph(120, rng)
        sym = DegreeDiscountedSymmetrization()
        for threshold in (0.05, 0.15):
            ref = sym.apply(g, threshold=threshold)
            fast = sym.apply_pruned(g, threshold=threshold)
            # Agreement is exact up to float summation order: entries
            # present in both match to ~1 ULP, and the edge sets may
            # differ only by pairs whose value ties the threshold.
            ref_pattern = ref.adjacency.astype(bool)
            fast_pattern = fast.adjacency.astype(bool)
            shared = ref_pattern.multiply(fast_pattern)
            diff = abs(
                ref.adjacency.multiply(shared)
                - fast.adjacency.multiply(shared)
            ).tocsr()
            assert (diff.max() if diff.nnz else 0.0) < 1e-12
            disagreement = (ref_pattern != fast_pattern).tocoo()
            for i, j in zip(disagreement.row, disagreement.col):
                value = max(
                    ref.edge_weight(int(i), int(j)),
                    fast.edge_weight(int(i), int(j)),
                )
                assert abs(value - threshold) < 1e-9 * max(
                    threshold, 1.0
                ), (i, j, value)

    def test_coupling_only_variant(self, rng):
        g = power_law_digraph(80, rng)
        sym = DegreeDiscountedSymmetrization(include_cocitation=False)
        ref = sym.apply(g, threshold=0.1)
        fast = sym.apply_pruned(g, threshold=0.1)
        diff = abs(ref.adjacency - fast.adjacency).tocsr()
        assert (diff.max() if diff.nnz else 0.0) < 1e-12

    def test_rejects_zero_threshold(self, triangle_digraph):
        with pytest.raises(SymmetrizationError, match="positive"):
            DegreeDiscountedSymmetrization().apply_pruned(
                triangle_digraph, 0.0
            )

    def test_rejects_log_discount(self, triangle_digraph):
        with pytest.raises(SymmetrizationError, match="numeric"):
            DegreeDiscountedSymmetrization(alpha="log").apply_pruned(
                triangle_digraph, 0.1
            )

    def test_preserves_node_names(self):
        from repro.graph import DirectedGraph

        g = DirectedGraph.from_edges(
            [(0, 2), (1, 2)], n_nodes=3, node_names=["a", "b", "c"]
        )
        out = DegreeDiscountedSymmetrization().apply_pruned(g, 0.1)
        assert out.node_names == ["a", "b", "c"]
