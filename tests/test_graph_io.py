"""Unit tests for :mod:`repro.graph.io`."""

import warnings

import pytest

from repro.exceptions import GraphFormatError, ValidationWarning
from repro.graph import DirectedGraph, UndirectedGraph
from repro.graph.io import (
    read_edge_list,
    read_json_graph,
    read_metis,
    write_edge_list,
    write_json_graph,
    write_metis,
)


class TestEdgeList:
    def test_roundtrip_directed(self, tmp_path, triangle_digraph):
        path = tmp_path / "g.txt"
        write_edge_list(triangle_digraph, path)
        g = read_edge_list(path)
        assert g == triangle_digraph

    def test_roundtrip_weighted(self, tmp_path):
        g = DirectedGraph.from_edges([(0, 1, 2.5), (1, 0, 0.5)], n_nodes=2)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_read_undirected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        g = read_edge_list(path, directed=False)
        assert isinstance(g, UndirectedGraph)
        assert g.has_edge(1, 0)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n")
        g = read_edge_list(path)
        assert g.n_edges == 1

    def test_write_without_weights(self, tmp_path):
        g = DirectedGraph.from_edges([(0, 1, 2.5)], n_nodes=2)
        path = tmp_path / "g.txt"
        write_edge_list(g, path, write_weights=False)
        g2 = read_edge_list(path)
        assert g2.edge_weight(0, 1) == 1.0

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError, match="fields"):
            read_edge_list(path)

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_empty_file_without_n_nodes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        with pytest.raises(GraphFormatError, match="no edges"):
            read_edge_list(path)

    def test_empty_file_with_n_nodes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("")
        g = read_edge_list(path, n_nodes=3)
        assert g.n_nodes == 3
        assert g.n_edges == 0

    def test_negative_node_id_names_file_and_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n-2 3\n")
        with pytest.raises(GraphFormatError, match="negative node id") as e:
            read_edge_list(path)
        assert f"{path}:2" in str(e.value)

    def test_nan_weight_rejected(self, tmp_path):
        # float("nan") parses fine, so the reader must check explicitly.
        path = tmp_path / "g.txt"
        path.write_text("0 1 nan\n")
        with pytest.raises(GraphFormatError, match="non-finite") as e:
            read_edge_list(path)
        assert f"{path}:1" in str(e.value)

    def test_inf_weight_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 1.5\n1 2 inf\n")
        with pytest.raises(GraphFormatError, match="non-finite") as e:
            read_edge_list(path)
        assert f"{path}:2" in str(e.value)

    def test_duplicate_edges_warn_once(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n0 1\n1 2\n1 2\n")
        with pytest.warns(ValidationWarning, match="duplicate") as caught:
            g = read_edge_list(path)
        dupes = [
            w for w in caught if isinstance(w.message, ValidationWarning)
        ]
        assert len(dupes) == 1
        assert dupes[0].message.code == "duplicate_edges"
        assert g.n_edges == 2  # weights summed, structure deduplicated

    def test_clean_file_stays_silent(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error", ValidationWarning)
            read_edge_list(path)


class TestMetis:
    def test_roundtrip(self, tmp_path, small_weighted_ugraph):
        path = tmp_path / "g.metis"
        write_metis(small_weighted_ugraph, path)
        g = read_metis(path)
        assert g.n_nodes == small_weighted_ugraph.n_nodes
        assert g.n_edges == small_weighted_ugraph.n_edges

    def test_read_unweighted_variant(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("3 2 0\n2\n1 3\n2\n")
        g = read_metis(path)
        assert g.n_edges == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("% a comment\n2 1 0\n2\n1\n")
        g = read_metis(path)
        assert g.n_edges == 1

    def test_self_loops_dropped_on_write(self, tmp_path):
        g = UndirectedGraph.from_edges([(0, 0), (0, 1)], n_nodes=2)
        path = tmp_path / "g.metis"
        write_metis(g, path)
        g2 = read_metis(path)
        assert g2.n_edges == 1

    def test_small_weights_round_up_to_one(self, tmp_path):
        g = UndirectedGraph.from_edges([(0, 1, 0.001)], n_nodes=2)
        path = tmp_path / "g.metis"
        write_metis(g, path)
        g2 = read_metis(path)
        assert g2.edge_weight(0, 1) == 1.0

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("")
        with pytest.raises(GraphFormatError, match="empty"):
            read_metis(path)

    def test_header_node_mismatch(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("3 1 0\n2\n1\n")  # says 3 nodes, has 2 lines
        with pytest.raises(GraphFormatError, match="nodes"):
            read_metis(path)

    def test_header_edge_mismatch(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 5 0\n2\n1\n")
        with pytest.raises(GraphFormatError, match="edges"):
            read_metis(path)

    def test_neighbor_out_of_range(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1 0\n9\n1\n")
        with pytest.raises(GraphFormatError, match="range"):
            read_metis(path)

    def test_odd_fields_with_weights(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1 001\n2 1 7\n1 1\n")
        with pytest.raises(GraphFormatError, match="odd"):
            read_metis(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("42\n")
        with pytest.raises(GraphFormatError, match="header"):
            read_metis(path)


class TestJson:
    def test_roundtrip_directed_with_names(self, tmp_path):
        g = DirectedGraph.from_edges(
            [(0, 1, 2.0)], n_nodes=2, node_names=["a", "b"]
        )
        path = tmp_path / "g.json"
        write_json_graph(g, path)
        g2 = read_json_graph(path)
        assert isinstance(g2, DirectedGraph)
        assert g2 == g
        assert g2.node_names == ["a", "b"]

    def test_roundtrip_undirected(self, tmp_path, small_weighted_ugraph):
        path = tmp_path / "g.json"
        write_json_graph(small_weighted_ugraph, path)
        g2 = read_json_graph(path)
        assert isinstance(g2, UndirectedGraph)
        assert g2 == small_weighted_ugraph

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text('{"directed": true}')
        with pytest.raises(GraphFormatError, match="malformed"):
            read_json_graph(path)
