"""Unit tests for :mod:`repro.graph.io`."""

import warnings

import pytest

from repro.exceptions import GraphFormatError, ValidationWarning
from repro.graph import DirectedGraph, UndirectedGraph
from repro.graph.io import (
    read_edge_list,
    read_json_graph,
    read_metis,
    write_edge_list,
    write_json_graph,
    write_metis,
)


class TestEdgeList:
    def test_roundtrip_directed(self, tmp_path, triangle_digraph):
        path = tmp_path / "g.txt"
        write_edge_list(triangle_digraph, path)
        g = read_edge_list(path)
        assert g == triangle_digraph

    def test_roundtrip_weighted(self, tmp_path):
        g = DirectedGraph.from_edges([(0, 1, 2.5), (1, 0, 0.5)], n_nodes=2)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_read_undirected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        g = read_edge_list(path, directed=False)
        assert isinstance(g, UndirectedGraph)
        assert g.has_edge(1, 0)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n")
        g = read_edge_list(path)
        assert g.n_edges == 1

    def test_write_without_weights(self, tmp_path):
        g = DirectedGraph.from_edges([(0, 1, 2.5)], n_nodes=2)
        path = tmp_path / "g.txt"
        write_edge_list(g, path, write_weights=False)
        g2 = read_edge_list(path)
        assert g2.edge_weight(0, 1) == 1.0

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError, match="fields"):
            read_edge_list(path)

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_empty_file_without_n_nodes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        with pytest.raises(GraphFormatError, match="no edges"):
            read_edge_list(path)

    def test_empty_file_with_n_nodes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("")
        g = read_edge_list(path, n_nodes=3)
        assert g.n_nodes == 3
        assert g.n_edges == 0

    def test_negative_node_id_names_file_and_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n-2 3\n")
        with pytest.raises(GraphFormatError, match="negative node id") as e:
            read_edge_list(path)
        assert f"{path}:2" in str(e.value)

    def test_nan_weight_rejected(self, tmp_path):
        # float("nan") parses fine, so the reader must check explicitly.
        path = tmp_path / "g.txt"
        path.write_text("0 1 nan\n")
        with pytest.raises(GraphFormatError, match="non-finite") as e:
            read_edge_list(path)
        assert f"{path}:1" in str(e.value)

    def test_inf_weight_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 1.5\n1 2 inf\n")
        with pytest.raises(GraphFormatError, match="non-finite") as e:
            read_edge_list(path)
        assert f"{path}:2" in str(e.value)

    def test_duplicate_edges_warn_once(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n0 1\n1 2\n1 2\n")
        with pytest.warns(ValidationWarning, match="duplicate") as caught:
            g = read_edge_list(path)
        dupes = [
            w for w in caught if isinstance(w.message, ValidationWarning)
        ]
        assert len(dupes) == 1
        assert dupes[0].message.code == "duplicate_edges"
        assert g.n_edges == 2  # weights summed, structure deduplicated

    def test_clean_file_stays_silent(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error", ValidationWarning)
            read_edge_list(path)


class TestMetis:
    def test_roundtrip(self, tmp_path, small_weighted_ugraph):
        path = tmp_path / "g.metis"
        write_metis(small_weighted_ugraph, path)
        g = read_metis(path)
        assert g.n_nodes == small_weighted_ugraph.n_nodes
        assert g.n_edges == small_weighted_ugraph.n_edges

    def test_read_unweighted_variant(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("3 2 0\n2\n1 3\n2\n")
        g = read_metis(path)
        assert g.n_edges == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("% a comment\n2 1 0\n2\n1\n")
        g = read_metis(path)
        assert g.n_edges == 1

    def test_self_loops_dropped_on_write(self, tmp_path):
        g = UndirectedGraph.from_edges([(0, 0), (0, 1)], n_nodes=2)
        path = tmp_path / "g.metis"
        write_metis(g, path)
        g2 = read_metis(path)
        assert g2.n_edges == 1

    def test_small_weights_round_up_to_one(self, tmp_path):
        g = UndirectedGraph.from_edges([(0, 1, 0.001)], n_nodes=2)
        path = tmp_path / "g.metis"
        write_metis(g, path)
        g2 = read_metis(path)
        assert g2.edge_weight(0, 1) == 1.0

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("")
        with pytest.raises(GraphFormatError, match="empty"):
            read_metis(path)

    def test_header_node_mismatch(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("3 1 0\n2\n1\n")  # says 3 nodes, has 2 lines
        with pytest.raises(GraphFormatError, match="nodes"):
            read_metis(path)

    def test_header_edge_mismatch(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 5 0\n2\n1\n")
        with pytest.raises(GraphFormatError, match="edges"):
            read_metis(path)

    def test_neighbor_out_of_range(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1 0\n9\n1\n")
        with pytest.raises(GraphFormatError, match="range"):
            read_metis(path)

    def test_odd_fields_with_weights(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1 001\n2 1 7\n1 1\n")
        with pytest.raises(GraphFormatError, match="odd"):
            read_metis(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("42\n")
        with pytest.raises(GraphFormatError, match="header"):
            read_metis(path)


class TestJson:
    def test_roundtrip_directed_with_names(self, tmp_path):
        g = DirectedGraph.from_edges(
            [(0, 1, 2.0)], n_nodes=2, node_names=["a", "b"]
        )
        path = tmp_path / "g.json"
        write_json_graph(g, path)
        g2 = read_json_graph(path)
        assert isinstance(g2, DirectedGraph)
        assert g2 == g
        assert g2.node_names == ["a", "b"]

    def test_roundtrip_undirected(self, tmp_path, small_weighted_ugraph):
        path = tmp_path / "g.json"
        write_json_graph(small_weighted_ugraph, path)
        g2 = read_json_graph(path)
        assert isinstance(g2, UndirectedGraph)
        assert g2 == small_weighted_ugraph

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text('{"directed": true}')
        with pytest.raises(GraphFormatError, match="malformed"):
            read_json_graph(path)


class TestStreamingEdgeList:
    """The ``streaming=True`` path: same graphs, O(chunk) ingest RSS."""

    @staticmethod
    def _write_edges(path, edges):
        with path.open("w") as f:
            f.write("# streamed\n")
            for src, dst, w in edges:
                f.write(f"{src} {dst} {w:g}\n")

    def test_streaming_matches_in_ram_path(self, tmp_path):
        import numpy as np

        rng = np.random.default_rng(7)
        edges = [
            (int(s), int(d), float(w))
            for s, d, w in zip(
                rng.integers(0, 200, 2000),
                rng.integers(0, 200, 2000),
                rng.random(2000) + 0.5,
            )
        ]
        path = tmp_path / "g.txt"
        self._write_edges(path, edges)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ValidationWarning)
            in_ram = read_edge_list(path, n_nodes=200)
            streamed = read_edge_list(
                path, n_nodes=200, streaming=True, chunk_edges=64
            )
        a = in_ram.adjacency.tocsr()
        b = streamed.adjacency.tocsr()
        assert a.shape == b.shape
        assert (a != b).nnz == 0 or abs(a - b).max() < 1e-12

    def test_streaming_graph_is_store_backed(self, tmp_path):
        path = tmp_path / "g.txt"
        self._write_edges(path, [(0, 1, 1.0), (1, 2, 1.0)])
        graph = read_edge_list(path, streaming=True)
        assert graph.mmap_store is not None
        assert graph.mmap_store.directory == tmp_path / "g.txt.mmcsr"
        assert graph.n_nodes == 3

    def test_streaming_custom_store_dir(self, tmp_path):
        path = tmp_path / "g.txt"
        self._write_edges(path, [(0, 1, 1.0)])
        graph = read_edge_list(
            path, streaming=True, store_dir=tmp_path / "elsewhere"
        )
        assert graph.mmap_store.directory == tmp_path / "elsewhere"

    def test_streaming_duplicate_warning(self, tmp_path):
        path = tmp_path / "dup.txt"
        self._write_edges(path, [(0, 1, 1.0), (0, 1, 2.0), (1, 2, 1.0)])
        with pytest.warns(ValidationWarning, match="duplicate"):
            graph = read_edge_list(path, streaming=True)
        assert graph.edge_weight(0, 1) == 3.0

    def test_streaming_rejects_undirected(self, tmp_path):
        path = tmp_path / "g.txt"
        self._write_edges(path, [(0, 1, 1.0)])
        with pytest.raises(GraphFormatError, match="DirectedGraph"):
            read_edge_list(path, directed=False, streaming=True)

    def test_streaming_rejects_bad_chunk_size(self, tmp_path):
        path = tmp_path / "g.txt"
        self._write_edges(path, [(0, 1, 1.0)])
        with pytest.raises(GraphFormatError, match="chunk_edges"):
            read_edge_list(path, streaming=True, chunk_edges=0)

    def test_streaming_validates_lines_identically(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n2 nope\n")
        with pytest.raises(GraphFormatError, match="bad.txt:2"):
            read_edge_list(path, streaming=True)

    def test_streaming_empty_without_n_nodes(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(GraphFormatError, match="no edges"):
            read_edge_list(path, streaming=True)

    def test_ingest_rss_is_chunk_bound(self, tmp_path):
        """Peak ingest RSS must track the chunk size, not the edge
        count: a file with ~4x the edges may not grow the subprocess
        high-water mark by more than ~1.6x (slack for the interpreter
        baseline and O(n_nodes) bookkeeping)."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        resource = pytest.importorskip("resource")
        del resource
        n_nodes = 30_000
        rss = {}
        for label, n_edges in (("small", 60_000), ("large", 240_000)):
            path = tmp_path / f"{label}.txt"
            import numpy as np

            rng = np.random.default_rng(3)
            with path.open("w") as f:
                for s, d in zip(
                    rng.integers(0, n_nodes, n_edges),
                    rng.integers(0, n_nodes, n_edges),
                ):
                    f.write(f"{s} {d}\n")
            script = (
                "import resource, sys, warnings\n"
                "from repro.graph.io import read_edge_list\n"
                "warnings.simplefilter('ignore')\n"
                f"g = read_edge_list({str(path)!r}, "
                f"n_nodes={n_nodes}, streaming=True, "
                "chunk_edges=8192)\n"
                "print(resource.getrusage("
                "resource.RUSAGE_SELF).ru_maxrss)\n"
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                cwd=Path(__file__).resolve().parents[1],
                env=dict(os.environ, PYTHONPATH="src"),
                capture_output=True,
                text=True,
            )
            assert proc.returncode == 0, proc.stderr
            rss[label] = int(proc.stdout.strip())
        growth = rss["large"] / rss["small"]
        assert growth < 1.6, (
            f"4x edges grew streaming-ingest RSS {growth:.2f}x "
            f"({rss['small']} -> {rss['large']} KB)"
        )
