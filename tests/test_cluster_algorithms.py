"""Behavioural tests for the four clustering algorithms.

Each algorithm must (a) recover planted structure, (b) respect its
cluster-count contract, (c) behave sensibly on degenerate inputs.
"""

import numpy as np
import pytest

from repro.cluster import (
    GraclusClusterer,
    MetisClusterer,
    MLRMCL,
    SpectralClusterer,
)
from repro.exceptions import ClusteringError
from repro.graph import UndirectedGraph
from tests.conftest import planted_two_cluster_ugraph


def _ring_of_cliques(n_cliques=4, clique_size=8, seed=0):
    """Cliques joined in a ring by single light edges."""
    edges = []
    n = n_cliques * clique_size
    for c in range(n_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j, 1.0))
        nxt = ((c + 1) % n_cliques) * clique_size
        edges.append((base, nxt, 0.1))
    return UndirectedGraph.from_edges(edges, n_nodes=n)


def _planted_labels_match(labels, n_cliques, clique_size):
    """Every clique is uniform and cliques are pairwise distinct."""
    for c in range(n_cliques):
        block = labels[c * clique_size: (c + 1) * clique_size]
        if len(set(block.tolist())) != 1:
            return False
    firsts = [labels[c * clique_size] for c in range(n_cliques)]
    return len(set(firsts)) == n_cliques


class TestMetis:
    def test_two_blobs(self, two_blob_ugraph):
        c = MetisClusterer().cluster(two_blob_ugraph, 2)
        assert c.n_clusters == 2
        assert _planted_labels_match(c.labels, 2, 20)

    def test_ring_of_cliques(self):
        g = _ring_of_cliques()
        c = MetisClusterer().cluster(g, 4)
        assert _planted_labels_match(c.labels, 4, 8)

    def test_exact_cluster_count(self):
        g = _ring_of_cliques(6, 6)
        c = MetisClusterer().cluster(g, 6)
        assert c.n_clusters == 6

    def test_balance(self):
        g = _ring_of_cliques(4, 10)
        c = MetisClusterer(imbalance=1.05).cluster(g, 4)
        assert c.sizes.max() <= 1.3 * c.sizes.min()

    def test_k_one(self, two_blob_ugraph):
        c = MetisClusterer().cluster(two_blob_ugraph, 1)
        assert c.n_clusters == 1

    def test_k_equals_n(self):
        g = _ring_of_cliques(2, 3)
        c = MetisClusterer().cluster(g, 6)
        assert c.n_clusters == 6

    def test_odd_k(self):
        g = _ring_of_cliques(6, 6)
        c = MetisClusterer().cluster(g, 3)
        assert c.n_clusters == 3

    def test_disconnected_graph(self):
        g = UndirectedGraph.from_edges(
            [(0, 1), (2, 3)], n_nodes=4
        )
        c = MetisClusterer().cluster(g, 2)
        assert c.n_clusters == 2

    def test_deterministic_given_seed(self, two_blob_ugraph):
        c1 = MetisClusterer(seed=7).cluster(two_blob_ugraph, 2)
        c2 = MetisClusterer(seed=7).cluster(two_blob_ugraph, 2)
        assert c1 == c2

    def test_rejects_bad_imbalance(self):
        with pytest.raises(ClusteringError):
            MetisClusterer(imbalance=0.9)

    def test_requires_n_clusters(self, two_blob_ugraph):
        with pytest.raises(ClusteringError, match="n_clusters"):
            MetisClusterer().cluster(two_blob_ugraph, None)


class TestGraclus:
    def test_two_blobs(self, two_blob_ugraph):
        c = GraclusClusterer().cluster(two_blob_ugraph, 2)
        assert _planted_labels_match(c.labels, 2, 20)

    def test_ring_of_cliques(self):
        g = _ring_of_cliques()
        c = GraclusClusterer().cluster(g, 4)
        assert _planted_labels_match(c.labels, 4, 8)

    def test_improves_ncut_over_random(self):
        from repro.directed.objectives import clustering_ncut

        g = _ring_of_cliques(4, 8)
        c = GraclusClusterer().cluster(g, 4)
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 4, size=g.n_nodes)
        assert clustering_ncut(g, c.labels) < clustering_ncut(
            g, random_labels
        )

    def test_k_one(self, two_blob_ugraph):
        c = GraclusClusterer().cluster(two_blob_ugraph, 1)
        assert c.n_clusters == 1

    def test_handles_isolated_nodes(self):
        g = UndirectedGraph.from_edges([(0, 1), (1, 2)], n_nodes=5)
        c = GraclusClusterer().cluster(g, 2)
        assert c.n_nodes == 5

    def test_rejects_bad_coarsen_factor(self):
        with pytest.raises(ClusteringError):
            GraclusClusterer(coarsen_factor=0)

    def test_requires_n_clusters(self, two_blob_ugraph):
        with pytest.raises(ClusteringError, match="n_clusters"):
            GraclusClusterer().cluster(two_blob_ugraph, None)


class TestSpectral:
    def test_two_blobs(self, two_blob_ugraph):
        c = SpectralClusterer().cluster(two_blob_ugraph, 2)
        assert _planted_labels_match(c.labels, 2, 20)

    def test_ring_of_cliques(self):
        g = _ring_of_cliques()
        c = SpectralClusterer().cluster(g, 4)
        assert _planted_labels_match(c.labels, 4, 8)

    def test_k_one(self, two_blob_ugraph):
        c = SpectralClusterer().cluster(two_blob_ugraph, 1)
        assert c.n_clusters == 1

    def test_sparse_path_used_above_cutoff(self):
        g = planted_two_cluster_ugraph(n_per_side=30)
        c = SpectralClusterer(dense_cutoff=10).cluster(g, 2)
        assert _planted_labels_match(c.labels, 2, 30)


class TestMLRMCL:
    def test_two_blobs_autodetects_k(self, two_blob_ugraph):
        c = MLRMCL(inflation=2.0).cluster(two_blob_ugraph)
        assert c.n_clusters == 2
        assert _planted_labels_match(c.labels, 2, 20)

    def test_ring_of_cliques(self):
        g = _ring_of_cliques()
        c = MLRMCL(inflation=2.0).cluster(g)
        assert c.n_clusters == 4
        assert _planted_labels_match(c.labels, 4, 8)

    def test_higher_inflation_more_clusters(self):
        g = _ring_of_cliques(8, 6)
        low = MLRMCL(inflation=1.3).cluster(g)
        high = MLRMCL(inflation=5.0).cluster(g)
        assert high.n_clusters >= low.n_clusters

    def test_k_target_curtailment(self):
        g = _ring_of_cliques(8, 6)
        c = MLRMCL(inflation=1.5).cluster(g, 8)
        assert 4 <= c.n_clusters <= 16  # indirect control, close-ish

    def test_isolated_nodes_are_singletons(self):
        g = UndirectedGraph.from_edges([(0, 1)], n_nodes=4)
        c = MLRMCL().cluster(g)
        assert c.labels[0] == c.labels[1]
        assert c.labels[2] != c.labels[3]

    def test_multilevel_path_used_on_larger_graph(self):
        g = _ring_of_cliques(10, 12)  # 120 nodes
        c = MLRMCL(inflation=2.0, coarsen_to=30).cluster(g)
        assert c.n_clusters == 10

    def test_rejects_bad_inflation(self):
        with pytest.raises(ClusteringError):
            MLRMCL(inflation=1.0)

    def test_rejects_bad_prune_fraction(self):
        with pytest.raises(ClusteringError):
            MLRMCL(prune_fraction=1.5)

    def test_repr(self):
        assert "2.0" in repr(MLRMCL(inflation=2.0))
