"""Unit tests for :mod:`repro.symmetrize.bipartite` (§6 future work)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import SymmetrizationError
from repro.symmetrize.bipartite import (
    BipartiteDegreeDiscounted,
    bipartite_symmetrize,
)


@pytest.fixture
def block_biadjacency():
    """Two left groups each linking to their own right group."""
    B = np.zeros((6, 4))
    B[:3, :2] = 1.0  # left 0-2 -> right 0-1
    B[3:, 2:] = 1.0  # left 3-5 -> right 2-3
    return B


class TestLeftSimilarity:
    def test_within_group_connected(self, block_biadjacency):
        left = BipartiteDegreeDiscounted().left_similarity(
            block_biadjacency
        )
        assert left.n_nodes == 6
        assert left.has_edge(0, 1)
        assert left.has_edge(3, 4)

    def test_across_groups_disconnected(self, block_biadjacency):
        left = BipartiteDegreeDiscounted().left_similarity(
            block_biadjacency
        )
        assert not left.has_edge(0, 3)

    def test_hand_computed_weight(self):
        # Left 0 and 1 share the single right node 0; all degrees:
        # left out-degree 1, right in-degree 2. Weight =
        # 1/(1^.5 * 1^.5 * 2^.5) ... per Eq. 6 analogue = 1/sqrt(2).
        B = np.array([[1.0], [1.0]])
        left = BipartiteDegreeDiscounted().left_similarity(B)
        assert left.edge_weight(0, 1) == pytest.approx(1 / np.sqrt(2))

    def test_hub_right_node_discounted(self):
        # A right hub linked by everyone adds little similarity.
        specific = np.array([[1.0, 0.0], [1.0, 0.0]])
        hubby = np.ones((6, 1))
        w_specific = BipartiteDegreeDiscounted().left_similarity(
            specific
        ).edge_weight(0, 1)
        w_hub = BipartiteDegreeDiscounted().left_similarity(
            hubby
        ).edge_weight(0, 1)
        assert w_hub < w_specific

    def test_matches_dense_reference(self, rng):
        B = sp.random_array((8, 5), density=0.5, rng=rng, format="csr")
        sym = BipartiteDegreeDiscounted(alpha=0.5, beta=0.5)
        left = sym.left_similarity(B, drop_self_loops=False)
        Bd = B.todense()
        dl = Bd.sum(axis=1)
        dr = Bd.sum(axis=0)
        Dl = np.diag(np.where(dl > 0, 1 / np.sqrt(dl), 0.0))
        Dr = np.diag(np.where(dr > 0, 1 / np.sqrt(dr), 0.0))
        expected = Dl @ Bd @ Dr @ Bd.T @ Dl
        assert np.allclose(left.adjacency.todense(), expected)


class TestRightSimilarity:
    def test_within_group_connected(self, block_biadjacency):
        right = BipartiteDegreeDiscounted().right_similarity(
            block_biadjacency
        )
        assert right.n_nodes == 4
        assert right.has_edge(0, 1)
        assert right.has_edge(2, 3)
        assert not right.has_edge(0, 2)


class TestFacade:
    def test_left_default(self, block_biadjacency):
        u = bipartite_symmetrize(block_biadjacency)
        assert u.n_nodes == 6

    def test_right_side(self, block_biadjacency):
        u = bipartite_symmetrize(block_biadjacency, side="right")
        assert u.n_nodes == 4

    def test_threshold(self, block_biadjacency):
        dense = bipartite_symmetrize(block_biadjacency)
        pruned = bipartite_symmetrize(
            block_biadjacency, threshold=10.0
        )
        assert pruned.n_edges < dense.n_edges

    def test_rejects_bad_side(self, block_biadjacency):
        with pytest.raises(SymmetrizationError):
            bipartite_symmetrize(block_biadjacency, side="top")

    def test_rejects_bad_exponents(self):
        with pytest.raises(SymmetrizationError):
            BipartiteDegreeDiscounted(alpha=-1)

    def test_rejects_negative_weights(self):
        with pytest.raises(SymmetrizationError):
            bipartite_symmetrize(np.array([[-1.0]]))

    def test_rejects_non_2d(self):
        with pytest.raises(SymmetrizationError):
            bipartite_symmetrize(np.zeros(3))

    def test_clusterable_projection(self):
        """End to end: cluster the left projection of a planted
        bipartite graph."""
        import repro

        rng = np.random.default_rng(0)
        B = np.zeros((40, 20))
        B[:20, :10] = (rng.random((20, 10)) < 0.5).astype(float)
        B[20:, 10:] = (rng.random((20, 10)) < 0.5).astype(float)
        left = bipartite_symmetrize(B)
        clustering = repro.MetisClusterer().cluster(left, 2)
        assert len(set(clustering.labels[:20].tolist())) == 1
        assert clustering.labels[0] != clustering.labels[-1]
