"""Tests for the stage-graph execution engine and artifact cache.

Covers the cache-keying contract (canonical config hashing stable
across processes and dict orderings, invalidation on dataset or
stage-config changes), the two cache tiers (memory LRU, disk
round-trip, corrupt-entry tolerance), differential cached-vs-uncached
identity through the pipeline facade and the sweeps, the manifest v1
backward load, and the ``repro cache`` CLI.
"""

from __future__ import annotations

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.engine import (
    ArtifactCache,
    ClusterStage,
    Executor,
    Plan,
    PruneStage,
    SymmetrizeStage,
    ValidateInputStage,
    artifact_cache,
    artifact_key,
    config_hash,
)
from repro.exceptions import PipelineError
from repro.graph.generators import power_law_digraph
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    fingerprint_graph,
)
from repro.obs.metrics import MetricsRegistry, metrics_active
from repro.pipeline.pipeline import SymmetrizeClusterPipeline
from repro.pipeline.sweep import sweep_n_clusters, sweep_threshold


@pytest.fixture
def graph(rng):
    return power_law_digraph(150, rng)


@pytest.fixture
def other_graph():
    return power_law_digraph(150, np.random.default_rng(999))


def _sym_plan(threshold: float = 0.0) -> Plan:
    return Plan(
        [
            ValidateInputStage(),
            SymmetrizeStage("naive", threshold=threshold),
        ],
        initial=("graph",),
        name="test-sym",
    )


# ---------------------------------------------------------------------------
# Canonical config hashing
# ---------------------------------------------------------------------------


class TestConfigHash:
    def test_insertion_order_irrelevant(self):
        a = config_hash({"alpha": 0.5, "beta": 0.25, "m": "dd"})
        b = config_hash({"m": "dd", "beta": 0.25, "alpha": 0.5})
        assert a == b

    def test_numpy_scalars_normalize(self):
        assert config_hash({"t": np.float64(0.5)}) == config_hash(
            {"t": 0.5}
        )
        assert config_hash({"k": np.int64(20)}) == config_hash(
            {"k": 20}
        )

    def test_nested_and_sequences(self):
        a = config_hash({"lineage": [{"x": 1}, {"y": (2, 3)}]})
        b = config_hash({"lineage": [{"x": 1}, {"y": [2, 3]}]})
        assert a == b

    def test_value_change_changes_hash(self):
        assert config_hash({"t": 0.5}) != config_hash({"t": 0.25})

    def test_stable_across_processes(self):
        """The hash must not depend on PYTHONHASHSEED."""
        snippet = (
            "from repro.engine import config_hash;"
            "print(config_hash("
            "{'alpha': 0.5, 'beta': 'log', 'n': 20,"
            " 'nested': {'b': 2, 'a': 1}}))"
        )
        out = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "7"},
        )
        local = config_hash(
            {
                "nested": {"a": 1, "b": 2},
                "n": 20,
                "beta": "log",
                "alpha": 0.5,
            }
        )
        assert out.stdout.strip() == local

    def test_stage_fingerprint_tracks_config(self):
        a = SymmetrizeStage("naive", threshold=0.1)
        b = SymmetrizeStage("naive", threshold=0.1)
        c = SymmetrizeStage("naive", threshold=0.2)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_symmetrization_params_in_fingerprint(self):
        a = SymmetrizeStage(
            __import__(
                "repro.symmetrize.degree_discounted",
                fromlist=["DegreeDiscountedSymmetrization"],
            ).DegreeDiscountedSymmetrization(alpha=0.5, beta=0.5)
        )
        b = SymmetrizeStage(
            __import__(
                "repro.symmetrize.degree_discounted",
                fromlist=["DegreeDiscountedSymmetrization"],
            ).DegreeDiscountedSymmetrization(alpha=0.5, beta=0.75)
        )
        assert a.fingerprint() != b.fingerprint()


# ---------------------------------------------------------------------------
# Artifact keys
# ---------------------------------------------------------------------------


class TestArtifactKey:
    def test_components_all_matter(self):
        base = artifact_key("d" * 64, ["f1", "f2"], mode="strict")
        assert base == artifact_key(
            "d" * 64, ("f1", "f2"), mode="strict"
        )
        assert base != artifact_key("e" * 64, ["f1", "f2"])
        assert base != artifact_key("d" * 64, ["f1"])
        assert base != artifact_key("d" * 64, ["f2", "f1"])
        assert base != artifact_key(
            "d" * 64, ["f1", "f2"], mode="lenient"
        )

    def test_plan_keys_differ_per_stage(self, graph):
        plan = Plan(
            [
                ValidateInputStage(),
                SymmetrizeStage("naive"),
                PruneStage(0.5),
            ],
            initial=("graph",),
        )
        sha = fingerprint_graph(graph)["sha256"]
        keys = {plan.artifact_key(sha, i) for i in range(3)}
        assert len(keys) == 3


# ---------------------------------------------------------------------------
# Cache keying through the executor
# ---------------------------------------------------------------------------


class TestCacheInvalidation:
    def test_same_plan_same_graph_hits(self, graph):
        cache = ArtifactCache()
        for expected in (False, True):
            result = Executor(cache=cache).execute(
                _sym_plan(), {"graph": graph}
            )
            sym = [
                e
                for e in result.executions
                if e.stage == "symmetrize"
            ]
            assert sym[0].cached is expected
        assert cache.hits == 1 and cache.misses == 1

    def test_config_change_misses(self, graph):
        cache = ArtifactCache()
        Executor(cache=cache).execute(_sym_plan(0.0), {"graph": graph})
        result = Executor(cache=cache).execute(
            _sym_plan(0.25), {"graph": graph}
        )
        sym = [
            e for e in result.executions if e.stage == "symmetrize"
        ]
        assert sym[0].cached is False

    def test_dataset_change_misses(self, graph, other_graph):
        cache = ArtifactCache()
        Executor(cache=cache).execute(_sym_plan(), {"graph": graph})
        result = Executor(cache=cache).execute(
            _sym_plan(), {"graph": other_graph}
        )
        sym = [
            e for e in result.executions if e.stage == "symmetrize"
        ]
        assert sym[0].cached is False

    def test_equal_but_distinct_graphs_share(self, rng):
        """Content addressing reuses across equal graph objects."""
        a = power_law_digraph(120, np.random.default_rng(5))
        b = power_law_digraph(120, np.random.default_rng(5))
        assert a is not b
        cache = ArtifactCache()
        Executor(cache=cache).execute(_sym_plan(), {"graph": a})
        result = Executor(cache=cache).execute(
            _sym_plan(), {"graph": b}
        )
        sym = [
            e for e in result.executions if e.stage == "symmetrize"
        ]
        assert sym[0].cached is True

    def test_metrics_metered(self, graph):
        cache = ArtifactCache()
        registry = MetricsRegistry()
        with metrics_active(registry):
            Executor(cache=cache).execute(
                _sym_plan(), {"graph": graph}
            )
            Executor(cache=cache).execute(
                _sym_plan(), {"graph": graph}
            )
        flat = registry.flat()
        assert flat["cache_misses_total"] == 1
        assert flat["cache_hits_total"] == 1
        assert flat["cache_bytes"] > 0


# ---------------------------------------------------------------------------
# Differential identity: cached vs uncached
# ---------------------------------------------------------------------------


def _adjacency_equal(a, b) -> bool:
    x, y = a.adjacency.tocsr(), b.adjacency.tocsr()
    return (
        np.array_equal(x.indptr, y.indptr)
        and np.array_equal(x.indices, y.indices)
        and np.array_equal(x.data, y.data)
    )


class TestDifferentialIdentity:
    def test_pipeline_cached_run_identical(self, graph):
        cache = ArtifactCache()
        pipe = SymmetrizeClusterPipeline(
            "degree_discounted", "mlrmcl", cache=cache
        )
        cold = pipe.run(graph, n_clusters=8)
        warm = pipe.run(graph, n_clusters=8)
        assert cold.cache["misses"] >= 1
        assert warm.cache["hits"] >= 1
        assert _adjacency_equal(cold.symmetrized, warm.symmetrized)
        assert np.array_equal(
            cold.clustering.labels, warm.clustering.labels
        )

    def test_pipeline_matches_uncached(self, graph):
        plain = SymmetrizeClusterPipeline("naive", "mlrmcl").run(
            graph, n_clusters=8
        )
        cached = SymmetrizeClusterPipeline(
            "naive", "mlrmcl", cache=ArtifactCache()
        ).run(graph, n_clusters=8)
        assert plain.cache["enabled"] is False
        assert cached.cache["enabled"] is True
        assert _adjacency_equal(
            plain.symmetrized, cached.symmetrized
        )
        assert np.array_equal(
            plain.clustering.labels, cached.clustering.labels
        )

    def test_warm_sweep_identical(self, graph):
        cache = ArtifactCache()
        kwargs = dict(
            thresholds=[0.1, 0.3],
            clusterer="mlrmcl",
            n_clusters=6,
            cache=cache,
        )
        cold = sweep_threshold(graph, **kwargs)
        warm = sweep_threshold(graph, **kwargs)
        assert cache.hits > 0
        for a, b in zip(cold, warm):
            assert a.n_edges == b.n_edges
            assert a.n_clusters == b.n_clusters
            assert a.average_f == b.average_f
        assert all(p.cache_hit for p in warm)


# ---------------------------------------------------------------------------
# Sweep cache provenance
# ---------------------------------------------------------------------------


class TestSweepProvenance:
    def test_first_point_misses_rest_hit(self, graph):
        points = sweep_n_clusters(
            graph,
            "naive",
            "mlrmcl",
            cluster_counts=[4, 6, 8],
            cache=ArtifactCache(),
        )
        assert [p.cache_hit for p in points] == [False, True, True]
        keys = {p.artifact_key for p in points}
        assert len(keys) == 1 and None not in keys

    def test_fresh_cache_per_sweep_by_default(self, graph):
        first = sweep_n_clusters(
            graph, "naive", "mlrmcl", cluster_counts=[4, 6]
        )
        second = sweep_n_clusters(
            graph, "naive", "mlrmcl", cluster_counts=[4, 6]
        )
        # No ambient cache: each sweep symmetrizes once itself.
        assert first[0].cache_hit is False
        assert second[0].cache_hit is False

    def test_ambient_cache_spans_sweeps(self, graph):
        with artifact_cache():
            first = sweep_n_clusters(
                graph, "naive", "mlrmcl", cluster_counts=[4]
            )
            second = sweep_n_clusters(
                graph, "naive", "mlrmcl", cluster_counts=[4]
            )
        assert first[0].cache_hit is False
        assert second[0].cache_hit is True


# ---------------------------------------------------------------------------
# Cache tiers
# ---------------------------------------------------------------------------


class TestDiskTier:
    def test_round_trip_across_instances(self, graph, tmp_path):
        cache = ArtifactCache(directory=tmp_path / "arts")
        execution = Executor(cache=cache).execute(
            _sym_plan(), {"graph": graph}
        )
        stored = execution.values["symmetrized"]

        fresh = ArtifactCache(directory=tmp_path / "arts")
        result = Executor(cache=fresh).execute(
            _sym_plan(), {"graph": graph}
        )
        sym = [
            e for e in result.executions if e.stage == "symmetrize"
        ]
        assert sym[0].cached is True
        assert _adjacency_equal(
            stored, result.values["symmetrized"]
        )

    def test_meta_records_lineage(self, graph, tmp_path):
        cache = ArtifactCache(directory=tmp_path / "arts")
        Executor(cache=cache).execute(_sym_plan(), {"graph": graph})
        entries = cache.entries()
        assert len(entries) == 1
        record = entries[0]
        assert record["plan"] == "test-sym"
        assert record["mode"] == "strict"
        assert record["dataset_sha"] == fingerprint_graph(graph)[
            "sha256"
        ]
        assert isinstance(record["lineage"], list)

    def test_corrupt_entry_is_a_miss(self, graph, tmp_path):
        cache = ArtifactCache(directory=tmp_path / "arts")
        Executor(cache=cache).execute(_sym_plan(), {"graph": graph})
        [key] = cache.keys_seen
        entry = tmp_path / "arts" / key[:2] / key / "artifact.npz"
        entry.write_bytes(b"not an npz file")

        fresh = ArtifactCache(directory=tmp_path / "arts")
        assert fresh.get(key) is None
        # And the executor recomputes instead of failing.
        result = Executor(cache=fresh).execute(
            _sym_plan(), {"graph": graph}
        )
        sym = [
            e for e in result.executions if e.stage == "symmetrize"
        ]
        assert sym[0].cached is False

    def test_clear(self, graph, tmp_path):
        cache = ArtifactCache(directory=tmp_path / "arts")
        Executor(cache=cache).execute(_sym_plan(), {"graph": graph})
        assert cache.clear() >= 1
        assert cache.entries() == []


class TestMemoryTier:
    def test_lru_eviction_under_byte_cap(self, graph):
        cache = ArtifactCache(max_bytes=1)
        for threshold in (0.0, 0.1, 0.2):
            Executor(cache=cache).execute(
                _sym_plan(threshold), {"graph": graph}
            )
        # The cap admits at most one resident artifact at a time.
        assert len(cache) == 1

    def test_repr_mentions_counters(self):
        assert "hits=0" in repr(ArtifactCache())


# ---------------------------------------------------------------------------
# Executor contract
# ---------------------------------------------------------------------------


class TestExecutorContract:
    def test_unknown_mode_rejected(self):
        with pytest.raises(PipelineError):
            Executor(mode="fuzzy")

    def test_missing_initial_value_rejected(self, graph):
        with pytest.raises(PipelineError, match="initial"):
            Executor().execute(_sym_plan(), {})

    def test_bad_wiring_rejected(self):
        with pytest.raises(PipelineError, match="needs"):
            Plan(
                [ClusterStage("mlrmcl", 5)],
                initial=("graph",),
            )

    def test_no_cache_means_no_provenance(self, graph):
        result = Executor().execute(_sym_plan(), {"graph": graph})
        assert all(e.cached is None for e in result.executions)
        summary = result.cache_summary()
        assert summary == {
            "hits": 0,
            "misses": 0,
            "artifact_keys": [],
        }


# ---------------------------------------------------------------------------
# Manifest schema v2 / v1 backward load
# ---------------------------------------------------------------------------


class TestManifestCacheSection:
    def test_v2_round_trip(self):
        manifest = RunManifest(
            kind="pipeline",
            name="t",
            cache={"enabled": True, "hits": 2, "misses": 1},
        )
        payload = manifest.as_dict()
        assert payload["schema"] == MANIFEST_SCHEMA
        loaded = RunManifest.from_dict(
            json.loads(json.dumps(payload))
        )
        assert loaded.cache["hits"] == 2

    def test_v1_payload_still_loads(self):
        payload = RunManifest(kind="pipeline", name="t").as_dict()
        payload["schema"] = "repro-run-manifest/v1"
        del payload["cache"]
        loaded = RunManifest.from_dict(payload)
        assert loaded.cache == {}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCacheCli:
    def test_stats_and_list_empty(self, tmp_path, capsys):
        directory = str(tmp_path / "arts")
        assert cli_main(["cache", "stats", "--dir", directory]) == 0
        assert "disk entries:   0" in capsys.readouterr().out
        assert cli_main(["cache", "list", "--dir", directory]) == 0
        assert "no cached artifacts" in capsys.readouterr().out

    def test_list_and_clear_after_store(
        self, graph, tmp_path, capsys
    ):
        directory = tmp_path / "arts"
        cache = ArtifactCache(directory=directory)
        Executor(cache=cache).execute(_sym_plan(), {"graph": graph})

        assert cli_main(["cache", "list", "--dir", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "test-sym" in out

        assert (
            cli_main(["cache", "clear", "--dir", str(directory)]) == 0
        )
        assert "removed 1" in capsys.readouterr().out
        assert not directory.exists()
