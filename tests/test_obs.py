"""Tests for the :mod:`repro.obs` observability layer: span trees,
the disabled-mode zero-overhead contract, Chrome trace interchange,
the metrics registry, run manifests (golden-file pinned) and the
``repro runs`` / ``repro trace`` CLI."""

import json
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.cli import main
from repro.exceptions import ReproError
from repro.graph.generators import power_law_digraph
from repro.obs import (
    MANIFEST_SCHEMA,
    MetricsRegistry,
    RunManifest,
    Span,
    Tracer,
    append_manifest,
    collect_environment,
    current_metrics,
    current_tracer,
    diff_manifests,
    fingerprint_graph,
    format_diff,
    metric_inc,
    metric_observe,
    metric_set,
    metrics_active,
    read_manifests,
    span,
    spans_from_chrome_trace,
    to_chrome_trace,
    tracing,
)
from repro.obs.metrics import Histogram
from repro.obs.trace import _NULL_SPAN
from repro.pipeline.pipeline import SymmetrizeClusterPipeline

GOLDEN = Path(__file__).parent / "data" / "manifest_golden.json"


class TestSpanTree:
    def test_nesting_and_ordering(self):
        tracer = Tracer()
        with tracer.start_span("root") as root:
            with tracer.start_span("first"):
                with tracer.start_span("leaf"):
                    pass
            with tracer.start_span("second"):
                pass
        assert [c.name for c in root.children] == ["first", "second"]
        assert root.children[0].children[0].name == "leaf"
        assert tracer.max_depth() == 3
        assert [s.name for s in tracer.walk()] == [
            "root", "first", "leaf", "second",
        ]
        assert tracer.find("leaf") is root.children[0].children[0]
        assert tracer.find("missing") is None

    def test_sibling_starts_are_monotonic(self):
        tracer = Tracer()
        with tracer.start_span("root"):
            with tracer.start_span("a"):
                time.sleep(0.002)
            with tracer.start_span("b"):
                pass
        a, b = tracer.roots[0].children
        assert b.start > a.start
        assert tracer.roots[0].wall_seconds >= a.wall_seconds

    def test_ambient_span_nests_into_tracer(self):
        with tracing() as tracer:
            with span("outer", backend="vectorized"):
                with span("inner") as sp:
                    sp.set(nnz=42)
        assert current_tracer() is None
        outer = tracer.roots[0]
        assert outer.attributes == {"backend": "vectorized"}
        assert outer.children[0].attributes == {"nnz": 42}

    def test_as_dict_from_dict_roundtrip(self):
        tracer = Tracer()
        with tracer.start_span("root") as root:
            root.set(n=3)
            with tracer.start_span("child"):
                pass
        payload = json.loads(json.dumps(tracer.as_dict()))
        rebuilt = [Span.from_dict(s) for s in payload["spans"]]
        assert rebuilt[0].name == "root"
        assert rebuilt[0].attributes == {"n": 3}
        assert rebuilt[0].children[0].name == "child"
        assert payload["max_depth"] == 2

    def test_report_renders_tree(self):
        tracer = Tracer()
        with tracer.start_span("root"):
            with tracer.start_span("child") as sp:
                sp.set(nnz=7)
        text = tracer.report()
        assert "root" in text and "child" in text and "nnz=7" in text
        assert Tracer().report() == "(no spans recorded)"

    def test_memory_mode_records_deltas(self):
        with tracing(memory=True) as tracer:
            with span("alloc"):
                _sink = [0] * 50_000
        node = tracer.roots[0]
        assert node.mem_alloc_bytes is not None
        assert node.mem_alloc_bytes > 100_000
        assert node.rss_peak_delta_kb is not None
        assert not tracemalloc.is_tracing()


class TestDisabledMode:
    def test_span_returns_shared_singleton(self):
        assert current_tracer() is None
        first = span("anything")
        second = span("other")
        assert first is _NULL_SPAN and second is _NULL_SPAN
        with first as sp:
            sp.set(ignored=1)  # must be a silent no-op

    def test_disabled_span_allocates_nothing(self):
        # The hot-path contract: with no tracer installed, entering and
        # exiting spans in a loop must not allocate — the engine calls
        # span() once per gram block.
        names = ["gram_block"] * 2000  # pre-built: loop itself is free
        for name in names[:10]:  # warm up caches outside measurement
            with span(name):
                pass
        tracemalloc.start()
        try:
            base = tracemalloc.get_traced_memory()[0]
            for name in names:
                with span(name):
                    pass
            grown = tracemalloc.get_traced_memory()[0] - base
        finally:
            tracemalloc.stop()
        assert grown <= 256, f"disabled span leaked {grown} bytes"

    def test_metric_calls_are_noops_without_registry(self):
        assert current_metrics() is None
        metric_inc("edges_pruned_total", 5)
        metric_set("singleton_fraction", 0.5)
        metric_observe("block_candidates", 10)  # must not raise


class TestChromeTrace:
    @pytest.fixture()
    def tracer(self):
        tracer = Tracer()
        with tracer.start_span("pipeline") as root:
            root.set(mode="strict")
            with tracer.start_span("symmetrize"):
                with tracer.start_span("gram_block[0]") as sp:
                    sp.set(rows=512)
                with tracer.start_span("gram_block[512]"):
                    pass
            with tracer.start_span("cluster"):
                pass
        return tracer

    def test_event_shape(self, tracer):
        payload = tracer.to_chrome_trace()
        events = payload["traceEvents"]
        assert len(events) == 5
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["pid"] == 1 and event["tid"] == 1
            assert event["dur"] >= 0
            assert "cpu_seconds" in event["args"]
        by_name = {e["name"]: e for e in events}
        assert by_name["gram_block[0]"]["args"]["rows"] == 512
        json.dumps(payload)  # must be valid JSON content

    def test_roundtrip_restores_tree(self, tracer):
        payload = json.loads(json.dumps(tracer.to_chrome_trace()))
        roots = spans_from_chrome_trace(payload)
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "pipeline"
        assert root.attributes == {"mode": "strict"}
        assert [c.name for c in root.children] == [
            "symmetrize", "cluster",
        ]
        assert [c.name for c in root.children[0].children] == [
            "gram_block[0]", "gram_block[512]",
        ]
        assert root.depth() == 3

    def test_empty_trace(self):
        assert to_chrome_trace([]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }
        assert spans_from_chrome_trace({"traceEvents": []}) == []


class TestMetricsRegistry:
    def test_counter_gauge_histogram_kinds(self):
        reg = MetricsRegistry()
        with metrics_active(reg):
            metric_inc("pairs_total", 10)
            metric_inc("pairs_total", 5)
            metric_set("fraction", 0.5)
            metric_set("fraction", 0.25)  # last write wins
            metric_observe("block_sizes", 3)
            metric_observe("block_sizes", 30)
            metric_observe("block_sizes", 0)
        assert reg.counters["pairs_total"] == 15.0
        assert reg.gauges["fraction"] == 0.25
        hist = reg.histograms["block_sizes"]
        assert hist.count == 3
        assert hist.min == 0 and hist.max == 30
        assert hist.buckets == {"1e1": 1, "1e2": 1, "0": 1}
        assert len(reg) == 3
        assert reg.names() == ["block_sizes", "fraction", "pairs_total"]

    def test_flat_and_as_dict(self):
        reg = MetricsRegistry()
        reg.inc("a_total", 2)
        reg.set("b", 0.5)
        reg.observe("c", 4.0)
        flat = reg.flat()
        assert flat == {
            "a_total": 2.0, "b": 0.5, "c_count": 1.0, "c_sum": 4.0,
        }
        snapshot = json.loads(json.dumps(reg.as_dict()))
        assert snapshot["counters"] == {"a_total": 2.0}
        assert snapshot["histograms"]["c"]["mean"] == 4.0

    def test_empty_histogram_serializes(self):
        empty = Histogram()
        assert empty.as_dict()["min"] is None
        assert empty.mean == 0.0

    def test_nested_registries_shadow(self):
        with metrics_active() as outer:
            with metrics_active() as inner:
                metric_inc("x")
            metric_inc("y")
        assert "x" in inner.counters and "x" not in outer.counters
        assert "y" in outer.counters

    def test_report_lists_each_kind(self):
        reg = MetricsRegistry()
        reg.inc("edges_total", 3)
        reg.set("fraction", 0.5)
        reg.observe("sizes", 10)
        text = reg.report()
        assert "counter" in text and "edges_total" in text
        assert "gauge" in text and "histogram" in text
        assert MetricsRegistry().report() == "(no metrics recorded)"


def _synthetic_manifest(**overrides) -> RunManifest:
    """A fully deterministic manifest for golden/diff tests."""
    base = dict(
        kind="pipeline",
        name="degree_discounted.mlrmcl",
        created_unix=1700000000.0,
        config={
            "symmetrization": "degree_discounted",
            "clusterer": "mlrmcl",
            "threshold": 0.05,
            "mode": "strict",
            "n_clusters": None,
        },
        dataset={"n_nodes": 400, "nnz": 2000, "sha256": "ab" * 8},
        environment={
            "python": "3.11.0",
            "numpy": "2.0.0",
            "scipy": "1.14.0",
            "platform": "Linux",
            "machine": "x86_64",
            "git_sha": "0123456789ab",
        },
        seed=0,
        warnings=[
            {
                "stage": "symmetrize",
                "code": "all_dangling",
                "message": "every node is dangling",
            }
        ],
        trace=[
            {
                "name": "pipeline",
                "start": 0.0,
                "wall_seconds": 1.5,
                "cpu_seconds": 1.4,
                "attributes": {"mode": "strict"},
                "children": [
                    {
                        "name": "symmetrize",
                        "start": 0.1,
                        "wall_seconds": 0.5,
                        "cpu_seconds": 0.5,
                        "attributes": {},
                        "children": [],
                    }
                ],
            }
        ],
        metrics={
            "counters": {"edges_pruned_total": 120.0},
            "gauges": {"singleton_fraction": 0.1},
            "histograms": {},
        },
        cache={
            "enabled": True,
            "hits": 1,
            "misses": 1,
            "artifact_keys": ["cd" * 32],
        },
        fault_tolerance={
            "journal": "runs/journal.jsonl",
            "run_id": "ef" * 6,
            "resumed": False,
            "stage_retries": 1,
            "stages_resumed": 0,
        },
        tuning={
            "enabled": True,
            "source": "model",
            "chosen": {
                "backend": "vectorized",
                "block_size": 512,
                "n_jobs": None,
                "storage": "in_core",
                "cache_max_bytes": 67108864,
            },
            "default": {
                "backend": "vectorized",
                "block_size": 512,
                "n_jobs": None,
                "storage": "in_core",
                "cache_max_bytes": None,
            },
            "predicted_seconds": {"vectorized": 0.25, "python": 2.5},
            "predicted_peak_bytes": None,
            "features": {
                "n_nodes": 400,
                "nnz": 2000,
                "threshold": 0.05,
                "degree_skew": 1.0,
            },
        },
        timings={"symmetrize_seconds": 0.5, "cluster_seconds": 1.0},
    )
    base.update(overrides)
    return RunManifest(**base)


class TestRunManifest:
    def test_golden_file_schema_stability(self):
        # The serialized shape is a public contract (CI artifacts and
        # the runs CLI consume it); any change must bump
        # MANIFEST_SCHEMA and regenerate tests/data/manifest_golden.json.
        manifest = _synthetic_manifest()
        golden = json.loads(GOLDEN.read_text())
        assert manifest.as_dict() == golden
        assert golden["schema"] == MANIFEST_SCHEMA

    def test_from_dict_roundtrip(self):
        manifest = _synthetic_manifest()
        rebuilt = RunManifest.from_dict(
            json.loads(json.dumps(manifest.as_dict()))
        )
        assert rebuilt == manifest

    def test_from_dict_rejects_unknown_schema(self):
        payload = _synthetic_manifest().as_dict()
        payload["schema"] = "repro-run-manifest/v999"
        with pytest.raises(ReproError, match="unsupported manifest"):
            RunManifest.from_dict(payload)

    def test_helpers(self):
        manifest = _synthetic_manifest()
        assert manifest.total_seconds() == pytest.approx(1.5)
        assert manifest.flat_metrics() == {
            "edges_pruned_total": 120.0,
            "singleton_fraction": 0.1,
        }
        line = manifest.summary()
        assert "degree_discounted.mlrmcl" in line
        assert "spans=2" in line and "warnings=1" in line

    def test_fingerprint_tracks_content(self, rng):
        g1 = power_law_digraph(60, rng)
        fp1 = fingerprint_graph(g1)
        assert fp1["n_nodes"] == 60
        assert fp1 == fingerprint_graph(g1)
        g2 = power_law_digraph(60, rng)  # fresh draw: different edges
        assert fingerprint_graph(g2)["sha256"] != fp1["sha256"]

    def test_collect_environment_keys(self):
        env = collect_environment()
        assert set(env) >= {"python", "numpy", "scipy", "git_sha"}

    def test_append_and_read_roundtrip(self, tmp_path):
        log = tmp_path / "runs.jsonl"
        append_manifest(_synthetic_manifest(), log)
        append_manifest(_synthetic_manifest(name="other.metis"), log)
        manifests = read_manifests(log)
        assert [m.name for m in manifests] == [
            "degree_discounted.mlrmcl", "other.metis",
        ]

    def test_read_errors(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            read_manifests(tmp_path / "missing.jsonl")
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ReproError, match="malformed"):
            read_manifests(bad)


class TestDiffManifests:
    def test_structured_diff(self):
        a = _synthetic_manifest()
        b = _synthetic_manifest(
            name="bibliometric.mlrmcl",
            config={**a.config, "symmetrization": "bibliometric"},
            metrics={
                "counters": {"edges_pruned_total": 80.0},
                "gauges": {"singleton_fraction": 0.1},
                "histograms": {},
            },
            timings={"symmetrize_seconds": 0.7, "cluster_seconds": 1.0},
            warnings=[],
        )
        diff = diff_manifests(a, b)
        assert diff["config"] == {
            "symmetrization": ["degree_discounted", "bibliometric"]
        }
        assert diff["metrics"]["edges_pruned_total"]["delta"] == -40.0
        assert "singleton_fraction" not in diff["metrics"]  # unchanged
        assert diff["timings"]["symmetrize_seconds"]["delta"] == (
            pytest.approx(0.2)
        )
        assert diff["warnings"] == {
            "added": [], "removed": ["all_dangling"],
        }
        json.dumps(diff)

    def test_format_diff_mentions_changes(self):
        a = _synthetic_manifest()
        b = _synthetic_manifest(
            config={**a.config, "threshold": 0.1},
        )
        text = format_diff(diff_manifests(a, b))
        assert "threshold" in text
        identical = format_diff(diff_manifests(a, _synthetic_manifest()))
        assert "(no differences)" in identical


class TestRunsCli:
    @pytest.fixture()
    def runlog(self, tmp_path):
        log = tmp_path / "runs.jsonl"
        append_manifest(_synthetic_manifest(), log)
        append_manifest(
            _synthetic_manifest(
                name="bibliometric.mlrmcl",
                config={
                    "symmetrization": "bibliometric",
                    "clusterer": "mlrmcl",
                    "threshold": 0.05,
                    "mode": "strict",
                    "n_clusters": None,
                },
            ),
            log,
        )
        return log

    def test_runs_list(self, runlog, capsys):
        assert main(["runs", "list", str(runlog)]) == 0
        out = capsys.readouterr().out
        assert "[0]" in out and "[1]" in out
        assert "degree_discounted.mlrmcl" in out
        assert "bibliometric.mlrmcl" in out

    def test_runs_show(self, runlog, capsys):
        assert main(["runs", "show", str(runlog), "-i", "0"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "degree_discounted.mlrmcl"
        assert payload["schema"] == MANIFEST_SCHEMA
        assert main(
            ["runs", "show", str(runlog), "--no-trace"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"] == []

    def test_runs_diff(self, runlog, capsys):
        assert main(["runs", "diff", str(runlog), "-a", "0", "-b", "1"]) == 0
        out = capsys.readouterr().out
        assert "symmetrization" in out
        assert "'degree_discounted' -> 'bibliometric'" in out

    def test_runs_diff_json(self, runlog, capsys):
        assert main(["runs", "diff", str(runlog), "--json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["config"]["symmetrization"] == [
            "degree_discounted", "bibliometric",
        ]

    def test_runs_index_out_of_range(self, runlog, capsys):
        assert main(["runs", "show", str(runlog), "-i", "7"]) == 1
        assert "out of range" in capsys.readouterr().err

    def test_trace_export(self, runlog, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(
            ["trace", str(runlog), "-i", "0", "-o", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert names == {"pipeline", "symmetrize"}

    def test_trace_requires_spans(self, runlog, tmp_path, capsys):
        log = tmp_path / "untraced.jsonl"
        append_manifest(_synthetic_manifest(trace=[]), log)
        assert main(["trace", str(log)]) == 1
        assert "no span tree" in capsys.readouterr().err


class TestPipelineTraced:
    """The ISSUE's acceptance scenario: a traced pipeline run on a
    synthetic power-law graph."""

    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        import numpy as np

        log = tmp_path_factory.mktemp("obs") / "runs.jsonl"
        rng = np.random.default_rng(7)
        graph = power_law_digraph(300, rng)
        pipe = SymmetrizeClusterPipeline(
            "degree_discounted", "mlrmcl", threshold=0.05
        )
        first = pipe.run(graph, trace=True, manifest_path=log)
        second = pipe.run(graph, trace=True, manifest_path=log)
        return graph, log, first, second

    def test_span_tree_depth(self, traced):
        _graph, _log, result, _second = traced
        assert result.trace is not None
        assert result.trace["max_depth"] >= 3
        root = Span.from_dict(result.trace["spans"][0])
        assert root.name == "pipeline"
        stages = [c.name for c in root.children]
        assert "symmetrize" in stages and "cluster" in stages
        sym = root.find("symmetrize:degree_discounted")
        assert sym is not None
        assert [c.name for c in sym.children] == [
            "compute_matrix", "prune",
        ]

    def test_metrics_count(self, traced):
        _graph, _log, result, _second = traced
        metrics = result.metrics
        n = (
            len(metrics["counters"])
            + len(metrics["gauges"])
            + len(metrics["histograms"])
        )
        assert n >= 8, sorted(
            list(metrics["counters"])
            + list(metrics["gauges"])
            + list(metrics["histograms"])
        )
        assert metrics["counters"]["mcl_iterations"] >= 1
        assert 0 <= metrics["gauges"]["mcl_prune_fraction"] <= 1
        assert "singleton_fraction" in metrics["gauges"]

    def test_chrome_export_is_valid(self, traced):
        _graph, _log, result, _second = traced
        spans = [Span.from_dict(s) for s in result.trace["spans"]]
        payload = json.loads(json.dumps(to_chrome_trace(spans)))
        assert payload["traceEvents"]
        roots = spans_from_chrome_trace(payload)
        assert roots[0].name == "pipeline"
        assert roots[0].depth() == result.trace["max_depth"]

    def test_manifests_written_and_diffable(self, traced):
        graph, log, first, _second = traced
        manifests = read_manifests(log)
        assert len(manifests) == 2
        assert manifests[0].dataset == fingerprint_graph(graph)
        assert first.manifest is not None
        diff = diff_manifests(manifests[0], manifests[1])
        assert diff["config"] == {}  # identical configuration
        assert diff["dataset"] == {}  # identical input
        assert "symmetrize_seconds" in diff["timings"]

    def test_untraced_run_carries_no_snapshots(self, traced):
        graph, _log, _first, _second = traced
        pipe = SymmetrizeClusterPipeline("naive", "mlrmcl")
        result = pipe.run(graph)
        assert result.trace is None
        assert result.metrics is None
        assert result.manifest is None
