"""Unit tests for :mod:`repro.cluster.common`."""

import numpy as np
import pytest

from repro.cluster import (
    GraclusClusterer,
    MetisClusterer,
    MLRMCL,
    SpectralClusterer,
    available_clusterers,
    get_clusterer,
)
from repro.cluster.common import Clustering, GraphClusterer
from repro.exceptions import ClusteringError
from repro.graph import UndirectedGraph


class TestClustering:
    def test_labels_compacted(self):
        c = Clustering([5, 5, 9, 2])
        assert c.labels.tolist() == [0, 0, 1, 2]
        assert c.n_clusters == 3

    def test_first_appearance_order(self):
        c = Clustering([7, 3, 7, 1])
        assert c.labels.tolist() == [0, 1, 0, 2]

    def test_sizes(self):
        c = Clustering([0, 0, 1])
        assert c.sizes.tolist() == [2, 1]

    def test_members(self):
        c = Clustering([0, 1, 0])
        assert c.members(0).tolist() == [0, 2]

    def test_members_out_of_range(self):
        with pytest.raises(ClusteringError):
            Clustering([0]).members(5)

    def test_clusters_partition(self):
        c = Clustering([1, 0, 1, 2])
        parts = c.clusters()
        assert [sorted(p.tolist()) for p in parts] == [[0, 2], [1], [3]]

    def test_singletons(self):
        c = Clustering([0, 0, 1, 2])
        assert c.singleton_count() == 2
        assert c.singleton_fraction() == 0.5

    def test_indicator_matrix(self):
        c = Clustering([0, 1, 0])
        H = c.indicator_matrix()
        assert H.shape == (3, 2)
        assert np.asarray(H.sum(axis=0)).tolist() == [2, 1]

    def test_rejects_negative_labels(self):
        with pytest.raises(ClusteringError):
            Clustering([-1, 0])

    def test_rejects_2d(self):
        with pytest.raises(ClusteringError):
            Clustering(np.zeros((2, 2), dtype=int))

    def test_labels_read_only(self):
        c = Clustering([0, 1])
        with pytest.raises(ValueError):
            c.labels[0] = 5

    def test_equality(self):
        assert Clustering([0, 1]) == Clustering([5, 9])
        assert Clustering([0, 1]) != Clustering([0, 0])

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Clustering([0]))

    def test_repr(self):
        assert "n_clusters=2" in repr(Clustering([0, 1, 0]))

    def test_empty(self):
        c = Clustering([])
        assert c.n_nodes == 0
        assert c.n_clusters == 0
        assert c.singleton_fraction() == 0.0


class TestRegistry:
    def test_all_registered(self):
        names = available_clusterers()
        for expected in ("mlrmcl", "metis", "graclus", "spectral"):
            assert expected in names

    def test_get_by_name(self):
        assert isinstance(get_clusterer("metis"), MetisClusterer)
        assert isinstance(get_clusterer("graclus"), GraclusClusterer)
        assert isinstance(get_clusterer("mlrmcl"), MLRMCL)
        assert isinstance(get_clusterer("spectral"), SpectralClusterer)

    def test_unknown_name(self):
        with pytest.raises(ClusteringError, match="unknown"):
            get_clusterer("label-propagation")

    def test_params_forwarded(self):
        c = get_clusterer("mlrmcl", inflation=3.0)
        assert c.inflation == 3.0


class TestInputValidation:
    @pytest.mark.parametrize("name", ["metis", "graclus", "spectral"])
    def test_rejects_k_above_n(self, name, small_weighted_ugraph):
        with pytest.raises(ClusteringError, match="exceeds"):
            get_clusterer(name).cluster(small_weighted_ugraph, 100)

    @pytest.mark.parametrize("name", ["metis", "graclus", "spectral"])
    def test_rejects_k_zero(self, name, small_weighted_ugraph):
        with pytest.raises(ClusteringError):
            get_clusterer(name).cluster(small_weighted_ugraph, 0)

    def test_rejects_empty_graph(self):
        with pytest.raises(ClusteringError, match="empty"):
            get_clusterer("metis").cluster(UndirectedGraph.empty(0), 1)

    def test_rejects_directed_input(self, triangle_digraph):
        with pytest.raises(ClusteringError, match="UndirectedGraph"):
            get_clusterer("metis").cluster(triangle_digraph, 2)

    @pytest.mark.parametrize("name", ["metis", "graclus", "spectral"])
    def test_requires_n_clusters(self, name, small_weighted_ugraph):
        with pytest.raises(ClusteringError, match="n_clusters"):
            get_clusterer(name).cluster(small_weighted_ugraph, None)

    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            GraphClusterer()  # type: ignore[abstract]
