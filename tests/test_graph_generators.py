"""Unit tests for :mod:`repro.graph.generators`."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.graph.generators import (
    add_global_hubs,
    combine,
    directed_sbm,
    figure1_graph,
    kronecker_digraph,
    power_law_digraph,
    power_law_edge_chunks,
    reciprocate_edges,
    sample_power_law_degrees,
    shared_neighbor_clusters,
)
from repro.graph.stats import percent_symmetric_links


class TestDirectedSBM:
    def test_shapes_and_labels(self, rng):
        g, labels = directed_sbm([10, 20], p_in=0.3, p_out=0.01, rng=rng)
        assert g.n_nodes == 30
        assert labels.tolist() == [0] * 10 + [1] * 20

    def test_intra_density_exceeds_inter(self, rng):
        g, labels = directed_sbm([40, 40], p_in=0.3, p_out=0.01, rng=rng)
        adj = g.adjacency
        intra = adj[:40][:, :40].nnz + adj[40:][:, 40:].nnz
        inter = adj.nnz - intra
        assert intra > 3 * inter

    def test_no_self_loops(self, rng):
        g, _ = directed_sbm([30], p_in=0.5, p_out=0.0, rng=rng)
        assert g.adjacency.diagonal().sum() == 0

    def test_explicit_p_matrix(self, rng):
        p = np.array([[0.0, 0.5], [0.0, 0.0]])
        g, _ = directed_sbm([15, 15], 0, 0, rng=rng, p_matrix=p)
        adj = g.adjacency
        assert adj[:15][:, 15:].nnz > 0
        assert adj[15:][:, :15].nnz == 0

    def test_rejects_empty_sizes(self, rng):
        with pytest.raises(DatasetError):
            directed_sbm([], 0.5, 0.1, rng)

    def test_rejects_bad_density(self, rng):
        with pytest.raises(DatasetError, match="0, 1"):
            directed_sbm([5], p_in=1.5, p_out=0.0, rng=rng)

    def test_rejects_wrong_p_matrix_shape(self, rng):
        with pytest.raises(DatasetError, match="2x2"):
            directed_sbm([5, 5], 0, 0, rng, p_matrix=np.zeros((3, 3)))


class TestPowerLawDegrees:
    def test_range(self, rng):
        d = sample_power_law_degrees(1000, 2.5, 2, 100, rng)
        assert d.min() >= 2
        assert d.max() <= 100

    def test_heavy_tail_present(self, rng):
        d = sample_power_law_degrees(5000, 2.1, 1, 1000, rng)
        assert d.max() > 50  # the tail reaches high degrees

    def test_rejects_gamma_below_one(self, rng):
        with pytest.raises(DatasetError, match="gamma"):
            sample_power_law_degrees(10, 0.9, 1, 10, rng)

    def test_rejects_bad_bounds(self, rng):
        with pytest.raises(DatasetError):
            sample_power_law_degrees(10, 2.0, 5, 2, rng)


class TestPowerLawDigraph:
    def test_basic_shape(self, rng):
        g = power_law_digraph(500, rng)
        assert g.n_nodes == 500
        assert g.n_edges > 500

    def test_in_degree_skew(self, rng):
        g = power_law_digraph(2000, rng, gamma_in=2.0)
        indeg = g.in_degrees()
        assert indeg.max() > 10 * np.median(indeg[indeg > 0])

    def test_no_self_loops(self, rng):
        g = power_law_digraph(200, rng)
        assert g.adjacency.diagonal().sum() == 0

    def test_rejects_tiny_n(self, rng):
        with pytest.raises(DatasetError):
            power_law_digraph(1, rng)


class TestPowerLawEdgeChunks:
    @staticmethod
    def _in_degrees(n, rng, **kwargs):
        indeg = np.zeros(n, dtype=np.int64)
        total = 0
        for _, cols, vals in power_law_edge_chunks(n, rng, **kwargs):
            np.add.at(indeg, cols, 1)
            total += vals.size
        return indeg, total

    def test_chunks_bounded(self, rng):
        for rows, cols, vals in power_law_edge_chunks(
            1000, rng, chunk_edges=512
        ):
            assert rows.size <= 512
            assert rows.size == cols.size == vals.size
            assert (rows != cols).all()

    def test_in_degree_tail_capped(self, rng):
        # d_max ceilings the *expected* in-degree per target; the
        # realized max is binomial around it, so allow 2x slack.
        # Without the cap the top hub absorbs a constant fraction of
        # all edges and blows far past this.
        n, d_max = 5000, 30
        indeg, total = self._in_degrees(n, rng, d_max=d_max)
        assert indeg.max() <= 2 * d_max
        assert total > n  # still a real graph

    def test_in_degree_skew_survives_cap(self, rng):
        indeg, _ = self._in_degrees(4000, rng, gamma_in=2.0)
        assert indeg.max() > 5 * np.median(indeg[indeg > 0])

    def test_rejects_bad_params(self, rng):
        with pytest.raises(DatasetError):
            list(power_law_edge_chunks(1, rng))
        with pytest.raises(DatasetError):
            list(power_law_edge_chunks(100, rng, chunk_edges=0))


class TestSharedNeighborClusters:
    def test_members_never_interlink(self, rng):
        g, labels = shared_neighbor_clusters(3, 5, 4, 4, rng)
        for c in range(3):
            members = np.flatnonzero(labels == c)
            block = g.adjacency[members][:, members]
            assert block.nnz == 0

    def test_members_share_out_neighbors(self, rng):
        g, labels = shared_neighbor_clusters(
            2, 6, 5, 5, rng, p_member_to_out=1.0, p_in_to_member=1.0
        )
        members = np.flatnonzero(labels == 0)
        first_targets = set(g.successors(members[0]).tolist())
        second_targets = set(g.successors(members[1]).tolist())
        assert first_targets & second_targets

    def test_scaffolding_unlabeled(self, rng):
        _, labels = shared_neighbor_clusters(2, 3, 2, 2, rng)
        assert np.count_nonzero(labels == -1) == 2 * 4

    def test_optional_intra_links(self, rng):
        g, labels = shared_neighbor_clusters(
            1, 10, 1, 1, rng, p_intra_member=0.9
        )
        members = np.flatnonzero(labels == 0)
        assert g.adjacency[members][:, members].nnz > 0

    def test_rejects_bad_counts(self, rng):
        with pytest.raises(DatasetError):
            shared_neighbor_clusters(0, 5, 1, 1, rng)
        with pytest.raises(DatasetError):
            shared_neighbor_clusters(1, 1, -1, 0, rng)


class TestGlobalHubs:
    def test_hub_in_degree_dominates(self, rng):
        base = power_law_digraph(400, rng)
        g, hubs = add_global_hubs(base, 2, rng, p_point_to_hub=0.5)
        assert g.n_nodes == 402
        indeg = g.in_degrees()
        assert indeg[hubs].min() > np.median(indeg[: base.n_nodes]) * 5

    def test_zero_hubs_identity(self, rng, triangle_digraph):
        g, hubs = add_global_hubs(triangle_digraph, 0, rng)
        assert g is triangle_digraph
        assert hubs.size == 0

    def test_hub_out_edges(self, rng):
        base = power_law_digraph(300, rng)
        g, hubs = add_global_hubs(
            base, 1, rng, p_point_to_hub=0.1, p_hub_points_out=0.5
        )
        assert g.out_degrees()[hubs[0]] > 50

    def test_hub_names_appended(self, rng):
        from repro.graph import DirectedGraph

        base = DirectedGraph.from_edges(
            [(0, 1)], n_nodes=2, node_names=["a", "b"]
        )
        g, _ = add_global_hubs(base, 1, rng, p_point_to_hub=1.0)
        assert g.node_names == ["a", "b", "hub_0"]

    def test_rejects_negative(self, rng, triangle_digraph):
        with pytest.raises(DatasetError):
            add_global_hubs(triangle_digraph, -1, rng)


class TestReciprocate:
    def test_raises_reciprocity_to_target(self, rng):
        g = power_law_digraph(800, rng)
        before = percent_symmetric_links(g)
        g2 = reciprocate_edges(g, 60.0, rng)
        after = percent_symmetric_links(g2)
        assert after > before
        assert after == pytest.approx(60.0, abs=8.0)

    def test_already_at_target_unchanged(self, rng, triangle_digraph):
        g = reciprocate_edges(triangle_digraph, 0.0, rng)
        assert g is triangle_digraph

    def test_fully_symmetric_input_unchanged(self, rng):
        from repro.graph import DirectedGraph

        g = DirectedGraph.from_edges([(0, 1), (1, 0)], n_nodes=2)
        assert reciprocate_edges(g, 50.0, rng) is g

    def test_rejects_out_of_range(self, rng, triangle_digraph):
        with pytest.raises(DatasetError):
            reciprocate_edges(triangle_digraph, 150.0, rng)

    def test_empty_graph(self, rng):
        from repro.graph import DirectedGraph

        g = DirectedGraph.empty(3)
        assert reciprocate_edges(g, 50.0, rng) is g


class TestKronecker:
    def test_node_count(self, rng):
        init = np.array([[0.9, 0.5], [0.5, 0.2]])
        g = kronecker_digraph(init, 6, rng)
        assert g.n_nodes == 64

    def test_edge_count_scale(self, rng):
        init = np.array([[0.9, 0.5], [0.5, 0.2]])
        g = kronecker_digraph(init, 8, rng)
        expected = init.sum() ** 8
        assert 0.3 * expected < g.n_edges < 1.1 * expected

    def test_rejects_non_square(self, rng):
        with pytest.raises(DatasetError):
            kronecker_digraph(np.zeros((2, 3)), 2, rng)

    def test_rejects_bad_probabilities(self, rng):
        with pytest.raises(DatasetError):
            kronecker_digraph(np.array([[2.0]]), 2, rng)

    def test_rejects_zero_iterations(self, rng):
        with pytest.raises(DatasetError):
            kronecker_digraph(np.array([[0.5]]), 0, rng)


class TestFigure1:
    def test_pair_shares_all_neighbors(self):
        g, roles = figure1_graph()
        a, b = roles["pair"]
        assert set(g.successors(a)) == set(g.successors(b))
        assert set(g.predecessors(a)) == set(g.predecessors(b))

    def test_pair_not_interlinked(self):
        g, roles = figure1_graph()
        a, b = roles["pair"]
        assert not g.has_edge(a, b)
        assert not g.has_edge(b, a)

    def test_sources_point_to_pair(self):
        g, roles = figure1_graph()
        for s in roles["sources"]:
            for p in roles["pair"]:
                assert g.has_edge(s, p)


class TestLinkFarm:
    def test_spam_nodes_appended(self, rng):
        from repro.graph.generators import add_link_farm

        base = power_law_digraph(200, rng)
        g, spam = add_link_farm(base, 20, rng)
        assert g.n_nodes == 220
        assert spam.tolist() == list(range(200, 220))

    def test_boost_edges_present(self, rng):
        from repro.graph.generators import add_link_farm

        base = power_law_digraph(100, rng)
        g, spam = add_link_farm(base, 10, rng, boosted_targets=[5])
        for s in spam:
            assert g.has_edge(int(s), 5)

    def test_farm_densely_interlinked(self, rng):
        from repro.graph.generators import add_link_farm

        base = power_law_digraph(100, rng)
        g, spam = add_link_farm(base, 15, rng, p_intra_farm=0.9)
        block = g.adjacency[spam][:, spam]
        density = block.nnz / (15 * 14)
        # Binomial pair sampling merges duplicates, so p=0.9 yields
        # an effective density around 1 - e^-0.9 ~= 0.59.
        assert density > 0.5

    def test_camouflage_links(self, rng):
        from repro.graph.generators import add_link_farm

        base = power_law_digraph(100, rng)
        g, spam = add_link_farm(
            base, 10, rng, n_camouflage_links=3, p_intra_farm=0.0
        )
        legit = g.adjacency[spam][:, :100]
        # boost target + camouflage links reach legitimate pages
        assert legit.nnz >= 10  # at least the boost edges

    def test_names_extended(self, rng):
        from repro.graph import DirectedGraph
        from repro.graph.generators import add_link_farm

        base = DirectedGraph.from_edges(
            [(0, 1)], n_nodes=2, node_names=["a", "b"]
        )
        g, _ = add_link_farm(base, 2, rng, boosted_targets=[0])
        assert g.node_names[-1] == "spam_1"

    def test_rejects_bad_params(self, rng, triangle_digraph):
        from repro.graph.generators import add_link_farm

        with pytest.raises(DatasetError):
            add_link_farm(triangle_digraph, 0, rng)
        with pytest.raises(DatasetError):
            add_link_farm(triangle_digraph, 2, rng, p_intra_farm=2.0)
        with pytest.raises(DatasetError):
            add_link_farm(
                triangle_digraph, 2, rng, boosted_targets=[99]
            )


class TestCombine:
    def test_union_of_edges(self, rng, triangle_digraph):
        from repro.graph import DirectedGraph

        other = DirectedGraph.from_edges([(0, 2)], n_nodes=3)
        merged = combine(triangle_digraph, other)
        assert merged.has_edge(0, 2)
        assert merged.has_edge(0, 1)
        assert merged.edge_weight(0, 1) == 1.0  # OR, not sum

    def test_rejects_size_mismatch(self, triangle_digraph):
        from repro.graph import DirectedGraph

        with pytest.raises(DatasetError):
            combine(triangle_digraph, DirectedGraph.empty(5))

    def test_rejects_empty_args(self):
        with pytest.raises(DatasetError):
            combine()
