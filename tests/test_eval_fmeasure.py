"""Unit tests for the §4.3 F-measure evaluation."""

import pytest

from repro.cluster.common import Clustering
from repro.eval.fmeasure import (
    average_f_score,
    correctly_clustered_mask,
    f_score_report,
)
from repro.eval.groundtruth import GroundTruth
from repro.exceptions import EvaluationError


class TestAverageF:
    def test_perfect_clustering(self):
        labels = [0, 0, 1, 1]
        c = Clustering(labels)
        gt = GroundTruth.from_labels(labels)
        assert average_f_score(c, gt) == 100.0

    def test_hand_computed_partial_match(self):
        # Cluster {0,1,2}: best category {0,1} -> P=2/3, R=1, F=0.8.
        # Cluster {3}: category {2,3} -> P=1, R=0.5, F=2/3.
        # Weighted: (3*0.8 + 1*2/3) / 4 = 0.7666...
        c = Clustering([0, 0, 0, 1])
        gt = GroundTruth.from_labels([0, 0, 1, 1])
        expected = 100 * (3 * 0.8 + 1 * (2 / 3)) / 4
        assert average_f_score(c, gt) == pytest.approx(expected)

    def test_single_cluster_low_precision(self):
        c = Clustering([0, 0, 0, 0])
        gt = GroundTruth.from_labels([0, 0, 1, 1])
        # P = 0.5, R = 1.0, F = 2/3 for either category.
        assert average_f_score(c, gt) == pytest.approx(100 * 2 / 3)

    def test_unlabeled_excluded_by_default(self):
        c = Clustering([0, 0, 0])
        gt = GroundTruth.from_labels([0, 0, -1])
        # Unlabeled node 2 removed: cluster is pure.
        assert average_f_score(c, gt) == 100.0

    def test_unlabeled_counted_when_requested(self):
        c = Clustering([0, 0, 0])
        gt = GroundTruth.from_labels([0, 0, -1])
        score = average_f_score(c, gt, restrict_to_labeled=False)
        # P = 2/3, R = 1 -> F = 0.8.
        assert score == pytest.approx(80.0)

    def test_overlapping_categories_best_match(self):
        gt = GroundTruth.from_categories(
            {"a": [0, 1], "ab": [0, 1, 2, 3]}, n_nodes=4
        )
        c = Clustering([0, 0, 1, 1])
        # Cluster {0,1} matches "a" perfectly (F=1) rather than "ab"
        # (P=1, R=0.5, F=2/3).
        report = f_score_report(c, gt)
        assert report.per_cluster_f[0] == pytest.approx(100.0)
        assert report.best_category[0] == 0

    def test_no_overlap_cluster_scores_zero(self):
        c = Clustering([0, 1])
        gt = GroundTruth.from_categories({"a": [0]}, n_nodes=2)
        report = f_score_report(c, gt)
        assert report.per_cluster_f[1] == 0.0
        assert report.best_category[1] == -1

    def test_mismatched_sizes_rejected(self):
        c = Clustering([0, 1])
        gt = GroundTruth.from_labels([0, 1, 2])
        with pytest.raises(EvaluationError, match="covers"):
            average_f_score(c, gt)

    def test_all_unlabeled(self):
        c = Clustering([0, 1])
        gt = GroundTruth.from_labels([-1, -1])
        assert average_f_score(c, gt) == 0.0

    def test_more_clusters_than_categories(self):
        c = Clustering([0, 1, 2, 3])
        gt = GroundTruth.from_labels([0, 0, 1, 1])
        # Each singleton cluster: P=1, R=0.5, F=2/3.
        assert average_f_score(c, gt) == pytest.approx(100 * 2 / 3)


class TestReport:
    def test_report_fields(self):
        c = Clustering([0, 0, 1, 1])
        gt = GroundTruth.from_labels([0, 0, 1, -1])
        report = f_score_report(c, gt)
        assert report.cluster_sizes.tolist() == [2, 1]
        assert report.n_evaluated_nodes == 3
        assert report.per_cluster_f.shape == (2,)

    def test_report_percent_scale(self):
        c = Clustering([0, 0])
        gt = GroundTruth.from_labels([0, 0])
        report = f_score_report(c, gt)
        assert report.average_f == 100.0


class TestCorrectlyClustered:
    def test_perfect_all_correct(self):
        labels = [0, 0, 1]
        mask = correctly_clustered_mask(
            Clustering(labels), GroundTruth.from_labels(labels)
        )
        assert mask.all()

    def test_misplaced_node_incorrect(self):
        c = Clustering([0, 0, 0, 1, 1, 1])
        gt = GroundTruth.from_labels([0, 0, 1, 1, 1, 1])
        mask = correctly_clustered_mask(c, gt)
        # Node 2 sits in the cluster matched to category 0 but belongs
        # to category 1.
        assert not mask[2]
        assert mask[[0, 1, 3, 4, 5]].all()

    def test_unlabeled_never_correct(self):
        c = Clustering([0, 0])
        gt = GroundTruth.from_labels([0, -1])
        mask = correctly_clustered_mask(c, gt)
        assert mask[0]
        assert not mask[1]

    def test_unmatched_cluster_all_incorrect(self):
        c = Clustering([0, 1])
        gt = GroundTruth.from_categories({"a": [0]}, n_nodes=2)
        mask = correctly_clustered_mask(c, gt)
        assert mask[0]
        assert not mask[1]
