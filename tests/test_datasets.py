"""Tests for the synthetic dataset builders (§4.1 / Table 1 properties)."""

import numpy as np
import pytest

from repro.datasets import (
    guzmania_motif,
    make_cora_like,
    make_flickr_like,
    make_livejournal_like,
    make_wikipedia_like,
)
from repro.exceptions import DatasetError
from repro.graph.stats import percent_symmetric_links


class TestCoraLike:
    def test_basic_shape(self, cora_small):
        assert cora_small.name == "cora-like"
        assert cora_small.n_nodes >= 600
        assert cora_small.ground_truth is not None
        assert cora_small.ground_truth.n_categories == 12

    def test_reciprocity_near_target(self, cora_small):
        r = percent_symmetric_links(cora_small.graph)
        assert r == pytest.approx(7.7, abs=3.0)

    def test_unlabeled_fraction(self, cora_small):
        labeled = cora_small.ground_truth.labeled_fraction()
        assert labeled == pytest.approx(0.80, abs=0.05)

    def test_deterministic(self):
        a = make_cora_like(n_nodes=300, n_categories=6, seed=5)
        b = make_cora_like(n_nodes=300, n_categories=6, seed=5)
        assert a.graph == b.graph

    def test_seeds_differ(self):
        a = make_cora_like(n_nodes=300, n_categories=6, seed=1)
        b = make_cora_like(n_nodes=300, n_categories=6, seed=2)
        assert a.graph != b.graph

    def test_scale_parameter(self):
        small = make_cora_like(n_nodes=400, n_categories=6, scale=0.5)
        assert small.n_nodes == pytest.approx(200, abs=20)

    def test_categories_reduced_for_tiny_graphs(self):
        ds = make_cora_like(n_nodes=60, n_categories=70)
        assert ds.ground_truth.n_categories <= 60 // 8

    def test_hubs_have_high_in_degree(self, cora_small):
        indeg = cora_small.graph.in_degrees()
        median = np.median(indeg[indeg > 0])
        assert indeg.max() > 5 * median

    def test_dataset_properties(self, cora_small):
        assert cora_small.n_edges == cora_small.graph.n_edges
        assert "citation" in cora_small.description


class TestWikipediaLike:
    def test_basic_shape(self, wiki_small):
        assert wiki_small.name == "wikipedia-like"
        assert wiki_small.ground_truth is not None
        # Block categories + list clusters.
        assert wiki_small.ground_truth.n_categories == 12 + 3

    def test_reciprocity_near_target(self, wiki_small):
        r = percent_symmetric_links(wiki_small.graph)
        assert r == pytest.approx(42.1, abs=8.0)

    def test_unlabeled_fraction(self, wiki_small):
        labeled = wiki_small.ground_truth.labeled_fraction()
        assert labeled == pytest.approx(0.65, abs=0.08)

    def test_overlapping_categories_exist(self, wiki_small):
        counts = np.asarray(
            wiki_small.ground_truth.membership.sum(axis=1)
        ).ravel()
        assert (counts > 1).sum() > 0

    def test_list_cluster_members_do_not_interlink(self, wiki_small):
        gt = wiki_small.ground_truth
        # List categories are the last three; find members of one that
        # exist (some may have been unlabeled).
        members = gt.category_members(gt.n_categories - 1)
        if members.size >= 2:
            sub = wiki_small.graph.adjacency[members][:, members]
            # Background noise may add a stray edge; the block must be
            # nearly empty rather than clique-like.
            assert sub.nnz <= members.size

    def test_rejects_too_many_list_clusters(self):
        with pytest.raises(DatasetError, match="list clusters"):
            make_wikipedia_like(n_nodes=300, n_list_clusters=50)

    def test_deterministic(self):
        a = make_wikipedia_like(n_nodes=600, n_categories=6, seed=3,
                                n_list_clusters=2)
        b = make_wikipedia_like(n_nodes=600, n_categories=6, seed=3,
                                n_list_clusters=2)
        assert a.graph == b.graph


class TestSocialDatasets:
    def test_flickr_reciprocity(self):
        ds = make_flickr_like(n_nodes=2000, seed=0)
        assert ds.ground_truth is None
        r = percent_symmetric_links(ds.graph)
        assert r == pytest.approx(62.4, abs=10.0)

    def test_livejournal_reciprocity(self):
        ds = make_livejournal_like(n_nodes=2000, seed=0)
        assert ds.ground_truth is None
        r = percent_symmetric_links(ds.graph)
        assert r == pytest.approx(73.4, abs=10.0)

    def test_power_law_tail(self):
        ds = make_flickr_like(n_nodes=3000, seed=1)
        indeg = ds.graph.in_degrees()
        assert indeg.max() > 20 * np.median(indeg[indeg > 0])

    def test_scale(self):
        ds = make_livejournal_like(n_nodes=1000, scale=2.0)
        assert ds.n_nodes == 2000


class TestGuzmaniaMotif:
    def test_species_share_neighbors_without_interlinking(self):
        g, roles = guzmania_motif()
        species = roles["species"]
        sub = g.adjacency[species][:, species]
        assert sub.nnz == 0
        s0, s1 = species[0], species[1]
        assert set(g.successors(s0)) == set(g.successors(s1))

    def test_genus_mutual_links(self):
        g, roles = guzmania_motif()
        genus = roles["genus"][0]
        for s in roles["species"]:
            assert g.has_edge(genus, s)
            assert g.has_edge(s, genus)

    def test_named_nodes(self):
        g, roles = guzmania_motif()
        assert g.name_of(roles["genus"][0]) == "Guzmania"
        assert "Poales" in [g.name_of(t) for t in roles["shared_targets"]]

    def test_no_background_option(self):
        g, roles = guzmania_motif(with_background=False)
        assert roles["background"] == []

    def test_rejects_bad_params(self):
        with pytest.raises(DatasetError):
            guzmania_motif(n_species=1)
        with pytest.raises(DatasetError):
            guzmania_motif(n_shared_targets=0)
