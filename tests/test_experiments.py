"""Tests for :mod:`repro.experiments` (runner registry + smoke runs).

The full-size experiment behaviour is asserted by the benchmark
harness; here we verify the registry contract and that every runner
completes at a tiny scale with sane structured output.
"""

import pytest

from repro.exceptions import ReproError
from repro.experiments import (
    DatasetBundle,
    ExperimentResult,
    available_experiments,
    run_experiment,
)


@pytest.fixture(scope="module")
def tiny_bundle():
    """A very small dataset bundle shared across this module."""
    return DatasetBundle(scale=0.15, seed=0)


class TestRegistry:
    def test_expected_ids_present(self):
        ids = available_experiments()
        for expected in (
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "fig4",
            "fig5a",
            "fig5b",
            "fig6",
            "fig7a",
            "fig7b",
            "fig8a",
            "fig8b",
            "fig9a",
            "fig9b",
            "sec56",
            "sec57",
        ):
            assert expected in ids

    def test_unknown_id(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            run_experiment("table99")

    def test_case_insensitive(self, tiny_bundle):
        result = run_experiment("TABLE1", bundle=tiny_bundle)
        assert result.experiment == "table1"


class TestBundle:
    def test_scale_applies(self):
        bundle = DatasetBundle(scale=0.1)
        # 150 requested nodes plus the 5 appended hub papers.
        assert bundle.cora().n_nodes == 155

    def test_caching(self, tiny_bundle):
        assert tiny_bundle.cora() is tiny_bundle.cora()

    def test_all_datasets_buildable(self, tiny_bundle):
        assert tiny_bundle.wiki().n_nodes > 0
        assert tiny_bundle.flickr().ground_truth is None
        assert tiny_bundle.livejournal().ground_truth is None


class TestCheapRunners:
    """The runners that finish in well under a second at tiny scale."""

    def test_table1(self, tiny_bundle):
        result = run_experiment("table1", bundle=tiny_bundle)
        assert isinstance(result, ExperimentResult)
        assert "Table 1" in result.text
        assert set(result.data["reciprocity"]) == {
            "cora-like",
            "wikipedia-like",
            "flickr-like",
            "livejournal-like",
        }

    def test_table2(self, tiny_bundle):
        result = run_experiment("table2", bundle=tiny_bundle)
        assert 0.0 <= result.data["wiki_dd_singletons"] <= 1.0
        assert 0.0 <= result.data["wiki_bib_singletons"] <= 1.0

    def test_fig4(self, tiny_bundle):
        result = run_experiment("fig4", bundle=tiny_bundle)
        summaries = result.data["summaries"]
        assert set(summaries) == {
            "degree_discounted",
            "bibliometric",
            "naive",
            "random_walk",
        }

    def test_table5(self, tiny_bundle):
        result = run_experiment("table5", bundle=tiny_bundle)
        assert set(result.data["hub_touch"]) == {
            "random_walk",
            "bibliometric",
            "degree_discounted",
        }
        assert result.data["median_pagerank"] > 0

    def test_sec57(self, tiny_bundle):
        result = run_experiment("sec57", bundle=tiny_bundle)
        weights = result.data["figure1_pair_weights"]
        assert weights["naive"] == 0.0
        assert weights["degree_discounted"] > 0.0
        assert ("degree_discounted", "MLR-MCL") in result.data[
            "guzmania"
        ]


class TestModerateRunners:
    """Quality/timing runners — still tractable at tiny scale."""

    def test_fig6(self, tiny_bundle):
        result = run_experiment("fig6", bundle=tiny_bundle)
        by_method = result.data["by_method"]
        assert len(by_method) == 5
        for f, seconds in by_method.values():
            assert 0.0 <= f <= 100.0
            assert seconds > 0.0

    def test_fig9a(self, tiny_bundle):
        result = run_experiment("fig9a", bundle=tiny_bundle)
        times = result.data["times"]
        assert all(
            all(t > 0 for t in series) for series in times.values()
        )
