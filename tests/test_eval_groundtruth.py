"""Unit tests for :mod:`repro.eval.groundtruth`."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.eval.groundtruth import GroundTruth
from repro.exceptions import EvaluationError


class TestConstruction:
    def test_from_labels(self):
        gt = GroundTruth.from_labels([0, 0, 1, -1])
        assert gt.n_nodes == 4
        assert gt.n_categories == 2
        assert gt.labeled_fraction() == 0.75

    def test_from_labels_non_contiguous(self):
        gt = GroundTruth.from_labels([10, 20, 10])
        assert gt.n_categories == 2
        assert gt.category_names == [10, 20]

    def test_from_labels_custom_unlabeled_marker(self):
        gt = GroundTruth.from_labels([0, 99, 1], unlabeled=99)
        assert gt.labeled_mask().tolist() == [True, False, True]

    def test_from_categories_overlapping(self):
        gt = GroundTruth.from_categories(
            {"a": [0, 1], "b": [1, 2]}, n_nodes=4
        )
        assert gt.n_categories == 2
        assert gt.membership[[1], :].sum() == 2  # node 1 in both

    def test_from_categories_out_of_range(self):
        with pytest.raises(EvaluationError, match="range"):
            GroundTruth.from_categories({"a": [5]}, n_nodes=3)

    def test_from_matrix(self):
        m = sp.csr_array(np.array([[1.0, 0.0], [0.0, 1.0]]))
        gt = GroundTruth(m)
        assert gt.n_categories == 2

    def test_rejects_non_binary(self):
        with pytest.raises(EvaluationError, match="0 or 1"):
            GroundTruth(np.array([[2.0]]))

    def test_rejects_name_mismatch(self):
        with pytest.raises(EvaluationError, match="names"):
            GroundTruth(np.eye(2), category_names=["only-one"])

    def test_rejects_2d_labels(self):
        with pytest.raises(EvaluationError):
            GroundTruth.from_labels(np.zeros((2, 2), dtype=int))


class TestAccessors:
    def test_category_sizes(self):
        gt = GroundTruth.from_labels([0, 0, 1])
        assert gt.category_sizes().tolist() == [2, 1]

    def test_category_members(self):
        gt = GroundTruth.from_labels([0, 1, 0])
        assert gt.category_members(0).tolist() == [0, 2]

    def test_category_members_out_of_range(self):
        gt = GroundTruth.from_labels([0])
        with pytest.raises(EvaluationError):
            gt.category_members(7)

    def test_labeled_mask_overlap(self):
        gt = GroundTruth.from_categories(
            {"a": [0], "b": [0]}, n_nodes=2
        )
        assert gt.labeled_mask().tolist() == [True, False]

    def test_empty_ground_truth(self):
        gt = GroundTruth(sp.csr_array((3, 0)))
        assert gt.n_categories == 0
        assert gt.labeled_fraction() == 0.0

    def test_repr(self):
        gt = GroundTruth.from_labels([0, -1])
        assert "50%" in repr(gt)


class TestFiltering:
    def test_filter_small_categories(self):
        gt = GroundTruth.from_categories(
            {"big": [0, 1, 2], "small": [3]}, n_nodes=4
        )
        filtered = gt.filter_small_categories(2)
        assert filtered.n_categories == 1
        assert filtered.category_names == ["big"]

    def test_filter_keeps_node_count(self):
        gt = GroundTruth.from_categories({"small": [0]}, n_nodes=5)
        filtered = gt.filter_small_categories(10)
        assert filtered.n_nodes == 5
        assert filtered.n_categories == 0

    def test_filter_rejects_bad_min(self):
        gt = GroundTruth.from_labels([0])
        with pytest.raises(EvaluationError):
            gt.filter_small_categories(0)
