"""Unit tests for :mod:`repro.experiments.support` helpers."""

import pytest

from repro.experiments.support import (
    DISPLAY,
    SYMMETRIZATIONS,
    full_symmetrization,
    match_edge_budget,
    pruned_symmetrization,
)
from repro.graph.generators import power_law_digraph


class TestConstants:
    def test_display_covers_symmetrizations(self):
        assert set(DISPLAY) == set(SYMMETRIZATIONS)

    def test_paper_legend_names(self):
        assert DISPLAY["naive"] == "A+A'"
        assert DISPLAY["degree_discounted"] == "Degree-discounted"


class TestFullSymmetrizationCache:
    def test_same_graph_same_object(self, rng):
        g = power_law_digraph(60, rng)
        a = full_symmetrization(g, "naive")
        b = full_symmetrization(g, "naive")
        assert a is b

    def test_different_methods_differ(self, rng):
        g = power_law_digraph(60, rng)
        a = full_symmetrization(g, "naive")
        b = full_symmetrization(g, "bibliometric")
        assert a is not b


class TestPrunedSymmetrization:
    def test_hits_target_roughly(self, cora_small):
        pruned, threshold = pruned_symmetrization(
            cora_small.graph, "degree_discounted", target_degree=15.0
        )
        avg = 2.0 * pruned.n_edges / pruned.n_nodes
        assert avg == pytest.approx(15.0, rel=0.6)
        assert threshold > 0

    def test_sparse_method_unpruned(self, cora_small):
        pruned, threshold = pruned_symmetrization(
            cora_small.graph, "naive", target_degree=100.0
        )
        assert threshold == 0.0


class TestMatchEdgeBudget:
    def test_result_at_or_below_budget(self, cora_small):
        full = full_symmetrization(cora_small.graph, "bibliometric")
        target = full.n_edges // 4
        matched, threshold = match_edge_budget(full, target)
        assert matched.n_edges <= full.n_edges
        # Bisection lands at the coarsest threshold not exceeding the
        # budget (integer-valued bibliometric weights quantize this).
        assert matched.n_edges <= target * 1.05 or threshold > 0

    def test_huge_budget_keeps_everything(self, cora_small):
        full = full_symmetrization(cora_small.graph, "bibliometric")
        matched, threshold = match_edge_budget(full, full.n_edges * 2)
        assert matched.n_edges == full.n_edges
