"""Unit tests for :mod:`repro.linalg.pagerank`."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, GraphError
from repro.graph import DirectedGraph
from repro.linalg.pagerank import (
    pagerank,
    stationary_distribution,
    transition_matrix,
)


class TestTransitionMatrix:
    def test_rows_stochastic(self, two_fans_digraph):
        P, dangling = transition_matrix(two_fans_digraph)
        sums = np.asarray(P.sum(axis=1)).ravel()
        assert np.allclose(sums[~dangling], 1.0)

    def test_dangling_rows_zero(self, two_fans_digraph):
        P, dangling = transition_matrix(two_fans_digraph)
        assert dangling[5]  # node 5 has no out-edges
        assert P[[5], :].sum() == 0.0

    def test_weighted_normalization(self):
        g = DirectedGraph.from_edges([(0, 1, 3.0), (0, 2, 1.0)], n_nodes=3)
        P, _ = transition_matrix(g)
        assert P[[0], [1]] == pytest.approx(0.75)

    def test_rejects_non_square(self):
        import scipy.sparse as sp

        with pytest.raises(GraphError):
            transition_matrix(sp.csr_array((2, 3)))


class TestPagerank:
    def test_sums_to_one(self, triangle_digraph):
        pi = pagerank(triangle_digraph)
        assert pi.sum() == pytest.approx(1.0)

    def test_symmetric_cycle_uniform(self, triangle_digraph):
        pi = pagerank(triangle_digraph)
        assert np.allclose(pi, 1.0 / 3.0)

    def test_is_stationary(self, rng):
        from repro.graph.generators import power_law_digraph

        g = power_law_digraph(200, rng)
        pi = pagerank(g, teleport=0.05, tol=1e-14)
        P, dangling = transition_matrix(g)
        n = g.n_nodes
        dangling_mass = pi[dangling].sum()
        next_pi = 0.95 * (P.T @ pi + dangling_mass / n) + 0.05 / n
        assert np.allclose(next_pi / next_pi.sum(), pi, atol=1e-9)

    def test_popular_node_has_higher_rank(self):
        # Everyone points to node 0.
        g = DirectedGraph.from_edges(
            [(1, 0), (2, 0), (3, 0), (1, 2)], n_nodes=4
        )
        pi = pagerank(g)
        assert pi[0] == pi.max()

    def test_dangling_nodes_handled(self):
        g = DirectedGraph.from_edges([(0, 1)], n_nodes=2)
        pi = pagerank(g)  # node 1 dangles
        assert pi.sum() == pytest.approx(1.0)
        assert pi[1] > pi[0]

    def test_empty_graph(self):
        pi = pagerank(DirectedGraph.empty(0))
        assert pi.size == 0

    def test_edgeless_graph_uniform(self):
        pi = pagerank(DirectedGraph.empty(4))
        assert np.allclose(pi, 0.25)

    def test_rejects_bad_teleport(self, triangle_digraph):
        with pytest.raises(GraphError, match="teleport"):
            pagerank(triangle_digraph, teleport=0.0)
        with pytest.raises(GraphError, match="teleport"):
            pagerank(triangle_digraph, teleport=1.5)

    def test_convergence_error(self, rng):
        from repro.graph.generators import power_law_digraph

        g = power_law_digraph(100, rng)
        with pytest.raises(ConvergenceError, match="converge"):
            pagerank(g, tol=1e-16, max_iter=2)

    def test_convergence_error_reports_achieved_delta(self, rng):
        from repro.graph.generators import power_law_digraph

        g = power_law_digraph(100, rng)
        with pytest.raises(ConvergenceError) as e:
            pagerank(g, tol=1e-16, max_iter=2)
        message = str(e.value)
        assert "delta" in message and "tol" in message
        assert "raise_on_no_convergence" in message

    def test_near_convergence_accepted(self, rng):
        """Stopping within ~10x of tol is a tuning artifact, not a
        failure: the iterate is returned (with a warning), not thrown
        away."""
        import warnings

        from repro.graph.generators import power_law_digraph
        from repro.linalg.pagerank import NEAR_CONVERGENCE_FACTOR

        assert NEAR_CONVERGENCE_FACTOR == 10.0
        g = power_law_digraph(120, rng)
        baseline = pagerank(g, tol=1e-12)
        # Find a budget that lands within the near-convergence band.
        for max_iter in range(2, 200):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                try:
                    pi = pagerank(g, tol=1e-12, max_iter=max_iter)
                except ConvergenceError:
                    continue
            break
        assert pi.sum() == pytest.approx(1.0)
        assert np.allclose(pi, baseline, atol=1e-6)

    def test_no_convergence_escape_hatch(self, rng):
        import warnings

        from repro.exceptions import ConvergenceWarning
        from repro.graph.generators import power_law_digraph

        g = power_law_digraph(100, rng)
        with pytest.warns(ConvergenceWarning, match="delta"):
            pi = pagerank(
                g, tol=1e-16, max_iter=2, raise_on_no_convergence=False
            )
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= 0.0)

    def test_higher_teleport_flattens(self):
        g = DirectedGraph.from_edges(
            [(1, 0), (2, 0), (3, 0)], n_nodes=4
        )
        concentrated = pagerank(g, teleport=0.01)
        flat = pagerank(g, teleport=0.9)
        assert concentrated[0] > flat[0]

    def test_stationary_distribution_alias(self, triangle_digraph):
        assert np.allclose(
            stationary_distribution(triangle_digraph),
            pagerank(triangle_digraph),
        )
