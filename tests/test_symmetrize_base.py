"""Unit tests for the symmetrization base/registry/façade."""

import pytest

from repro.exceptions import SymmetrizationError
from repro.graph import DirectedGraph, UndirectedGraph
from repro.symmetrize import (
    BibliometricSymmetrization,
    DegreeDiscountedSymmetrization,
    NaiveSymmetrization,
    RandomWalkSymmetrization,
    Symmetrization,
    available_symmetrizations,
    get_symmetrization,
    symmetrize,
)


class TestRegistry:
    def test_all_four_registered(self):
        names = available_symmetrizations()
        for expected in (
            "naive",
            "random_walk",
            "bibliometric",
            "degree_discounted",
        ):
            assert expected in names

    def test_get_by_name(self):
        assert isinstance(get_symmetrization("naive"), NaiveSymmetrization)
        assert isinstance(
            get_symmetrization("bibliometric"), BibliometricSymmetrization
        )

    def test_aliases(self):
        assert isinstance(get_symmetrization("a+at"), NaiveSymmetrization)
        assert isinstance(
            get_symmetrization("rw"), RandomWalkSymmetrization
        )
        assert isinstance(
            get_symmetrization("dd"), DegreeDiscountedSymmetrization
        )
        assert isinstance(
            get_symmetrization("bib"), BibliometricSymmetrization
        )

    def test_case_insensitive(self):
        assert isinstance(
            get_symmetrization("NAIVE"), NaiveSymmetrization
        )

    def test_unknown_name(self):
        with pytest.raises(SymmetrizationError, match="unknown"):
            get_symmetrization("nope")

    def test_params_forwarded(self):
        sym = get_symmetrization("degree_discounted", alpha=0.25)
        assert sym.alpha == 0.25

    def test_names_set_on_classes(self):
        assert NaiveSymmetrization.name == "naive"
        assert DegreeDiscountedSymmetrization.name == "degree_discounted"


class TestFacade:
    def test_symmetrize_by_name(self, triangle_digraph):
        u = symmetrize(triangle_digraph, "naive")
        assert isinstance(u, UndirectedGraph)
        assert u.n_edges == 3

    def test_symmetrize_with_instance(self, triangle_digraph):
        u = symmetrize(triangle_digraph, NaiveSymmetrization())
        assert u.n_edges == 3

    def test_instance_plus_params_rejected(self, triangle_digraph):
        with pytest.raises(SymmetrizationError, match="parameters"):
            symmetrize(triangle_digraph, NaiveSymmetrization(), alpha=1)

    def test_threshold_forwarded(self, two_fans_digraph):
        dense = symmetrize(two_fans_digraph, "bibliometric")
        pruned = symmetrize(two_fans_digraph, "bibliometric", threshold=2.0)
        assert pruned.n_edges < dense.n_edges

    def test_rejects_undirected_input(self, small_weighted_ugraph):
        with pytest.raises(SymmetrizationError, match="DirectedGraph"):
            symmetrize(small_weighted_ugraph, "naive")


class TestApplyContract:
    @pytest.mark.parametrize(
        "name", ["naive", "random_walk", "bibliometric", "degree_discounted"]
    )
    def test_output_is_symmetric(self, name, two_fans_digraph):
        u = symmetrize(two_fans_digraph, name)
        diff = abs(u.adjacency - u.adjacency.T)
        assert diff.max() if diff.nnz else 0.0 == 0.0

    @pytest.mark.parametrize(
        "name", ["naive", "random_walk", "bibliometric", "degree_discounted"]
    )
    def test_output_nonnegative(self, name, two_fans_digraph):
        u = symmetrize(two_fans_digraph, name)
        if u.adjacency.nnz:
            assert u.adjacency.data.min() >= 0

    @pytest.mark.parametrize(
        "name", ["naive", "bibliometric", "degree_discounted"]
    )
    def test_no_self_loops_by_default(self, name, two_fans_digraph):
        u = symmetrize(two_fans_digraph, name)
        assert u.adjacency.diagonal().sum() == 0.0

    def test_self_loops_kept_on_request(self, two_fans_digraph):
        sym = BibliometricSymmetrization()
        u = sym.apply(two_fans_digraph, drop_self_loops=False)
        assert u.adjacency.diagonal().sum() > 0

    def test_node_names_carried_over(self):
        g = DirectedGraph.from_edges(
            [(0, 1)], n_nodes=2, node_names=["x", "y"]
        )
        u = symmetrize(g, "naive")
        assert u.node_names == ["x", "y"]

    def test_callable_shorthand(self, triangle_digraph):
        sym = NaiveSymmetrization()
        assert sym(triangle_digraph) == sym.apply(triangle_digraph)

    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            Symmetrization()  # type: ignore[abstract]
