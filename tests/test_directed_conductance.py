"""Unit tests for conductance and degree assortativity."""

import numpy as np
import pytest

from repro.directed.objectives import conductance, ncut
from repro.exceptions import EvaluationError
from repro.graph import DirectedGraph, UndirectedGraph
from repro.graph.stats import degree_assortativity


class TestConductance:
    def test_hand_computed(self):
        g = UndirectedGraph.from_edges(
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)],
            n_nodes=6,
        )
        # cut({0,1,2}) = 1, vol = 7 on both sides -> phi = 1/7.
        assert conductance(g, [0, 1, 2]) == pytest.approx(1 / 7)

    def test_unbalanced_uses_smaller_side(self):
        g = UndirectedGraph.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 4)], n_nodes=5
        )
        # S = {0}: cut 1, vol(S) = 1, vol(rest) = 7 -> phi = 1.
        assert conductance(g, [0]) == pytest.approx(1.0)

    def test_bounded_by_ncut(self, small_weighted_ugraph):
        # phi <= Ncut <= 2 phi always.
        s = [0, 1, 2]
        phi = conductance(small_weighted_ugraph, s)
        nc = ncut(small_weighted_ugraph, s)
        assert phi <= nc <= 2 * phi + 1e-12

    def test_zero_for_disconnected_split(self):
        g = UndirectedGraph.from_edges([(0, 1), (2, 3)], n_nodes=4)
        assert conductance(g, [0, 1]) == 0.0

    def test_infinite_for_isolated_side(self):
        g = UndirectedGraph.from_edges([(0, 1)], n_nodes=3)
        assert conductance(g, [2]) == float("inf")

    def test_rejects_improper_subset(self, small_weighted_ugraph):
        with pytest.raises(EvaluationError):
            conductance(small_weighted_ugraph, [])


class TestAssortativity:
    def test_nan_for_tiny_graphs(self):
        g = DirectedGraph.from_edges([(0, 1)], n_nodes=2)
        assert np.isnan(degree_assortativity(g))

    def test_nan_for_constant_degrees(self, triangle_digraph):
        assert np.isnan(degree_assortativity(triangle_digraph))

    def test_disassortative_star(self):
        # Hub 0 points to leaves; high out-degree sources hit
        # low in-degree targets uniformly -> correlation undefined or
        # strongly structured; use a two-hub construction instead.
        edges = [(0, i) for i in range(1, 6)]  # hub out-degree 5
        edges += [(6, 0), (7, 0)]  # low-degree nodes feed the hub
        g = DirectedGraph.from_edges(edges, n_nodes=8)
        value = degree_assortativity(g)
        assert -1.0 <= value <= 1.0

    def test_synthetic_social_graph_in_range(self):
        from repro.datasets import make_flickr_like

        g = make_flickr_like(n_nodes=1000, seed=0).graph
        value = degree_assortativity(g)
        assert -1.0 <= value <= 1.0
        assert np.isfinite(value)

    def test_bounded(self, rng):
        from repro.graph.generators import power_law_digraph

        g = power_law_digraph(300, rng)
        value = degree_assortativity(g)
        assert -1.0 <= value <= 1.0


class TestRunAll:
    def test_run_all_covers_registry(self):
        from repro.experiments import (
            DatasetBundle,
            available_experiments,
            run_all_experiments,
        )

        bundle = DatasetBundle(scale=0.12, seed=0)
        results = run_all_experiments(bundle=bundle)
        assert [r.experiment for r in results] == available_experiments()
        assert all(r.text for r in results)
