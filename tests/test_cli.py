"""Tests for the command-line interface (``python -m repro``)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import DirectedGraph
from repro.graph.io import read_edge_list, write_edge_list


@pytest.fixture
def graph_file(tmp_path, cora_small):
    path = tmp_path / "graph.txt"
    write_edge_list(cora_small.graph, path)
    return path


@pytest.fixture
def truth_file(tmp_path, cora_small):
    membership = cora_small.ground_truth.membership.tocsr()
    labels = np.full(cora_small.n_nodes, -1, dtype=np.int64)
    for v in range(cora_small.n_nodes):
        start, end = membership.indptr[v], membership.indptr[v + 1]
        if end > start:
            labels[v] = membership.indices[start]
    path = tmp_path / "truth.txt"
    path.write_text("\n".join(str(v) for v in labels) + "\n")
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in (
            ["stats", "g.txt"],
            ["symmetrize", "g.txt", "u.txt"],
            ["cluster", "u.txt", "l.txt"],
            ["pipeline", "g.txt", "l.txt"],
            ["generate", "cora", "g.txt"],
            ["evaluate", "l.txt", "t.txt"],
        ):
            args = parser.parse_args(command)
            assert args.command == command[0]


class TestStats:
    def test_prints_statistics(self, graph_file, capsys):
        assert main(["stats", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "nodes:" in out
        assert "% symmetric links" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "missing.txt")]) == 1
        assert "error" in capsys.readouterr().err


class TestSymmetrize:
    def test_writes_undirected_graph(self, graph_file, tmp_path, capsys):
        out = tmp_path / "u.txt"
        code = main(
            ["symmetrize", str(graph_file), str(out), "-m", "naive"]
        )
        assert code == 0
        g = read_edge_list(out, directed=False)
        assert g.n_edges > 0

    def test_target_degree_option(self, graph_file, tmp_path, capsys):
        out = tmp_path / "u.txt"
        code = main(
            [
                "symmetrize",
                str(graph_file),
                str(out),
                "-m",
                "dd",
                "--target-degree",
                "10",
            ]
        )
        assert code == 0
        assert "chosen threshold" in capsys.readouterr().out
        g = read_edge_list(out, directed=False)
        avg_degree = 2 * g.n_edges / g.n_nodes
        assert avg_degree < 30

    def test_unknown_method(self, graph_file, tmp_path, capsys):
        code = main(
            [
                "symmetrize",
                str(graph_file),
                str(tmp_path / "u.txt"),
                "-m",
                "bogus",
            ]
        )
        assert code == 1
        assert "unknown" in capsys.readouterr().err


class TestClusterAndEvaluate:
    def test_cluster_writes_labels(self, graph_file, tmp_path, capsys):
        undirected = tmp_path / "u.txt"
        main(["symmetrize", str(graph_file), str(undirected), "-m",
              "dd", "-t", "0.05"])
        labels = tmp_path / "labels.txt"
        code = main(
            [
                "cluster",
                str(undirected),
                str(labels),
                "-c",
                "metis",
                "-k",
                "8",
            ]
        )
        assert code == 0
        values = [int(v) for v in labels.read_text().split()]
        assert len(set(values)) == 8

    def test_evaluate(self, tmp_path, capsys):
        labels = tmp_path / "l.txt"
        truth = tmp_path / "t.txt"
        labels.write_text("0\n0\n1\n1\n")
        truth.write_text("0\n0\n1\n1\n")
        assert main(["evaluate", str(labels), str(truth)]) == 0
        assert "Avg-F: 100.00" in capsys.readouterr().out


class TestPipeline:
    def test_end_to_end_with_truth(
        self, graph_file, truth_file, tmp_path, capsys
    ):
        labels = tmp_path / "labels.txt"
        code = main(
            [
                "pipeline",
                str(graph_file),
                str(labels),
                "-m",
                "dd",
                "-c",
                "metis",
                "-k",
                "12",
                "-t",
                "0.05",
                "--truth",
                str(truth_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Avg-F vs ground truth" in out
        assert labels.exists()


class TestExperiment:
    def test_list(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig5a" in out

    def test_run_table1_tiny(self, capsys):
        code = main(["experiment", "table1", "--scale", "0.15"])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "tableXX"]) == 1
        assert "unknown experiment" in capsys.readouterr().err


class TestGenerate:
    def test_generate_cora_with_labels(self, tmp_path, capsys):
        graph = tmp_path / "g.txt"
        labels = tmp_path / "t.txt"
        code = main(
            [
                "generate",
                "cora",
                str(graph),
                "--labels",
                str(labels),
                "-n",
                "300",
            ]
        )
        assert code == 0
        g = read_edge_list(graph)
        assert isinstance(g, DirectedGraph)
        assert labels.exists()

    def test_generate_flickr_no_truth(self, tmp_path, capsys):
        graph = tmp_path / "g.txt"
        labels = tmp_path / "t.txt"
        code = main(
            [
                "generate",
                "flickr",
                str(graph),
                "--labels",
                str(labels),
                "-n",
                "400",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "no ground truth" in err
        assert not labels.exists()
