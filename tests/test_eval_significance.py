"""Unit tests for the §5.6 paired binomial sign test."""

import numpy as np
import pytest

from repro.eval.significance import sign_test
from repro.exceptions import EvaluationError


class TestSignTest:
    def test_clear_winner(self):
        a = np.array([True] * 80 + [False] * 20)
        b = np.array([False] * 80 + [True] * 20)
        result = sign_test(a, b)
        assert result.winner == "a"
        assert result.n_a_only == 80
        assert result.n_b_only == 20
        assert result.p_value < 1e-8

    def test_symmetric_swap(self):
        a = np.array([True, True, False, False])
        b = np.array([False, False, False, True])
        r1 = sign_test(a, b)
        r2 = sign_test(b, a)
        assert r1.p_value == pytest.approx(r2.p_value)
        assert r1.winner == "a"
        assert r2.winner == "b"

    def test_hand_computed_p_value(self):
        # 3 discordant, winner has all 3: P[X >= 3] = 1/8.
        a = np.array([True, True, True, True])
        b = np.array([False, False, False, True])
        result = sign_test(a, b)
        assert result.p_value == pytest.approx(0.125)

    def test_tie(self):
        a = np.array([True, False])
        b = np.array([False, True])
        result = sign_test(a, b)
        assert result.winner == "tie"
        assert result.p_value == 1.0

    def test_no_discordance(self):
        a = np.array([True, False, True])
        result = sign_test(a, a)
        assert result.winner == "tie"
        assert result.p_value == 1.0
        assert result.log10_p == 0.0

    def test_concordant_nodes_ignored(self):
        base_a = np.array([True, True, False, False, True])
        base_b = np.array([True, True, False, False, False])
        result = sign_test(base_a, base_b)
        assert result.n_a_only == 1
        assert result.n_b_only == 0
        assert result.p_value == pytest.approx(0.5)

    def test_extreme_counts_log_space(self):
        """Paper-scale p-values (1e-22767) need log-space math."""
        n = 100_000
        a = np.ones(n, dtype=bool)
        b = np.zeros(n, dtype=bool)
        result = sign_test(a, b)
        assert result.p_value == 0.0  # underflows
        assert result.log10_p < -30000  # but the log is finite
        assert np.isfinite(result.log10_p)

    def test_log10_consistent_with_p(self):
        a = np.array([True] * 10 + [False] * 5)
        b = np.array([False] * 10 + [True] * 5)
        result = sign_test(a, b)
        assert 10.0**result.log10_p == pytest.approx(result.p_value)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(EvaluationError):
            sign_test(np.array([True]), np.array([True, False]))

    def test_rejects_2d(self):
        with pytest.raises(EvaluationError):
            sign_test(np.ones((2, 2), dtype=bool), np.ones((2, 2), dtype=bool))
