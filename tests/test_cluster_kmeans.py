"""Unit tests for :mod:`repro.cluster.kmeans`."""

import numpy as np
import pytest

from repro.cluster.kmeans import kmeans, kmeans_plus_plus_init
from repro.exceptions import ClusteringError


def _two_blobs(rng, n_per=30, separation=10.0):
    a = rng.normal(0.0, 0.5, size=(n_per, 2))
    b = rng.normal(separation, 0.5, size=(n_per, 2))
    return np.vstack([a, b])


class TestKmeansPlusPlus:
    def test_returns_k_centroids(self, rng):
        pts = _two_blobs(rng)
        c = kmeans_plus_plus_init(pts, 2, rng)
        assert c.shape == (2, 2)

    def test_spreads_across_blobs(self, rng):
        pts = _two_blobs(rng, separation=100.0)
        c = kmeans_plus_plus_init(pts, 2, rng)
        # One centroid in each blob (x-coordinates far apart).
        assert abs(c[0, 0] - c[1, 0]) > 50.0

    def test_rejects_k_above_n(self, rng):
        with pytest.raises(ClusteringError):
            kmeans_plus_plus_init(np.zeros((3, 2)), 5, rng)

    def test_duplicate_points_handled(self, rng):
        pts = np.ones((10, 2))
        c = kmeans_plus_plus_init(pts, 3, rng)
        assert c.shape == (3, 2)


class TestKmeans:
    def test_separates_two_blobs(self, rng):
        pts = _two_blobs(rng)
        labels = kmeans(pts, 2, rng=rng)
        assert len(set(labels[:30].tolist())) == 1
        assert len(set(labels[30:].tolist())) == 1
        assert labels[0] != labels[-1]

    def test_returns_exactly_k_clusters(self, rng):
        pts = _two_blobs(rng)
        labels = kmeans(pts, 5, rng=rng)
        assert len(set(labels.tolist())) == 5

    def test_k_equals_n(self, rng):
        pts = rng.normal(size=(4, 2))
        labels = kmeans(pts, 4, rng=rng)
        assert len(set(labels.tolist())) == 4

    def test_k_one(self, rng):
        labels = kmeans(rng.normal(size=(10, 3)), 1, rng=rng)
        assert set(labels.tolist()) == {0}

    def test_weights_shift_assignment(self, rng):
        # Heavy points at +/-1; with all weight on one side, the two
        # centroids should split that side rather than the other.
        pts = np.array([[0.0], [0.1], [10.0], [10.1]])
        weights = np.array([100.0, 100.0, 0.001, 0.001])
        labels = kmeans(pts, 2, rng=rng, weights=weights, n_init=10)
        assert labels[0] != labels[1] or labels[2] != labels[3]

    def test_deterministic_given_rng(self):
        pts = _two_blobs(np.random.default_rng(3))
        l1 = kmeans(pts, 2, rng=np.random.default_rng(5))
        l2 = kmeans(pts, 2, rng=np.random.default_rng(5))
        assert np.array_equal(l1, l2)

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ClusteringError):
            kmeans(np.zeros((3, 2)), 0, rng=rng)
        with pytest.raises(ClusteringError):
            kmeans(np.zeros((3, 2)), 4, rng=rng)

    def test_rejects_1d_points(self, rng):
        with pytest.raises(ClusteringError):
            kmeans(np.zeros(5), 2, rng=rng)

    def test_rejects_bad_weights(self, rng):
        pts = np.zeros((4, 2))
        with pytest.raises(ClusteringError):
            kmeans(pts, 2, rng=rng, weights=np.ones(3))
        with pytest.raises(ClusteringError):
            kmeans(pts, 2, rng=rng, weights=-np.ones(4))

    def test_all_zero_weights_fall_back_to_uniform(self, rng):
        pts = _two_blobs(rng)
        labels = kmeans(pts, 2, rng=rng, weights=np.zeros(60))
        assert len(set(labels.tolist())) == 2
