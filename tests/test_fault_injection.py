"""Fault-injection sweep: the degenerate corpus vs the full pipeline.

Every test here enforces the hardening contract: a pathological input
either raises a *typed* :class:`repro.exceptions.ReproError`, or is
repaired-with-warnings into a valid clustering. Any bare scipy/numpy
exception escaping a sweep fails the test outright.

The ``fault_smoke`` marker tags the subset that tier-1 CI runs on
every commit (``pytest -m fault_smoke``); the unmarked tests extend
the sweep to the full symmetrization x clusterer matrix.
"""

from __future__ import annotations

import contextlib
import warnings

import numpy as np
import pytest

from repro.datasets import degenerate_case, degenerate_corpus
from repro.exceptions import (
    ClusteringError,
    ReproError,
    ReproWarning,
    SymmetrizationError,
    ValidationError,
)
from repro.pipeline import PipelineWarning, SymmetrizeClusterPipeline
from repro.symmetrize import (
    DegreeDiscountedSymmetrization,
    get_symmetrization,
)
from repro.validate import lenient, repair_graph

CORPUS = degenerate_corpus()
CASE_IDS = [c.name for c in CORPUS]
SYMMETRIZATIONS = (
    "naive",
    "random_walk",
    "bibliometric",
    "degree_discounted",
)
CLUSTERERS = ("mlrmcl", "spectral")

# Exact strict-mode outcome per corpus case for the random-walk +
# MLR-MCL pipeline; ``None`` means the run must succeed.
STRICT_PIPELINE_EXPECT: dict[str, type[ReproError] | None] = {
    "empty": ClusteringError,
    "single_node": SymmetrizationError,
    "single_self_loop": None,
    "all_dangling": SymmetrizationError,
    "self_loop_only": None,
    "star_hub_out": None,
    "star_hub_in": None,
    "duplicate_heavy": None,
    "nan_weight": ValidationError,
    "inf_weight": ValidationError,
    "negative_weight": ValidationError,
    "disconnected_with_singletons": None,
    "near_threshold_tie": None,
    "reciprocal_pair": None,
}


@contextlib.contextmanager
def _quiet():
    """Silence ReproWarnings inside a sweep (they are the point of
    lenient mode, not noise the test run should print)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ReproWarning)
        yield


def assert_valid_symmetrized(u) -> None:
    """The output contract: square, symmetric, finite, non-negative,
    zero-diagonal adjacency."""
    adj = u.adjacency
    assert adj.shape == (u.n_nodes, u.n_nodes)
    if adj.nnz:
        assert np.all(np.isfinite(adj.data))
        assert adj.data.min() >= 0.0
        asym = abs(adj - adj.T)
        assert (asym.max() if asym.nnz else 0.0) == 0.0
        assert adj.diagonal().max() == 0.0


def assert_valid_clustering(clustering, n_nodes: int) -> None:
    labels = clustering.labels
    assert labels.shape == (n_nodes,)
    if n_nodes:
        assert labels.min() >= 0
        assert labels.max() == clustering.n_clusters - 1
        assert clustering.sizes.sum() == n_nodes


# ---------------------------------------------------------------------------
# Stage-1 sweep: every symmetrization on every corpus graph
# ---------------------------------------------------------------------------


@pytest.mark.fault_smoke
@pytest.mark.parametrize("name", SYMMETRIZATIONS)
@pytest.mark.parametrize("case", CORPUS, ids=CASE_IDS)
def test_strict_apply_typed_error_or_valid(case, name):
    """Strict mode: a corpus graph either raises a typed ReproError or
    symmetrizes into a valid undirected graph. Nothing else."""
    sym = get_symmetrization(name)
    with _quiet():
        try:
            u = sym.apply(case.build())
        except ReproError:
            return
    assert_valid_symmetrized(u)


@pytest.mark.fault_smoke
@pytest.mark.parametrize("name", SYMMETRIZATIONS)
@pytest.mark.parametrize("case", CORPUS, ids=CASE_IDS)
def test_lenient_apply_always_valid(case, name):
    """Lenient mode never raises for any corpus graph: malformed
    weights are repaired, degenerate structure downgraded to
    warnings."""
    sym = get_symmetrization(name)
    with lenient(), _quiet():
        u = sym.apply(case.build())
    assert_valid_symmetrized(u)


@pytest.mark.parametrize("name", SYMMETRIZATIONS)
def test_strict_apply_rejects_malformed_weights(name):
    """validate=False construction cannot smuggle NaN/inf/negative
    weights past a strict symmetrization."""
    sym = get_symmetrization(name)
    for case_name in ("nan_weight", "inf_weight", "negative_weight"):
        with pytest.raises(SymmetrizationError, match="invalid input"):
            sym.apply(degenerate_case(case_name).build())


def test_random_walk_all_dangling_strict_raises():
    """Satellite: P = 0 must not silently produce an all-zero
    symmetrization in strict mode."""
    g = degenerate_case("all_dangling").build()
    with pytest.raises(SymmetrizationError, match="dangling"):
        get_symmetrization("random_walk").apply(g)


def test_random_walk_all_dangling_lenient_warns():
    g = degenerate_case("all_dangling").build()
    with lenient(), warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        u = get_symmetrization("random_walk").apply(g)
    assert u.adjacency.nnz == 0
    codes = {
        getattr(w.message, "code", None)
        for w in caught
        if isinstance(w.message, ReproWarning)
    }
    assert "all_dangling" in codes


# ---------------------------------------------------------------------------
# Full-matrix sweep: corpus x symmetrization x pruning x clusterer
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("clusterer", CLUSTERERS)
@pytest.mark.parametrize("name", SYMMETRIZATIONS)
@pytest.mark.parametrize("case", CORPUS, ids=CASE_IDS)
def test_lenient_full_matrix_sweep(case, name, clusterer):
    """The acceptance sweep: every corpus graph through every
    symmetrization and both clusterers with pruning, in lenient mode.
    Only the empty graph may raise (typed); everything else must
    produce a valid labeling."""
    pipe = SymmetrizeClusterPipeline(
        name, clusterer, threshold=0.25, mode="lenient"
    )
    g = case.build()
    n_clusters = min(2, g.n_nodes) or None
    with _quiet():
        try:
            result = pipe.run(g, n_clusters=n_clusters)
        except ClusteringError:
            assert case.name == "empty"
            return
    assert_valid_clustering(result.clustering, g.n_nodes)
    assert_valid_symmetrized(result.symmetrized)


# ---------------------------------------------------------------------------
# Pipeline modes: exact expectations per corpus case
# ---------------------------------------------------------------------------


@pytest.mark.fault_smoke
@pytest.mark.parametrize("case", CORPUS, ids=CASE_IDS)
def test_strict_pipeline_exact_outcomes(case):
    pipe = SymmetrizeClusterPipeline("random_walk", "mlrmcl", mode="strict")
    expected = STRICT_PIPELINE_EXPECT[case.name]
    g = case.build()
    if expected is None:
        with _quiet():
            result = pipe.run(g)
        assert_valid_clustering(result.clustering, g.n_nodes)
    else:
        with _quiet(), pytest.raises(expected):
            pipe.run(g)


@pytest.mark.fault_smoke
@pytest.mark.parametrize("case", CORPUS, ids=CASE_IDS)
def test_lenient_pipeline_repairs_everything_but_empty(case):
    pipe = SymmetrizeClusterPipeline("random_walk", "mlrmcl", mode="lenient")
    g = case.build()
    with _quiet():
        try:
            result = pipe.run(g)
        except ClusteringError:
            assert case.name == "empty"
            return
    assert_valid_clustering(result.clustering, g.n_nodes)
    codes = result.warning_codes()
    if case.malformed:
        assert "repaired_weights" in codes
    if case.name == "all_dangling":
        assert "all_dangling" in codes
        assert "edgeless_clustering" in codes
    for w in result.warnings:
        assert isinstance(w, PipelineWarning)
        assert w.stage in ("validate", "symmetrize", "cluster")
        assert w.code and w.message


def test_lenient_pipeline_warnings_do_not_leak():
    """Structured capture means lenient runs stay silent at the user's
    warning filters — everything lands on result.warnings instead."""
    pipe = SymmetrizeClusterPipeline("random_walk", "mlrmcl", mode="lenient")
    g = degenerate_case("nan_weight").build()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = pipe.run(g)
    assert not [w for w in caught if isinstance(w.message, ReproWarning)]
    assert "repaired_weights" in result.warning_codes()


def test_strict_is_the_default_mode():
    pipe = SymmetrizeClusterPipeline("naive", "mlrmcl")
    assert pipe.mode == "strict"
    with pytest.raises(ValidationError, match="finite"):
        pipe.run(degenerate_case("nan_weight").build())


# ---------------------------------------------------------------------------
# Differential: apply_pruned must match apply edge-for-edge
# ---------------------------------------------------------------------------


@pytest.mark.fault_smoke
@pytest.mark.parametrize("backend", ["python", "vectorized"])
@pytest.mark.parametrize("case", CORPUS, ids=CASE_IDS)
def test_apply_pruned_matches_apply_on_corpus(case, backend):
    """The §3.6 pruned fast path and the dense apply path must agree
    edge-for-edge on every corpus graph, ties included."""
    g = case.build()
    if case.malformed:
        g, _ = repair_graph(g)
    dd = DegreeDiscountedSymmetrization()
    thresholds = [0.05, 0.3]
    if case.tie_threshold is not None:
        thresholds.append(case.tie_threshold)
    with lenient(), _quiet():
        for t in thresholds:
            exact = dd.apply(g, threshold=t).adjacency
            fast = dd.apply_pruned(g, threshold=t, backend=backend).adjacency
            assert exact.indptr.tolist() == fast.indptr.tolist(), t
            assert exact.indices.tolist() == fast.indices.tolist(), t
            if exact.nnz:
                np.testing.assert_allclose(
                    fast.data, exact.data, rtol=1e-12, atol=0.0
                )


@pytest.mark.fault_smoke
@pytest.mark.parametrize("backend", ["python", "vectorized"])
def test_threshold_tie_survives_both_paths(backend):
    """Regression (satellite): a similarity that ties the prune
    threshold exactly must be kept by both paths. Before the relative
    tolerance fix, float drift in the pruned path's per-factor split
    dropped the tied edge on one side only."""
    case = degenerate_case("near_threshold_tie")
    g = case.build()
    t = case.tie_threshold
    dd = DegreeDiscountedSymmetrization()
    exact = dd.apply(g, threshold=t).adjacency
    fast = dd.apply_pruned(g, threshold=t, backend=backend).adjacency
    # Nodes 0 and 1 share out-neighbour 2 with d_in = 2: similarity is
    # exactly 2^-0.5, which is also the threshold.
    assert exact[0, 1] == pytest.approx(2.0 ** -0.5)
    assert fast[0, 1] == pytest.approx(2.0 ** -0.5)
    assert exact.nnz == fast.nnz


# ---------------------------------------------------------------------------
# Corpus self-checks
# ---------------------------------------------------------------------------


def test_corpus_names_unique_and_lookup():
    assert len(CASE_IDS) == len(set(CASE_IDS))
    assert degenerate_case("empty").name == "empty"
    with pytest.raises(KeyError, match="unknown degenerate case"):
        degenerate_case("no_such_case")


def test_corpus_builds_fresh_instances():
    case = degenerate_case("reciprocal_pair")
    assert case.build() is not case.build()


def test_corpus_malformed_filter():
    well_formed = degenerate_corpus(include_malformed=False)
    assert all(not c.malformed for c in well_formed)
    assert len(well_formed) < len(CORPUS)
