"""Smoke tests of the top-level public API surface."""

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_exception_hierarchy(self):
        for exc in (
            repro.GraphError,
            repro.GraphFormatError,
            repro.SymmetrizationError,
            repro.ClusteringError,
            repro.ConvergenceError,
            repro.EvaluationError,
            repro.DatasetError,
        ):
            assert issubclass(exc, repro.ReproError)
        assert issubclass(repro.GraphFormatError, repro.GraphError)
        assert issubclass(repro.ConvergenceError, repro.ClusteringError)

    def test_quickstart_docstring_flow(self):
        """The flow shown in the package docstring works verbatim."""
        ds = repro.make_cora_like(n_nodes=600, n_categories=12, seed=0)
        undirected = repro.symmetrize(ds.graph, "degree_discounted")
        clustering = repro.get_clusterer("metis").cluster(undirected, 12)
        score = repro.average_f_score(clustering, ds.ground_truth)
        assert 0.0 <= score <= 100.0

    def test_registries_consistent(self):
        assert set(repro.available_symmetrizations()) >= {
            "naive",
            "random_walk",
            "bibliometric",
            "degree_discounted",
        }
        assert set(repro.available_clusterers()) >= {
            "mlrmcl",
            "metis",
            "graclus",
            "spectral",
        }

    def test_errors_catchable_at_base(self):
        with pytest.raises(repro.ReproError):
            repro.get_symmetrization("bogus")
        with pytest.raises(repro.ReproError):
            repro.get_clusterer("bogus")
