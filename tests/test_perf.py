"""Tests for the :mod:`repro.perf` instrumentation layer and the
``repro bench`` harness (smoke mode, wired into CI per §3.6's
scalability claims)."""

import json
import time

import pytest

from repro.cli import main
from repro.exceptions import ReproError
from repro.graph.generators import power_law_digraph
from repro.perf import (
    PerfRecorder,
    Stopwatch,
    add_counters,
    current_recorder,
    record_stage,
    recording,
    timed,
)
from repro.perf.bench import (
    BENCH_SCHEMA,
    REQUIRED_RUN_KEYS,
    format_summary,
    run_bench,
    write_bench,
)
from repro.pipeline.pipeline import SymmetrizeClusterPipeline


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.seconds >= 0.005
        assert not sw.running

    def test_reentrant_accumulation(self):
        sw = Stopwatch()
        sw.start()
        first = sw.stop()
        sw.start()
        total = sw.stop()
        assert total >= first

    def test_counters_sum(self):
        sw = Stopwatch()
        sw.count(items=2)
        sw.count(items=3, other=1)
        assert sw.counters == {"items": 5.0, "other": 1.0}

    def test_reports_into_ambient_recorder(self):
        with recording() as rec:
            with Stopwatch("stage:test") as sw:
                sw.count(nnz=7)
        assert rec.stages["stage:test"].calls == 1
        assert rec.stages["stage:test"].counters["nnz"] == 7.0

    def test_stageless_reports_nowhere(self):
        with recording() as rec:
            with Stopwatch():
                pass
        assert rec.stages == {}


class TestRecorder:
    def test_accumulates_across_records(self):
        rec = PerfRecorder()
        rec.record("s", 1.0, pairs=2)
        rec.record("s", 0.5, pairs=3)
        assert rec.stages["s"].seconds == 1.5
        assert rec.stages["s"].calls == 2
        assert rec.stages["s"].counters["pairs"] == 5.0
        assert rec.total_seconds() == 1.5

    def test_add_counters_without_call(self):
        rec = PerfRecorder()
        rec.add_counters("s", pruned=10)
        assert rec.stages["s"].calls == 0
        assert rec.stages["s"].counters["pruned"] == 10.0

    def test_as_dict_roundtrips_through_json(self):
        rec = PerfRecorder()
        rec.record("a", 0.1, n=1)
        snapshot = json.loads(json.dumps(rec.as_dict()))
        assert snapshot["stages"][0]["name"] == "a"
        assert snapshot["total_seconds"] == pytest.approx(0.1)

    def test_report_mentions_stage_and_counters(self):
        rec = PerfRecorder()
        rec.record("allpairs:vectorized", 0.25, candidate_pairs=42)
        text = rec.report()
        assert "allpairs:vectorized" in text
        assert "candidate_pairs=42" in text
        assert PerfRecorder().report() == "(no stages recorded)"

    def test_ambient_noop_without_recorder(self):
        assert current_recorder() is None
        record_stage("s", 1.0)  # must not raise
        add_counters("s", n=1)

    def test_nested_recording_shadows(self):
        with recording() as outer:
            with recording() as inner:
                record_stage("x", 1.0)
            record_stage("y", 1.0)
        assert "x" in inner.stages and "x" not in outer.stages
        assert "y" in outer.stages


class TestTimed:
    def test_decorator_records_calls(self):
        @timed("demo:fn")
        def fn(value):
            return value * 2

        with recording() as rec:
            assert fn(21) == 42
            assert fn(1) == 2
        assert rec.stages["demo:fn"].calls == 2
        assert fn(3) == 6  # no recorder active: still works


class TestInstrumentationHooks:
    def test_pipeline_reports_stages(self, rng):
        g = power_law_digraph(80, rng)
        pipe = SymmetrizeClusterPipeline(
            "degree_discounted", "mlrmcl", threshold=0.05
        )
        result = pipe.run(g)
        names = {s["name"] for s in result.stages["stages"]}
        assert "pipeline:symmetrize" in names
        assert "pipeline:cluster" in names
        assert "symmetrize:degree_discounted" in names
        assert "cluster:mlrmcl" in names

    def test_pipeline_uses_ambient_recorder(self, rng):
        g = power_law_digraph(60, rng)
        pipe = SymmetrizeClusterPipeline("naive", "mlrmcl")
        with recording() as rec:
            pipe.run(g)
        assert "symmetrize:naive" in rec.stages
        assert rec.stages["pipeline:cluster"].counters["n_clusters"] > 0

    def test_allpairs_counters_flow_to_recorder(self, rng):
        from repro.linalg.allpairs import thresholded_gram_matrix
        import scipy.sparse as sp

        rows = sp.random_array(
            (30, 10), density=0.4, rng=rng, format="csr"
        )
        with recording() as rec:
            thresholded_gram_matrix(rows, 0.2, backend="vectorized")
        counters = rec.stages["allpairs:vectorized"].counters
        assert counters["rows"] == 30
        assert counters["candidate_pairs"] >= counters["kept_pairs"]
        assert (
            counters["pruned_pairs"]
            == counters["candidate_pairs"] - counters["kept_pairs"]
        )


class TestBenchSmoke:
    @pytest.fixture(scope="class")
    def smoke_results(self):
        # One 2k-node power-law graph at threshold 0.5 — the CI-grade
        # configuration the ISSUE pins: seconds-scale, both backends.
        return run_bench(smoke=True)

    def test_schema(self, smoke_results):
        assert smoke_results["schema"] == BENCH_SCHEMA
        for key in (
            "config",
            "environment",
            "runs",
            "speedups",
            "regression",
        ):
            assert key in smoke_results, key
        assert smoke_results["config"]["smoke"] is True
        for run in smoke_results["runs"]:
            assert REQUIRED_RUN_KEYS <= set(run), run
        kinds = {r["kind"] for r in smoke_results["runs"]}
        assert "symmetrize" in kinds
        reg = smoke_results["regression"]
        assert "min_speedup_vectorized" in reg["thresholds"]
        json.dumps(smoke_results)  # must be serializable

    def test_vectorized_not_slower_than_python(self, smoke_results):
        by_backend = {
            r["backend"]: r["seconds"]
            for r in smoke_results["runs"]
            if r["kind"] == "symmetrize" and r["n_nodes"] == 2000
        }
        assert by_backend["vectorized"] <= by_backend["python"]
        assert smoke_results["regression"]["passed"] is True
        assert smoke_results["speedups"]["2000@0.5"] >= 1.0

    def test_cluster_runs_carry_mcl_metrics(self, smoke_results):
        # The bench records MLR-MCL convergence behaviour per run via
        # the metrics registry (schema v2): iteration count and the
        # finest-level prune fraction.
        cluster_runs = [
            r for r in smoke_results["runs"] if r["kind"] == "cluster"
        ]
        assert cluster_runs
        for run in cluster_runs:
            assert run["metrics"]["mcl_iterations"] >= 1
            assert 0.0 <= run["metrics"]["mcl_prune_fraction"] <= 1.0
            assert run["metrics"]["mcl_final_flow_nnz"] > 0

    def test_symmetrize_runs_carry_engine_metrics(self, smoke_results):
        sym_runs = [
            r for r in smoke_results["runs"] if r["kind"] == "symmetrize"
        ]
        for run in sym_runs:
            assert "edges_pruned_total" in run["metrics"]
            assert "symmetrize_nnz_out" in run["metrics"]

    def test_backends_produce_same_edges(self, smoke_results):
        edges = {
            r["backend"]: r["edges_out"]
            for r in smoke_results["runs"]
            if r["kind"] == "symmetrize"
        }
        assert edges["python"] == edges["vectorized"]

    def test_write_and_summary(self, smoke_results, tmp_path):
        path = write_bench(smoke_results, tmp_path / "bench.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == BENCH_SCHEMA
        text = format_summary(smoke_results)
        assert "speedup" in text
        assert "regression: PASS" in text

    def test_rejects_empty_sweep(self):
        with pytest.raises(ReproError, match="at least one"):
            run_bench(sizes=[])


class TestBenchCli:
    def test_bench_subcommand(self, tmp_path, capsys):
        out = tmp_path / "BENCH_allpairs.json"
        code = main(
            [
                "bench",
                "--smoke",
                "--sizes",
                "400",
                "-t",
                "0.3",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        results = json.loads(out.read_text())
        assert results["schema"] == BENCH_SCHEMA
        assert results["config"]["sizes"] == [400]
        captured = capsys.readouterr().out
        assert "results written to" in captured
        assert "regression: PASS" in captured

    def test_bench_runlog_manifest(self, tmp_path, capsys):
        from repro.obs.manifest import read_manifests

        out = tmp_path / "bench.json"
        log = tmp_path / "bench_runs.jsonl"
        code = main(
            [
                "bench",
                "--smoke",
                "--sizes",
                "400",
                "-t",
                "0.3",
                "-o",
                str(out),
                "--runlog",
                str(log),
            ]
        )
        assert code == 0
        manifests = read_manifests(log)
        assert len(manifests) == 1
        manifest = manifests[0]
        assert manifest.kind == "bench"
        assert manifest.metrics["regression_passed"] == 1.0
        assert any(
            name.startswith("cluster.mcl_iterations")
            for name in manifest.metrics
        )
        assert manifest.timings  # one entry per benched run
