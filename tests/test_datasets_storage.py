"""Unit tests for :mod:`repro.datasets.storage`."""

import json

import numpy as np
import pytest

from repro.datasets import load_dataset, make_flickr_like, save_dataset
from repro.exceptions import DatasetError


class TestRoundTrip:
    def test_with_ground_truth(self, tmp_path, cora_small):
        save_dataset(cora_small, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.name == cora_small.name
        assert loaded.description == cora_small.description
        assert loaded.graph == cora_small.graph
        assert (
            loaded.ground_truth.n_categories
            == cora_small.ground_truth.n_categories
        )
        diff = (
            loaded.ground_truth.membership
            - cora_small.ground_truth.membership
        ).tocsr()
        diff.eliminate_zeros()
        assert diff.nnz == 0

    def test_overlapping_memberships_preserved(self, tmp_path, wiki_small):
        save_dataset(wiki_small, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        counts = np.asarray(
            loaded.ground_truth.membership.sum(axis=1)
        ).ravel()
        original = np.asarray(
            wiki_small.ground_truth.membership.sum(axis=1)
        ).ravel()
        assert np.array_equal(counts, original)
        assert (counts > 1).any()  # overlaps survived

    def test_without_ground_truth(self, tmp_path):
        ds = make_flickr_like(n_nodes=300, seed=1)
        save_dataset(ds, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.ground_truth is None
        assert loaded.graph == ds.graph

    def test_overwrite_replaces_truth(self, tmp_path, cora_small):
        target = tmp_path / "ds"
        save_dataset(cora_small, target)
        no_truth = make_flickr_like(n_nodes=200, seed=0)
        save_dataset(no_truth, target)
        loaded = load_dataset(target)
        assert loaded.ground_truth is None


class TestErrors:
    def test_refuses_file_path(self, tmp_path, cora_small):
        blocker = tmp_path / "file"
        blocker.write_text("hi")
        with pytest.raises(DatasetError, match="not a directory"):
            save_dataset(cora_small, blocker)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(DatasetError, match="saved dataset"):
            load_dataset(tmp_path / "nope")

    def test_malformed_meta(self, tmp_path, cora_small):
        target = tmp_path / "ds"
        save_dataset(cora_small, target)
        (target / "meta.json").write_text('{"name": "x"}')
        with pytest.raises(DatasetError, match="metadata"):
            load_dataset(target)

    def test_malformed_truth(self, tmp_path, cora_small):
        target = tmp_path / "ds"
        save_dataset(cora_small, target)
        (target / "ground_truth.json").write_text('{"bad": true}')
        with pytest.raises(DatasetError, match="ground truth"):
            load_dataset(target)

    def test_truth_size_mismatch(self, tmp_path, cora_small):
        target = tmp_path / "ds"
        save_dataset(cora_small, target)
        payload = json.loads(
            (target / "ground_truth.json").read_text()
        )
        payload["n_nodes"] = 3
        payload["memberships"] = [[0, 0]]
        (target / "ground_truth.json").write_text(
            json.dumps(payload)
        )
        with pytest.raises(DatasetError, match="covers"):
            load_dataset(target)
