"""Unit tests for :mod:`repro.pipeline.charts`."""

import pytest

from repro.exceptions import ReproError
from repro.pipeline.charts import ascii_chart, render_series_chart
from repro.pipeline.report import format_series


class TestAsciiChart:
    def test_contains_marks_and_legend(self):
        out = ascii_chart(
            {"a": ([1, 2, 3], [1, 4, 9]), "b": ([1, 2, 3], [9, 4, 1])}
        )
        assert "o" in out
        assert "x" in out
        assert "legend: o=a  x=b" in out

    def test_extremes_labeled(self):
        out = ascii_chart({"s": ([0, 10], [2.0, 8.0])})
        assert "8" in out
        assert "2" in out
        assert "10" in out

    def test_axis_labels(self):
        out = ascii_chart(
            {"s": ([0, 1], [0, 1])}, x_label="clusters",
            y_label="seconds",
        )
        assert "clusters" in out
        assert "seconds" in out

    def test_single_point(self):
        out = ascii_chart({"s": ([5], [3])})
        assert "o" in out

    def test_constant_series(self):
        out = ascii_chart({"s": ([1, 2, 3], [7, 7, 7])})
        plot_area = "\n".join(
            line for line in out.splitlines() if "|" in line
        )
        assert plot_area.count("o") == 3

    def test_dimensions(self):
        out = ascii_chart(
            {"s": ([0, 1], [0, 1])}, width=30, height=8
        )
        plot_lines = [
            line for line in out.splitlines() if "|" in line
        ]
        assert len(plot_lines) == 8

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            ascii_chart({})

    def test_rejects_tiny_area(self):
        with pytest.raises(ReproError):
            ascii_chart({"s": ([0], [0])}, width=2, height=2)

    def test_rejects_no_points(self):
        with pytest.raises(ReproError):
            ascii_chart({"s": ([], [])})


class TestRenderSeriesChart:
    def test_roundtrip_with_format_series(self):
        text = "\n".join(
            [
                format_series("dd", [10, 20], [1.0, 2.0], "k", "F"),
                format_series("naive", [10, 20], [2.0, 1.0], "k", "F"),
            ]
        )
        chart = render_series_chart(text)
        assert chart is not None
        assert "o=dd" in chart
        assert "x=naive" in chart
        assert "k" in chart

    def test_non_series_text_returns_none(self):
        assert render_series_chart("just a table\nwith rows") is None

    def test_malformed_points_skipped(self):
        text = "s [k -> F]: 1:2, bogus, 3:4"
        chart = render_series_chart(text)
        assert chart is not None
