"""Unit tests for the four concrete symmetrizations (§3.1–3.4).

These check the defining algebraic identities of each method against
hand-computed values and against dense numpy reference computations.
"""

import numpy as np
import pytest

from repro.exceptions import SymmetrizationError
from repro.graph import DirectedGraph
from repro.linalg.pagerank import pagerank, transition_matrix
from repro.symmetrize import (
    BibliometricSymmetrization,
    DegreeDiscountedSymmetrization,
    NaiveSymmetrization,
    RandomWalkSymmetrization,
    symmetrize,
)



def _inv_pow_diag(degrees, exponent):
    """Dense reference for D^-exponent with 0 -> 0 (no warnings)."""
    out = np.zeros_like(degrees, dtype=float)
    nz = degrees > 0
    out[nz] = degrees[nz] ** -exponent
    return np.diag(out)


def _inv_log_diag(degrees):
    """Dense reference for the 'log' discount with 0 -> 0."""
    out = np.zeros_like(degrees, dtype=float)
    nz = degrees > 0
    out[nz] = 1.0 / np.log1p(degrees[nz])
    return np.diag(out)


class TestNaive:
    def test_equals_a_plus_at(self, two_fans_digraph):
        A = two_fans_digraph.adjacency.todense()
        U = NaiveSymmetrization().compute_matrix(two_fans_digraph).todense()
        assert np.allclose(U, A + A.T)

    def test_bidirectional_weights_sum(self):
        g = DirectedGraph.from_edges([(0, 1, 2.0), (1, 0, 3.0)], n_nodes=2)
        u = symmetrize(g, "naive")
        assert u.edge_weight(0, 1) == 5.0

    def test_same_edge_set_as_input(self, two_fans_digraph):
        u = symmetrize(two_fans_digraph, "naive")
        for i, j, _ in two_fans_digraph.edges():
            assert u.has_edge(i, j)

    def test_figure1_pair_disconnected(self, figure1):
        g, roles = figure1
        u = symmetrize(g, "naive")
        a, b = roles["pair"]
        assert not u.has_edge(a, b)


class TestRandomWalk:
    def test_matches_dense_formula(self, two_fans_digraph):
        sym = RandomWalkSymmetrization(teleport=0.05, scale=1.0)
        U = sym.compute_matrix(two_fans_digraph).todense()
        P, _ = transition_matrix(two_fans_digraph)
        pi = pagerank(two_fans_digraph, teleport=0.05)
        Pi = np.diag(pi)
        Pd = P.todense()
        expected = (Pi @ Pd + Pd.T @ Pi) / 2.0
        assert np.allclose(U, expected)

    def test_same_edge_set_as_naive(self, two_fans_digraph):
        u_rw = symmetrize(two_fans_digraph, "random_walk")
        u_naive = symmetrize(two_fans_digraph, "naive")
        rw_edges = {(i, j) for i, j, _ in u_rw.edges()}
        naive_edges = {(i, j) for i, j, _ in u_naive.edges()}
        assert rw_edges == naive_edges

    def test_scale_n_default(self, triangle_digraph):
        unscaled = RandomWalkSymmetrization(scale=1.0).compute_matrix(
            triangle_digraph
        )
        scaled = RandomWalkSymmetrization().compute_matrix(triangle_digraph)
        assert np.allclose(
            scaled.todense(), unscaled.todense() * triangle_digraph.n_nodes
        )

    def test_gleich_ncut_equivalence(self, rng):
        """Gleich's theorem: undirected Ncut on the RW-symmetrized
        graph equals directed Ncut on the original, for any subset
        (§3.2). Holds exactly when pi is the stationary distribution
        of the same teleporting walk used in both computations — we
        verify with a tiny teleport and matched pi."""
        from repro.directed.objectives import ncut, ncut_directed
        from repro.graph.generators import directed_sbm
        from repro.graph.ugraph import UndirectedGraph

        g, _ = directed_sbm([8, 8], p_in=0.6, p_out=0.2, rng=rng)
        g = g.largest_weakly_connected_component()
        teleport = 1e-3
        pi = pagerank(g, teleport=teleport, tol=1e-14)
        # Build U = (Pi P + P^T Pi)/2 exactly (no teleport smoothing of
        # P itself, matching ncut_directed's use of the raw P).
        P, _ = transition_matrix(g)
        Pi = np.diag(pi)
        U = UndirectedGraph(
            (Pi @ P.todense() + P.todense().T @ Pi) / 2.0
        )
        subset = np.arange(g.n_nodes // 2)
        directed_value = ncut_directed(g, subset, pi=pi)
        undirected_value = ncut(U, subset)
        # pi is the stationary distribution of the *teleporting* walk,
        # so the identity holds up to O(teleport) error.
        assert directed_value == pytest.approx(undirected_value, rel=1e-3)

    def test_rejects_bad_teleport(self):
        with pytest.raises(SymmetrizationError):
            RandomWalkSymmetrization(teleport=0.0)

    def test_rejects_bad_scale_string(self):
        with pytest.raises(SymmetrizationError):
            RandomWalkSymmetrization(scale="huge")


class TestBibliometric:
    def test_matches_dense_formula_no_selfloops(self, two_fans_digraph):
        sym = BibliometricSymmetrization(add_self_loops=False)
        U = sym.compute_matrix(two_fans_digraph).todense()
        A = two_fans_digraph.adjacency.todense()
        assert np.allclose(U, A @ A.T + A.T @ A)

    def test_matches_dense_formula_with_selfloops(self, two_fans_digraph):
        sym = BibliometricSymmetrization(add_self_loops=True)
        U = sym.compute_matrix(two_fans_digraph).todense()
        A = two_fans_digraph.adjacency.todense() + np.eye(6)
        assert np.allclose(U, A @ A.T + A.T @ A)

    def test_counts_common_out_links(self):
        # 0 and 1 both cite 2 and 3: coupling weight 2.
        g = DirectedGraph.from_edges(
            [(0, 2), (0, 3), (1, 2), (1, 3)], n_nodes=4
        )
        sym = BibliometricSymmetrization(add_self_loops=False)
        u = sym.apply(g)
        assert u.edge_weight(0, 1) == 2.0

    def test_counts_common_in_links(self):
        # 2 and 3 are both cited by 0 and 1: co-citation weight 2.
        g = DirectedGraph.from_edges(
            [(0, 2), (0, 3), (1, 2), (1, 3)], n_nodes=4
        )
        sym = BibliometricSymmetrization(add_self_loops=False)
        u = sym.apply(g)
        assert u.edge_weight(2, 3) == 2.0

    def test_self_loop_trick_preserves_input_edges(self, two_fans_digraph):
        u = BibliometricSymmetrization(add_self_loops=True).apply(
            two_fans_digraph
        )
        for i, j, _ in two_fans_digraph.edges():
            assert u.has_edge(i, j), (i, j)

    def test_without_self_loop_trick_input_edges_can_vanish(
        self, triangle_digraph
    ):
        # In a 3-cycle no two nodes share a neighbour, so the pure
        # bibliometric matrix is empty off-diagonal.
        u = BibliometricSymmetrization(add_self_loops=False).apply(
            triangle_digraph
        )
        assert u.n_edges == 0

    def test_coupling_only_ablation(self):
        g = DirectedGraph.from_edges(
            [(0, 2), (1, 2), (3, 0), (3, 1)], n_nodes=4
        )
        coupling = BibliometricSymmetrization(
            add_self_loops=False, include_cocitation=False
        ).apply(g)
        assert coupling.edge_weight(0, 1) == 1.0  # share out-link 2

    def test_cocitation_only_ablation(self):
        g = DirectedGraph.from_edges(
            [(0, 2), (1, 2), (3, 0), (3, 1)], n_nodes=4
        )
        cocit = BibliometricSymmetrization(
            add_self_loops=False, include_coupling=False
        ).apply(g)
        assert cocit.edge_weight(0, 1) == 1.0  # share in-link 3
        assert not cocit.has_edge(2, 3)

    def test_rejects_both_parts_disabled(self):
        with pytest.raises(SymmetrizationError):
            BibliometricSymmetrization(
                include_coupling=False, include_cocitation=False
            )

    def test_figure1_pair_connected(self, figure1):
        g, roles = figure1
        u = BibliometricSymmetrization().apply(g)
        a, b = roles["pair"]
        # Shares 3 out-links and 3 in-links: weight >= 6.
        assert u.edge_weight(a, b) >= 6.0


class TestDegreeDiscounted:
    def test_matches_dense_formula(self, two_fans_digraph):
        sym = DegreeDiscountedSymmetrization(alpha=0.5, beta=0.5)
        U = sym.compute_matrix(two_fans_digraph).todense()
        A = two_fans_digraph.adjacency.todense()
        do = A.sum(axis=1)
        di = A.sum(axis=0)
        Do = _inv_pow_diag(do, 0.5)
        Di = _inv_pow_diag(di, 0.5)
        expected = Do @ A @ Di @ A.T @ Do + Di @ A.T @ Do @ A @ Di
        assert np.allclose(U, expected)

    def test_matches_dense_formula_general_alpha_beta(
        self, two_fans_digraph
    ):
        sym = DegreeDiscountedSymmetrization(alpha=0.75, beta=0.25)
        U = sym.compute_matrix(two_fans_digraph).todense()
        A = two_fans_digraph.adjacency.todense()
        do = A.sum(axis=1)
        di = A.sum(axis=0)
        Do = _inv_pow_diag(do, 0.75)
        Di = _inv_pow_diag(di, 0.25)
        expected = Do @ A @ Di @ A.T @ Do + Di @ A.T @ Do @ A @ Di
        assert np.allclose(U, expected)

    def test_hand_computed_value(self):
        # 0 -> 2 <- 1, all degrees 1: B_d(0,1) = 1/(1*1*1) = 1, and
        # C_d(0,1) = 0, so after averaging the matrix stays 1... but
        # apply() halves nothing; the weight is exactly 1/2 from each
        # of AB and BA? No: B_d(0, 1) = 1. C_d contributes 0.
        g = DirectedGraph.from_edges([(0, 2), (1, 2)], n_nodes=3)
        u = DegreeDiscountedSymmetrization().apply(g)
        # Di(2) = 2, so B_d(0,1) = 1/sqrt(2) per Eq. 6.
        assert u.edge_weight(0, 1) == pytest.approx(1.0 / np.sqrt(2.0))

    def test_hub_discount_reduces_weight(self):
        """Figure 3(a): shared high-in-degree target contributes less."""
        # Pair (0,1) shares target 2 (in-degree 2).
        light = DirectedGraph.from_edges([(0, 2), (1, 2)], n_nodes=3)
        # Pair (0,1) shares target 2 which many others also cite.
        heavy = DirectedGraph.from_edges(
            [(0, 2), (1, 2), (3, 2), (4, 2), (5, 2)], n_nodes=6
        )
        w_light = DegreeDiscountedSymmetrization().apply(light).edge_weight(
            0, 1
        )
        w_heavy = DegreeDiscountedSymmetrization().apply(heavy).edge_weight(
            0, 1
        )
        assert w_heavy < w_light

    def test_own_degree_discount(self):
        """Figure 3(b): a node with many out-links is less similar."""
        # i=0 and j=1 share target 2; node 1 also points elsewhere.
        g = DirectedGraph.from_edges(
            [(0, 2), (1, 2), (1, 3), (1, 4), (1, 5)], n_nodes=6
        )
        u = DegreeDiscountedSymmetrization().apply(g)
        g_light = DirectedGraph.from_edges([(0, 2), (1, 2)], n_nodes=3)
        u_light = DegreeDiscountedSymmetrization().apply(g_light)
        assert u.edge_weight(0, 1) < u_light.edge_weight(0, 1)

    def test_alpha_zero_beta_zero_is_undiscounted_pattern(
        self, two_fans_digraph
    ):
        dd = DegreeDiscountedSymmetrization(alpha=0.0, beta=0.0)
        bib = BibliometricSymmetrization(add_self_loops=False)
        U_dd = dd.compute_matrix(two_fans_digraph).todense()
        U_bib = bib.compute_matrix(two_fans_digraph).todense()
        assert np.allclose(U_dd, U_bib)

    def test_log_discount(self, two_fans_digraph):
        sym = DegreeDiscountedSymmetrization(alpha="log", beta="log")
        U = sym.compute_matrix(two_fans_digraph).todense()
        A = two_fans_digraph.adjacency.todense()
        do = A.sum(axis=1)
        di = A.sum(axis=0)
        Do = _inv_log_diag(do)
        Di = _inv_log_diag(di)
        expected = Do @ A @ Di @ A.T @ Do + Di @ A.T @ Do @ A @ Di
        assert np.allclose(U, expected)

    def test_same_pattern_as_bibliometric(self, rng):
        """§3.5: A^T A and the degree-discounted matrix share their
        non-zero structure (values differ)."""
        from repro.graph.generators import power_law_digraph

        g = power_law_digraph(100, rng)
        bib = BibliometricSymmetrization(add_self_loops=False)
        dd = DegreeDiscountedSymmetrization()
        pattern_bib = bib.compute_matrix(g)
        pattern_dd = dd.compute_matrix(g)
        pattern_bib.data[:] = 1.0
        pattern_dd.data[:] = 1.0
        assert (pattern_bib != pattern_dd).nnz == 0

    def test_weighted_vs_unweighted_degrees(self):
        g = DirectedGraph.from_edges(
            [(0, 2, 5.0), (1, 2, 1.0)], n_nodes=3
        )
        w = DegreeDiscountedSymmetrization(weighted_degrees=True).apply(g)
        unw = DegreeDiscountedSymmetrization(weighted_degrees=False).apply(g)
        assert w.edge_weight(0, 1) != unw.edge_weight(0, 1)

    def test_rejects_negative_exponents(self):
        with pytest.raises(SymmetrizationError):
            DegreeDiscountedSymmetrization(alpha=-0.5)
        with pytest.raises(SymmetrizationError):
            DegreeDiscountedSymmetrization(beta=-1)

    def test_rejects_unknown_string(self):
        with pytest.raises(SymmetrizationError, match="log"):
            DegreeDiscountedSymmetrization(alpha="sqrt")

    def test_rejects_both_parts_disabled(self):
        with pytest.raises(SymmetrizationError):
            DegreeDiscountedSymmetrization(
                include_coupling=False, include_cocitation=False
            )

    def test_figure1_pair_connected(self, figure1):
        g, roles = figure1
        u = DegreeDiscountedSymmetrization().apply(g)
        a, b = roles["pair"]
        assert u.has_edge(a, b)

    def test_repr(self):
        assert "0.5" in repr(DegreeDiscountedSymmetrization())
