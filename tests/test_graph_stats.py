"""Unit tests for :mod:`repro.graph.stats`."""

import numpy as np
import pytest

from repro.graph import DirectedGraph
from repro.graph.stats import (
    degree_histogram,
    degree_summary,
    log_binned_degree_histogram,
    percent_symmetric_links,
    power_law_exponent_estimate,
    undirected_degree_summary,
)


class TestReciprocity:
    def test_fully_symmetric(self):
        g = DirectedGraph.from_edges([(0, 1), (1, 0)], n_nodes=2)
        assert percent_symmetric_links(g) == 100.0

    def test_fully_asymmetric(self, triangle_digraph):
        assert percent_symmetric_links(triangle_digraph) == 0.0

    def test_half_symmetric(self):
        g = DirectedGraph.from_edges(
            [(0, 1), (1, 0), (1, 2), (2, 3)], n_nodes=4
        )
        assert percent_symmetric_links(g) == 50.0

    def test_empty_graph(self):
        assert percent_symmetric_links(DirectedGraph.empty(3)) == 0.0

    def test_self_loop_counts_symmetric(self):
        g = DirectedGraph.from_edges([(0, 0)], n_nodes=1)
        assert percent_symmetric_links(g) == 100.0


class TestHistograms:
    def test_degree_histogram_counts(self):
        values, counts = degree_histogram(np.array([1, 1, 2, 5]))
        assert values.tolist() == [1, 2, 5]
        assert counts.tolist() == [2, 1, 1]

    def test_degree_histogram_max_degree_filter(self):
        values, counts = degree_histogram(
            np.array([1, 2, 100]), max_degree=10
        )
        assert 100 not in values

    def test_degree_histogram_empty(self):
        values, counts = degree_histogram(np.array([]))
        assert values.size == 0

    def test_log_binned_total_preserved(self):
        deg = np.array([1, 2, 3, 10, 100, 1000])
        centers, counts = log_binned_degree_histogram(deg, n_bins=5)
        assert counts.sum() == 6

    def test_log_binned_excludes_zeros(self):
        centers, counts = log_binned_degree_histogram(
            np.array([0, 0, 5]), n_bins=3
        )
        assert counts.sum() == 1

    def test_log_binned_single_value(self):
        centers, counts = log_binned_degree_histogram(np.array([7.0, 7.0]))
        assert centers.tolist() == [7.0]
        assert counts.tolist() == [2]

    def test_log_binned_all_zero(self):
        centers, counts = log_binned_degree_histogram(np.zeros(5))
        assert centers.size == 0


class TestDegreeSummary:
    def test_basic_stats(self):
        s = degree_summary(np.array([0.0, 10.0, 100.0, 300.0]))
        assert s.n_nodes == 4
        assert s.n_isolated == 1
        assert s.max == 300.0
        assert s.frac_in_medium_band == 0.25  # only 100 in [50, 200]
        assert s.frac_hubs == 0.25  # only 300 above 200

    def test_empty(self):
        s = degree_summary(np.array([]))
        assert s.n_nodes == 0
        assert s.frac_hubs == 0.0

    def test_custom_band(self):
        s = degree_summary(np.array([5.0, 15.0]), band=(1.0, 10.0))
        assert s.frac_in_medium_band == 0.5
        assert s.frac_hubs == 0.5

    def test_undirected_graph_wrapper(self, small_weighted_ugraph):
        s = undirected_degree_summary(
            small_weighted_ugraph, band=(2.0, 3.0)
        )
        assert s.n_nodes == 6
        assert s.n_isolated == 0


class TestPowerLawEstimate:
    def test_recovers_exponent(self, rng):
        # Sample from a known continuous Pareto with tail index 2.5.
        u = rng.random(100_000)
        degrees = (1.0 - u) ** (-1.0 / 1.5)  # gamma = 2.5
        estimate = power_law_exponent_estimate(degrees, d_min=1.0)
        assert estimate == pytest.approx(2.5, abs=0.05)

    def test_too_few_samples(self):
        assert np.isnan(power_law_exponent_estimate(np.array([3.0])))

    def test_degenerate_all_at_dmin(self):
        est = power_law_exponent_estimate(np.array([1.0, 1.0, 1.0]))
        assert est == float("inf")
