"""Unit tests for :mod:`repro.linalg.sparse_utils`."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphError, SymmetrizationError
from repro.linalg.sparse_utils import (
    degree_power,
    degree_scale,
    prune_matrix,
    row_normalize,
    sample_rows_similarity,
    top_k_entries,
)


def _mat(dense):
    return sp.csr_array(np.asarray(dense, dtype=float))


class TestRowNormalize:
    def test_rows_sum_to_one(self):
        m = row_normalize(_mat([[1, 3], [2, 2]]))
        assert np.allclose(np.asarray(m.sum(axis=1)).ravel(), 1.0)

    def test_zero_rows_stay_zero(self):
        m = row_normalize(_mat([[0, 0], [1, 1]]))
        assert m[[0], :].sum() == 0.0


class TestDegreePower:
    def test_positive_degrees(self):
        out = degree_power(np.array([4.0, 9.0]), 0.5)
        assert np.allclose(out, [0.5, 1.0 / 3.0])

    def test_zero_degree_maps_to_zero(self):
        out = degree_power(np.array([0.0, 1.0]), 0.5)
        assert out[0] == 0.0

    def test_exponent_zero_is_indicator(self):
        out = degree_power(np.array([0.0, 5.0]), 0.0)
        assert out.tolist() == [0.0, 1.0]

    def test_rejects_negative_degrees(self):
        with pytest.raises(SymmetrizationError):
            degree_power(np.array([-1.0]), 0.5)


class TestDegreeScale:
    def test_row_and_col_scaling(self):
        m = degree_scale(
            _mat([[1, 2], [3, 4]]),
            row_factors=np.array([2.0, 1.0]),
            col_factors=np.array([1.0, 10.0]),
        )
        dense = m.todense()
        assert dense[0, 0] == 2.0
        assert dense[0, 1] == 40.0

    def test_none_factors_identity(self):
        m = _mat([[1, 2], [3, 4]])
        assert np.allclose(degree_scale(m).todense(), m.todense())

    def test_rejects_bad_lengths(self):
        with pytest.raises(GraphError):
            degree_scale(_mat([[1]]), row_factors=np.ones(3))
        with pytest.raises(GraphError):
            degree_scale(_mat([[1]]), col_factors=np.ones(3))


class TestPruneMatrix:
    def test_drops_below_threshold(self):
        m = prune_matrix(_mat([[0.5, 2.0], [3.0, 0.1]]), 1.0)
        assert m.nnz == 2
        assert m.todense()[0, 1] == 2.0

    def test_threshold_is_inclusive(self):
        m = prune_matrix(_mat([[1.0]]), 1.0)
        assert m.nnz == 1

    def test_zero_threshold_keeps_everything(self):
        m = prune_matrix(_mat([[0.001, 5.0]]), 0.0)
        assert m.nnz == 2

    def test_keep_diagonal(self):
        m = prune_matrix(
            _mat([[0.1, 5.0], [5.0, 0.1]]), 1.0, keep_diagonal=True
        )
        assert m.todense()[0, 0] == 0.1

    def test_rejects_negative_threshold(self):
        with pytest.raises(SymmetrizationError):
            prune_matrix(_mat([[1.0]]), -1.0)

    def test_monotone_in_threshold(self, rng):
        m = sp.random_array((50, 50), density=0.2, rng=rng, format="csr")
        prev = m.nnz
        for threshold in [0.2, 0.5, 0.8]:
            pruned = prune_matrix(m, threshold)
            assert pruned.nnz <= prev
            prev = pruned.nnz


class TestTopK:
    def test_descending_order(self):
        m = _mat([[0, 3, 1], [3, 0, 7], [1, 7, 0]])
        top = top_k_entries(m, 2)
        assert top[0][2] == 7.0
        assert top[1][2] == 3.0

    def test_upper_triangle_dedup(self):
        m = _mat([[0, 5], [5, 0]])
        top = top_k_entries(m, 10)
        assert len(top) == 1
        assert top[0][:2] == (0, 1)

    def test_diagonal_excluded(self):
        m = _mat([[9, 1], [1, 9]])
        top = top_k_entries(m, 10)
        assert all(i != j for i, j, _ in top)

    def test_include_diagonal_and_lower(self):
        m = _mat([[9, 1], [1, 9]])
        top = top_k_entries(
            m, 10, upper_triangle_only=False, exclude_diagonal=False
        )
        assert len(top) == 4

    def test_k_zero(self):
        assert top_k_entries(_mat([[0, 1], [1, 0]]), 0) == []

    def test_k_larger_than_entries(self):
        m = _mat([[0, 2], [2, 0]])
        assert len(top_k_entries(m, 100)) == 1

    def test_rejects_negative_k(self):
        with pytest.raises(GraphError):
            top_k_entries(_mat([[1]]), -1)


class TestSampleRows:
    def test_returns_nonzeros_of_sampled_rows(self, rng):
        m = _mat([[1, 0], [0, 2]])
        values = sample_rows_similarity(m, 2, rng)
        assert sorted(values.tolist()) == [1.0, 2.0]

    def test_sample_size_capped(self, rng):
        m = _mat([[1, 1], [1, 1]])
        values = sample_rows_similarity(m, 100, rng)
        assert values.size == 4

    def test_empty_matrix(self, rng):
        values = sample_rows_similarity(sp.csr_array((0, 0)), 5, rng)
        assert values.size == 0
