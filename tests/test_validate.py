"""Unit tests for :mod:`repro.validate.invariants`."""

import warnings

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import (
    DegenerateGraphWarning,
    GraphError,
    RepairWarning,
    SymmetrizationError,
    ValidationError,
    ValidationWarning,
)
from repro.graph import DirectedGraph, UndirectedGraph
from repro.validate import (
    ValidationIssue,
    ValidationReport,
    check_all_zero,
    check_dangling_nodes,
    check_finite_weights,
    check_isolated_nodes,
    check_non_negative_weights,
    check_self_loops,
    check_square,
    check_symmetric,
    check_zero_diagonal,
    coerce_level,
    degenerate_event,
    is_strict,
    lenient,
    repair_graph,
    repair_matrix,
    strictness,
    validate_directed_graph,
    validate_edge_list,
    validate_symmetrization_output,
    validate_undirected_graph,
)


def _csr(rows, cols, vals, n):
    return sp.coo_array(
        (np.asarray(vals, dtype=float), (rows, cols)), shape=(n, n)
    ).tocsr()


class TestCoerceLevel:
    def test_bools(self):
        assert coerce_level(True) == "basic"
        assert coerce_level(False) == "none"

    def test_strings(self):
        for level in ("none", "basic", "full"):
            assert coerce_level(level) == level

    def test_rejects_unknown(self):
        with pytest.raises(ValidationError, match="validate must be"):
            coerce_level("paranoid")


class TestValidationIssue:
    def test_rejects_bad_severity(self):
        with pytest.raises(ValueError, match="severity"):
            ValidationIssue("x", "fatal", "boom")

    def test_frozen(self):
        issue = ValidationIssue("x", "error", "boom")
        with pytest.raises(AttributeError):
            issue.code = "y"


class TestValidationReport:
    def test_empty_is_ok(self):
        report = ValidationReport()
        assert report.ok
        assert bool(report)
        assert report.summary() == "ok"
        report.raise_errors()  # no-op

    def test_severity_split(self):
        report = ValidationReport(
            (
                ValidationIssue("a", "warning", "w"),
                ValidationIssue("b", "error", "e"),
            )
        )
        assert not report.ok
        assert [i.code for i in report.errors] == ["b"]
        assert [i.code for i in report.warnings] == ["a"]

    def test_add_merges(self):
        a = ValidationReport((ValidationIssue("a", "warning", "w"),))
        b = ValidationReport((ValidationIssue("b", "error", "e"),))
        merged = a + b
        assert len(merged.issues) == 2
        assert not merged.ok

    def test_summary_orders_errors_first(self):
        report = ValidationReport(
            (
                ValidationIssue("warn_code", "warning", "later"),
                ValidationIssue("err_code", "error", "first"),
            )
        )
        text = report.summary()
        assert text.index("err_code") < text.index("warn_code")

    def test_raise_errors_carries_report(self):
        report = ValidationReport(
            (ValidationIssue("bad", "error", "broken thing"),)
        )
        with pytest.raises(ValidationError, match="broken thing") as info:
            report.raise_errors()
        assert info.value.report is report

    def test_raise_errors_custom_type(self):
        report = ValidationReport((ValidationIssue("bad", "error", "x"),))
        with pytest.raises(SymmetrizationError):
            report.raise_errors(SymmetrizationError)

    def test_emit_warnings_sets_codes(self):
        report = ValidationReport(
            (ValidationIssue("self_loops", "warning", "2 loops"),)
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report.emit_warnings()
        assert len(caught) == 1
        assert isinstance(caught[0].message, ValidationWarning)
        assert caught[0].message.code == "self_loops"


class TestMatrixChecks:
    def test_square_ok_and_bad(self):
        assert check_square(sp.csr_array((3, 3))) == []
        issues = check_square(sp.csr_array((2, 3)))
        assert issues[0].code == "non_square"
        assert issues[0].severity == "error"

    def test_finite_weights(self):
        m = _csr([0, 1], [1, 2], [1.0, np.nan], 3)
        (issue,) = check_finite_weights(m)
        assert issue.code == "non_finite_weights"
        assert issue.count == 1
        assert check_finite_weights(_csr([0], [1], [1.0], 2)) == []

    def test_non_negative_weights(self):
        m = _csr([0, 1], [1, 2], [1.0, -3.0], 3)
        (issue,) = check_non_negative_weights(m)
        assert issue.code == "negative_weights"
        assert issue.count == 1

    def test_negative_check_ignores_nan(self):
        # NaN < 0 comparisons must not blow up or miscount.
        m = _csr([0], [1], [np.nan], 2)
        assert check_non_negative_weights(m) == []

    def test_self_loops(self):
        m = _csr([0, 1], [0, 2], [1.0, 1.0], 3)
        (issue,) = check_self_loops(m)
        assert issue.code == "self_loops"
        assert issue.severity == "warning"
        assert 0 in issue.nodes

    def test_dangling_and_isolated(self):
        # Node 2 has no out-edges (dangling); node 3 has none at all.
        m = _csr([0, 1], [1, 2], [1.0, 1.0], 4)
        (dangling,) = check_dangling_nodes(m)
        assert dangling.severity == "warning"
        assert 2 in dangling.nodes and 3 in dangling.nodes
        (isolated,) = check_isolated_nodes(m)
        assert isolated.nodes == (3,)

    def test_all_dangling_message(self):
        (issue,) = check_dangling_nodes(sp.csr_array((4, 4)))
        assert "every node" in issue.message

    def test_symmetric(self):
        sym = _csr([0, 1], [1, 0], [2.0, 2.0], 2)
        assert check_symmetric(sym) == []
        asym = _csr([0], [1], [2.0], 2)
        (issue,) = check_symmetric(asym)
        assert issue.code == "asymmetric"
        assert issue.severity == "error"

    def test_zero_diagonal(self):
        m = _csr([0], [0], [1.0], 2)
        (issue,) = check_zero_diagonal(m)
        assert issue.code == "nonzero_diagonal"

    def test_all_zero_needs_input_edges(self):
        empty = sp.csr_array((3, 3))
        assert check_all_zero(empty, had_input_edges=False) == []
        (issue,) = check_all_zero(empty, had_input_edges=True)
        assert issue.severity == "error"


class TestGraphValidators:
    def test_directed_levels(self):
        m = _csr([0], [1], [1.0], 3)  # node 2 isolated
        assert validate_directed_graph(m, level="none").issues == ()
        basic = validate_directed_graph(m, level="basic")
        assert basic.ok and not basic.warnings
        full = validate_directed_graph(m, level="full")
        assert full.ok
        assert {i.code for i in full.warnings} >= {
            "dangling_nodes",
            "isolated_nodes",
        }

    def test_directed_rejects_nan(self):
        m = _csr([0], [1], [np.nan], 2)
        report = validate_directed_graph(m, level="basic")
        assert not report.ok

    def test_undirected_adds_symmetry(self):
        m = _csr([0], [1], [1.0], 2)
        assert validate_directed_graph(m, level="basic").ok
        assert not validate_undirected_graph(m, level="basic").ok

    def test_symmetrization_output_contract(self):
        good = _csr([0, 1], [1, 0], [1.0, 1.0], 2)
        assert validate_symmetrization_output(good).ok
        zero = sp.csr_array((2, 2))
        assert not validate_symmetrization_output(
            zero, had_input_edges=True
        ).ok
        assert validate_symmetrization_output(
            zero, had_input_edges=False
        ).ok

    def test_edge_list_checks(self):
        report = validate_edge_list([(0, 1), (-1, 2)])
        assert not report.ok
        report = validate_edge_list([(0, 1, np.inf)])
        assert not report.ok
        report = validate_edge_list([(0, 1), (0, 1), (1, 2)])
        assert report.ok
        assert {i.code for i in report.warnings} == {"duplicate_edges"}


class TestRepair:
    def test_repair_matrix_drops_bad_entries(self):
        m = _csr([0, 1, 2], [1, 2, 0], [1.0, np.nan, -2.0], 3)
        fixed, report = repair_matrix(m)
        assert fixed.nnz == 1
        assert fixed[0, 1] == 1.0
        assert report.warnings  # describes what was dropped
        assert np.all(np.isfinite(fixed.data))

    def test_repair_matrix_noop_on_clean(self):
        m = _csr([0], [1], [1.0], 2)
        fixed, report = repair_matrix(m)
        assert report.issues == ()
        assert (fixed != m).nnz == 0

    def test_repair_graph_directed(self):
        bad = DirectedGraph(
            _csr([0, 1], [1, 2], [1.0, np.nan], 3), validate=False
        )
        fixed, report = repair_graph(bad)
        assert isinstance(fixed, DirectedGraph)
        assert fixed.n_edges == 1
        assert validate_directed_graph(fixed.adjacency, level="basic").ok

    def test_repair_graph_undirected_stays_symmetric(self):
        m = _csr([0, 1, 1, 2], [1, 0, 2, 1], [1.0, 1.0, -1.0, -1.0], 3)
        bad = UndirectedGraph(m, validate=False)
        fixed, _ = repair_graph(bad)
        adj = fixed.adjacency
        assert (abs(adj - adj.T).max() if adj.nnz else 0.0) == 0.0

    def test_repair_graph_rejects_non_square(self):
        with pytest.raises(ValidationError, match="square"):
            repair_graph(sp.csr_array((2, 3)))


class TestStrictnessContext:
    def test_default_is_strict(self):
        assert is_strict()

    def test_nesting_restores(self):
        with lenient():
            assert not is_strict()
            with strictness(True):
                assert is_strict()
            assert not is_strict()
        assert is_strict()

    def test_degenerate_event_raises_in_strict(self):
        with pytest.raises(SymmetrizationError, match="collapsed"):
            degenerate_event("stage collapsed", SymmetrizationError)

    def test_degenerate_event_warns_in_lenient(self):
        with lenient(), warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            degenerate_event(
                "stage collapsed", SymmetrizationError, code="collapse"
            )
        assert len(caught) == 1
        assert isinstance(caught[0].message, DegenerateGraphWarning)
        assert caught[0].message.code == "collapse"


class TestConstructorIntegration:
    def test_digraph_validate_levels(self):
        m = _csr([0], [1], [1.0], 3)
        DirectedGraph(m)  # basic, clean: silent
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            DirectedGraph(m, validate="full")
        assert any(
            isinstance(w.message, ValidationWarning) for w in caught
        )

    def test_digraph_rejects_nan_by_default(self):
        with pytest.raises(GraphError, match="finite"):
            DirectedGraph(_csr([0], [1], [np.nan], 2))

    def test_digraph_validate_false_skips(self):
        g = DirectedGraph(_csr([0], [1], [np.nan], 2), validate=False)
        assert g.n_nodes == 2

    def test_digraph_rejects_bad_level(self):
        with pytest.raises(GraphError, match="validate"):
            DirectedGraph(_csr([0], [1], [1.0], 2), validate="bogus")

    def test_ugraph_rejects_asymmetric(self):
        with pytest.raises(GraphError, match="symmetric"):
            UndirectedGraph(_csr([0], [1], [1.0], 2))


class TestWarningTaxonomy:
    def test_codes(self):
        assert ValidationWarning("m").code == "validation"
        assert DegenerateGraphWarning("m").code == "degenerate"
        assert RepairWarning("m").code == "repaired"
        assert RepairWarning("m", code="custom").code == "custom"

    def test_all_are_user_warnings(self):
        for cls in (
            ValidationWarning,
            DegenerateGraphWarning,
            RepairWarning,
        ):
            assert issubclass(cls, UserWarning)
