"""Unit tests for :mod:`repro.eval.agreement` (purity, NMI, ARI)."""

import numpy as np
import pytest

from repro.cluster.common import Clustering
from repro.eval.agreement import (
    adjusted_rand_index,
    flatten_ground_truth,
    normalized_mutual_information,
    purity,
)
from repro.eval.groundtruth import GroundTruth
from repro.exceptions import EvaluationError


IDENTICAL = (np.array([0, 0, 1, 1, 2]), np.array([2, 2, 0, 0, 1]))


class TestPurity:
    def test_identical_partitions(self):
        assert purity(*IDENTICAL) == 1.0

    def test_hand_computed(self):
        labels = np.array([0, 0, 0, 1])
        truth = np.array([0, 0, 1, 1])
        # Cluster 0 majority 2/3, cluster 1 majority 1/1 -> 3/4.
        assert purity(labels, truth) == 0.75

    def test_singleton_gaming(self):
        truth = np.array([0, 0, 1, 1])
        assert purity(np.arange(4), truth) == 1.0  # purity is gameable

    def test_rejects_mismatched(self):
        with pytest.raises(EvaluationError):
            purity(np.array([0]), np.array([0, 1]))

    def test_rejects_negative(self):
        with pytest.raises(EvaluationError, match="non-negative"):
            purity(np.array([-1, 0]), np.array([0, 0]))

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError):
            purity(np.array([], dtype=int), np.array([], dtype=int))


class TestNMI:
    def test_identical_partitions(self):
        assert normalized_mutual_information(*IDENTICAL) == (
            pytest.approx(1.0)
        )

    def test_independent_partitions_near_zero(self, rng):
        a = rng.integers(0, 4, size=5000)
        b = rng.integers(0, 4, size=5000)
        assert normalized_mutual_information(a, b) < 0.01

    def test_single_cluster_degenerate(self):
        labels = np.zeros(5, dtype=int)
        truth = np.array([0, 0, 1, 1, 1])
        assert normalized_mutual_information(labels, truth) == 0.0

    def test_both_single_identical(self):
        labels = np.zeros(4, dtype=int)
        assert normalized_mutual_information(labels, labels) == 1.0

    def test_symmetric(self, rng):
        a = rng.integers(0, 3, size=100)
        b = rng.integers(0, 5, size=100)
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a)
        )

    def test_bounded(self, rng):
        a = rng.integers(0, 6, size=200)
        b = rng.integers(0, 3, size=200)
        value = normalized_mutual_information(a, b)
        assert 0.0 <= value <= 1.0


class TestARI:
    def test_identical_partitions(self):
        assert adjusted_rand_index(*IDENTICAL) == pytest.approx(1.0)

    def test_independent_near_zero(self, rng):
        a = rng.integers(0, 4, size=5000)
        b = rng.integers(0, 4, size=5000)
        assert abs(adjusted_rand_index(a, b)) < 0.01

    def test_symmetric(self, rng):
        a = rng.integers(0, 3, size=100)
        b = rng.integers(0, 5, size=100)
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )

    def test_hand_computed(self):
        labels = np.array([0, 0, 1, 1, 1])
        truth = np.array([0, 0, 0, 1, 1])
        # Contingency {{2,0},{1,2}}: sum_cells C2 = 2, rows = 4,
        # cols = 4, total pairs = 10 -> ARI = (2 - 1.6)/(4 - 1.6).
        value = adjusted_rand_index(labels, truth)
        assert value == pytest.approx((2 - 1.6) / (4 - 1.6))

    def test_all_singletons_vs_one_cluster(self):
        labels = np.arange(6)
        truth = np.zeros(6, dtype=int)
        assert adjusted_rand_index(labels, truth) == 0.0


class TestFlatten:
    def test_excludes_unlabeled(self):
        c = Clustering([0, 0, 1, 1])
        gt = GroundTruth.from_labels([0, -1, 1, 1])
        labels, truth = flatten_ground_truth(c, gt)
        assert labels.size == 3
        assert truth.size == 3

    def test_first_category_wins_for_overlap(self):
        c = Clustering([0, 1])
        gt = GroundTruth.from_categories(
            {"a": [0, 1], "b": [0]}, n_nodes=2
        )
        _, truth = flatten_ground_truth(c, gt)
        assert truth.tolist() == [0, 0]

    def test_rejects_size_mismatch(self):
        c = Clustering([0, 1])
        gt = GroundTruth.from_labels([0, 1, 2])
        with pytest.raises(EvaluationError):
            flatten_ground_truth(c, gt)

    def test_rejects_fully_unlabeled(self):
        c = Clustering([0, 1])
        gt = GroundTruth.from_labels([-1, -1])
        with pytest.raises(EvaluationError):
            flatten_ground_truth(c, gt)

    def test_end_to_end_with_metrics(self, cora_small):
        import repro

        u = repro.symmetrize(
            cora_small.graph, "degree_discounted", threshold=0.05
        )
        clustering = repro.MetisClusterer().cluster(u, 12)
        labels, truth = flatten_ground_truth(
            clustering, cora_small.ground_truth
        )
        nmi = normalized_mutual_information(labels, truth)
        ari = adjusted_rand_index(labels, truth)
        # Cross-check: the F-winner also wins on NMI/ARI vs random.
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 12, size=labels.size)
        assert nmi > normalized_mutual_information(
            random_labels, truth
        )
        assert ari > adjusted_rand_index(random_labels, truth)
