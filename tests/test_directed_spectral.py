"""Tests for the directed spectral baselines (Laplacian, Zhou, WCut)."""

import numpy as np
import pytest

from repro.directed.laplacian import (
    directed_laplacian,
    directed_normalized_adjacency,
)
from repro.directed.wcut import WCutSpectral, best_wcut
from repro.directed.zhou import ZhouDirectedSpectral
from repro.exceptions import ClusteringError
from repro.graph import DirectedGraph
from repro.graph.generators import directed_sbm


@pytest.fixture
def two_block_digraph(rng):
    g, labels = directed_sbm([15, 15], p_in=0.5, p_out=0.03, rng=rng)
    return g, labels


class TestDirectedLaplacian:
    def test_symmetric(self, two_block_digraph):
        g, _ = two_block_digraph
        L = directed_laplacian(g)
        assert abs(L - L.T).max() < 1e-12

    def test_positive_semidefinite_up_to_teleport_error(
        self, two_block_digraph
    ):
        # Chung's L is exactly PSD when pi is the stationary
        # distribution of P itself; with the teleported pi the paper's
        # setup uses, PSD holds up to O(teleport) error.
        g, _ = two_block_digraph
        L = directed_laplacian(g, teleport=0.05).todense()
        eigvals = np.linalg.eigvalsh(L)
        assert eigvals.min() > -0.05

    def test_exactly_psd_on_strongly_connected_graph(self):
        # A directed cycle is strongly connected with uniform pi; with
        # a tiny teleport the PSD property holds to high precision.
        n = 12
        g = DirectedGraph.from_edges(
            [(i, (i + 1) % n) for i in range(n)], n_nodes=n
        )
        L = directed_laplacian(g, teleport=1e-6).todense()
        eigvals = np.linalg.eigvalsh(L)
        assert eigvals.min() > -1e-4

    def test_adjacency_plus_laplacian_is_identity(self, two_block_digraph):
        g, _ = two_block_digraph
        L = directed_laplacian(g).todense()
        theta = directed_normalized_adjacency(g).todense()
        assert np.allclose(L + theta, np.eye(g.n_nodes))

    def test_spectrum_bounded_by_one_on_strongly_connected_graph(self):
        n = 12
        g = DirectedGraph.from_edges(
            [(i, (i + 1) % n) for i in range(n)]
            + [(i, (i + 2) % n) for i in range(n)],
            n_nodes=n,
        )
        theta = directed_normalized_adjacency(g, teleport=1e-6).todense()
        eigvals = np.linalg.eigvalsh(theta)
        assert eigvals.max() <= 1.0 + 1e-4


def _block_accuracy(labels, truth):
    """Fraction of same-block pairs that share a predicted label."""
    agree = 0
    total = 0
    for c in np.unique(truth):
        members = np.flatnonzero(truth == c)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                total += 1
                if labels[members[i]] == labels[members[j]]:
                    agree += 1
    return agree / max(total, 1)


class TestZhou:
    def test_recovers_two_blocks(self, two_block_digraph):
        g, truth = two_block_digraph
        c = ZhouDirectedSpectral().cluster(g, 2)
        assert c.n_clusters == 2
        assert _block_accuracy(c.labels, truth) > 0.8

    def test_rejects_undirected_input(self, small_weighted_ugraph):
        with pytest.raises(ClusteringError, match="DirectedGraph"):
            ZhouDirectedSpectral().cluster(small_weighted_ugraph, 2)

    def test_rejects_bad_k(self, two_block_digraph):
        g, _ = two_block_digraph
        with pytest.raises(ClusteringError):
            ZhouDirectedSpectral().cluster(g, 0)
        with pytest.raises(ClusteringError):
            ZhouDirectedSpectral().cluster(g, g.n_nodes + 1)

    def test_repr(self):
        assert "0.05" in repr(ZhouDirectedSpectral())


class TestWCutSpectral:
    def test_recovers_two_blocks(self, two_block_digraph):
        g, truth = two_block_digraph
        c = best_wcut().cluster(g, 2)
        assert _block_accuracy(c.labels, truth) > 0.8

    def test_degree_weights_variant(self, two_block_digraph):
        g, truth = two_block_digraph
        c = WCutSpectral(T="degree", T_prime="uniform").cluster(g, 2)
        assert c.n_nodes == g.n_nodes

    def test_uniform_weights_variant(self, two_block_digraph):
        g, _ = two_block_digraph
        c = WCutSpectral(
            T="uniform", T_prime="uniform", use_transition_matrix=False
        ).cluster(g, 2)
        assert c.n_clusters == 2

    def test_array_weights(self, two_block_digraph):
        g, _ = two_block_digraph
        T = np.ones(g.n_nodes)
        c = WCutSpectral(T=T, T_prime=T).cluster(g, 2)
        assert c.n_nodes == g.n_nodes

    def test_rejects_bad_weight_string(self):
        with pytest.raises(ClusteringError):
            WCutSpectral(T="pagerank")

    def test_rejects_wrong_length_array(self, two_block_digraph):
        g, _ = two_block_digraph
        with pytest.raises(ClusteringError, match="length"):
            WCutSpectral(T=np.ones(3)).cluster(g, 2)

    def test_rejects_negative_weights(self, two_block_digraph):
        g, _ = two_block_digraph
        with pytest.raises(ClusteringError, match="non-negative"):
            WCutSpectral(T=-np.ones(g.n_nodes)).cluster(g, 2)

    def test_rejects_undirected_input(self, small_weighted_ugraph):
        with pytest.raises(ClusteringError, match="DirectedGraph"):
            best_wcut().cluster(small_weighted_ugraph, 2)

    def test_rejects_bad_k(self, two_block_digraph):
        g, _ = two_block_digraph
        with pytest.raises(ClusteringError):
            best_wcut().cluster(g, 0)

    def test_best_wcut_misses_figure1_pair(self, figure1):
        """The §2.1.1 drawback: the Figure-1 pair has high Ncut_dir,
        so the WCut family tends not to isolate it as a cluster —
        while bibliometric-style symmetrization + clustering does
        (see test_integration.py)."""
        g, roles = figure1
        c = best_wcut().cluster(g, 3)
        a, b = roles["pair"]
        # Not asserting failure strictly (spectral rounding varies);
        # assert the objective value itself is high instead.
        from repro.directed.objectives import ncut_directed

        assert ncut_directed(g, [a, b]) > 0.9

    def test_repr(self):
        assert "pi" in repr(best_wcut())
