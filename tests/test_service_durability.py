"""PR 10: durable, crash-safe service runtime.

Four claims under test:

1. **Persistent state** — graphs, results and job tombstones survive
   SIGKILL; a recovering daemon serves byte-identical results and
   re-runs exactly the incomplete jobs (parametrized kill-point
   differential in :class:`TestKillPoints`, via a subprocess driver
   that arms ``kill_process`` chaos faults).
2. **Supervised execution** — a job that kills its worker process is
   retried, and quarantined in the terminal ``crashed`` state after
   two deaths (:class:`TestSupervisor`).
3. **Graceful degradation** — bounded-queue admission control sheds
   with :class:`ServiceOverloaded` / HTTP 503 + ``Retry-After``; the
   ENOSPC path flips the store read-only instead of dying
   (:class:`TestOverload`, :class:`TestServiceStore`).
4. **Client hardening** — the retrying client rides out sheds and
   restarts, and the structured error codes round-trip into typed
   exceptions (:class:`TestOverload`, :class:`TestErrorTaxonomy`).

Plus the satellites: shutdown lets slow event-stream readers drain to
the ``job_end`` sentinel (:class:`TestShutdownDrain`), and job GC
evicts by count/age (:class:`TestEviction`).
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import os
import socket
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro.datasets import make_cora_like
from repro.engine import RetryPolicy
from repro.engine.chaos import Fault, FaultPlan, inject_faults
from repro.engine.pool import WorkerPool
from repro.exceptions import ServiceOverloaded
from repro.graph import DirectedGraph
from repro.pipeline.pipeline import SymmetrizeClusterPipeline
from repro.service import (
    JobManager,
    JobSpec,
    ServiceClient,
    ServiceServer,
    ServiceStore,
    error_code_for,
)

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")

CLUSTER_SPEC = {
    "kind": "cluster",
    "graph": "cora",
    "method": "degree_discounted",
    "clusterer": "mlrmcl",
    "n_clusters": 4,
}


def _graph() -> DirectedGraph:
    return make_cora_like(n_nodes=80, n_categories=4, seed=11).graph


@pytest.fixture
def small_graph() -> DirectedGraph:
    return _graph()


@pytest.fixture
def reference_sha(small_graph) -> str:
    """Labels sha of the uninterrupted in-process run — the byte
    identity every recovery path must reproduce."""
    result = SymmetrizeClusterPipeline(
        "degree_discounted", "mlrmcl"
    ).run(small_graph, n_clusters=4)
    from repro.service.jobs import _labels_sha

    return _labels_sha(result.clustering.labels)


def _pool_available() -> bool:
    pool = WorkerPool(1)
    try:
        return pool.run(abs, [-1]) is not None
    finally:
        pool.close()


@contextlib.contextmanager
def live_server(tmp_path, **kwargs):
    server = ServiceServer(str(tmp_path / "svc"), port=0, **kwargs)
    ready = threading.Event()
    outcome: dict[str, bool] = {}

    def run() -> None:
        async def main() -> bool:
            await server.start()
            ready.set()
            return await server.serve_until_shutdown()

        outcome["clean"] = asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(15), "server did not start"
    try:
        yield server
    finally:
        if not server._shutdown.is_set():
            with contextlib.suppress(Exception):
                ServiceClient("127.0.0.1", server.port).shutdown()
        thread.join(30)
        assert not thread.is_alive(), "server thread leaked"
        outcome.setdefault("clean", False)
        assert outcome["clean"], "job manager did not drain cleanly"


# ----------------------------------------------------------------------
# ServiceStore unit behavior
# ----------------------------------------------------------------------
class TestServiceStore:
    def test_graph_round_trip_keeps_recorded_sha(
        self, tmp_path, small_graph
    ) -> None:
        """The WAL-recorded fingerprint survives recovery even
        though the persisted (int32-index) store would re-hash
        differently — job content addresses stay stable."""
        from repro.obs.manifest import fingerprint_graph

        sha = fingerprint_graph(small_graph)["sha256"]
        store = ServiceStore(tmp_path / "state")
        assert store.put_graph("cora", small_graph, sha) is not None
        loaded = store.load_graphs()
        assert len(loaded) == 1
        name, graph, loaded_sha, _created = loaded[0]
        assert name == "cora"
        assert loaded_sha == sha
        assert graph.n_nodes == small_graph.n_nodes
        assert graph.n_edges == small_graph.n_edges

    def test_incomplete_jobs_tombstone_logic(self, tmp_path) -> None:
        """Incomplete = started, not ended, no result file. A crash
        between result publish and job_end re-serves the result."""

        class _FakeJob:
            def __init__(self, key: str) -> None:
                self.job_id = f"job-{key[:16]}"
                self.key = key
                self.clients = ["t"]
                self.spec = JobSpec.from_dict(dict(CLUSTER_SPEC))
                self.state = "done"
                self.result = {"labels": [0, 1]}
                self.warnings = []
                self.error = None
                self.error_type = None
                self.created_unix = 1.0
                self.started_unix = 1.0
                self.finished_unix = 2.0

        store = ServiceStore(tmp_path / "state")
        ended = _FakeJob("aa" * 16)
        interrupted = _FakeJob("bb" * 16)
        published = _FakeJob("cc" * 16)
        for job in (ended, interrupted, published):
            store.record_job_start(job)
        store.put_result(ended)
        store.record_job_end(ended)
        store.put_result(published)  # crash before job_end
        incomplete = store.incomplete_jobs()
        assert [r["key"] for r in incomplete] == [interrupted.key]

    def test_enospc_flips_read_only_not_fatal(
        self, tmp_path, small_graph
    ) -> None:
        """A full disk degrades persistence; it never kills the
        daemon or raises out of the put."""
        store = ServiceStore(tmp_path / "state")
        job = type(
            "J",
            (),
            {
                "job_id": "job-x",
                "key": "dd" * 16,
                "clients": ["t"],
                "spec": JobSpec.from_dict(dict(CLUSTER_SPEC)),
                "state": "done",
                "result": {},
                "warnings": [],
                "error": None,
                "error_type": None,
                "created_unix": 1.0,
                "started_unix": 1.0,
                "finished_unix": 2.0,
            },
        )()
        plan = FaultPlan(
            [Fault(site="service.store_put", kind="enospc", at=1)]
        )
        with inject_faults(plan), pytest.warns(Warning):
            assert store.put_result(job) is False
        assert store.read_only
        counters = store.metrics.as_dict()["counters"]
        assert counters["service_store_degraded_total"] == 1
        # Subsequent puts are silent no-ops, not errors.
        assert store.put_graph("cora", small_graph, "ab" * 8) is None

    def test_disk_watchdog(self, tmp_path) -> None:
        store = ServiceStore(
            tmp_path / "state", min_free_bytes=1 << 62
        )
        with pytest.warns(Warning):
            assert store.check_disk() is False
        assert store.read_only


# ----------------------------------------------------------------------
# In-process recovery differential
# ----------------------------------------------------------------------
class TestManagerDurability:
    def test_completed_results_recover_without_rerun(
        self, tmp_path, small_graph, reference_sha
    ) -> None:
        """A restarted manager serves the recorded result bytes —
        zero re-executions, dedup against the recovered record."""
        state = tmp_path / "state"
        spec = JobSpec.from_dict(dict(CLUSTER_SPEC))
        first = JobManager(
            state, store=ServiceStore(state), max_workers=1
        )
        first.register_graph("cora", small_graph)
        job, deduped = first.submit(spec, client="a")
        assert not deduped
        assert job.done.wait(120)
        assert job.state == "done"
        assert job.result["labels_sha256"] == reference_sha
        original = json.dumps(job.result, sort_keys=True)
        first.close()

        second = JobManager(
            state, store=ServiceStore(state), max_workers=1
        )
        counters = second.metrics.as_dict()["counters"]
        assert counters["service_graphs_recovered_total"] == 1
        assert counters["service_results_recovered_total"] == 1
        assert "service_jobs_rerun_total" not in counters
        recovered, deduped = second.submit(spec, client="b")
        assert deduped, "identical spec must join the recovered job"
        assert recovered.recovered
        assert (
            json.dumps(recovered.result, sort_keys=True) == original
        )
        assert (
            "service_job_executions_total"
            not in second.metrics.as_dict()["counters"]
        )
        second.close()

    def test_incomplete_tombstone_reruns_on_recovery(
        self, tmp_path, small_graph, reference_sha
    ) -> None:
        """A job_start with no job_end and no result re-runs at
        construction and converges to the reference bytes."""
        state = tmp_path / "state"
        spec = JobSpec.from_dict(dict(CLUSTER_SPEC))
        first = JobManager(
            state, store=ServiceStore(state), max_workers=1
        )
        first.register_graph("cora", small_graph)
        key = first.job_key(spec)
        fake = type(
            "J",
            (),
            {
                "job_id": f"job-{key[:16]}",
                "key": key,
                "clients": ["crashed-client"],
                "spec": spec,
                "created_unix": time.time(),
            },
        )()
        first.store.record_job_start(fake)
        first.close()

        with pytest.warns(Warning, match="re-running"):
            second = JobManager(
                state, store=ServiceStore(state), max_workers=1
            )
        counters = second.metrics.as_dict()["counters"]
        assert counters["service_jobs_rerun_total"] == 1
        job = second.job(f"job-{key[:16]}")
        assert job.done.wait(120)
        assert job.state == "done"
        assert job.result["labels_sha256"] == reference_sha
        assert job.clients[0] == "crashed-client"
        second.close()


# ----------------------------------------------------------------------
# Kill-point differential (SIGKILL via chaos, subprocess driver)
# ----------------------------------------------------------------------
_DRIVER = textwrap.dedent(
    """
    import json, sys
    from repro.datasets import make_cora_like
    from repro.engine.chaos import Fault, FaultPlan, inject_faults
    from repro.service import JobManager, JobSpec, ServiceStore

    state_dir, mode = sys.argv[1], sys.argv[2]
    site = sys.argv[3] if len(sys.argv) > 3 else ""
    at = int(sys.argv[4]) if len(sys.argv) > 4 else 0

    graph = make_cora_like(n_nodes=80, n_categories=4, seed=11).graph
    spec = JobSpec.from_dict({
        "kind": "cluster", "graph": "cora",
        "method": "degree_discounted", "clusterer": "mlrmcl",
        "n_clusters": 4,
    })

    def run():
        manager = JobManager(
            state_dir, store=ServiceStore(state_dir), max_workers=1
        )
        pre = dict(manager.metrics.as_dict()["counters"])
        if not any(g["name"] == "cora" for g in manager.graphs()):
            manager.register_graph("cora", graph)
        job, deduped = manager.submit(spec, client="driver")
        assert job.done.wait(180), "job did not finish"
        out = {
            "state": job.state,
            "deduped": deduped,
            "labels_sha256": (job.result or {}).get("labels_sha256"),
            "graphs_recovered": pre.get(
                "service_graphs_recovered_total", 0
            ),
            "results_recovered": pre.get(
                "service_results_recovered_total", 0
            ),
            "jobs_rerun": pre.get("service_jobs_rerun_total", 0),
            "executions": manager.metrics.as_dict()["counters"].get(
                "service_job_executions_total", 0
            ),
        }
        manager.close()
        print("DRIVER_RESULT " + json.dumps(out), flush=True)

    if mode == "crash":
        plan = FaultPlan(
            [Fault(site=site, kind="kill_process", at=at)]
        )
        with inject_faults(plan):
            run()
    else:
        run()
    """
)


class TestKillPoints:
    @pytest.mark.parametrize(
        ("site", "at", "expect_graph_recovered", "expect_rerun"),
        [
            # Killed persisting the graph at registration: nothing
            # durable yet; the recovered daemon starts clean.
            ("service.store_put", 1, 0, 0),
            # Killed mid-execution (first job-journal append after
            # the WAL's graph_registered + job_start): graph and
            # tombstone survive; the job re-runs.
            ("journal.append", 3, 1, 1),
            # Killed at result publish: execution finished but no
            # result file and no job_end; the job re-runs.
            ("service.store_put", 2, 1, 1),
        ],
        ids=["graph-register", "mid-execute", "result-publish"],
    )
    def test_sigkill_then_recover_byte_identical(
        self,
        tmp_path,
        reference_sha,
        site,
        at,
        expect_graph_recovered,
        expect_rerun,
    ) -> None:
        driver = tmp_path / "driver.py"
        driver.write_text(_DRIVER)
        state = str(tmp_path / "state")
        env = {**os.environ, "PYTHONPATH": SRC_DIR}

        crash = subprocess.run(
            [sys.executable, str(driver), state, "crash", site, str(at)],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert crash.returncode == -9, (
            f"expected SIGKILL, got rc={crash.returncode}\n"
            f"stdout={crash.stdout}\nstderr={crash.stderr}"
        )

        recover = subprocess.run(
            [sys.executable, str(driver), state, "recover"],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert recover.returncode == 0, recover.stderr
        line = next(
            ln
            for ln in recover.stdout.splitlines()
            if ln.startswith("DRIVER_RESULT ")
        )
        out = json.loads(line[len("DRIVER_RESULT ") :])
        assert out["state"] == "done"
        assert out["labels_sha256"] == reference_sha
        assert out["graphs_recovered"] == expect_graph_recovered
        assert out["jobs_rerun"] == expect_rerun
        # Exactly one execution ever reaches completion: either the
        # recovery re-run (joined by the driver's dedup submit) or,
        # when nothing survived, the driver's fresh submission.
        assert out["executions"] == 1
        if expect_rerun:
            assert out["deduped"], (
                "driver's submit should join the recovery re-run"
            )


# ----------------------------------------------------------------------
# Supervised process workers: crash retry and quarantine
# ----------------------------------------------------------------------
class TestSupervisor:
    pytestmark = pytest.mark.skipif(
        not _pool_available(),
        reason="no process pool in this environment",
    )

    def _manager(self, tmp_path, **kwargs) -> JobManager:
        state = tmp_path / "state"
        return JobManager(
            state,
            store=ServiceStore(state),
            max_workers=1,
            worker_mode="process",
            retry=RetryPolicy(backoff_s=0.01, max_backoff_s=0.05),
            **kwargs,
        )

    def test_worker_crash_retried_to_completion(
        self, tmp_path, small_graph, reference_sha
    ) -> None:
        """One worker death: the supervisor re-runs the job and it
        completes with the reference bytes."""
        manager = self._manager(tmp_path)
        try:
            manager.register_graph("cora", small_graph)
            plan = FaultPlan(
                [
                    Fault(
                        site="service.worker",
                        kind="kill_worker",
                        at=1,
                    )
                ]
            )
            with inject_faults(plan), pytest.warns(Warning):
                job, _ = manager.submit(
                    JobSpec.from_dict(dict(CLUSTER_SPEC)), "t"
                )
                assert job.done.wait(180)
            assert job.state == "done"
            assert job.result["labels_sha256"] == reference_sha
            counters = manager.metrics.as_dict()["counters"]
            assert counters["service_worker_crashes_total"] == 1
        finally:
            manager.close()

    def test_double_crash_quarantines_not_cached(
        self, tmp_path, small_graph
    ) -> None:
        """Two worker deaths: terminal ``crashed`` state, worker_crashed
        code, and a resubmission starts a fresh job instead of
        dedup-joining the quarantined one."""
        manager = self._manager(tmp_path)
        try:
            manager.register_graph("cora", small_graph)
            plan = FaultPlan(
                [
                    Fault(
                        site="service.worker",
                        kind="kill_worker",
                        at=1,
                        times=2,
                    )
                ]
            )
            with inject_faults(plan), pytest.warns(Warning):
                job, _ = manager.submit(
                    JobSpec.from_dict(dict(CLUSTER_SPEC)), "t"
                )
                assert job.done.wait(180)
            assert job.state == "crashed"
            assert job.error_code == "worker_crashed"
            counters = manager.metrics.as_dict()["counters"]
            assert counters["service_worker_crashes_total"] == 2
            assert counters["service_jobs_crashed_total"] == 1
            # Never sticky-cached: the same spec gets a new job.
            retry_job, deduped = manager.submit(
                JobSpec.from_dict(dict(CLUSTER_SPEC)), "t"
            )
            assert not deduped
            assert retry_job.done.wait(180)
            assert retry_job.state == "done"
        finally:
            manager.close()


# ----------------------------------------------------------------------
# Overload shedding + hardened client backoff
# ----------------------------------------------------------------------
def _slow_execute_spec(delay_s: float):
    from repro.service import jobs as jobs_module

    real = jobs_module.execute_spec

    def slowed(spec, graph, **kwargs):
        time.sleep(delay_s)
        return real(spec, graph, **kwargs)

    return slowed


class TestOverload:
    def test_manager_sheds_at_queue_bound(
        self, tmp_path, small_graph, monkeypatch
    ) -> None:
        monkeypatch.setattr(
            "repro.service.jobs.execute_spec",
            _slow_execute_spec(0.4),
        )
        manager = JobManager(
            tmp_path / "svc",
            max_workers=1,
            max_queue_depth=1,
            shed_retry_after_s=0.25,
        )
        try:
            manager.register_graph("cora", small_graph)

            def spec(i: int) -> JobSpec:
                return JobSpec.from_dict(
                    {**CLUSTER_SPEC, "threshold": i * 0.001}
                )

            first, _ = manager.submit(spec(0), "t")  # running
            # Wait until the first job leaves the queue so the
            # depth bound applies to the *queued* second job.
            deadline = time.time() + 10
            while (
                manager.job(first.job_id).state == "queued"
                and time.time() < deadline
            ):
                time.sleep(0.01)
            second, _ = manager.submit(spec(1), "t")  # queued
            with pytest.raises(ServiceOverloaded) as excinfo:
                manager.submit(spec(2), "t")
            assert excinfo.value.retry_after_s == 0.25
            # Dedup riders board even at the bound.
            rider, deduped = manager.submit(spec(1), "other")
            assert deduped and rider is second
            counters = manager.metrics.as_dict()["counters"]
            assert counters["service_shed_total"] == 1
            assert first.done.wait(60) and second.done.wait(60)
        finally:
            manager.close()

    def test_hardened_client_completes_through_sheds(
        self, tmp_path, small_graph, monkeypatch
    ) -> None:
        """Sustained over-admission: the server sheds with 503 +
        Retry-After and every submission still completes through the
        client's deterministic backoff."""
        monkeypatch.setattr(
            "repro.service.jobs.execute_spec",
            _slow_execute_spec(0.15),
        )
        with live_server(
            tmp_path,
            max_workers=1,
            max_queue_depth=1,
            shed_retry_after_s=0.05,
        ) as server:
            seed = ServiceClient("127.0.0.1", server.port)
            seed.register_graph("cora", small_graph)
            client = ServiceClient(
                "127.0.0.1",
                server.port,
                retry=RetryPolicy(
                    max_attempts=40,
                    backoff_s=0.05,
                    max_backoff_s=0.5,
                ),
            )
            job_ids = []
            for i in range(5):
                sub = client.submit(
                    **{**CLUSTER_SPEC, "threshold": i * 0.001}
                )
                job_ids.append(sub["job_id"])
            for job_id in job_ids:
                result = client.result(job_id, timeout=120)
                assert result["kind"] == "cluster"
            counters = client.stats()["metrics"]["counters"]
            assert counters.get("service_shed_total", 0) >= 1

    def test_shed_response_carries_retry_after(
        self, tmp_path, small_graph, monkeypatch
    ) -> None:
        """Raw HTTP: the 503 body has code=overloaded and the header
        mirrors retry_after_s; a no-retry client raises
        ServiceOverloaded."""
        monkeypatch.setattr(
            "repro.service.jobs.execute_spec",
            _slow_execute_spec(0.5),
        )
        with live_server(
            tmp_path,
            max_workers=1,
            max_queue_depth=0,
            shed_retry_after_s=2.0,
        ) as server:
            seed = ServiceClient("127.0.0.1", server.port)
            seed.register_graph("cora", small_graph)
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=30
            )
            try:
                conn.request(
                    "POST",
                    "/jobs",
                    body=json.dumps(CLUSTER_SPEC),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                body = json.loads(response.read().decode())
            finally:
                conn.close()
            assert response.status == 503
            assert body["code"] == "overloaded"
            assert body["retry_after_s"] == 2.0
            assert response.getheader("Retry-After") == "2"
            no_retry = ServiceClient(
                "127.0.0.1",
                server.port,
                retry=RetryPolicy(max_attempts=1),
            )
            with pytest.raises(ServiceOverloaded):
                no_retry.submit(**CLUSTER_SPEC)


# ----------------------------------------------------------------------
# Error taxonomy round-trips
# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_error_code_mapping(self) -> None:
        from repro.exceptions import (
            BudgetExceeded,
            TransientError,
            WorkerCrashError,
        )
        from repro.service import ServiceError

        assert (
            error_code_for(BudgetExceeded("s", "wall_s", 1, 2))
            == "budget_exceeded"
        )
        assert error_code_for(WorkerCrashError("x")) == "worker_crashed"
        assert error_code_for(ServiceOverloaded()) == "overloaded"
        assert error_code_for(TransientError("x")) == "transient"
        assert error_code_for(ServiceError("x")) == "invalid_request"
        assert error_code_for(ValueError("x")) == "internal"

    def test_http_error_bodies_are_structured(
        self, tmp_path
    ) -> None:
        with live_server(tmp_path) as server:
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=30
            )
            try:
                conn.request(
                    "POST",
                    "/jobs",
                    body=json.dumps(
                        {"kind": "cluster", "graph": "missing"}
                    ),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                body = json.loads(response.read().decode())
            finally:
                conn.close()
            assert response.status == 404
            assert body["code"] == "not_found"
            assert body["error_type"] == "ServiceError"

    def test_probes(self, tmp_path) -> None:
        with live_server(tmp_path) as server:
            client = ServiceClient("127.0.0.1", server.port)
            assert client._request("GET", "/livez")["status"] == "alive"
            ready = client.ready()
            assert ready["ready"] is True
            assert ready["worker_mode"] == "thread"


# ----------------------------------------------------------------------
# Shutdown drains open event streams (slow reader regression)
# ----------------------------------------------------------------------
class TestShutdownDrain:
    def test_slow_reader_sees_job_end_sentinel(
        self, tmp_path, small_graph, monkeypatch
    ) -> None:
        """/shutdown with an open NDJSON stream: the tailer keeps
        draining to the job_end sentinel even though the reader is
        slow and shutdown races the stream."""
        monkeypatch.setattr(
            "repro.service.jobs.execute_spec",
            _slow_execute_spec(0.6),
        )
        with live_server(tmp_path, max_workers=1) as server:
            client = ServiceClient("127.0.0.1", server.port)
            client.register_graph("cora", small_graph)
            sub = client.submit(**CLUSTER_SPEC)

            raw = socket.create_connection(
                ("127.0.0.1", server.port), timeout=30
            )
            raw.sendall(
                (
                    f"GET /jobs/{sub['job_id']}/events HTTP/1.1\r\n"
                    f"Host: x\r\n\r\n"
                ).encode()
            )
            time.sleep(0.1)  # stream is open; now race shutdown
            client.shutdown()
            received = b""
            raw.settimeout(30)
            try:
                while True:
                    time.sleep(0.05)  # deliberately slow reader
                    chunk = raw.recv(512)
                    if not chunk:
                        break
                    received = received + chunk
            except (TimeoutError, OSError) as exc:
                pytest.fail(f"stream cut before drain: {exc}")
            finally:
                raw.close()
            lines = [
                json.loads(line)
                for line in received.split(b"\r\n\r\n", 1)[1]
                .decode()
                .strip()
                .splitlines()
                if line.strip()
            ]
            assert lines, "no NDJSON records received"
            assert lines[-1]["type"] == "job_end"
            assert lines[-1]["state"] == "done"


# ----------------------------------------------------------------------
# GC: count/age-based eviction
# ----------------------------------------------------------------------
class TestEviction:
    def test_count_bound_evicts_oldest(
        self, tmp_path, small_graph
    ) -> None:
        state = tmp_path / "state"
        manager = JobManager(
            state,
            store=ServiceStore(state),
            max_workers=1,
            max_jobs=1,
        )
        try:
            manager.register_graph("cora", small_graph)
            jobs = []
            for i in range(3):
                spec = JobSpec.from_dict(
                    {**CLUSTER_SPEC, "threshold": i * 0.001}
                )
                job, _ = manager.submit(spec, "t")
                assert job.done.wait(120)
                jobs.append(job)
            # The post-completion auto-GC runs in the executor
            # thread after done.set(); poll until it settles.
            deadline = time.time() + 10
            while time.time() < deadline:
                manager.evict_jobs()
                counters = manager.metrics.as_dict()["counters"]
                if (
                    counters.get("service_jobs_evicted_total", 0)
                    >= 2
                ):
                    break
                time.sleep(0.05)
            remaining = manager.jobs()
            assert len(remaining) == 1
            assert remaining[0]["job_id"] == jobs[-1].job_id
            assert counters["service_jobs_evicted_total"] >= 2
            # Evicted journals and results are gone from disk.
            for job in jobs[:2]:
                assert not job.journal_path.parent.exists()
                assert not manager.store.result_path(
                    job.key
                ).exists()
            # The WAL remembers: evicted keys do not resurrect as
            # incomplete jobs on recovery.
            assert manager.store.incomplete_jobs() == []
        finally:
            manager.close()

    def test_age_bound(self, tmp_path, small_graph) -> None:
        manager = JobManager(
            tmp_path / "svc",
            max_workers=1,
            max_job_age_s=3600.0,
        )
        try:
            manager.register_graph("cora", small_graph)
            job, _ = manager.submit(
                JobSpec.from_dict(dict(CLUSTER_SPEC)), "t"
            )
            assert job.done.wait(120)
            assert manager.evict_jobs() == 0  # young enough
            assert (
                manager.evict_jobs(now=time.time() + 7200) == 1
            )
            assert manager.jobs() == []
        finally:
            manager.close()
