"""Tests for :mod:`repro.tune` — the cost-model autotuner.

Covers the four layers end-to-end: feature extraction, the ridge
log-log fit and its versioned persistence (including the corrupt/
old-schema robustness contract), corpus extraction + the plan-quality
replay, and the planner's integration with the Executor/pipeline
(``tuning="auto"``) — where the acceptance bar is *identical outputs*
with full chosen-vs-default provenance in the v4 manifest.
"""

import json
import math
import warnings

import numpy as np
import pytest

from repro.exceptions import PipelineError, RepairWarning, TuningError
from repro.graph.generators import power_law_digraph
from repro.obs.manifest import MANIFEST_SCHEMA
from repro.obs.metrics import MetricsRegistry, metrics_active
from repro.pipeline.pipeline import SymmetrizeClusterPipeline
from repro.tune import (
    FEATURE_NAMES,
    MODEL_SCHEMA,
    CostModel,
    Planner,
    Sample,
    choose_backend,
    default_plan,
    degree_skew,
    evaluate_plan_quality,
    features_from_counts,
    features_from_graph,
    fit_cost_model,
    load_corpus,
    load_model,
    samples_from_allpairs,
    samples_from_scale,
    save_model,
)
from repro.tune.model import MODEL_PATH_ENV


def _graph(n=300, seed=0):
    return power_law_digraph(n, np.random.default_rng(seed))


def _power_law_samples(target, coef_n=2.0, scale=1e-6):
    """Synthetic samples following ``scale * n^coef_n`` exactly."""
    samples = []
    for n in (1000, 2000, 4000, 8000, 16000):
        features = features_from_counts(n, 8 * n, 0.25)
        samples.append(Sample(target, features, scale * n**coef_n))
    return samples


class TestFeatures:
    def test_degree_skew_uniform_is_one(self):
        assert degree_skew(np.full(100, 7.0)) == pytest.approx(1.0)

    def test_degree_skew_hub_exceeds_one(self):
        degrees = np.ones(100)
        degrees[0] = 1000.0
        assert degree_skew(degrees) > 10.0

    def test_degree_skew_empty_is_one(self):
        assert degree_skew(np.array([])) == 1.0

    def test_vector_matches_feature_names(self):
        features = features_from_counts(100, 500, 0.5, skew=2.0)
        vec = features.vector()
        assert vec.shape == (len(FEATURE_NAMES),)
        assert vec[0] == 1.0
        assert vec[1] == pytest.approx(math.log(100))
        assert vec[2] == pytest.approx(math.log(500))
        assert vec[3] == pytest.approx(math.log(2.0))
        assert vec[4] == pytest.approx(math.log(2.0))  # log(1/0.5)

    def test_zero_threshold_is_floored_not_infinite(self):
        vec = features_from_counts(10, 10, 0.0).vector()
        assert np.isfinite(vec).all()

    def test_features_from_graph_uses_in_degrees(self):
        graph = _graph()
        features = features_from_graph(graph, 0.1)
        assert features.n_nodes == graph.n_nodes
        assert features.nnz == graph.adjacency.nnz
        assert features.degree_skew == pytest.approx(
            degree_skew(graph.in_degrees())
        )


class TestCostModel:
    def test_fit_recovers_power_law(self):
        model = fit_cost_model(_power_law_samples("symmetrize:vectorized"))
        fit = model.targets["symmetrize:vectorized"]
        assert fit.r2 > 0.99
        predicted = model.predict(
            "symmetrize:vectorized",
            features_from_counts(6000, 48000, 0.25),
        )
        assert predicted == pytest.approx(1e-6 * 6000**2, rel=0.15)

    def test_single_sample_stays_well_posed(self):
        features = features_from_counts(2000, 16000, 0.5)
        model = fit_cost_model([Sample("cluster:mlrmcl", features, 0.8)])
        predicted = model.predict("cluster:mlrmcl", features)
        assert predicted is not None and np.isfinite(predicted)

    def test_unknown_target_predicts_none(self):
        model = fit_cost_model(_power_law_samples("symmetrize:python"))
        assert not model.can_predict("peak_rss")
        assert model.predict("peak_rss", features_from_counts(1, 1, 0)) is None

    def test_empty_corpus_raises(self):
        with pytest.raises(TuningError):
            fit_cost_model([])

    def test_save_load_round_trip(self, tmp_path):
        model = fit_cost_model(
            _power_law_samples("symmetrize:vectorized"),
            sources=["test"],
        )
        path = save_model(model, tmp_path / "tuning" / "model.json")
        reloaded = load_model(path)
        assert reloaded is not None
        assert reloaded.as_dict() == model.as_dict()
        assert json.loads(path.read_text())["schema"] == MODEL_SCHEMA

    def test_missing_file_is_silently_none(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_model(tmp_path / "nope.json") is None

    def test_env_var_overrides_default_path(self, tmp_path, monkeypatch):
        model = fit_cost_model(_power_law_samples("symmetrize:python"))
        path = tmp_path / "custom.json"
        save_model(model, path)
        monkeypatch.setenv(MODEL_PATH_ENV, str(path))
        reloaded = load_model()
        assert reloaded is not None
        assert reloaded.as_dict() == model.as_dict()

    @pytest.mark.parametrize(
        "payload",
        [
            "not json at all {",
            json.dumps({"schema": "repro-tune-model/v0", "targets": {}}),
            json.dumps(
                {
                    "schema": MODEL_SCHEMA,
                    "features": list(FEATURE_NAMES),
                    "targets": {"symmetrize:vectorized": {"coef": [1.0]}},
                }
            ),
            json.dumps(
                {
                    "schema": MODEL_SCHEMA,
                    "features": ["wrong", "features"],
                    "targets": {},
                }
            ),
            json.dumps([1, 2, 3]),
        ],
        ids=[
            "corrupt-json",
            "old-schema",
            "short-coef",
            "wrong-features",
            "non-object",
        ],
    )
    def test_invalid_model_strict_raises(self, tmp_path, payload):
        path = tmp_path / "model.json"
        path.write_text(payload)
        with pytest.raises(TuningError):
            load_model(path, strict=True)

    def test_invalid_model_lenient_warns_and_defaults(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("not json {")
        with pytest.warns(RepairWarning) as caught:
            assert load_model(path, strict=False) is None
        assert caught[0].message.code == "tuning_model_invalid"

    def test_nan_coefficients_rejected(self):
        with pytest.raises(TuningError):
            CostModel.from_dict(
                {
                    "schema": MODEL_SCHEMA,
                    "features": list(FEATURE_NAMES),
                    "targets": {
                        "symmetrize:vectorized": {
                            "coef": [float("nan")] * len(FEATURE_NAMES),
                        }
                    },
                }
            )


def _allpairs_corpus(vectorized=0.1, python=1.0):
    runs = []
    for n, t in ((2000, 0.25), (4000, 0.5)):
        for backend, base in (
            ("vectorized", vectorized),
            ("python", python),
        ):
            runs.append(
                {
                    "kind": "symmetrize",
                    "backend": backend,
                    "n_nodes": n,
                    "n_edges": 8 * n,
                    "threshold": t,
                    "seconds": base * (n / 2000),
                    "edges_out": n,
                }
            )
    runs.append(
        {
            "kind": "cluster",
            "backend": "mlrmcl",
            "n_nodes": 2000,
            "n_edges": 16000,
            "threshold": 0.25,
            "seconds": 0.5,
            "edges_out": 2000,
        }
    )
    return {"schema": "repro-bench-allpairs/v3", "runs": runs}


class TestCorpus:
    def test_samples_from_allpairs_targets(self):
        samples = samples_from_allpairs(_allpairs_corpus())
        targets = {s.target for s in samples}
        assert targets == {
            "symmetrize:vectorized",
            "symmetrize:python",
            "cluster:mlrmcl",
        }

    def test_allpairs_schema_mismatch_raises(self):
        with pytest.raises(TuningError):
            samples_from_allpairs({"schema": "something-else/v1"})

    def test_samples_from_scale(self):
        results = {
            "schema": "repro-bench-scale/v1",
            "points": [
                {
                    "n_nodes": 50000,
                    "n_edges": 400000,
                    "threshold": 0.5,
                    "symmetrize_seconds": 12.0,
                    "peak_rss_bytes": 3 * 10**8,
                    "peak_rss_children_bytes": 10**8,
                }
            ],
        }
        samples = samples_from_scale(results)
        by_target = {s.target: s.value for s in samples}
        assert by_target["symmetrize:sharded"] == 12.0
        assert by_target["peak_rss"] == 3 * 10**8

    def test_load_corpus_empty_raises(self, tmp_path):
        with pytest.raises(TuningError):
            load_corpus(tmp_path / "a.json", tmp_path / "b.json")

    def test_load_corpus_reads_files(self, tmp_path):
        allpairs = tmp_path / "BENCH_allpairs.json"
        allpairs.write_text(json.dumps(_allpairs_corpus()))
        samples, sources, results = load_corpus(allpairs, None)
        assert len(samples) == 5
        assert sources == [str(allpairs)]
        assert results["schema"].startswith("repro-bench-allpairs/")

    def test_plan_quality_passes_on_clean_corpus(self):
        corpus = _allpairs_corpus()
        model = fit_cost_model(samples_from_allpairs(corpus))
        quality = evaluate_plan_quality(model, corpus)
        assert quality["n_points"] == 2
        assert quality["passed"] is True
        assert quality["worse_than_default"] == 0

    def test_plan_quality_never_worse_than_default(self):
        # Even with python measured faster, the hysteresis keeps the
        # choice from being *worse* than the default.
        corpus = _allpairs_corpus(vectorized=1.0, python=0.95)
        model = fit_cost_model(samples_from_allpairs(corpus))
        quality = evaluate_plan_quality(model, corpus)
        assert quality["worse_than_default"] == 0


class TestPlanner:
    def test_no_model_keeps_default_backend(self):
        backend, predicted, source = choose_backend(
            None, features_from_counts(1000, 8000, 0.5)
        )
        assert backend == default_plan()["backend"]
        assert predicted == {}
        assert source == "default"

    def test_model_picks_clearly_faster_backend(self):
        corpus = _allpairs_corpus(vectorized=0.1, python=10.0)
        model = fit_cost_model(samples_from_allpairs(corpus))
        backend, predicted, source = choose_backend(
            model, features_from_counts(3000, 24000, 0.25)
        )
        assert backend == "vectorized"
        assert source == "model"
        assert set(predicted) == {"vectorized", "python"}

    def test_hysteresis_blocks_marginal_deviation(self):
        features = features_from_counts(1000, 8000, 0.5)
        # Hand-build a model predicting python only ~5% faster:
        # within hysteresis, so the default must win.
        log_default = 1.0
        model = CostModel(
            targets={
                "symmetrize:vectorized": _const_fit(log_default),
                "symmetrize:python": _const_fit(log_default - 0.05),
            }
        )
        backend, _, _ = choose_backend(model, features)
        assert backend == "vectorized"
        # A 10x faster prediction clears the hysteresis.
        model = CostModel(
            targets={
                "symmetrize:vectorized": _const_fit(log_default),
                "symmetrize:python": _const_fit(
                    log_default - math.log(10)
                ),
            }
        )
        backend, _, _ = choose_backend(model, features)
        assert backend == "python"

    def test_decision_provenance_and_metric(self, tmp_path):
        registry = MetricsRegistry()
        planner = Planner(model_path=tmp_path / "absent.json")
        with metrics_active(registry):
            decision = planner.decide(_graph(), 0.25)
        assert registry.counters["tuning_decisions_total"] == 1.0
        section = decision.as_dict()
        assert section["enabled"] is True
        assert section["default"] == default_plan()
        assert set(section["chosen"]) == set(default_plan())
        assert section["features"]["threshold"] == 0.25

    def test_small_graph_plan_matches_defaults(self, tmp_path):
        planner = Planner(model_path=tmp_path / "absent.json")
        decision = planner.decide(_graph(), 0.25)
        defaults = default_plan()
        assert decision.backend == defaults["backend"]
        assert decision.block_size == defaults["block_size"]
        assert decision.storage == "in_core"
        assert decision.cache_max_bytes >= 64 * 1024**2

    def test_corrupt_model_strict_planner_raises(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("garbage {")
        planner = Planner(model_path=path, mode="strict")
        with pytest.raises(TuningError):
            planner.decide(_graph(), 0.25)


def _const_fit(log_value):
    from repro.tune.model import TargetFit

    coef = [0.0] * len(FEATURE_NAMES)
    coef[0] = log_value
    return TargetFit(coef=tuple(coef), r2=1.0, n_samples=1)


class TestChooseStorage:
    def test_small_graph_in_core(self):
        from repro.linalg import choose_storage

        assert choose_storage(1000, 10000) == "in_core"

    def test_huge_graph_mmcsr(self):
        from repro.linalg import choose_storage

        assert choose_storage(10**8, 5 * 10**9) == "mmcsr"

    def test_budget_is_configurable(self):
        from repro.linalg import choose_storage

        assert (
            choose_storage(10000, 100000, budget_bytes=1024)
            == "mmcsr"
        )


class TestPipelineTuning:
    def test_unknown_tuning_string_rejected(self):
        with pytest.raises(PipelineError):
            SymmetrizeClusterPipeline(
                "degree_discounted", "mlrmcl", tuning="aggressive"
            )

    def test_auto_matches_untuned_labels(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            MODEL_PATH_ENV, str(tmp_path / "absent.json")
        )
        graph = _graph(400, seed=3)
        untuned = SymmetrizeClusterPipeline(
            "degree_discounted", "mlrmcl", threshold=0.25
        ).run(graph, n_clusters=8)
        tuned = SymmetrizeClusterPipeline(
            "degree_discounted", "mlrmcl", threshold=0.25, tuning="auto"
        ).run(graph, n_clusters=8)
        assert np.array_equal(
            untuned.clustering.labels, tuned.clustering.labels
        )
        assert untuned.tuning == {"enabled": False}
        assert tuned.tuning["enabled"] is True
        assert tuned.tuning["source"] == "default"  # no model on disk

    def test_auto_with_fitted_model_records_provenance(
        self, tmp_path, monkeypatch
    ):
        corpus = _allpairs_corpus()
        model = fit_cost_model(samples_from_allpairs(corpus))
        path = tmp_path / "model.json"
        save_model(model, path)
        monkeypatch.setenv(MODEL_PATH_ENV, str(path))
        result = SymmetrizeClusterPipeline(
            "degree_discounted", "mlrmcl", threshold=0.25, tuning="auto"
        ).run(_graph(400, seed=3), n_clusters=8)
        section = result.tuning
        assert section["source"] == "model"
        assert "vectorized" in section["predicted_seconds"]
        assert section["chosen"]["backend"] in (
            "vectorized",
            "python",
        )
        # The planner installed a run-local memory-tier cache.
        assert section.get("cache_installed") is True
        assert result.cache["enabled"] is True

    def test_manifest_v4_carries_tuning_section(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            MODEL_PATH_ENV, str(tmp_path / "absent.json")
        )
        log = tmp_path / "runs.jsonl"
        result = SymmetrizeClusterPipeline(
            "degree_discounted", "mlrmcl", threshold=0.25, tuning="auto"
        ).run(_graph(400, seed=3), n_clusters=8, manifest_path=log)
        assert result.manifest.as_dict()["schema"] == MANIFEST_SCHEMA
        payload = json.loads(log.read_text().splitlines()[0])
        assert payload["schema"] == MANIFEST_SCHEMA
        assert payload["tuning"]["enabled"] is True
        assert payload["tuning"]["default"] == default_plan()

    def test_tuning_decisions_metric_counted(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            MODEL_PATH_ENV, str(tmp_path / "absent.json")
        )
        registry = MetricsRegistry()
        with metrics_active(registry):
            SymmetrizeClusterPipeline(
                "degree_discounted",
                "mlrmcl",
                threshold=0.25,
                tuning="auto",
            ).run(_graph(300, seed=1), n_clusters=6)
        assert registry.counters["tuning_decisions_total"] >= 1.0

    def test_lenient_run_survives_corrupt_model(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "model.json"
        path.write_text("garbage {")
        monkeypatch.setenv(MODEL_PATH_ENV, str(path))
        result = SymmetrizeClusterPipeline(
            "degree_discounted",
            "mlrmcl",
            threshold=0.25,
            mode="lenient",
            tuning="auto",
        ).run(_graph(300, seed=1), n_clusters=6)
        codes = {w.code for w in result.warnings}
        assert "tuning_model_invalid" in codes
        assert result.clustering.n_clusters >= 1
        # The run proceeds on the hand-set defaults.
        assert result.tuning["source"] == "default"

    def test_strict_run_raises_on_corrupt_model(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "model.json"
        path.write_text("garbage {")
        monkeypatch.setenv(MODEL_PATH_ENV, str(path))
        with pytest.raises(TuningError):
            SymmetrizeClusterPipeline(
                "degree_discounted",
                "mlrmcl",
                threshold=0.25,
                tuning="auto",
            ).run(_graph(300, seed=1), n_clusters=6)
