"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_cora_like, make_wikipedia_like
from repro.graph import DirectedGraph, UndirectedGraph
from repro.graph.generators import figure1_graph


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def triangle_digraph() -> DirectedGraph:
    """3-cycle: 0 -> 1 -> 2 -> 0."""
    return DirectedGraph.from_edges([(0, 1), (1, 2), (2, 0)], n_nodes=3)


@pytest.fixture
def two_fans_digraph() -> DirectedGraph:
    """Two 'fans': {0,1} -> 2 and {3,4} -> 5, plus a weak bridge 2 -> 5.

    Nodes 0,1 (and 3,4) share an out-link without interlinking — a
    minimal Figure-1-style instance.
    """
    return DirectedGraph.from_edges(
        [(0, 2), (1, 2), (3, 5), (4, 5), (2, 5)], n_nodes=6
    )


@pytest.fixture
def figure1():
    """The paper's Figure-1 idealized graph with its role map."""
    return figure1_graph()


@pytest.fixture
def small_weighted_ugraph() -> UndirectedGraph:
    """Two weighted triangles joined by one light edge."""
    return UndirectedGraph.from_edges(
        [
            (0, 1, 2.0),
            (1, 2, 2.0),
            (0, 2, 2.0),
            (3, 4, 2.0),
            (4, 5, 2.0),
            (3, 5, 2.0),
            (2, 3, 0.1),
        ],
        n_nodes=6,
    )


@pytest.fixture(scope="session")
def cora_small():
    """A small cora-like dataset shared across the session (read-only)."""
    return make_cora_like(n_nodes=600, n_categories=12, seed=0)


@pytest.fixture(scope="session")
def wiki_small():
    """A small wikipedia-like dataset shared across the session."""
    return make_wikipedia_like(n_nodes=1200, n_categories=12, seed=0,
                              n_list_clusters=3)


def planted_two_cluster_ugraph(
    n_per_side: int = 20, seed: int = 7
) -> UndirectedGraph:
    """Two dense blobs with a few cross edges — used by clusterer tests."""
    rng = np.random.default_rng(seed)
    edges = []
    for offset in (0, n_per_side):
        nodes = range(offset, offset + n_per_side)
        for i in nodes:
            for j in nodes:
                if i < j and rng.random() < 0.5:
                    edges.append((i, j, 1.0))
    for _ in range(3):
        i = int(rng.integers(0, n_per_side))
        j = int(rng.integers(n_per_side, 2 * n_per_side))
        edges.append((i, j, 0.5))
    return UndirectedGraph.from_edges(edges, n_nodes=2 * n_per_side)


@pytest.fixture
def two_blob_ugraph() -> UndirectedGraph:
    """Fixture wrapper around :func:`planted_two_cluster_ugraph`."""
    return planted_two_cluster_ugraph()
