"""Unit tests for :mod:`repro.graph.digraph`."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graph import DirectedGraph


class TestConstruction:
    def test_from_edges_basic(self):
        g = DirectedGraph.from_edges([(0, 1), (1, 2)], n_nodes=3)
        assert g.n_nodes == 3
        assert g.n_edges == 2

    def test_from_edges_infers_node_count(self):
        g = DirectedGraph.from_edges([(0, 5)])
        assert g.n_nodes == 6

    def test_from_edges_weighted(self):
        g = DirectedGraph.from_edges([(0, 1, 2.5)], n_nodes=2)
        assert g.edge_weight(0, 1) == 2.5

    def test_duplicate_edges_sum(self):
        g = DirectedGraph.from_edges([(0, 1), (0, 1)], n_nodes=2)
        assert g.edge_weight(0, 1) == 2.0
        assert g.n_edges == 1

    def test_from_dense_matrix(self):
        g = DirectedGraph(np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_from_sparse_matrix(self):
        m = sp.csr_array(np.array([[0.0, 3.0], [0.0, 0.0]]))
        g = DirectedGraph(m)
        assert g.edge_weight(0, 1) == 3.0

    def test_rejects_non_square(self):
        with pytest.raises(GraphError, match="square"):
            DirectedGraph(np.zeros((2, 3)))

    def test_rejects_negative_weights(self):
        with pytest.raises(GraphError, match="non-negative"):
            DirectedGraph(np.array([[0.0, -1.0], [0.0, 0.0]]))

    def test_rejects_nan_weights(self):
        with pytest.raises(GraphError, match="finite"):
            DirectedGraph(np.array([[0.0, np.nan], [0.0, 0.0]]))

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(GraphError, match="out of range"):
            DirectedGraph.from_edges([(0, 5)], n_nodes=3)

    def test_rejects_negative_edge_endpoints(self):
        with pytest.raises(GraphError, match="non-negative"):
            DirectedGraph.from_edges([(-1, 0)], n_nodes=2)

    def test_rejects_bad_edge_arity(self):
        with pytest.raises(GraphError, match="2 or 3"):
            DirectedGraph.from_edges([(0, 1, 1.0, 9.0)], n_nodes=2)

    def test_empty_edge_list_needs_n_nodes(self):
        with pytest.raises(GraphError, match="n_nodes"):
            DirectedGraph.from_edges([])

    def test_empty_graph(self):
        g = DirectedGraph.empty(4)
        assert g.n_nodes == 4
        assert g.n_edges == 0

    def test_empty_rejects_negative(self):
        with pytest.raises(GraphError):
            DirectedGraph.empty(-1)

    def test_node_names_length_checked(self):
        with pytest.raises(GraphError, match="names"):
            DirectedGraph(np.zeros((2, 2)), node_names=["a"])

    def test_zero_weight_edges_dropped(self):
        g = DirectedGraph(np.array([[0.0, 0.0], [1.0, 0.0]]))
        assert g.n_edges == 1


class TestAccessors:
    def test_name_of_defaults_to_index(self, triangle_digraph):
        assert triangle_digraph.name_of(1) == 1

    def test_named_lookup_roundtrip(self):
        g = DirectedGraph.from_edges(
            [(0, 1)], n_nodes=2, node_names=["a", "b"]
        )
        assert g.name_of(0) == "a"
        assert g.index_of("b") == 1

    def test_index_of_unknown_name(self):
        g = DirectedGraph.from_edges(
            [(0, 1)], n_nodes=2, node_names=["a", "b"]
        )
        with pytest.raises(GraphError, match="unknown"):
            g.index_of("zzz")

    def test_index_of_on_unnamed_graph(self, triangle_digraph):
        with pytest.raises(GraphError, match="no node names"):
            triangle_digraph.index_of("a")

    def test_successors(self, triangle_digraph):
        assert list(triangle_digraph.successors(0)) == [1]

    def test_predecessors(self, triangle_digraph):
        assert list(triangle_digraph.predecessors(0)) == [2]

    def test_edges_iteration(self, triangle_digraph):
        edges = set((i, j) for i, j, _ in triangle_digraph.edges())
        assert edges == {(0, 1), (1, 2), (2, 0)}

    def test_edge_weight_absent_edge(self, triangle_digraph):
        assert triangle_digraph.edge_weight(0, 2) == 0.0


class TestDegrees:
    def test_out_degrees_count(self, triangle_digraph):
        assert triangle_digraph.out_degrees().tolist() == [1, 1, 1]

    def test_in_degrees_count(self, triangle_digraph):
        assert triangle_digraph.in_degrees().tolist() == [1, 1, 1]

    def test_weighted_degrees(self):
        g = DirectedGraph.from_edges([(0, 1, 3.0), (0, 2, 2.0)], n_nodes=3)
        assert g.out_degrees(weighted=True)[0] == 5.0
        assert g.out_degrees(weighted=False)[0] == 2.0
        assert g.in_degrees(weighted=True)[1] == 3.0

    def test_total_degrees(self, triangle_digraph):
        assert triangle_digraph.total_degrees().tolist() == [2, 2, 2]

    def test_fan_degrees(self, two_fans_digraph):
        assert two_fans_digraph.in_degrees()[2] == 2
        assert two_fans_digraph.out_degrees()[2] == 1


class TestTransformations:
    def test_transpose_reverses_edges(self, triangle_digraph):
        t = triangle_digraph.transpose()
        assert t.has_edge(1, 0)
        assert not t.has_edge(0, 1)

    def test_transpose_involution(self, two_fans_digraph):
        assert two_fans_digraph.transpose().transpose() == two_fans_digraph

    def test_with_self_loops(self, triangle_digraph):
        g = triangle_digraph.with_self_loops()
        assert g.edge_weight(0, 0) == 1.0
        assert g.n_edges == 6

    def test_with_self_loops_custom_weight(self, triangle_digraph):
        g = triangle_digraph.with_self_loops(weight=2.5)
        assert g.edge_weight(1, 1) == 2.5

    def test_without_self_loops(self, triangle_digraph):
        g = triangle_digraph.with_self_loops().without_self_loops()
        assert g == triangle_digraph

    def test_subgraph(self, two_fans_digraph):
        sub = two_fans_digraph.subgraph([0, 1, 2])
        assert sub.n_nodes == 3
        assert sub.has_edge(0, 2)
        assert sub.n_edges == 2

    def test_subgraph_preserves_names(self):
        g = DirectedGraph.from_edges(
            [(0, 1), (1, 2)], n_nodes=3, node_names=["a", "b", "c"]
        )
        sub = g.subgraph([2, 0])
        assert sub.node_names == ["c", "a"]

    def test_subgraph_out_of_range(self, triangle_digraph):
        with pytest.raises(GraphError, match="out of range"):
            triangle_digraph.subgraph([0, 9])

    def test_largest_wcc(self):
        g = DirectedGraph.from_edges(
            [(0, 1), (1, 2), (3, 4)], n_nodes=5
        )
        comp = g.largest_weakly_connected_component()
        assert comp.n_nodes == 3

    def test_largest_wcc_connected_graph_unchanged(self, triangle_digraph):
        assert (
            triangle_digraph.largest_weakly_connected_component()
            is triangle_digraph
        )


class TestDunder:
    def test_repr(self, triangle_digraph):
        assert "n_nodes=3" in repr(triangle_digraph)

    def test_equality(self, triangle_digraph):
        other = DirectedGraph.from_edges(
            [(0, 1), (1, 2), (2, 0)], n_nodes=3
        )
        assert triangle_digraph == other

    def test_inequality_different_edges(self, triangle_digraph):
        other = DirectedGraph.from_edges([(0, 1)], n_nodes=3)
        assert triangle_digraph != other

    def test_inequality_different_sizes(self, triangle_digraph):
        other = DirectedGraph.empty(3)
        assert triangle_digraph != other
        assert triangle_digraph != DirectedGraph.empty(4)

    def test_not_hashable(self, triangle_digraph):
        with pytest.raises(TypeError):
            hash(triangle_digraph)

    def test_eq_other_type(self, triangle_digraph):
        assert triangle_digraph != "graph"
