"""Unit tests for :mod:`repro.directed.objectives` (Eqs. 1–4)."""

import numpy as np
import pytest

from repro.exceptions import EvaluationError
from repro.graph import DirectedGraph, UndirectedGraph
from repro.directed.objectives import (
    clustering_ncut,
    ncut,
    ncut_directed,
    wcut,
)
from repro.linalg.pagerank import pagerank


class TestNcut:
    def test_hand_computed(self):
        # Two triangles joined by one edge of weight 1; unit triangle
        # edges. cut = 1; vol(S) = vol(S̄) = 7.
        g = UndirectedGraph.from_edges(
            [
                (0, 1), (1, 2), (0, 2),
                (3, 4), (4, 5), (3, 5),
                (2, 3),
            ],
            n_nodes=6,
        )
        value = ncut(g, [0, 1, 2])
        assert value == pytest.approx(1 / 7 + 1 / 7)

    def test_boolean_mask_input(self):
        g = UndirectedGraph.from_edges([(0, 1), (1, 2)], n_nodes=3)
        mask = np.array([True, False, False])
        assert ncut(g, mask) == ncut(g, [0])

    def test_perfect_split_zero(self):
        g = UndirectedGraph.from_edges([(0, 1), (2, 3)], n_nodes=4)
        assert ncut(g, [0, 1]) == 0.0

    def test_zero_volume_infinite(self):
        g = UndirectedGraph.from_edges([(0, 1)], n_nodes=3)
        assert ncut(g, [2]) == float("inf")

    def test_rejects_empty_subset(self, small_weighted_ugraph):
        with pytest.raises(EvaluationError, match="proper"):
            ncut(small_weighted_ugraph, [])

    def test_rejects_full_subset(self, small_weighted_ugraph):
        with pytest.raises(EvaluationError, match="proper"):
            ncut(small_weighted_ugraph, list(range(6)))

    def test_rejects_out_of_range(self, small_weighted_ugraph):
        with pytest.raises(EvaluationError, match="range"):
            ncut(small_weighted_ugraph, [99])

    def test_rejects_wrong_mask_length(self, small_weighted_ugraph):
        with pytest.raises(EvaluationError, match="length"):
            ncut(small_weighted_ugraph, np.array([True, False]))

    def test_complement_symmetric(self, small_weighted_ugraph):
        s = [0, 1, 2]
        complement = [3, 4, 5]
        assert ncut(small_weighted_ugraph, s) == pytest.approx(
            ncut(small_weighted_ugraph, complement)
        )


class TestNcutDirected:
    def test_figure1_cluster_has_high_ncut_dir(self, figure1):
        """The paper's motivating observation: the natural pair {4,5}
        has a *high* directed Ncut (a random walk always leaves it)."""
        g, roles = figure1
        value = ncut_directed(g, roles["pair"])
        # The walk leaves the pair with probability 1 at every step.
        assert value > 0.9

    def test_cyclic_halves_moderate(self):
        # Two 3-cycles with a single connecting edge each way.
        g = DirectedGraph.from_edges(
            [
                (0, 1), (1, 2), (2, 0),
                (3, 4), (4, 5), (5, 3),
                (2, 3), (5, 0),
            ],
            n_nodes=6,
        )
        value = ncut_directed(g, [0, 1, 2], teleport=1e-4)
        assert 0.0 < value < 0.7

    def test_custom_pi_accepted(self, triangle_digraph):
        pi = np.full(3, 1 / 3)
        value = ncut_directed(triangle_digraph, [0], pi=pi)
        assert value > 0

    def test_rejects_wrong_pi_length(self, triangle_digraph):
        with pytest.raises(EvaluationError):
            ncut_directed(triangle_digraph, [0], pi=np.ones(5))


class TestWCut:
    def test_recovers_ncut_dir_with_pi_weights(self, rng):
        """Eq. 4 with A := P and T = T' = pi equals Eq. 3."""
        from repro.graph.generators import directed_sbm
        from repro.linalg.pagerank import transition_matrix

        g, _ = directed_sbm([6, 6], p_in=0.7, p_out=0.2, rng=rng)
        g = g.largest_weakly_connected_component()
        pi = pagerank(g, teleport=1e-3)
        P, _ = transition_matrix(g)
        as_graph = DirectedGraph(P, validate=False)
        subset = list(range(g.n_nodes // 2))
        wcut_value = wcut(as_graph, subset, T=pi, T_prime=pi)
        ncut_value = ncut_directed(g, subset, pi=pi)
        assert wcut_value == pytest.approx(ncut_value, rel=1e-9)

    def test_recovers_plain_ncut_on_symmetric_graph(self):
        """Eq. 4 with symmetric A, T' = 1, T = degree equals Eq. 1."""
        edges = [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]
        g = DirectedGraph.from_edges(edges, n_nodes=4)
        u = UndirectedGraph.from_edges([(0, 1), (1, 2), (2, 3)], n_nodes=4)
        degrees = g.total_degrees(weighted=True) / 2.0
        value = wcut(
            g, [0, 1], T=degrees, T_prime=np.ones(4)
        )
        assert value == pytest.approx(ncut(u, [0, 1]))

    def test_rejects_wrong_weight_lengths(self, triangle_digraph):
        with pytest.raises(EvaluationError):
            wcut(triangle_digraph, [0], T=np.ones(2), T_prime=np.ones(3))

    def test_zero_denominator_infinite(self, triangle_digraph):
        value = wcut(
            triangle_digraph,
            [0],
            T=np.array([0.0, 1.0, 1.0]),
            T_prime=np.ones(3),
        )
        assert value == float("inf")


class TestClusteringNcut:
    def test_two_way_equals_ncut(self, small_weighted_ugraph):
        # For k=2 the k-way objective sum_c cut(c)/vol(c) is exactly
        # Ncut(S) of either side (Eq. 1 already sums both sides).
        labels = np.array([0, 0, 0, 1, 1, 1])
        value = clustering_ncut(small_weighted_ugraph, labels)
        assert value == pytest.approx(ncut(small_weighted_ugraph, [0, 1, 2]))

    def test_single_cluster_zero(self, small_weighted_ugraph):
        assert clustering_ncut(
            small_weighted_ugraph, np.zeros(6, dtype=int)
        ) == 0.0

    def test_good_split_beats_bad(self, small_weighted_ugraph):
        good = np.array([0, 0, 0, 1, 1, 1])
        bad = np.array([0, 1, 0, 1, 0, 1])
        assert clustering_ncut(
            small_weighted_ugraph, good
        ) < clustering_ncut(small_weighted_ugraph, bad)

    def test_rejects_wrong_length(self, small_weighted_ugraph):
        with pytest.raises(EvaluationError):
            clustering_ncut(small_weighted_ugraph, np.zeros(3, dtype=int))
