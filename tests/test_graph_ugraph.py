"""Unit tests for :mod:`repro.graph.ugraph`."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import UndirectedGraph


class TestConstruction:
    def test_from_edges_symmetric_storage(self):
        g = UndirectedGraph.from_edges([(0, 1)], n_nodes=2)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.n_edges == 1

    def test_self_loop_counts_once(self):
        g = UndirectedGraph.from_edges([(0, 0), (0, 1)], n_nodes=2)
        assert g.n_edges == 2

    def test_rejects_asymmetric_matrix(self):
        with pytest.raises(GraphError, match="symmetric"):
            UndirectedGraph(np.array([[0.0, 1.0], [0.0, 0.0]]))

    def test_accepts_tiny_numerical_asymmetry(self):
        m = np.array([[0.0, 1.0], [1.0 + 1e-12, 0.0]])
        g = UndirectedGraph(m)
        # Cleaned to exact symmetry.
        assert g.edge_weight(0, 1) == g.edge_weight(1, 0)

    def test_rejects_negative(self):
        with pytest.raises(GraphError, match="non-negative"):
            UndirectedGraph(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(GraphError, match="square"):
            UndirectedGraph(np.zeros((2, 3)))

    def test_empty(self):
        g = UndirectedGraph.empty(3)
        assert g.n_nodes == 3
        assert g.n_edges == 0

    def test_from_edges_needs_n_nodes_when_empty(self):
        with pytest.raises(GraphError, match="n_nodes"):
            UndirectedGraph.from_edges([])

    def test_bad_edge_arity(self):
        with pytest.raises(GraphError, match="2 or 3"):
            UndirectedGraph.from_edges([(0,)], n_nodes=1)

    def test_node_names_mismatch(self):
        with pytest.raises(GraphError, match="names"):
            UndirectedGraph(np.zeros((2, 2)), node_names=["x"])


class TestProperties:
    def test_degrees_weighted(self, small_weighted_ugraph):
        deg = small_weighted_ugraph.degrees()
        assert deg[0] == pytest.approx(4.0)
        assert deg[2] == pytest.approx(4.1)

    def test_degrees_unweighted(self, small_weighted_ugraph):
        deg = small_weighted_ugraph.degrees(weighted=False)
        assert deg[2] == 3

    def test_total_weight(self, small_weighted_ugraph):
        assert small_weighted_ugraph.total_weight() == pytest.approx(12.1)

    def test_total_weight_counts_self_loops_once(self):
        g = UndirectedGraph.from_edges([(0, 0, 2.0), (0, 1, 1.0)], n_nodes=2)
        assert g.total_weight() == pytest.approx(3.0)

    def test_neighbors(self, small_weighted_ugraph):
        assert set(small_weighted_ugraph.neighbors(2)) == {0, 1, 3}

    def test_edges_each_once(self, small_weighted_ugraph):
        edges = list(small_weighted_ugraph.edges())
        assert len(edges) == 7
        assert all(i <= j for i, j, _ in edges)

    def test_edge_weight_missing(self, small_weighted_ugraph):
        assert small_weighted_ugraph.edge_weight(0, 5) == 0.0

    def test_name_of(self):
        g = UndirectedGraph.from_edges(
            [(0, 1)], n_nodes=2, node_names=["x", "y"]
        )
        assert g.name_of(1) == "y"
        assert g.node_names == ["x", "y"]


class TestTransformations:
    def test_without_self_loops(self):
        g = UndirectedGraph.from_edges([(0, 0), (0, 1)], n_nodes=2)
        clean = g.without_self_loops()
        assert clean.n_edges == 1
        assert not clean.has_edge(0, 0)

    def test_subgraph(self, small_weighted_ugraph):
        sub = small_weighted_ugraph.subgraph([0, 1, 2])
        assert sub.n_nodes == 3
        assert sub.n_edges == 3

    def test_subgraph_out_of_range(self, small_weighted_ugraph):
        with pytest.raises(GraphError):
            small_weighted_ugraph.subgraph([99])

    def test_connected_components(self):
        g = UndirectedGraph.from_edges([(0, 1), (2, 3)], n_nodes=5)
        n_comp, labels = g.connected_components()
        assert n_comp == 3
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]

    def test_isolated_nodes(self):
        g = UndirectedGraph.from_edges([(0, 1)], n_nodes=4)
        assert set(g.isolated_nodes()) == {2, 3}


class TestDunder:
    def test_repr(self, small_weighted_ugraph):
        assert "n_nodes=6" in repr(small_weighted_ugraph)

    def test_equality(self):
        a = UndirectedGraph.from_edges([(0, 1, 2.0)], n_nodes=2)
        b = UndirectedGraph.from_edges([(0, 1, 2.0)], n_nodes=2)
        assert a == b

    def test_inequality(self):
        a = UndirectedGraph.from_edges([(0, 1, 2.0)], n_nodes=2)
        b = UndirectedGraph.from_edges([(0, 1, 3.0)], n_nodes=2)
        assert a != b
        assert a != UndirectedGraph.empty(3)

    def test_not_hashable(self, small_weighted_ugraph):
        with pytest.raises(TypeError):
            hash(small_weighted_ugraph)

    def test_eq_other_type(self, small_weighted_ugraph):
        assert small_weighted_ugraph != 42
