"""Unit tests for :mod:`repro.pipeline` (pipeline, sweeps, report)."""

import pytest

from repro.cluster import MetisClusterer
from repro.exceptions import ClusteringError
from repro.pipeline import (
    SymmetrizeClusterPipeline,
    format_series,
    format_table,
    sweep_alpha_beta,
    sweep_n_clusters,
    sweep_threshold,
)
from repro.symmetrize import NaiveSymmetrization


class TestPipeline:
    def test_end_to_end(self, cora_small):
        pipe = SymmetrizeClusterPipeline("degree_discounted", "metis")
        result = pipe.run(
            cora_small.graph,
            n_clusters=12,
            ground_truth=cora_small.ground_truth,
        )
        assert result.clustering.n_clusters == 12
        assert result.average_f is not None
        assert result.average_f > 20.0
        assert result.symmetrize_seconds > 0
        assert result.cluster_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.symmetrize_seconds + result.cluster_seconds
        )

    def test_instances_accepted(self, cora_small):
        pipe = SymmetrizeClusterPipeline(
            NaiveSymmetrization(), MetisClusterer()
        )
        result = pipe.run(cora_small.graph, n_clusters=5)
        assert result.clustering.n_clusters == 5
        assert result.average_f is None

    def test_precomputed_symmetrization_reused(self, cora_small):
        pipe = SymmetrizeClusterPipeline("naive", "metis")
        undirected = pipe.symmetrize(cora_small.graph)
        result = pipe.run(
            cora_small.graph, n_clusters=4, symmetrized=undirected
        )
        assert result.symmetrize_seconds == 0.0
        assert result.symmetrized is undirected

    def test_threshold_applied(self, cora_small):
        dense = SymmetrizeClusterPipeline(
            "degree_discounted", "metis"
        ).symmetrize(cora_small.graph)
        sparse = SymmetrizeClusterPipeline(
            "degree_discounted", "metis", threshold=0.05
        ).symmetrize(cora_small.graph)
        assert sparse.n_edges < dense.n_edges

    def test_rejects_bad_components(self):
        with pytest.raises(ClusteringError):
            SymmetrizeClusterPipeline(42, "metis")
        with pytest.raises(ClusteringError):
            SymmetrizeClusterPipeline("naive", 42)

    def test_repr(self):
        pipe = SymmetrizeClusterPipeline("naive", "metis", threshold=0.5)
        assert "0.5" in repr(pipe)


class TestSweeps:
    def test_sweep_n_clusters(self, cora_small):
        points = sweep_n_clusters(
            cora_small.graph,
            "naive",
            "metis",
            cluster_counts=[4, 8],
            ground_truth=cora_small.ground_truth,
        )
        assert len(points) == 2
        assert points[0].parameter == 4
        assert points[0].n_clusters == 4
        assert points[1].n_clusters == 8
        assert all(p.average_f is not None for p in points)
        assert all(p.cluster_seconds > 0 for p in points)

    def test_sweep_without_ground_truth(self, cora_small):
        points = sweep_n_clusters(
            cora_small.graph, "naive", "metis", cluster_counts=[4]
        )
        assert points[0].average_f is None

    def test_sweep_threshold_edges_decrease(self, cora_small):
        points = sweep_threshold(
            cora_small.graph,
            thresholds=[0.0, 0.03, 0.08],
            clusterer="metis",
            n_clusters=8,
            ground_truth=cora_small.ground_truth,
        )
        edges = [p.n_edges for p in points]
        assert edges == sorted(edges, reverse=True)

    def test_sweep_alpha_beta(self, cora_small):
        points = sweep_alpha_beta(
            cora_small.graph,
            configurations=[(0.5, 0.5), (0.0, 0.0), ("log", "log")],
            clusterer="metis",
            n_clusters=8,
            ground_truth=cora_small.ground_truth,
            threshold=0.01,
        )
        assert len(points) == 3
        assert points[0].parameter == (0.5, 0.5)
        assert all(p.average_f is not None for p in points)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(
            ["name", "value"],
            [["a", 1.0], ["longer", 23.456]],
            title="Table X",
        )
        lines = out.splitlines()
        assert lines[0] == "Table X"
        assert "name" in lines[1]
        assert "23.46" in lines[-1]

    def test_format_table_empty_rows(self):
        out = format_table(["h1"], [])
        assert "h1" in out

    def test_format_series(self):
        out = format_series("dd", [10, 20], [1.5, 2.5], "k", "F")
        assert "dd" in out
        assert "10:1.50" in out
        assert "[k -> F]" in out
