"""Tests for the clustering service daemon and the concurrency
fixes it exposed (cache locking, pool drain, ambient scoping,
journal tailing)."""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.datasets import make_cora_like
from repro.engine import (
    ArtifactCache,
    JournalTailer,
    RunJournal,
    WorkerPool,
    ambient_scope,
    current_cache,
    current_journal,
    current_pool,
)
from repro.exceptions import BudgetExceeded, ReproError
from repro.graph import DirectedGraph
from repro.obs.metrics import MetricsRegistry, current_metrics
from repro.obs.trace import Tracer, current_tracer
from repro.pipeline.pipeline import SymmetrizeClusterPipeline
from repro.service import (
    JobManager,
    JobSpec,
    ServiceClient,
    ServiceError,
    ServiceServer,
)
from repro.service.client import ServiceHTTPError


@pytest.fixture
def small_graph() -> DirectedGraph:
    return make_cora_like(n_nodes=120, n_categories=4, seed=3).graph


# ----------------------------------------------------------------------
# Satellite: ArtifactCache is safe under concurrent access
# ----------------------------------------------------------------------
class TestCacheThreadSafety:
    def test_two_thread_hammer(self, small_graph) -> None:
        """Concurrent put/get with eviction pressure must not corrupt
        the LRU order, byte accounting or hit/miss counters."""
        from repro.engine.cache import _graph_nbytes

        sym = SymmetrizeClusterPipeline(
            "naive", "metis"
        ).symmetrize(small_graph)
        single = _graph_nbytes(sym)
        # Room for only a handful of entries -> constant eviction.
        cache = ArtifactCache(max_bytes=max(single, 1) * 3)
        errors: list[BaseException] = []

        def hammer(seed: int) -> None:
            try:
                for i in range(300):
                    key = f"{'%032x' % ((seed * 1000 + i) % 7)}"
                    if i % 2:
                        cache.put(key, sym)
                    else:
                        cache.get(key)
                    assert cache.memory_bytes >= 0
            except BaseException as exc:  # noqa: BLE001 - test capture
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors, errors
        stats = cache.stats()
        assert stats["memory_entries"] == len(cache)
        assert cache.hits + cache.misses == 300
        assert cache.memory_bytes <= max(single, 1) * 3

    def test_promote_under_lock(self, tmp_path, small_graph) -> None:
        """get() promoting a disk hit re-enters the lock (RLock)."""
        sym = SymmetrizeClusterPipeline(
            "naive", "metis"
        ).symmetrize(small_graph)
        cache = ArtifactCache(directory=tmp_path)
        key = "ab" * 16
        cache.put(key, sym)
        cache._memory.clear()
        cache._memory_bytes = 0
        assert cache.get(key) is not None  # disk hit, promoted
        assert key in cache


# ----------------------------------------------------------------------
# Satellite: WorkerPool.close() drains without leaking processes
# ----------------------------------------------------------------------
def _sleep_then_square(payload: float) -> float:
    time.sleep(payload)
    return payload * payload


class TestWorkerPoolClose:
    def test_close_reaps_workers(self) -> None:
        pool = WorkerPool(max_workers=2)
        results = pool.run(_sleep_then_square, [0.0, 0.0])
        if results is None:
            pytest.skip("process pools unavailable in this sandbox")
        assert results == [0.0, 0.0]
        pool.close(timeout=10.0)
        deadline = time.monotonic() + 10.0
        while (
            multiprocessing.active_children()
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    def test_close_idempotent(self) -> None:
        pool = WorkerPool(max_workers=1)
        pool.close()
        pool.close()  # second close is a no-op, not an error


# ----------------------------------------------------------------------
# Satellite: ambient_scope isolates interleaved tasks
# ----------------------------------------------------------------------
class TestAmbientScope:
    def test_installs_and_resets_everything(self) -> None:
        cache = ArtifactCache()
        tracer = Tracer()
        metrics = MetricsRegistry()
        assert current_cache() is None
        with ambient_scope(
            cache=cache, tracer=tracer, metrics=metrics
        ) as state:
            assert state.cache is cache
            assert current_cache() is cache
            assert current_tracer() is tracer
            assert current_metrics() is metrics
        assert current_cache() is None
        assert current_tracer() is None
        assert current_metrics() is None

    def test_reset_on_exception(self) -> None:
        with pytest.raises(RuntimeError), ambient_scope(
            cache=ArtifactCache(), tracer=Tracer()
        ):
            raise RuntimeError("boom")
        assert current_cache() is None
        assert current_tracer() is None

    def test_isolate_severs_inheritance(self) -> None:
        outer = ArtifactCache()
        with ambient_scope(cache=outer):
            with ambient_scope(isolate=True):
                assert current_cache() is None
                assert current_pool() is None
                assert current_journal() is None
            assert current_cache() is outer

    def test_interleaved_tasks_never_cross(self) -> None:
        """Two asyncio tasks interleaving inside their own scopes
        must each observe only their own registries throughout."""
        observed: dict[str, list[bool]] = {"a": [], "b": []}

        async def worker(name: str, barrier: asyncio.Barrier) -> None:
            mine_cache, mine_metrics = ArtifactCache(), MetricsRegistry()
            with ambient_scope(
                cache=mine_cache, metrics=mine_metrics, isolate=True
            ):
                for _ in range(5):
                    await barrier.wait()  # force interleaving
                    observed[name].append(
                        current_cache() is mine_cache
                        and current_metrics() is mine_metrics
                    )

        async def main() -> None:
            barrier = asyncio.Barrier(2)
            await asyncio.gather(
                worker("a", barrier), worker("b", barrier)
            )

        asyncio.run(main())
        assert observed["a"] == [True] * 5
        assert observed["b"] == [True] * 5

    def test_interleaved_threads_never_cross(self) -> None:
        """Same property across pooled worker threads — the daemon's
        actual execution substrate."""
        failures: list[str] = []
        start = threading.Barrier(2)

        def worker(name: str) -> None:
            mine = ArtifactCache()
            start.wait()
            with ambient_scope(cache=mine, isolate=True):
                for _ in range(200):
                    if current_cache() is not mine:
                        failures.append(name)

        threads = [
            threading.Thread(target=worker, args=(n,))
            for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not failures


# ----------------------------------------------------------------------
# Satellite: JournalTailer vs an actively-appended journal
# ----------------------------------------------------------------------
class TestJournalTailer:
    def test_partial_trailing_record_retried(self, tmp_path) -> None:
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path, run_id="r1")
        journal.start("test", "t", "sha", "strict")
        journal.record_stage("p", 0, "symmetrize", None, 0.1, 1)

        tailer = JournalTailer(path, run_id="r1")
        first = tailer.poll()
        assert [r["type"] for r in first] == [
            "run_start",
            "stage_done",
        ]

        # Simulate an in-flight append: half a record, no newline.
        full_line = (
            json.dumps(
                {
                    "schema": "repro-journal/v1",
                    "run_id": "r1",
                    "type": "run_end",
                    "status": "complete",
                }
            )
            + "\n"
        )
        with path.open("a") as handle:
            handle.write(full_line[:10])
            handle.flush()
        # Partial tail is not an error and not consumed.
        assert tailer.poll() == []
        with path.open("a") as handle:
            handle.write(full_line[10:])
        assert [r["type"] for r in tailer.poll()] == ["run_end"]
        # Offset advanced past everything; nothing re-delivered.
        assert tailer.poll() == []
        journal.close()

    def test_filters_other_runs(self, tmp_path) -> None:
        path = tmp_path / "journal.jsonl"
        for run_id in ("r1", "r2"):
            journal = RunJournal(path, run_id=run_id)
            journal.start("test", "t", "sha", "strict")
            journal.close()
        tailer = JournalTailer(path, run_id="r2")
        records = tailer.poll()
        assert len(records) == 1
        assert records[0]["run_id"] == "r2"

    def test_missing_file_is_empty(self, tmp_path) -> None:
        tailer = JournalTailer(tmp_path / "nope.jsonl")
        assert tailer.poll() == []

    def test_malformed_complete_line_raises(self, tmp_path) -> None:
        path = tmp_path / "journal.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(ReproError):
            JournalTailer(path).poll()


# ----------------------------------------------------------------------
# JobManager unit tests (no HTTP)
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_rejects_unknown_kind(self) -> None:
        with pytest.raises(ServiceError, match="unknown job kind"):
            JobSpec.from_dict({"kind": "nope", "graph": "g"})

    def test_rejects_missing_graph(self) -> None:
        with pytest.raises(ServiceError, match="'graph'"):
            JobSpec.from_dict({"kind": "cluster"})

    def test_sweep_needs_counts(self) -> None:
        with pytest.raises(ServiceError, match="counts"):
            JobSpec.from_dict({"kind": "sweep", "graph": "g"})

    def test_counts_only_for_sweep(self) -> None:
        with pytest.raises(ServiceError, match="only valid"):
            JobSpec.from_dict(
                {"kind": "cluster", "graph": "g", "counts": [2]}
            )


class TestJobManager:
    def test_dedup_and_shared_result(
        self, tmp_path, small_graph
    ) -> None:
        manager = JobManager(tmp_path, max_workers=2)
        manager.register_graph("g", small_graph)
        spec = JobSpec.from_dict(
            {"kind": "cluster", "graph": "g", "n_clusters": 4}
        )
        job1, dedup1 = manager.submit(spec, "alice")
        job2, dedup2 = manager.submit(spec, "bob")
        assert job1 is job2
        assert (dedup1, dedup2) == (False, True)
        assert job1.done.wait(60)
        assert job1.state == "done", job1.error
        assert sorted(job1.clients) == ["alice", "bob"]
        counters = manager.metrics.as_dict()["counters"]
        assert counters["service_job_executions_total"] == 1
        assert counters["service_dedup_hits_total"] == 1
        manager.close()

    def test_dedup_hits_completed_job(
        self, tmp_path, small_graph
    ) -> None:
        manager = JobManager(tmp_path, max_workers=1)
        manager.register_graph("g", small_graph)
        spec = JobSpec.from_dict(
            {"kind": "symmetrize", "graph": "g"}
        )
        job1, _ = manager.submit(spec, "alice")
        assert job1.done.wait(60)
        job2, deduped = manager.submit(spec, "carol")
        assert deduped and job2 is job1
        manager.close()

    def test_distinct_specs_are_distinct_jobs(
        self, tmp_path, small_graph
    ) -> None:
        manager = JobManager(tmp_path, max_workers=2)
        manager.register_graph("g", small_graph)
        a, _ = manager.submit(
            JobSpec.from_dict(
                {"kind": "cluster", "graph": "g", "n_clusters": 4}
            ),
            "alice",
        )
        b, deduped = manager.submit(
            JobSpec.from_dict(
                {"kind": "cluster", "graph": "g", "n_clusters": 8}
            ),
            "alice",
        )
        assert not deduped and a is not b
        assert a.done.wait(60) and b.done.wait(60)
        manager.close()

    def test_client_budget_enforced(
        self, tmp_path, small_graph
    ) -> None:
        from repro.exceptions import BudgetExceeded

        manager = JobManager(
            tmp_path, max_workers=1, client_wall_s=1e-9
        )
        manager.register_graph("g", small_graph)
        spec = JobSpec.from_dict(
            {"kind": "symmetrize", "graph": "g"}
        )
        job, _ = manager.submit(spec, "greedy")  # spent still 0
        assert job.done.wait(60)
        with pytest.raises(BudgetExceeded):
            manager.submit(
                JobSpec.from_dict(
                    {
                        "kind": "symmetrize",
                        "graph": "g",
                        "mode": "lenient",
                    }
                ),
                "greedy",
            )
        # Dedup riders are not charged and not denied.
        rider, deduped = manager.submit(spec, "frugal")
        assert deduped and rider is job
        counters = manager.metrics.as_dict()["counters"]
        assert counters["service_budget_denials_total"] == 1
        manager.close()

    def test_failed_job_reruns(self, tmp_path, small_graph) -> None:
        manager = JobManager(tmp_path, max_workers=1)
        manager.register_graph("g", small_graph)
        bad = JobSpec.from_dict(
            {
                "kind": "cluster",
                "graph": "g",
                "n_clusters": 10**6,  # k > n: ClusteringError
            }
        )
        job1, _ = manager.submit(bad, "alice")
        assert job1.done.wait(60)
        assert job1.state == "failed"
        job2, deduped = manager.submit(bad, "alice")
        assert not deduped and job2 is not job1
        assert job2.done.wait(60)
        manager.close()

    def test_register_conflicts(self, tmp_path, small_graph) -> None:
        manager = JobManager(tmp_path)
        manager.register_graph("g", small_graph)
        manager.register_graph("g", small_graph)  # idempotent
        other = make_cora_like(
            n_nodes=60, n_categories=3, seed=9
        ).graph
        with pytest.raises(ServiceError, match="already registered"):
            manager.register_graph("g", other)
        with pytest.raises(ServiceError, match="no graph"):
            manager.graph("missing")
        manager.close()

    def test_manifest_log_has_job_section(
        self, tmp_path, small_graph
    ) -> None:
        manager = JobManager(tmp_path, max_workers=1)
        manager.register_graph("g", small_graph)
        job, _ = manager.submit(
            JobSpec.from_dict(
                {"kind": "cluster", "graph": "g", "n_clusters": 4}
            ),
            "alice",
        )
        assert job.done.wait(60)
        lines = (
            (tmp_path / "manifests.jsonl").read_text().splitlines()
        )
        assert len(lines) == 1
        manifest = json.loads(lines[0])
        assert manifest["job"]["job_id"] == job.job_id
        assert manifest["job"]["clients"] == ["alice"]
        manager.close()


# ----------------------------------------------------------------------
# Live-server integration
# ----------------------------------------------------------------------
@contextlib.contextmanager
def live_server(tmp_path, **kwargs):
    server = ServiceServer(str(tmp_path / "svc"), port=0, **kwargs)
    ready = threading.Event()
    outcome: dict[str, bool] = {}

    def run() -> None:
        async def main() -> bool:
            await server.start()
            ready.set()
            return await server.serve_until_shutdown()

        outcome["clean"] = asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(15), "server did not start"
    try:
        yield server
    finally:
        if not server._shutdown.is_set():
            with contextlib.suppress(Exception):
                ServiceClient("127.0.0.1", server.port).shutdown()
        thread.join(30)
        assert not thread.is_alive(), "server thread leaked"
        outcome.setdefault("clean", False)
        assert outcome["clean"], "job manager did not drain cleanly"


class TestServiceIntegration:
    def test_concurrent_submitters_dedup_and_byte_identity(
        self, tmp_path, small_graph
    ) -> None:
        """Eight concurrent clients posting the identical request
        share one execution, and its labels are byte-identical to
        the in-process library path."""
        reference = SymmetrizeClusterPipeline(
            "degree_discounted", "mlrmcl"
        ).run(small_graph, n_clusters=4)
        reference_sha = hashlib.sha256(
            np.ascontiguousarray(
                reference.clustering.labels, dtype=np.int64
            ).tobytes()
        ).hexdigest()[:16]

        with live_server(tmp_path, max_workers=2) as server:
            ServiceClient(
                "127.0.0.1", server.port, client="loader"
            ).register_graph("cora", small_graph)

            responses: dict[int, dict] = {}
            errors: list[BaseException] = []
            start = threading.Barrier(8)

            def submitter(index: int) -> None:
                try:
                    client = ServiceClient(
                        "127.0.0.1",
                        server.port,
                        client=f"client-{index}",
                    )
                    start.wait(15)
                    sub = client.submit(
                        kind="cluster",
                        graph="cora",
                        n_clusters=4,
                    )
                    result = client.result(
                        sub["job_id"], timeout=120
                    )
                    responses[index] = {**sub, "result": result}
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=submitter, args=(i,))
                for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            assert not errors, errors
            assert len(responses) == 8

            job_ids = {r["job_id"] for r in responses.values()}
            assert len(job_ids) == 1, "identical requests split"
            assert (
                sum(1 for r in responses.values() if r["deduped"])
                == 7
            )
            shas = {
                r["result"]["labels_sha256"]
                for r in responses.values()
            }
            assert shas == {reference_sha}
            assert responses[0]["result"]["labels"] == [
                int(v) for v in reference.clustering.labels
            ]

            stats = ServiceClient("127.0.0.1", server.port).stats()
            counters = stats["metrics"]["counters"]
            assert counters["service_job_executions_total"] == 1
            assert counters["service_dedup_hits_total"] == 7

        # Clean shutdown leaves no worker processes behind.
        deadline = time.monotonic() + 10.0
        while (
            multiprocessing.active_children()
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    def test_events_stream_and_errors(
        self, tmp_path, small_graph
    ) -> None:
        with live_server(tmp_path, max_workers=1) as server:
            client = ServiceClient(
                "127.0.0.1", server.port, client="alice"
            )
            assert client.health()["status"] == "ok"
            client.register_graph("cora", small_graph)
            assert [g["name"] for g in client.graphs()] == ["cora"]

            sub = client.submit(
                kind="cluster", graph="cora", n_clusters=4
            )
            client.result(sub["job_id"], timeout=60)
            events = list(client.events(sub["job_id"]))
            types = [e["type"] for e in events]
            assert types[0] == "run_start"
            assert "stage_done" in types
            assert types[-1] == "job_end"
            assert events[-1]["state"] == "done"
            assert all(
                e.get("run_id") == sub["job_id"]
                for e in events[:-1]
            )

            with pytest.raises(ServiceError, match="no graph"):
                client.submit(
                    kind="cluster", graph="nope", n_clusters=4
                )
            with pytest.raises(ServiceError, match="unknown job kind"):
                client.submit(kind="nope", graph="cora")
            with pytest.raises(ServiceError, match="no job"):
                client.job("job-missing")

    def test_budget_denial_reconstructs_budget_exceeded(
        self, tmp_path, small_graph
    ) -> None:
        with live_server(
            tmp_path, max_workers=1, client_wall_s=1e-9
        ) as server:
            client = ServiceClient(
                "127.0.0.1", server.port, client="greedy"
            )
            client.register_graph("cora", small_graph)
            sub = client.submit(kind="symmetrize", graph="cora")
            client.result(sub["job_id"], timeout=60)
            # The structured 429 body round-trips into a real
            # BudgetExceeded with its fields intact.
            with pytest.raises(BudgetExceeded) as excinfo:
                client.submit(
                    kind="symmetrize",
                    graph="cora",
                    mode="lenient",
                )
            assert excinfo.value.scope == "client:greedy"
            assert excinfo.value.resource == "wall_s"
            assert excinfo.value.limit == 1e-9

    def test_jobs_listing_and_wait(
        self, tmp_path, small_graph
    ) -> None:
        with live_server(tmp_path, max_workers=1) as server:
            client = ServiceClient("127.0.0.1", server.port)
            client.register_graph("cora", small_graph)
            sub = client.submit(
                kind="sweep", graph="cora", counts=[2, 4]
            )
            job = client.job(sub["job_id"], wait=60)
            assert job["state"] == "done"
            assert len(job["result"]["points"]) == 2
            listed = client.jobs()
            assert [j["job_id"] for j in listed] == [sub["job_id"]]
