"""Tests for the fault-tolerant execution runtime.

Covers the write-ahead run journal and resume, stage budgets and
retry policies, worker crash isolation in the all-pairs fan-out,
cache-corruption recovery, lenient sweep degradation and the
``repro runs show --failures`` / ``repro sweep`` / ``repro resume``
CLI — all driven through the chaos harness
(:mod:`repro.engine.chaos`), so every recovery path is exercised
against the *injected* failure it exists for.

The ``chaos_smoke`` marker tags the seconds-scale subset CI runs as a
dedicated job (``pytest -m chaos_smoke``); the unmarked tests add the
process-level scenarios (SIGKILL mid-sweep, killed pool workers).
"""

from __future__ import annotations

import functools
import json
import os
import signal
import subprocess
import sys
import textwrap
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.cli import main
from repro.engine import (
    ArtifactCache,
    Budget,
    Executor,
    Fault,
    FaultPlan,
    JournalReplay,
    Plan,
    RetryPolicy,
    RunJournal,
    SymmetrizeStage,
    ValidateInputStage,
    inject_faults,
    read_journal,
    run_journal,
)
from repro.engine.chaos import chaos, current_faults
from repro.eval.groundtruth import GroundTruth
from repro.exceptions import (
    BudgetExceeded,
    ExecutionWarning,
    FaultInjected,
    ReproError,
    TransientError,
    WorkerCrashError,
)
from repro.graph.generators import power_law_digraph
from repro.graph.io import write_edge_list
from repro.linalg.allpairs import thresholded_gram_matrix
from repro.obs import metrics_active, read_manifests
from repro.pipeline.pipeline import SymmetrizeClusterPipeline
from repro.pipeline.sweep import (
    SweepPoint,
    aggregate_average_f,
    sweep_n_clusters,
)


def _sym_plan(threshold: float = 0.0) -> Plan:
    return Plan(
        [
            ValidateInputStage(),
            SymmetrizeStage("naive", threshold=threshold),
        ],
        initial=("graph",),
    )


@functools.lru_cache(maxsize=1)
def _pool_available() -> bool:
    """Whether this environment can actually fork pool workers."""
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(abs, -1).result(timeout=60) == 1
    except Exception:
        return False


# ---------------------------------------------------------------------------
# Chaos harness primitives
# ---------------------------------------------------------------------------


@pytest.mark.chaos_smoke
class TestChaosHarness:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            Fault(site="x", kind="meteor")

    def test_bad_indices_rejected(self):
        with pytest.raises(ReproError, match="at and .*times"):
            Fault(site="x", at=0)
        with pytest.raises(ReproError, match="at and .*times"):
            Fault(site="x", times=0)

    def test_armed_window(self):
        fault = Fault(site="x", at=2, times=3)
        assert [fault.armed_for(i) for i in range(1, 7)] == [
            False, True, True, True, False, False,
        ]

    def test_raise_kind_fires_on_nth_call(self):
        plan = FaultPlan([Fault(site="s", at=2)])
        assert plan.hit("s") is None
        with pytest.raises(FaultInjected, match="injected raise"):
            plan.hit("s")
        assert plan.seen("s") == 2
        assert plan.triggered_count("s") == 1
        assert plan.triggered_count() == 1

    def test_enospc_kind_raises_full_disk(self):
        plan = FaultPlan([Fault(site="disk", kind="enospc")])
        with pytest.raises(OSError) as info:
            plan.hit("disk")
        import errno

        assert info.value.errno == errno.ENOSPC

    def test_flag_kinds_are_returned_not_raised(self):
        plan = FaultPlan(
            [
                Fault(site="w", kind="kill_worker"),
                Fault(site="c", kind="corrupt"),
            ]
        )
        assert plan.hit("w").kind == "kill_worker"
        assert plan.hit("c").kind == "corrupt"
        assert plan.triggered_count() == 2

    def test_chaos_is_noop_without_plan(self):
        assert current_faults() is None
        assert chaos("anything") is None

    def test_inject_faults_accepts_bare_list(self):
        with inject_faults([Fault(site="s")]) as plan:
            assert current_faults() is plan
            with pytest.raises(FaultInjected):
                chaos("s")
        assert current_faults() is None

    def test_sites_are_exact_match(self):
        plan = FaultPlan([Fault(site="stage:cluster")])
        assert plan.hit("stage:clustering") is None
        assert plan.triggered_count() == 0


@pytest.mark.chaos_smoke
class TestTaxonomy:
    def test_transient_hierarchy(self):
        assert issubclass(TransientError, ReproError)
        assert issubclass(WorkerCrashError, TransientError)
        assert issubclass(FaultInjected, TransientError)

    def test_budget_exceeded_is_structured(self):
        exc = BudgetExceeded("symmetrize", "wall_s", 1.0, 2.5)
        assert exc.scope == "symmetrize"
        assert exc.resource == "wall_s"
        assert exc.limit == 1.0 and exc.spent == 2.5
        assert "symmetrize" in str(exc) and "wall_s" in str(exc)

    def test_execution_warning_carries_code(self):
        warning = ExecutionWarning("x", code="worker_crash")
        assert warning.code == "worker_crash"
        assert ExecutionWarning("y").code == "execution"

    def test_default_retry_policy_scope(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(TransientError("x"), 1)
        assert policy.should_retry(WorkerCrashError("x"), 2)
        assert not policy.should_retry(TransientError("x"), 3)
        assert not policy.should_retry(ReproError("x"), 1)
        assert not policy.should_retry(ValueError("x"), 1)

    def test_deterministic_jitter(self):
        policy = RetryPolicy(
            backoff_s=0.1, backoff_factor=2.0, jitter=0.1
        )
        assert policy.delay(1, token="a") == policy.delay(
            1, token="a"
        )
        assert policy.delay(1, token="a") != policy.delay(
            1, token="b"
        )
        assert 0.09 <= policy.delay(1, token="a") <= 0.11
        assert 0.18 <= policy.delay(2, token="a") <= 0.22
        exact = RetryPolicy(backoff_s=0.1, jitter=0.0)
        assert exact.delay(1) == pytest.approx(0.1)
        capped = RetryPolicy(
            backoff_s=1.0, max_backoff_s=1.5, jitter=0.0
        )
        assert capped.delay(5) == pytest.approx(1.5)


# ---------------------------------------------------------------------------
# Stage retries and budgets
# ---------------------------------------------------------------------------


@pytest.mark.chaos_smoke
class TestStageRetry:
    def test_transient_fault_is_retried(self, rng):
        graph = power_law_digraph(60, rng)
        fault = Fault(site="stage:symmetrize")
        policy = RetryPolicy(max_attempts=3, backoff_s=0.001)
        with metrics_active() as reg, inject_faults([fault]) as plan:
            result = Executor(retry=policy).execute(
                _sym_plan(), {"graph": graph}
            )
        sym = [
            e for e in result.executions if e.stage == "symmetrize"
        ][0]
        assert sym.attempts == 2
        assert plan.triggered_count("stage:symmetrize") == 1
        assert reg.counters["stage_retries_total"] == 1
        assert "stage_retried" in [w.code for w in result.warnings]
        assert result.fault_summary() == {
            "stage_retries": 1,
            "stages_resumed": 0,
        }
        assert result.values["symmetrized"].n_edges > 0

    def test_exhausted_retries_propagate(self, rng):
        graph = power_law_digraph(40, rng)
        fault = Fault(site="stage:symmetrize", times=5)
        policy = RetryPolicy(max_attempts=2, backoff_s=0.001)
        with inject_faults([fault]), pytest.raises(FaultInjected):
            Executor(retry=policy).execute(
                _sym_plan(), {"graph": graph}
            )

    def test_non_transient_errors_not_retried(self, rng):
        graph = power_law_digraph(40, rng)
        fault = Fault(site="stage:symmetrize", exc=ReproError)
        policy = RetryPolicy(max_attempts=5, backoff_s=0.001)
        with inject_faults([fault]) as plan:
            with pytest.raises(ReproError):
                Executor(retry=policy).execute(
                    _sym_plan(), {"graph": graph}
                )
        assert plan.seen("stage:symmetrize") == 1  # single attempt

    def test_no_policy_means_no_retry(self, rng):
        graph = power_law_digraph(40, rng)
        with inject_faults([Fault(site="stage:symmetrize")]):
            with pytest.raises(FaultInjected):
                Executor().execute(_sym_plan(), {"graph": graph})

    def test_failed_attempts_are_journaled(self, tmp_path, rng):
        graph = power_law_digraph(40, rng)
        jpath = tmp_path / "j.jsonl"
        fault = Fault(site="stage:symmetrize")
        policy = RetryPolicy(max_attempts=2, backoff_s=0.001)
        with inject_faults([fault]):
            Executor(
                retry=policy, journal=RunJournal(jpath)
            ).execute(_sym_plan(), {"graph": graph})
        replay = JournalReplay.from_path(jpath)
        assert len(replay.failures) == 1
        record = replay.failures[0]
        assert record["stage"] == "symmetrize"
        assert record["attempt"] == 1
        assert record["error"] == "FaultInjected"
        assert record["fatal"] is False


@pytest.mark.chaos_smoke
class TestBudgets:
    def test_stage_wall_overrun(self, rng):
        graph = power_law_digraph(60, rng)
        with pytest.raises(BudgetExceeded) as info:
            Executor(
                budgets={"symmetrize": Budget(wall_s=0.0)}
            ).execute(_sym_plan(), {"graph": graph})
        assert info.value.scope == "symmetrize"
        assert info.value.resource == "wall_s"
        assert info.value.spent > info.value.limit == 0.0

    def test_stage_mem_overrun(self, rng):
        graph = power_law_digraph(60, rng)
        with pytest.raises(BudgetExceeded) as info:
            Executor(
                budgets={"symmetrize": Budget(mem_bytes=1)}
            ).execute(_sym_plan(), {"graph": graph})
        assert info.value.resource == "mem_bytes"
        assert info.value.spent > 1

    def test_plan_wall_is_cumulative(self, rng):
        graph = power_law_digraph(60, rng)
        with pytest.raises(BudgetExceeded) as info:
            Executor(plan_budget=Budget(wall_s=0.0)).execute(
                _sym_plan(), {"graph": graph}
            )
        assert info.value.scope == "plan"

    def test_unlimited_budget_is_free(self, rng):
        graph = power_law_digraph(60, rng)
        assert Budget().unlimited
        result = Executor(
            budgets={"symmetrize": Budget()},
            plan_budget=Budget(),
        ).execute(_sym_plan(), {"graph": graph})
        assert result.values["symmetrized"].n_edges > 0

    def test_overrun_never_retried_and_journaled_fatal(
        self, tmp_path, rng
    ):
        # BudgetExceeded is a ReproError; even a policy that retries
        # every ReproError must not see it — overruns take the
        # deterministic-failure path before the retry loop.
        graph = power_law_digraph(60, rng)
        jpath = tmp_path / "j.jsonl"
        policy = RetryPolicy(
            max_attempts=5, backoff_s=0.001, retryable=(ReproError,)
        )
        with pytest.raises(BudgetExceeded):
            Executor(
                budgets={"symmetrize": Budget(wall_s=0.0)},
                retry=policy,
                journal=RunJournal(jpath),
            ).execute(_sym_plan(), {"graph": graph})
        replay = JournalReplay.from_path(jpath)
        assert len(replay.failures) == 1
        record = replay.failures[0]
        assert record["error"] == "BudgetExceeded"
        assert record["fatal"] is True
        assert record["budget"]["stage"]["wall_s"] == 0.0


# ---------------------------------------------------------------------------
# The write-ahead journal
# ---------------------------------------------------------------------------


@pytest.mark.chaos_smoke
class TestJournal:
    def test_append_read_roundtrip(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        journal = RunJournal(jpath)
        journal.start("sweep", "grid", "ab" * 8, "strict", {"k": 3})
        journal.record_stage("p", 0, "symmetrize", "key1", 0.5, 1)
        journal.record_point("pk1", 3, {"n_clusters": 3})
        journal.finish()
        journal.close()
        records = read_journal(jpath)
        assert [r["type"] for r in records] == [
            "run_start", "stage_done", "point_done", "run_end",
        ]
        assert all(r["run_id"] == journal.run_id for r in records)
        assert journal.records_written == 4

    def test_run_id_is_deterministic(self, tmp_path):
        args = ("sweep", "grid", "ab" * 8, "strict", {"k": 3})
        first = RunJournal(tmp_path / "a.jsonl").start(*args)
        second = RunJournal(tmp_path / "b.jsonl").start(*args)
        assert first == second
        other = RunJournal(tmp_path / "c.jsonl").start(
            "sweep", "grid", "ab" * 8, "strict", {"k": 4}
        )
        assert other != first

    def test_start_is_idempotent(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        run_id = journal.start("plan", "p", "", "strict")
        assert journal.start("plan", "p", "", "strict") == run_id
        journal.close()
        starts = [
            r
            for r in read_journal(journal.path)
            if r["type"] == "run_start"
        ]
        assert len(starts) == 1

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        journal = RunJournal(jpath)
        journal.start("plan", "p", "", "strict")
        journal.record_stage("p", 0, "s", "k", 0.1, 1)
        journal.close()
        with jpath.open("a") as handle:
            handle.write('{"schema": "repro-journal/v1", "typ')
        with pytest.warns(
            ExecutionWarning, match="partial trailing"
        ):
            records = read_journal(jpath)
        assert len(records) == 2

    def test_mid_file_corruption_raises(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        journal = RunJournal(jpath)
        journal.start("plan", "p", "", "strict")
        journal.close()
        good = jpath.read_text()
        jpath.write_text(good + "garbage not json\n" + good)
        with pytest.raises(ReproError, match="malformed"):
            read_journal(jpath)

    def test_unknown_schema_raises(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        jpath.write_text(
            json.dumps({"schema": "repro-journal/v999"}) + "\n"
        )
        with pytest.raises(ReproError, match="unsupported"):
            read_journal(jpath)

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            read_journal(tmp_path / "missing.jsonl")

    def test_enospc_disables_journal_not_run(self, tmp_path, rng):
        graph = power_law_digraph(40, rng)
        journal = RunJournal(tmp_path / "j.jsonl")
        fault = Fault(site="journal.append", kind="enospc", at=2)
        with metrics_active() as reg, inject_faults([fault]):
            with pytest.warns(ExecutionWarning, match="disabled"):
                result = Executor(journal=journal).execute(
                    _sym_plan(), {"graph": graph}
                )
        # The run itself survived the full disk ...
        assert result.values["symmetrized"].n_edges > 0
        # ... journaling stopped at the failed append and stayed off.
        assert journal.disabled
        assert not journal.append({"type": "run_end"})
        assert (
            reg.counters["journal_write_failures_total"] == 1
        )
        records = read_journal(journal.path)
        assert [r["type"] for r in records] == ["run_start"]

    def test_replay_indexes_and_filters_by_run(self, tmp_path):
        jpath = tmp_path / "j.jsonl"
        first = RunJournal(jpath, run_id="run-a")
        first.start("sweep", "grid", "", "strict")
        first.record_stage("p", 0, "s", "key-a", 0.1, 1)
        first.record_point("pk-a", 1, {"n_clusters": 2})
        first.finish()
        first.close()
        second = RunJournal(jpath, run_id="run-b")
        second.start("sweep", "grid", "", "strict")
        second.record_point("pk-b", 2, {"n_clusters": 4})
        second.close()
        replay = JournalReplay.from_path(jpath)  # first run wins
        assert replay.run_id == "run-a"
        assert replay.completed_stages == {"key-a"}
        assert replay.point("pk-a") == {"n_clusters": 2}
        assert replay.point("pk-b") is None
        assert replay.finished
        assert len(replay) == 2
        other = JournalReplay.from_path(jpath, run_id="run-b")
        assert other.point("pk-b") == {"n_clusters": 4}
        assert not other.finished

    def test_ambient_journal_is_picked_up(self, tmp_path, rng):
        graph = power_law_digraph(40, rng)
        jpath = tmp_path / "j.jsonl"
        with run_journal(jpath) as journal:
            Executor().execute(_sym_plan(), {"graph": graph})
        journal.close()
        types = [r["type"] for r in read_journal(jpath)]
        assert types[0] == "run_start"
        assert types.count("stage_done") == 2


# ---------------------------------------------------------------------------
# Resume: executor stage level and sweep point level
# ---------------------------------------------------------------------------


class TestResume:
    def test_executor_resume_serves_journaled_stages(
        self, tmp_path, rng
    ):
        graph = power_law_digraph(80, rng)
        cache = ArtifactCache(directory=tmp_path / "cache")
        jpath = tmp_path / "j.jsonl"
        cold = Executor(
            cache=cache, journal=RunJournal(jpath)
        ).execute(_sym_plan(), {"graph": graph})
        replay = JournalReplay.from_path(jpath)
        assert replay.completed_stages
        with metrics_active() as reg:
            warm = Executor(
                cache=cache, resume_from=replay
            ).execute(_sym_plan(), {"graph": graph})
        sym = [
            e for e in warm.executions if e.stage == "symmetrize"
        ][0]
        assert sym.resumed and sym.cached
        assert reg.counters["resume_stages_skipped"] == 1
        assert warm.fault_summary()["stages_resumed"] == 1
        a = cold.values["symmetrized"].adjacency
        b = warm.values["symmetrized"].adjacency
        assert (a != b).nnz == 0  # differential: identical artifact

    def test_interrupted_sweep_resumes_identically(
        self, tmp_path, rng
    ):
        graph = power_law_digraph(100, rng)
        counts = [3, 4, 5]
        reference = sweep_n_clusters(graph, "naive", "metis", counts)
        jpath = tmp_path / "j.jsonl"
        journal = RunJournal(jpath)
        # Abort the sweep after its second recorded point.
        fault = Fault(site="sweep.point", at=2, exc=RuntimeError)
        with inject_faults([fault]), pytest.raises(RuntimeError):
            sweep_n_clusters(
                graph, "naive", "metis", counts, journal=journal
            )
        journal.close()
        replay = JournalReplay.from_path(jpath)
        assert len(replay.completed_points) == 2
        assert not replay.finished
        with metrics_active() as reg:
            resumed = sweep_n_clusters(
                graph, "naive", "metis", counts, resume=replay
            )
        assert reg.counters["resume_points_skipped"] == 2
        assert [p.resumed for p in resumed] == [True, True, False]
        for ref, res in zip(reference, resumed):
            assert ref.parameter == res.parameter
            assert ref.n_clusters == res.n_clusters
            assert ref.n_edges == res.n_edges
            assert ref.average_f == res.average_f

    def test_point_key_tracks_lineage_and_mode(self):
        from repro.engine import point_key

        base = point_key("sha", ["fp1", "fp2"], 4, "strict")
        assert base == point_key("sha", ["fp1", "fp2"], 4, "strict")
        assert base != point_key("sha2", ["fp1", "fp2"], 4, "strict")
        assert base != point_key("sha", ["fp1", "fpX"], 4, "strict")
        assert base != point_key("sha", ["fp1", "fp2"], 5, "strict")
        assert base != point_key("sha", ["fp1", "fp2"], 4, "lenient")

    def test_sigkill_mid_sweep_resume_differential(self, tmp_path):
        """The acceptance scenario: SIGKILL a sweep mid-grid, resume
        from its journal, and get results identical to an
        uninterrupted run."""
        jpath = tmp_path / "j.jsonl"
        script = textwrap.dedent(
            f"""
            import numpy as np
            from repro.engine import Fault, RunJournal, inject_faults
            from repro.graph.generators import power_law_digraph
            from repro.pipeline.sweep import sweep_n_clusters

            graph = power_law_digraph(
                120, np.random.default_rng(7)
            )
            journal = RunJournal({str(jpath)!r})
            fault = Fault(
                site="sweep.point", kind="kill_process", at=2
            )
            with inject_faults([fault]):
                sweep_n_clusters(
                    graph, "naive", "metis", [3, 4, 5],
                    journal=journal,
                )
            raise SystemExit("unreachable: fault did not fire")
            """
        )
        env = dict(os.environ)
        src = str(Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = (
            src + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        replay = JournalReplay.from_path(jpath)
        assert len(replay.completed_points) == 2
        assert not replay.finished
        graph = power_law_digraph(120, np.random.default_rng(7))
        resumed = sweep_n_clusters(
            graph, "naive", "metis", [3, 4, 5], resume=replay
        )
        clean = sweep_n_clusters(graph, "naive", "metis", [3, 4, 5])
        assert [p.resumed for p in resumed] == [True, True, False]
        for a, b in zip(clean, resumed):
            assert a.parameter == b.parameter
            assert a.n_clusters == b.n_clusters
            assert a.n_edges == b.n_edges


# ---------------------------------------------------------------------------
# Lenient sweeps degrade per-point failures
# ---------------------------------------------------------------------------


class TestLenientSweep:
    def test_failed_point_degrades_not_aborts(self, rng):
        graph = power_law_digraph(100, rng)
        counts = [3, 4, 5]
        truth = GroundTruth.from_labels(
            np.arange(graph.n_nodes) % 3
        )
        fault = Fault(site="stage:cluster", at=2)
        with metrics_active() as reg, inject_faults([fault]):
            with pytest.warns(ExecutionWarning, match="skipped"):
                points = sweep_n_clusters(
                    graph,
                    "naive",
                    "metis",
                    counts,
                    ground_truth=truth,
                    mode="lenient",
                )
        assert [p.parameter for p in points] == counts
        failed = [p for p in points if p.failed]
        assert len(failed) == 1
        assert failed[0].parameter == 4
        assert failed[0].warning_code == "point_failed"
        assert "FaultInjected" in failed[0].error
        assert failed[0].average_f is None
        assert reg.counters["sweep_points_failed_total"] == 1
        survivors = [p for p in points if not p.failed]
        expected = sum(p.average_f for p in survivors) / len(
            survivors
        )
        assert aggregate_average_f(points) == pytest.approx(
            expected
        )

    def test_strict_sweep_propagates(self, rng):
        graph = power_law_digraph(80, rng)
        fault = Fault(site="stage:cluster", at=2)
        with inject_faults([fault]), pytest.raises(FaultInjected):
            sweep_n_clusters(graph, "naive", "metis", [3, 4, 5])

    def test_failed_points_replay_on_resume(self, tmp_path, rng):
        # A resumed sweep must reproduce what the first run saw —
        # including its recorded failures — not silently retry them.
        graph = power_law_digraph(80, rng)
        jpath = tmp_path / "j.jsonl"
        journal = RunJournal(jpath)
        fault = Fault(site="stage:cluster", at=2)
        with inject_faults([fault]):
            with pytest.warns(ExecutionWarning, match="skipped"):
                first = sweep_n_clusters(
                    graph,
                    "naive",
                    "metis",
                    [3, 4, 5],
                    mode="lenient",
                    journal=journal,
                )
        journal.close()
        replay = JournalReplay.from_path(jpath)
        resumed = sweep_n_clusters(
            graph,
            "naive",
            "metis",
            [3, 4, 5],
            mode="lenient",
            resume=replay,
        )
        assert all(p.resumed for p in resumed)
        assert [p.failed for p in resumed] == [
            p.failed for p in first
        ]
        assert resumed[1].failed
        assert resumed[1].error == first[1].error

    def test_aggregate_excludes_failed_points(self):
        points = [
            SweepPoint(2, 2, 40.0, 0.0, 10),
            SweepPoint(3, 3, 60.0, 0.0, 10),
            SweepPoint(
                4, 0, None, 0.0, 0,
                failed=True, error="x",
                warning_code="point_failed",
            ),
        ]
        assert aggregate_average_f(points) == pytest.approx(50.0)
        assert aggregate_average_f([points[2]]) is None
        assert aggregate_average_f([]) is None


# ---------------------------------------------------------------------------
# Worker crash isolation (allpairs process fan-out)
# ---------------------------------------------------------------------------


class TestWorkerCrashIsolation:
    @pytest.mark.skipif(
        not _pool_available(),
        reason="process pool unavailable in this environment",
    )
    def test_killed_worker_blocks_rerun_in_process(self, rng):
        dense = rng.random((40, 30))
        dense[dense < 0.5] = 0.0
        rows = sp.csr_array(dense)
        baseline = thresholded_gram_matrix(
            rows, 0.2, backend="vectorized", n_jobs=2, block_size=4
        )
        fault = Fault(site="allpairs.worker", kind="kill_worker")
        with metrics_active() as reg, inject_faults([fault]) as plan:
            with pytest.warns(
                ExecutionWarning, match="worker died"
            ):
                survived = thresholded_gram_matrix(
                    rows,
                    0.2,
                    backend="vectorized",
                    n_jobs=2,
                    block_size=4,
                )
        assert plan.triggered_count("allpairs.worker") == 1
        assert reg.counters["worker_crashes_total"] >= 1
        assert (baseline != survived).nnz == 0


# ---------------------------------------------------------------------------
# Cache hardening: atomic pairs, orphans, corruption
# ---------------------------------------------------------------------------


class TestCacheHardening:
    def _store_one(self, tmp_path, rng):
        graph = power_law_digraph(40, rng)
        cache = ArtifactCache(directory=tmp_path / "cache")
        result = Executor(cache=cache).execute(
            _sym_plan(), {"graph": graph}
        )
        key = [
            e.artifact_key
            for e in result.executions
            if e.artifact_key is not None
        ][0]
        return graph, cache, key

    def test_disk_put_writes_atomic_pair(self, tmp_path, rng):
        _graph, cache, key = self._store_one(tmp_path, rng)
        entry = cache._entry_dir(key)
        assert sorted(p.name for p in entry.iterdir()) == [
            "artifact.npz", "meta.json",
        ]  # no .tmp leftovers
        meta = json.loads((entry / "meta.json").read_text())
        assert meta["key"] == key
        assert meta["nnz"] > 0

    def test_orphan_meta_is_dropped_as_miss(self, tmp_path, rng):
        _graph, cache, key = self._store_one(tmp_path, rng)
        entry = cache._entry_dir(key)
        (entry / "artifact.npz").unlink()
        fresh = ArtifactCache(directory=tmp_path / "cache")
        with metrics_active() as reg:
            with pytest.warns(ExecutionWarning, match="orphan"):
                assert fresh.get(key) is None
        assert not entry.exists()  # cleaned up, cannot shadow
        assert reg.counters["cache_orphans_dropped_total"] == 1
        assert reg.counters["cache_misses_total"] == 1

    def test_corrupt_artifact_recovers_by_recompute(
        self, tmp_path, rng
    ):
        graph = power_law_digraph(40, rng)
        cache = ArtifactCache(directory=tmp_path / "cache")
        fault = Fault(site="cache.disk_put", kind="corrupt")
        with inject_faults([fault]) as plan:
            Executor(cache=cache).execute(
                _sym_plan(), {"graph": graph}
            )
        assert plan.triggered_count("cache.disk_put") == 1
        fresh = ArtifactCache(directory=tmp_path / "cache")
        key = cache.keys_seen[-1]
        assert fresh.get(key) is None  # corrupt entry is a miss
        result = Executor(cache=fresh).execute(
            _sym_plan(), {"graph": graph}
        )
        sym = [
            e for e in result.executions if e.stage == "symmetrize"
        ][0]
        assert sym.cached is False  # recomputed and re-stored
        healed = ArtifactCache(directory=tmp_path / "cache")
        assert healed.get(key) is not None


# ---------------------------------------------------------------------------
# Manifest provenance and the CLI surface
# ---------------------------------------------------------------------------


class TestFaultProvenance:
    def test_pipeline_manifest_records_fault_section(
        self, tmp_path, rng
    ):
        graph = power_law_digraph(80, rng)
        jpath = tmp_path / "j.jsonl"
        log = tmp_path / "runs.jsonl"
        pipe = SymmetrizeClusterPipeline("naive", "metis")
        result = pipe.run(
            graph,
            n_clusters=4,
            journal=RunJournal(jpath),
            manifest_path=log,
        )
        section = result.fault_tolerance
        assert section["journal"] == str(jpath)
        assert section["run_id"]
        assert section["resumed"] is False
        assert section["stage_retries"] == 0
        manifest = read_manifests(log)[-1]
        assert manifest.fault_tolerance == section

    def test_failures_view_reads_journal_file(
        self, tmp_path, rng, capsys
    ):
        graph = power_law_digraph(60, rng)
        jpath = tmp_path / "j.jsonl"
        policy = RetryPolicy(max_attempts=2, backoff_s=0.001)
        with inject_faults([Fault(site="stage:symmetrize")]):
            Executor(
                retry=policy, journal=RunJournal(jpath)
            ).execute(_sym_plan(), {"graph": graph})
        assert (
            main(["runs", "show", str(jpath), "--failures"]) == 0
        )
        out = capsys.readouterr().out
        assert "symmetrize" in out
        assert "retried" in out
        assert "FaultInjected" in out

    def test_failures_view_empty(self, tmp_path, rng, capsys):
        graph = power_law_digraph(40, rng)
        jpath = tmp_path / "j.jsonl"
        Executor(journal=RunJournal(jpath)).execute(
            _sym_plan(), {"graph": graph}
        )
        assert (
            main(["runs", "show", str(jpath), "--failures"]) == 0
        )
        assert "no failures" in capsys.readouterr().out

    def test_cli_sweep_then_resume(self, tmp_path, rng, capsys):
        graph = power_law_digraph(80, rng)
        gpath = tmp_path / "g.txt"
        write_edge_list(graph, gpath)
        jpath = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "sweep", str(gpath),
                    "-m", "naive",
                    "-c", "metis",
                    "-k", "3", "4",
                    "--journal", str(jpath),
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert "[ok]" in first
        assert main(["resume", str(jpath)]) == 0
        second = capsys.readouterr().out
        assert "resuming run" in second
        assert second.count("[resumed]") == 2

    def test_cli_resume_rejects_foreign_journal(
        self, tmp_path, capsys
    ):
        jpath = tmp_path / "j.jsonl"
        journal = RunJournal(jpath)
        journal.start("plan", "p", "", "strict")
        journal.close()
        assert main(["resume", str(jpath)]) == 1
        err = capsys.readouterr().err
        assert "repro sweep" in err
