"""Unit tests for :mod:`repro.symmetrize.variants` (Jaccard, Hybrid)."""

import numpy as np
import pytest

from repro.exceptions import SymmetrizationError
from repro.graph import DirectedGraph
from repro.symmetrize import (
    HybridSymmetrization,
    JaccardSymmetrization,
    get_symmetrization,
    symmetrize,
)


class TestJaccard:
    def test_registered(self):
        assert isinstance(
            get_symmetrization("jaccard"), JaccardSymmetrization
        )

    def test_identical_out_neighbourhoods(self):
        g = DirectedGraph.from_edges(
            [(0, 2), (0, 3), (1, 2), (1, 3)], n_nodes=4
        )
        u = JaccardSymmetrization(include_in=False).apply(g)
        assert u.edge_weight(0, 1) == pytest.approx(1.0)

    def test_partial_overlap(self):
        # out(0) = {2, 3}, out(1) = {3, 4}: J = 1/3.
        g = DirectedGraph.from_edges(
            [(0, 2), (0, 3), (1, 3), (1, 4)], n_nodes=5
        )
        u = JaccardSymmetrization(include_in=False).apply(g)
        assert u.edge_weight(0, 1) == pytest.approx(1 / 3)

    def test_in_similarity_term(self):
        g = DirectedGraph.from_edges(
            [(2, 0), (2, 1), (3, 0), (3, 1)], n_nodes=4
        )
        u = JaccardSymmetrization(include_out=False).apply(g)
        assert u.edge_weight(0, 1) == pytest.approx(1.0)

    def test_sum_of_terms(self):
        g = DirectedGraph.from_edges(
            [(0, 2), (1, 2), (3, 0), (3, 1)], n_nodes=4
        )
        u = symmetrize(g, "jaccard")
        # out overlap 1/1 = 1.0, in overlap 1/1 = 1.0 -> 2.0.
        assert u.edge_weight(0, 1) == pytest.approx(2.0)

    def test_bounded_by_two(self, rng):
        from repro.graph.generators import power_law_digraph

        g = power_law_digraph(150, rng)
        u = symmetrize(g, "jaccard")
        if u.adjacency.nnz:
            assert u.adjacency.data.max() <= 2.0 + 1e-12

    def test_weights_ignored(self):
        weighted = DirectedGraph.from_edges(
            [(0, 2, 100.0), (1, 2, 1.0)], n_nodes=3
        )
        unweighted = DirectedGraph.from_edges(
            [(0, 2), (1, 2)], n_nodes=3
        )
        uw = symmetrize(weighted, "jaccard")
        uu = symmetrize(unweighted, "jaccard")
        assert uw.edge_weight(0, 1) == uu.edge_weight(0, 1)

    def test_rejects_both_disabled(self):
        with pytest.raises(SymmetrizationError):
            JaccardSymmetrization(include_out=False, include_in=False)

    def test_figure1_pair_connected(self, figure1):
        g, roles = figure1
        u = symmetrize(g, "jaccard")
        a, b = roles["pair"]
        assert u.edge_weight(a, b) == pytest.approx(2.0)


class TestHybrid:
    def test_registered(self):
        assert isinstance(
            get_symmetrization("hybrid"), HybridSymmetrization
        )

    def test_lambda_one_is_scaled_naive(self, two_fans_digraph):
        hybrid = HybridSymmetrization(lam=1.0).compute_matrix(
            two_fans_digraph
        )
        naive = get_symmetrization("naive").compute_matrix(
            two_fans_digraph
        )
        scale = naive.max()
        assert np.allclose(
            hybrid.todense(), naive.todense() / scale
        )

    def test_lambda_zero_is_scaled_dd(self, two_fans_digraph):
        hybrid = HybridSymmetrization(lam=0.0).compute_matrix(
            two_fans_digraph
        )
        dd = get_symmetrization("degree_discounted").compute_matrix(
            two_fans_digraph
        )
        assert np.allclose(
            hybrid.todense(), dd.todense() / dd.max()
        )

    def test_mixture_contains_both_edge_sets(self, figure1):
        g, roles = figure1
        u = symmetrize(g, "hybrid", lam=0.5)
        a, b = roles["pair"]
        # Similarity edge between the pair...
        assert u.has_edge(a, b)
        # ...and direct edges from the input survive too.
        s = roles["sources"][0]
        assert u.has_edge(s, a)

    def test_rejects_bad_lambda(self):
        with pytest.raises(SymmetrizationError):
            HybridSymmetrization(lam=1.5)
        with pytest.raises(SymmetrizationError):
            HybridSymmetrization(lam=-0.1)

    def test_works_in_pipeline(self, cora_small):
        import repro

        pipe = repro.SymmetrizeClusterPipeline(
            "hybrid", "metis", threshold=0.0
        )
        result = pipe.run(
            cora_small.graph,
            n_clusters=12,
            ground_truth=cora_small.ground_truth,
        )
        assert result.average_f > 20.0

    def test_repr(self):
        assert "0.5" in repr(HybridSymmetrization())
        assert "include_out" in repr(JaccardSymmetrization())
