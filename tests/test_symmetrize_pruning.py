"""Unit tests for :mod:`repro.symmetrize.pruning` (§3.5, §5.3.1)."""

import pytest

from repro.exceptions import SymmetrizationError
from repro.graph import UndirectedGraph
from repro.symmetrize import symmetrize
from repro.symmetrize.pruning import (
    choose_threshold_for_degree,
    prune_graph,
    singleton_fraction,
)


class TestPruneGraph:
    def test_removes_light_edges(self, small_weighted_ugraph):
        pruned = prune_graph(small_weighted_ugraph, 1.0)
        assert pruned.n_edges == 6  # the 0.1 bridge is gone

    def test_zero_threshold_identity(self, small_weighted_ugraph):
        pruned = prune_graph(small_weighted_ugraph, 0.0)
        assert pruned == small_weighted_ugraph

    def test_preserves_names(self):
        g = UndirectedGraph.from_edges(
            [(0, 1, 5.0)], n_nodes=2, node_names=["a", "b"]
        )
        assert prune_graph(g, 1.0).node_names == ["a", "b"]

    def test_monotone(self, cora_small):
        full = symmetrize(cora_small.graph, "degree_discounted")
        prev = full.n_edges
        for threshold in [0.01, 0.05, 0.1]:
            pruned = prune_graph(full, threshold)
            assert pruned.n_edges <= prev
            prev = pruned.n_edges


class TestChooseThreshold:
    def test_achieves_target_degree_roughly(self, cora_small, rng):
        full = symmetrize(cora_small.graph, "degree_discounted")
        target = 20.0
        threshold = choose_threshold_for_degree(
            full, target, n_samples=300, rng=rng
        )
        pruned = prune_graph(full, threshold)
        avg_degree = 2.0 * pruned.n_edges / pruned.n_nodes
        assert avg_degree == pytest.approx(target, rel=0.5)

    def test_zero_when_already_sparse(self, small_weighted_ugraph):
        threshold = choose_threshold_for_degree(
            small_weighted_ugraph, 100.0
        )
        assert threshold == 0.0

    def test_empty_graph(self):
        assert choose_threshold_for_degree(
            UndirectedGraph.empty(5), 10.0
        ) == 0.0

    def test_rejects_bad_target(self, small_weighted_ugraph):
        with pytest.raises(SymmetrizationError):
            choose_threshold_for_degree(small_weighted_ugraph, 0.0)

    def test_deterministic_default_rng(self, cora_small):
        full = symmetrize(cora_small.graph, "degree_discounted")
        t1 = choose_threshold_for_degree(full, 15.0)
        t2 = choose_threshold_for_degree(full, 15.0)
        assert t1 == t2


class TestSingletonFraction:
    def test_no_singletons(self, small_weighted_ugraph):
        assert singleton_fraction(small_weighted_ugraph) == 0.0

    def test_counts_isolated(self):
        g = UndirectedGraph.from_edges([(0, 1)], n_nodes=4)
        assert singleton_fraction(g) == 0.5

    def test_empty_graph(self):
        assert singleton_fraction(UndirectedGraph.empty(0)) == 0.0

    def test_pruning_bibliometric_strands_more_nodes_than_dd(
        self, wiki_small
    ):
        """The §5.3 pathology: at a matched edge budget, pruned
        Bibliometric strands far more nodes than Degree-discounted."""
        from repro.symmetrize import get_symmetrization

        dd_full = get_symmetrization("degree_discounted").apply(
            wiki_small.graph
        )
        bib_full = get_symmetrization("bibliometric").apply(
            wiki_small.graph
        )
        dd_thr = choose_threshold_for_degree(dd_full, 20.0)
        dd = prune_graph(dd_full, dd_thr)
        # Find the bibliometric threshold with a similar edge budget.
        lo, hi = 0.0, float(bib_full.adjacency.max())
        for _ in range(30):
            mid = (lo + hi) / 2
            if prune_graph(bib_full, mid).n_edges > dd.n_edges:
                lo = mid
            else:
                hi = mid
        bib = prune_graph(bib_full, hi)
        assert bib.n_edges <= dd.n_edges * 1.2
        assert singleton_fraction(bib) > singleton_fraction(dd) + 0.02
