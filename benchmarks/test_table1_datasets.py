"""Table 1: dataset statistics.

Paper values (at full scale):

    Dataset      Vertices   Edges       %Symmetric  #Categories
    Wikipedia    1,129,060  67,178,092  42.1        17,950
    Cora         17,604     77,171      7.7         70
    Flickr       1,861,228  22,613,980  62.4        N.A.
    LiveJournal  5,284,457  77,402,652  73.4        N.A.

Our synthetic stand-ins are scaled down; the reproduced *shape* is the
reciprocity ordering (Cora ≪ Wikipedia < Flickr < LiveJournal) and the
presence/absence of ground truth.
"""

from benchmarks.conftest import BUNDLE, emit
from repro.experiments import run_experiment


def test_table1(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table1", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("table1_datasets", result.text)

    recs = result.data["reciprocity"]
    assert recs["cora-like"] < recs["wikipedia-like"]
    assert recs["wikipedia-like"] < recs["flickr-like"]
    assert recs["flickr-like"] < recs["livejournal-like"]
