"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper by
delegating to :mod:`repro.experiments` (the single source of truth for
experiment definitions), prints the rows/series, writes them to
``benchmarks/results/``, and asserts the paper's *shape* claims on the
returned machine-readable data.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 1.0): the default sizes are laptop-friendly stand-ins for the
paper's datasets; raise the scale for sharper curves.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.support import DatasetBundle

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
RESULTS_DIR = Path(__file__).parent / "results"

#: One bundle for the whole benchmark session so dataset generation
#: and cached symmetrizations are amortized across experiments.
BUNDLE = DatasetBundle(scale=SCALE, seed=0)


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


# Dataset fixtures, kept for benchmarks that go beyond the predefined
# experiment runners (ablations, planted-list recovery).


@pytest.fixture
def cora():
    return BUNDLE.cora()


@pytest.fixture
def wiki():
    return BUNDLE.wiki()


@pytest.fixture
def flickr():
    return BUNDLE.flickr()


@pytest.fixture
def livejournal():
    return BUNDLE.livejournal()


# Backwards-compatible module-level accessors used by older helpers.


def cora_dataset():
    """Benchmark-scale cora-like dataset (session cached)."""
    return BUNDLE.cora()


def wiki_dataset():
    """Benchmark-scale wikipedia-like dataset."""
    return BUNDLE.wiki()


def flickr_dataset():
    """Benchmark-scale flickr-like dataset (timing only)."""
    return BUNDLE.flickr()


def livejournal_dataset():
    """Benchmark-scale livejournal-like dataset (timing only)."""
    return BUNDLE.livejournal()
