"""Figure 4: degree distributions of the symmetrized Wikipedia graphs.

The paper's observation: Degree-discounted concentrates node degrees
in a medium band (~50–200, the size of natural clusters) and
eliminates hub nodes entirely, while Bibliometric has both many
very-low-degree nodes and many hubs, and A+Aᵀ retains hubs.
"""

from benchmarks.conftest import BUNDLE, emit
from repro.experiments import run_experiment


def test_fig4(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig4", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("fig4_degree_distributions", result.text)
    summaries = result.data["summaries"]

    # Shape checks: Degree-discounted has no extreme hubs relative to
    # the naive graph, and no more than Bibliometric at matched budget.
    assert summaries["degree_discounted"].max < summaries["naive"].max
    assert (
        summaries["degree_discounted"].max
        <= summaries["bibliometric"].max
    )
    # Bibliometric strands many more nodes.
    assert (
        summaries["bibliometric"].n_isolated
        > summaries["degree_discounted"].n_isolated
    )
