"""Table 4: effect of the discount exponents (α, β) on Avg-F (Metis).

Paper's grid: α = β ∈ {0, log, 0.25, 0.5, 0.75, 1.0} plus mixed
settings; α = β = 0.5 is best on both Cora and Wikipedia; *some*
discounting always beats none (α = β = 0). Each configuration is
pruned to the same target density with the §5.3.1 sample recipe
because (α, β) changes the similarity scale.
"""

from benchmarks.conftest import BUNDLE, emit
from repro.experiments import run_experiment


def test_table4(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table4", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("table4_alpha_beta", result.text)

    for by_param in (result.data["cora"], result.data["wiki"]):
        best = max(by_param, key=by_param.get)
        # Shape: some discounting beats none, and (0.5, 0.5) is at or
        # near the top of the grid.
        assert by_param[(0.5, 0.5)] > by_param[(0.0, 0.0)]
        assert by_param[(0.5, 0.5)] >= by_param[best] - 6.0
