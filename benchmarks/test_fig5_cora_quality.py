"""Figure 5: Avg-F vs number of clusters on Cora, for all four
symmetrizations, clustered with (a) MLR-MCL and (b) Graclus.

Paper shape: Degree-discounted peaks highest (36.62), Bibliometric
close behind (34.92); A+Aᵀ and Random-walk similar and clearly lower.
Peaks occur near the true category count.

Thresholds are chosen per method with the §5.3.1 sample recipe
(matching edge budgets the way Table 2 does); A+Aᵀ and Random-walk are
already sparse and use threshold 0. The target density is calibrated
per clustering algorithm (flow-based MLR-MCL likes sparser graphs than
kernel-k-means Graclus), exactly as the paper tuned per-dataset
thresholds in Table 2.
"""

from benchmarks.conftest import BUNDLE, emit
from repro.experiments import run_experiment


def test_fig5a_mlrmcl(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig5a", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("fig5a_cora_mlrmcl", result.text)
    peaks = result.data["peaks"]
    # Shape: Degree-discounted at/near the top, Bibliometric strong,
    # both similarity methods above A+A' and Random-walk.
    assert peaks["degree_discounted"] >= max(peaks.values()) - 7.0
    assert peaks["bibliometric"] > peaks["random_walk"]
    assert peaks["degree_discounted"] > peaks["naive"]


def test_fig5b_graclus(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig5b", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("fig5b_cora_graclus", result.text)
    peaks = result.data["peaks"]
    assert peaks["degree_discounted"] > peaks["random_walk"]
    # Graclus benefits from the degree-discounted graph as well
    # (within noise of the strongest alternative).
    assert peaks["degree_discounted"] >= max(peaks.values()) - 8.0
