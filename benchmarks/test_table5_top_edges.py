"""Table 5: top-weighted edges of each Wikipedia symmetrization.

Paper shape: Bibliometric's heaviest pairs involve hub pages ("Area",
"Population density" — the top-in-degree nodes); Random-walk's involve
high-PageRank nodes (also hubs); Degree-discounted's heaviest pairs
are specific, non-hub near-duplicates (Cyathea / Subgenus Cyathea).
"""

from benchmarks.conftest import BUNDLE, emit
from repro.experiments import run_experiment


def test_table5(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table5", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("table5_top_edges", result.text)

    hub_touch = result.data["hub_touch"]
    # Shape: hub pairs dominate the Bibliometric top but not the
    # Degree-discounted top.
    assert hub_touch["bibliometric"] >= 3
    assert hub_touch["degree_discounted"] <= hub_touch["bibliometric"]
    assert (
        hub_touch["degree_discounted"] <= 1
    ), "degree-discounted top pairs should be specific non-hub nodes"

    # The paper notes Random-walk weights track PageRank: its top
    # edges touch nodes with far-above-median PageRank.
    pi = result.data["pagerank"]
    median_pi = result.data["median_pagerank"]
    for i, j, _ in result.data["tops"]["random_walk"]:
        assert max(pi[i], pi[j]) > 10 * median_pi
