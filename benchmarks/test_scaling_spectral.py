"""Scaling study: why BestWCut "did not finish" at the paper's scale.

Figure 6(b)'s orders-of-magnitude speed gap comes from the
super-linear cost of eigendecomposition. At our laptop scale the gap
is compressed (EXPERIMENTS.md), so this benchmark verifies the
*mechanism* instead: as the graph grows, the directed-spectral
baseline's runtime grows strictly faster than the degree-discounted
pipeline's, so their ratio widens with scale — extrapolating to the
paper's 17k-node Cora and beyond, the spectral method falls off the
cliff the paper observed.
"""

import time

from benchmarks.conftest import emit
from repro.cluster import MLRMCL
from repro.datasets import make_cora_like
from repro.directed.wcut import best_wcut
from repro.experiments.support import pruned_symmetrization
from repro.pipeline.report import format_table

SIZES = [400, 900, 2000]
K = 15


def _measure(n_nodes: int) -> tuple[float, float]:
    ds = make_cora_like(n_nodes=n_nodes, n_categories=15, seed=0)
    t0 = time.perf_counter()
    undirected, _ = pruned_symmetrization(
        ds.graph, "degree_discounted", 20.0
    )
    MLRMCL().cluster(undirected, K)
    pipeline_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    # Force the dense eigensolver path at every size, matching the
    # dense eigendecompositions of the original MATLAB implementations.
    best_wcut(dense_cutoff=10**9).cluster(ds.graph, K)
    wcut_seconds = time.perf_counter() - t0
    return pipeline_seconds, wcut_seconds


def test_scaling(benchmark):
    def run():
        return {n: _measure(n) for n in SIZES}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [n, pipeline, wcut, wcut / max(pipeline, 1e-9)]
        for n, (pipeline, wcut) in results.items()
    ]
    emit(
        "scaling_spectral",
        format_table(
            ["Nodes", "dd+MLR-MCL (s)", "BestWCut (s)", "Ratio"],
            rows,
            title="Scaling: pipeline vs dense directed spectral",
        ),
    )

    # The spectral/pipeline time ratio widens with graph size.
    small_ratio = rows[0][3]
    large_ratio = rows[-1][3]
    assert large_ratio > small_ratio
    # And growth from smallest to largest is steeper for the spectral
    # method than for the pipeline.
    pipeline_growth = results[SIZES[-1]][0] / max(
        results[SIZES[0]][0], 1e-9
    )
    wcut_growth = results[SIZES[-1]][1] / max(
        results[SIZES[0]][1], 1e-9
    )
    assert wcut_growth > pipeline_growth