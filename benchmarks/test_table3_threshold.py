"""Table 3: effect of the prune threshold on edges / Avg-F / time,
for MLR-MCL and Metis on the Wikipedia-like graph.

Paper shape: raising the threshold monotonically removes edges; the
F-score declines gently while clustering time drops sharply — the
user picks the operating point (§5.3.1).
"""

from benchmarks.conftest import BUNDLE, emit
from repro.experiments import run_experiment


def test_table3(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table3", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("table3_threshold", result.text)

    for clusterer, points in result.data["points"].items():
        edges = [p.n_edges for p in points]
        assert edges == sorted(edges, reverse=True), clusterer
        # Quality stays in a sane band across the bracketed range
        # (gentle decline, not collapse).
        fs = [p.average_f for p in points]
        assert max(fs) > 25.0, clusterer
        assert min(fs) > 0.3 * max(fs), clusterer
