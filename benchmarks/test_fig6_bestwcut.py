"""Figure 6: Degree-discounted symmetrization + {MLR-MCL, Graclus,
Metis} vs Meila & Pentney's BestWCut on Cora.

Paper shape: (a) all three pipeline variants beat BestWCut's peak
F-score (36.62 / 34.69 / 34.30 vs 29.94 — a 22% improvement for
MLR-MCL); (b) all three are orders of magnitude faster, because
BestWCut pays for an eigendecomposition. The Zhou et al. directed
spectral baseline (which "did not finish execution" in the paper) is
included in the timing comparison as well.
"""

from benchmarks.conftest import BUNDLE, emit
from repro.experiments import run_experiment


def test_fig6(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig6", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("fig6_bestwcut", result.text)

    by_method = result.data["by_method"]
    wcut_f, wcut_t = by_method["BestWCut (Meila-Pentney)"]
    for label in (
        "Degree-discounted + MLR-MCL",
        "Degree-discounted + Graclus",
        "Degree-discounted + Metis",
    ):
        f, t = by_method[label]
        assert f > wcut_f, label  # 6(a): better quality
        assert t < wcut_t, label  # 6(b): faster
