"""All-pairs backend scaling bench (§3.6 scalability claims).

Runs the ``repro bench`` sweep — symmetrize (both all-pairs backends)
+ MLR-MCL on synthetic power-law digraphs — at benchmark scale and
persists both the human summary and the machine-readable JSON under
``benchmarks/results/``. The shape claims asserted here are the same
floors the harness encodes in its regression block: the vectorized
backend must beat the pure-Python oracle, and both must agree on the
output edge set.
"""

from benchmarks.conftest import RESULTS_DIR, SCALE, emit
from repro.perf.bench import format_summary, run_bench, write_bench


def test_bench_allpairs(benchmark):
    sizes = [int(1000 * SCALE), int(4000 * SCALE)]
    results = benchmark.pedantic(
        lambda: run_bench(
            sizes=sizes, thresholds=(0.25, 0.5), smoke=True
        ),
        rounds=1,
        iterations=1,
    )
    emit("bench_allpairs", format_summary(results))
    write_bench(results, RESULTS_DIR / "BENCH_allpairs.json")

    for key, speedup in results["speedups"].items():
        assert speedup >= 1.0, (key, speedup)
    by_config: dict[tuple, dict[str, int]] = {}
    for run in results["runs"]:
        if run["kind"] != "symmetrize":
            continue
        config = (run["n_nodes"], run["threshold"])
        by_config.setdefault(config, {})[run["backend"]] = run[
            "edges_out"
        ]
    for config, edges in by_config.items():
        assert edges["python"] == edges["vectorized"], config
    assert results["regression"]["passed"]
