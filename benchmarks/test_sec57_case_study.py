"""§5.7 / Figures 1 & 10: the case study of list-pattern clusters.

The paper's qualitative evidence: clusters like the Guzmania plant
genus — members that never link to one another but share in-links and
out-links — are recovered from the Degree-discounted graph by both
MLR-MCL and Metis, but cannot be recovered from A+Aᵀ (the members are
simply disconnected there).
"""

import numpy as np

from benchmarks.conftest import BUNDLE, emit
from repro.cluster import MLRMCL
from repro.experiments import run_experiment
from repro.pipeline.report import format_table
from repro.symmetrize import symmetrize


def test_sec57_case_studies(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("sec57", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("sec57_case_studies", result.text)

    # Figure-1 pair: zero weight under A+A', positive under the
    # similarity-based symmetrizations.
    weights = result.data["figure1_pair_weights"]
    assert weights["naive"] == 0.0
    assert weights["bibliometric"] > 0.0
    assert weights["degree_discounted"] > 0.0

    # Guzmania motif: degree-discounted recovers the species cluster
    # with both clustering algorithms (the paper stresses that the
    # recovery is clustering-algorithm independent). Metis is a
    # *balanced* partitioner, so on a tiny motif it may be forced to
    # park a couple of background nodes with the species; MLR-MCL has
    # no balance constraint and must keep the cluster clean.
    recovery = result.data["guzmania"]
    for clusterer in ("MLR-MCL", "Metis"):
        purity, leaked = recovery[("degree_discounted", clusterer)]
        assert purity == 1.0, clusterer
        limit = 0 if clusterer == "MLR-MCL" else 2
        assert leaked <= limit, clusterer


def _per_category_best_f(clustering, ground_truth, categories):
    """Mean over ``categories`` of the best F(C_i, G_j) any output
    cluster achieves — unlike raw member purity this penalizes the
    degenerate everything-in-one-cluster solution."""
    indicator = clustering.indicator_matrix()
    membership = ground_truth.membership.tocsr()
    overlap = (indicator.T @ membership).tocoo()
    cluster_sizes = np.asarray(indicator.sum(axis=0)).ravel()
    category_sizes = ground_truth.category_sizes()
    best = np.zeros(ground_truth.n_categories)
    for ci, gj, inter in zip(overlap.row, overlap.col, overlap.data):
        precision = inter / cluster_sizes[ci]
        recall = inter / category_sizes[gj]
        f = 2 * precision * recall / (precision + recall)
        best[gj] = max(best[gj], f)
    return float(np.mean(best[list(categories)]))


def test_sec57_planted_list_clusters(benchmark):
    """The wikipedia-like dataset plants Guzmania-style list clusters;
    degree-discounted + MLR-MCL recovers them far better than A+Aᵀ
    (measured as the best F any output cluster achieves against each
    list category)."""

    def run():
        ds = BUNDLE.wiki()
        gt = ds.ground_truth
        # List categories are appended after the block categories;
        # the bundle plants max(2, min(8, nodes // 350)) of them.
        n_lists = max(2, min(8, ds.n_nodes // 350))
        n_block_categories = gt.n_categories - n_lists
        list_categories = range(n_block_categories, gt.n_categories)
        scores = {}
        for sym, threshold in [
            ("naive", 0.0),
            ("degree_discounted", 0.02),
        ]:
            u = symmetrize(ds.graph, sym, threshold=threshold)
            clustering = MLRMCL().cluster(u, 60)
            scores[sym] = _per_category_best_f(
                clustering, gt, list_categories
            )
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "sec57_planted_lists",
        format_table(
            ["Symmetrization", "Mean best-F over list categories"],
            [[k, v] for k, v in scores.items()],
            title="Sec 5.7: planted list-pattern cluster recovery",
        ),
    )
    assert scores["degree_discounted"] > scores["naive"] + 0.2
