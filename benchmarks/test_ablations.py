"""Ablation benches for design choices the paper calls out.

- §3.3 footnote: the ``A := A + I`` self-loop augmentation for
  Bibliometric symmetrization (keeps original edges alive).
- §3.3: coupling-only (AAᵀ) and co-citation-only (AᵀA) versus their
  sum (Meila & Pentney used AᵀA alone; the paper argues for the sum).
- MLR-MCL's regularization: multilevel vs flat R-MCL.
"""

from benchmarks._helpers import pruned_symmetrization
from benchmarks.conftest import cora_dataset, emit
from repro.cluster import MetisClusterer, MLRMCL
from repro.eval.fmeasure import average_f_score
from repro.pipeline.report import format_table
from repro.symmetrize import BibliometricSymmetrization
from repro.symmetrize.degree_discounted import (
    DegreeDiscountedSymmetrization,
)

K = 25


def test_ablation_selfloops(benchmark):
    """A := A + I on/off for Bibliometric."""
    ds = cora_dataset()

    def run():
        rows = []
        for add_loops in (True, False):
            sym = BibliometricSymmetrization(add_self_loops=add_loops)
            u = sym.apply(ds.graph)
            clustering = MetisClusterer().cluster(u, K)
            rows.append(
                [
                    "A := A + I" if add_loops else "raw A",
                    u.n_edges,
                    average_f_score(clustering, ds.ground_truth),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_selfloops",
        format_table(
            ["Variant", "Edges", "AvgF"],
            rows,
            title="Ablation: Bibliometric self-loop augmentation (§3.3)",
        ),
    )
    # The augmentation adds edges (keeps every original edge alive).
    assert rows[0][1] > rows[1][1]


def test_ablation_coupling_vs_cocitation(benchmark):
    """AAᵀ alone vs AᵀA alone vs the paper's sum — for both the raw
    bibliometric and the degree-discounted variants."""
    ds = cora_dataset()

    def run():
        rows = []
        for coupling, cocitation, label in [
            (True, False, "coupling only (AA')"),
            (False, True, "co-citation only (A'A)"),
            (True, True, "sum (paper)"),
        ]:
            sym = DegreeDiscountedSymmetrization(
                include_coupling=coupling,
                include_cocitation=cocitation,
            )
            u = sym.apply(ds.graph, threshold=0.05)
            clustering = MetisClusterer().cluster(u, K)
            rows.append(
                [label, average_f_score(clustering, ds.ground_truth)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_coupling_cocitation",
        format_table(
            ["Variant", "AvgF"],
            rows,
            title="Ablation: coupling vs co-citation vs sum "
            "(degree-discounted, Metis)",
        ),
    )
    by_label = {r[0]: r[1] for r in rows}
    # The sum is at least competitive with the better single term
    # ("no obvious reason for leaving out either", §3.3).
    best_single = max(
        by_label["coupling only (AA')"],
        by_label["co-citation only (A'A)"],
    )
    assert by_label["sum (paper)"] >= best_single - 6.0


def test_ablation_variant_symmetrizations(benchmark):
    """The extended design space: Jaccard and Hybrid vs the paper's
    degree-discounted, all through the same Metis stage 2."""
    ds = cora_dataset()

    def run():
        import repro
        from repro.symmetrize.pruning import choose_threshold_for_degree

        rows = []
        for name in ("degree_discounted", "jaccard", "hybrid", "naive"):
            sym = repro.get_symmetrization(name)
            full = sym.apply(ds.graph)
            threshold = choose_threshold_for_degree(full, 20.0)
            u = sym.apply(ds.graph, threshold=threshold)
            clustering = MetisClusterer().cluster(u, K)
            rows.append(
                [name, u.n_edges,
                 average_f_score(clustering, ds.ground_truth)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_variants",
        format_table(
            ["Symmetrization", "Edges", "AvgF"],
            rows,
            title="Ablation: Jaccard / Hybrid variants vs the paper's "
            "methods (Metis)",
        ),
    )
    by_name = {r[0]: r[2] for r in rows}
    # The similarity-based variants all beat chance and are in the
    # same band as degree-discounted; jaccard lacks the shared-
    # neighbour discount and must not dominate it decisively.
    for name, score in by_name.items():
        assert score > 15.0, name
    assert by_name["degree_discounted"] >= by_name["jaccard"] - 8.0


def test_ablation_multilevel_mlrmcl(benchmark):
    """Multilevel initialization vs flat R-MCL (the ML in MLR-MCL)."""
    import time

    ds = cora_dataset()
    undirected, _ = pruned_symmetrization(
        ds.graph, "degree_discounted", 20.0
    )

    def run():
        rows = []
        for coarsen_to, label in [
            (1000, "multilevel (coarsen to 1000)"),
            (10**9, "flat R-MCL"),
        ]:
            t0 = time.perf_counter()
            clustering = MLRMCL(coarsen_to=coarsen_to).cluster(
                undirected, K
            )
            seconds = time.perf_counter() - t0
            rows.append(
                [
                    label,
                    clustering.n_clusters,
                    average_f_score(clustering, ds.ground_truth),
                    seconds,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_multilevel_mlrmcl",
        format_table(
            ["Variant", "k", "AvgF", "Seconds"],
            rows,
            title="Ablation: multilevel vs flat R-MCL",
        ),
    )
    # Both reach usable quality; the multilevel variant must not be
    # dramatically worse (it exists for speed at scale).
    assert rows[0][2] > 0.5 * rows[1][2]