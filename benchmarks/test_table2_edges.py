"""Table 2: edge counts of each symmetrization, plus the §5.3
singleton pathology of pruned Bibliometric graphs.

Paper's Table 2 reports, per dataset, the edges of A+Aᵀ/Random-walk,
Bibliometric (with its prune threshold) and Degree-discounted (with
its prune threshold); §5.3 adds that the pruned Bibliometric Wikipedia
graph stranded ~50% of nodes as singletons while Degree-discounted
stranded none.
"""

from benchmarks.conftest import BUNDLE, emit
from repro.experiments import run_experiment


def test_table2(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("table2", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("table2_edges", result.text)

    # Shape: at a matched edge budget on the hubby wikipedia-like
    # graph, pruned Bibliometric strands more nodes than
    # Degree-discounted (the §5.3 pathology).
    assert (
        result.data["wiki_bib_singletons"]
        > result.data["wiki_dd_singletons"]
    )
