"""§5.6: statistical significance of the improvements.

The paper validates every headline improvement with a paired binomial
sign test on per-node correctness; all reported p-values are tiny
(1.0E-312 down to 1.0E-22767). We regenerate the same comparisons at
our scale: Degree-discounted vs A+Aᵀ and vs BestWCut, for MLR-MCL and
Metis, on the cora-like dataset, and Degree-discounted vs A+Aᵀ on the
wikipedia-like dataset.
"""

from benchmarks.conftest import BUNDLE, emit
from repro.experiments import run_experiment


def test_sec56(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("sec56", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("sec56_significance", result.text)

    # Shape: degree-discounted wins every comparison; the MLR-MCL and
    # BestWCut comparisons are decisively significant (the paper's
    # headline numbers), the Metis-vs-A+A' margins are narrower at our
    # scale but still favour degree-discounting.
    for row in result.data["rows"]:
        assert row[6] == "a", row
        if "metis" in row[1] and "naive" in row[2]:
            assert row[5] < -0.5, row  # p < ~0.3
        else:
            assert row[5] < -2.0, row  # p < 0.01
