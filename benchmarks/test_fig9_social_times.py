"""Figure 9: clustering time with MLR-MCL on Flickr and LiveJournal.

Paper shape: on the large social graphs (no ground truth), the
Degree-discounted graph clusters at least ~2x faster than A+Aᵀ /
Random-walk at the high end of the cluster range; Bibliometric is not
even run because its pruned version strands too many singletons
(Table 2's singleton blow-up).
"""

from benchmarks.conftest import BUNDLE, emit
from repro.experiments import run_experiment


def _check(times):
    # Shape: the degree-discounted graph clusters in the same band or
    # faster than the raw symmetrizations at the top of the range.
    assert times["degree_discounted"][-1] <= 2.0 * max(
        times["naive"][-1], times["random_walk"][-1]
    )


def test_fig9a_flickr(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig9a", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("fig9a_flickr_times", result.text)
    _check(result.data["times"])


def test_fig9b_livejournal(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig9b", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("fig9b_livejournal_times", result.text)
    _check(result.data["times"])
