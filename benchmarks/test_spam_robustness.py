"""§6 future work: robustness to web spam and link fraud.

The paper's conclusion names "large-scale web scenarios involving the
possibilities of spam and link fraud" as the open robustness question
for its symmetrizations. This benchmark implements the study: a link
farm (densely interlinked spam pages all boosting a target page, with
a few camouflage links) is injected into the citation graph, and we
measure (a) whether the farm is quarantined into its own cluster and
(b) how much the clustering quality on the legitimate nodes degrades.
"""

import numpy as np

from benchmarks.conftest import BUNDLE, emit
from repro.cluster import MLRMCL
from repro.cluster.common import Clustering
from repro.eval.fmeasure import average_f_score
from repro.graph.generators import add_link_farm
from repro.pipeline.report import format_table
from repro.symmetrize import symmetrize

N_SPAM = 40
K = 25


def _evaluate(graph, n_legit, ground_truth, spam_ids):
    rows = {}
    for sym, threshold in [
        ("naive", 0.0),
        ("degree_discounted", 0.05),
    ]:
        u = symmetrize(graph, sym, threshold=threshold)
        clustering = MLRMCL().cluster(u, K)
        legit_clustering = Clustering(clustering.labels[:n_legit])
        f = average_f_score(legit_clustering, ground_truth)
        if spam_ids is not None:
            spam_labels = clustering.labels[spam_ids]
            values, counts = np.unique(spam_labels, return_counts=True)
            quarantine = counts.max() / spam_ids.size
            spam_cluster = values[counts.argmax()]
            legit_dragged = int(
                np.count_nonzero(
                    clustering.labels[:n_legit] == spam_cluster
                )
            )
        else:
            quarantine, legit_dragged = None, None
        rows[sym] = (f, quarantine, legit_dragged)
    return rows


def test_spam_robustness(benchmark):
    def run():
        ds = BUNDLE.cora()
        n_legit = ds.graph.n_nodes
        rng = np.random.default_rng(7)
        target = int(ds.ground_truth.category_members(0)[0])
        farmed, spam_ids = add_link_farm(
            ds.graph, N_SPAM, rng, boosted_targets=[target]
        )
        clean = _evaluate(ds.graph, n_legit, ds.ground_truth, None)
        spammed = _evaluate(
            farmed, n_legit, ds.ground_truth, spam_ids
        )
        return clean, spammed

    clean, spammed = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for sym in ("naive", "degree_discounted"):
        rows.append(
            [
                sym,
                clean[sym][0],
                spammed[sym][0],
                spammed[sym][0] - clean[sym][0],
                spammed[sym][1],
                spammed[sym][2],
            ]
        )
    emit(
        "spam_robustness",
        format_table(
            ["Symmetrization", "F clean", "F with farm", "Delta",
             "Spam quarantine", "Legit in spam cluster"],
            rows,
            title="Sec 6 future work: link-farm robustness (MLR-MCL)",
        ),
    )

    for sym in ("naive", "degree_discounted"):
        _, quarantine, dragged = spammed[sym]
        # The farm stays quarantined: nearly all spam in one cluster,
        # and that cluster contains almost no legitimate nodes.
        assert quarantine >= 0.9, sym
        assert dragged <= 0.02 * BUNDLE.cora().n_nodes, sym
    # Degree-discounted is robust to the injection (quality on the
    # legitimate nodes barely moves), and strictly more robust than
    # A+A' — the answer to the paper's §6 open question at this scale.
    dd_delta = spammed["degree_discounted"][0] - clean[
        "degree_discounted"
    ][0]
    naive_delta = spammed["naive"][0] - clean["naive"][0]
    assert dd_delta >= -4.0
    assert dd_delta > naive_delta
