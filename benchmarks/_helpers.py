"""Benchmark-harness helpers.

The substantive helpers live in :mod:`repro.experiments.support` (the
library-side single source of truth); this module re-exports them for
the benchmark files that need direct access (ablations and other
benches that go beyond the predefined experiment runners).
"""

from repro.experiments.support import (
    DISPLAY,
    SYMMETRIZATIONS,
    full_symmetrization,
    match_edge_budget,
    pruned_symmetrization,
)

__all__ = [
    "SYMMETRIZATIONS",
    "DISPLAY",
    "full_symmetrization",
    "pruned_symmetrization",
    "match_edge_budget",
]
