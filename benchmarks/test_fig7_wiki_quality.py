"""Figure 7: Avg-F vs number of clusters on Wikipedia, for all four
symmetrizations, clustered with (a) MLR-MCL and (b) Metis.

Paper shape: Degree-discounted best (peak 22.79 with MLR-MCL; 27%
better than the next best with Metis); A+Aᵀ second; Random-walk
slightly worse than A+Aᵀ; Bibliometric far behind ("barely touching
13%") because its pruned graph strands half the nodes (§5.3).
"""

from benchmarks.conftest import BUNDLE, emit
from repro.experiments import run_experiment


def test_fig7a_mlrmcl(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig7a", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("fig7a_wiki_mlrmcl", result.text)
    peaks = result.data["peaks"]
    # Shape: Degree-discounted on top; Bibliometric far behind.
    assert peaks["degree_discounted"] >= max(peaks.values()) - 3.0
    assert peaks["degree_discounted"] > peaks["bibliometric"] + 5.0


def test_fig7b_metis(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig7b", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("fig7b_wiki_metis", result.text)
    peaks = result.data["peaks"]
    assert peaks["degree_discounted"] >= max(peaks.values()) - 3.0
    assert peaks["degree_discounted"] > peaks["bibliometric"] + 5.0
