"""Figure 8: clustering time vs number of clusters on Wikipedia with
(a) MLR-MCL and (b) Metis.

Paper shape: both algorithms run fastest on the Degree-discounted
graph — 4.5–5x faster than the other symmetrizations at the high end
of the cluster range — because the degree-discounted graph has no hub
nodes and cleaner cluster structure (lower normalized cuts, §5.4).
"""

from benchmarks.conftest import BUNDLE, emit
from repro.experiments import run_experiment
from repro.experiments.runners import FIG8_CLUSTER_COUNTS


def test_fig8a_mlrmcl(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig8a", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("fig8a_wiki_times_mlrmcl", result.text)
    times = result.data["times"]
    achieved = result.data["achieved"]
    # Shape: only the degree-discounted graph lets MLR-MCL reach the
    # requested granularity at all — on the hub-laden A+A' graph the
    # flow collapses to a handful of clusters and on the pruned
    # Bibliometric graph the singletons dominate — while its
    # clustering time stays in the same band.
    top_k = FIG8_CLUSTER_COUNTS[-1]
    assert abs(achieved["degree_discounted"] - top_k) <= top_k // 2
    assert (
        achieved["naive"] < top_k // 2
        or times["degree_discounted"][-1] <= times["naive"][-1] * 1.5
    )
    assert times["degree_discounted"][-1] <= 5 * max(
        times["naive"][-1], times["bibliometric"][-1]
    )


def test_fig8b_metis(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig8b", bundle=BUNDLE),
        rounds=1,
        iterations=1,
    )
    emit("fig8b_wiki_times_metis", result.text)
    times = result.data["times"]
    ncuts = result.data["ncuts"]
    # Metis produces exactly k clusters on every graph, so times and
    # normalized cuts are directly comparable: the degree-discounted
    # graph is no slower than A+A' and has the cleanest structure
    # (lowest k-way Ncut — the paper's §5.4 explanation for the
    # speedups seen at full scale).
    assert times["degree_discounted"][-1] <= times["naive"][-1] * 1.5
    assert ncuts["degree_discounted"] <= min(
        ncuts["naive"], ncuts["bibliometric"]
    ) * 1.1
