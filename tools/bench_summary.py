"""Append a bench-trajectory row to the CI job summary.

Every CI run benches the kernels (``BENCH_allpairs.json``, optionally
``BENCH_scale.json``) and uploads the raw JSON as an artifact — this
tool distills each file into one markdown table row (date, commit,
key timings, regression verdict) and appends it to
``$GITHUB_STEP_SUMMARY`` so the Actions UI shows the performance
trajectory at a glance without downloading anything. Falls back to
stdout when the variable is unset (local runs).

Usage::

    PYTHONPATH=src python tools/bench_summary.py \
        [--allpairs BENCH_allpairs.json] [--scale BENCH_scale.json]

Missing files are skipped silently: the scale bench only runs on the
scale-smoke matrix leg. Exit code is 0 unless no input file exists.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
from pathlib import Path


def _git_sha() -> str:
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha[:12]
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short=12", "HEAD"],
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _verdict(passed: bool) -> str:
    return "PASS" if passed else "**FAIL**"


def _allpairs_row(results: dict) -> tuple[str, str]:
    """(key timings, verdict) for a BENCH_allpairs.json dict."""
    largest: dict[str, dict] = {}
    for run in results.get("runs", []):
        if run.get("kind") != "symmetrize":
            continue
        backend = run.get("backend", "?")
        if (
            backend not in largest
            or run["n_nodes"] > largest[backend]["n_nodes"]
        ):
            largest[backend] = run
    timings = ", ".join(
        f"{backend} {run['seconds']:.3f}s@{run['n_nodes']}"
        for backend, run in sorted(largest.items())
    )
    speedups = results.get("speedups") or {}
    if speedups:
        best = max(speedups.values())
        timings += f", speedup {best:.2f}x"
    return timings or "no runs", _verdict(
        bool(results.get("regression", {}).get("passed"))
    )


def _scale_row(results: dict) -> tuple[str, str]:
    """(key timings, verdict) for a BENCH_scale.json dict."""
    parts = []
    peak = 0.0
    for point in results.get("points", []):
        parts.append(
            f"{point['n_nodes']}n "
            f"{point['symmetrize_seconds']:.1f}s"
        )
        peak = max(
            peak,
            point.get("peak_rss_bytes", 0),
            point.get("peak_rss_children_bytes", 0),
        )
    timings = ", ".join(parts) or "no points"
    if peak:
        timings += f", peak {peak / 1024**3:.2f} GiB"
    reg = results.get("regression", {})
    diff = results.get("differential", {})
    passed = bool(reg.get("passed")) and bool(
        diff.get("identical", True)
    )
    return timings, _verdict(passed)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--allpairs", default="BENCH_allpairs.json")
    parser.add_argument("--scale", default="BENCH_scale.json")
    args = parser.parse_args(argv)

    date = datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%d"
    )
    sha = _git_sha()
    rows = []
    for label, path, distill in (
        ("allpairs", Path(args.allpairs), _allpairs_row),
        ("scale", Path(args.scale), _scale_row),
    ):
        if not path.exists():
            continue
        try:
            results = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"bench-summary: unreadable {path}: {exc}",
                file=sys.stderr,
            )
            return 1
        timings, verdict = distill(results)
        rows.append(
            f"| {date} | `{sha}` | {label} | {timings} | {verdict} |"
        )
    if not rows:
        print(
            "bench-summary: no bench files found", file=sys.stderr
        )
        return 1

    lines = [
        "### Bench trajectory",
        "",
        "| date | sha | bench | key timings | regression |",
        "| --- | --- | --- | --- | --- |",
        *rows,
        "",
    ]
    output = "\n".join(lines)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(output + "\n")
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
