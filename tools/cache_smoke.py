"""CI smoke check for the artifact cache and crash/resume runtime.

Part 1 — cache identity. Runs a ``sweep_threshold`` grid twice
against one disk-backed :class:`~repro.engine.ArtifactCache` — a cold
pass that computes and stores the artifacts, then a warm pass that
must be served from the cache — and asserts the engine-cache
acceptance criteria:

1. the warm pass records at least one cache hit;
2. every warm point is edge-for-edge identical to its cold twin
   (edges, cluster count, Avg-F);
3. the warm pass also hits when served by a *fresh* cache instance
   over the same directory (the cross-process story CI can't spawn a
   real second process for cheaply).

Part 2 — resume identity. Spawns the same sweep as a *subprocess*
with a write-ahead journal and an injected ``kill_process`` fault
(SIGKILL after the second grid point), then resumes from the journal
in this process and asserts the resumed grid is point-for-point
identical to an uninterrupted run — the crash/resume acceptance
criterion of ``docs/robustness.md``.

Exit code 0 on success, 1 with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python tools/cache_smoke.py [--nodes N] [--dir D]

``--resume-child`` is internal: it marks the subprocess that kills
itself mid-sweep.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

#: Shared grid so the killed child and the resuming parent agree.
THRESHOLDS = [0.1, 0.25, 0.5]
N_CLUSTERS = 12


def _build_graph(nodes: int, seed: int):
    from repro.graph.generators import power_law_digraph

    return power_law_digraph(nodes, np.random.default_rng(seed))


def _resume_child(args: argparse.Namespace) -> int:
    """Subprocess body: journal a sweep, SIGKILL self mid-grid."""
    from repro.engine import Fault, RunJournal, inject_faults
    from repro.pipeline.sweep import sweep_threshold

    graph = _build_graph(args.nodes, args.seed)
    journal = RunJournal(args.journal)
    fault = Fault(site="sweep.point", kind="kill_process", at=2)
    with inject_faults([fault]):
        sweep_threshold(
            graph,
            thresholds=THRESHOLDS,
            clusterer="mlrmcl",
            n_clusters=N_CLUSTERS,
            journal=journal,
        )
    print(
        "resume-smoke child survived its own kill fault",
        file=sys.stderr,
    )
    return 1


def _resume_smoke(args: argparse.Namespace) -> list[str]:
    """SIGKILL a journaled sweep subprocess, resume, compare."""
    import repro
    from repro.engine import JournalReplay
    from repro.pipeline.sweep import sweep_threshold

    failures: list[str] = []
    scratch = Path(tempfile.mkdtemp(prefix="repro-resume-smoke-"))
    journal_path = scratch / "run.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(repro.__file__).parents[1])
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    t0 = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable,
            __file__,
            "--resume-child",
            "--nodes", str(args.nodes),
            "--seed", str(args.seed),
            "--journal", str(journal_path),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    if proc.returncode != -signal.SIGKILL:
        failures.append(
            f"resume child exited {proc.returncode}; expected "
            f"SIGKILL ({-signal.SIGKILL}): {proc.stderr[-300:]}"
        )
        return failures
    replay = JournalReplay.from_path(journal_path)
    if len(replay.completed_points) != 2:
        failures.append(
            f"journal recorded {len(replay.completed_points)} "
            "points before the kill; expected 2"
        )
    if replay.finished:
        failures.append("killed run wrote a run_end record")

    graph = _build_graph(args.nodes, args.seed)
    resumed = sweep_threshold(
        graph,
        thresholds=THRESHOLDS,
        clusterer="mlrmcl",
        n_clusters=N_CLUSTERS,
        resume=replay,
    )
    clean = sweep_threshold(
        graph,
        thresholds=THRESHOLDS,
        clusterer="mlrmcl",
        n_clusters=N_CLUSTERS,
    )
    replayed = sum(1 for p in resumed if p.resumed)
    if replayed != 2:
        failures.append(
            f"resume replayed {replayed} points; expected 2"
        )
    for a, b in zip(clean, resumed):
        if (a.n_edges, a.n_clusters, a.average_f) != (
            b.n_edges,
            b.n_clusters,
            b.average_f,
        ):
            failures.append(
                f"threshold {a.parameter}: clean "
                f"({a.n_edges} edges, {a.n_clusters} clusters) != "
                f"resumed ({b.n_edges}, {b.n_clusters})"
            )
    print(
        f"resume smoke: SIGKILL after 2/{len(THRESHOLDS)} points, "
        f"resumed {replayed} from {journal_path.name} "
        f"({time.perf_counter() - t0:.3f}s)"
    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=800)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--dir",
        dest="cache_dir",
        default=None,
        help="cache directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--skip-resume",
        action="store_true",
        help="run only the cold/warm cache identity check",
    )
    parser.add_argument(
        "--resume-child",
        action="store_true",
        help=argparse.SUPPRESS,
    )
    parser.add_argument(
        "--journal", default=None, help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)

    if args.resume_child:
        return _resume_child(args)

    from repro.engine.cache import ArtifactCache
    from repro.pipeline.sweep import sweep_threshold

    cache_dir = args.cache_dir or tempfile.mkdtemp(
        prefix="repro-cache-smoke-"
    )
    graph = _build_graph(args.nodes, args.seed)

    def run(cache: ArtifactCache):
        t0 = time.perf_counter()
        points = sweep_threshold(
            graph,
            thresholds=THRESHOLDS,
            clusterer="mlrmcl",
            n_clusters=N_CLUSTERS,
            cache=cache,
        )
        return points, time.perf_counter() - t0

    failures: list[str] = []

    cold_cache = ArtifactCache(directory=cache_dir)
    cold, cold_seconds = run(cold_cache)

    warm_cache = ArtifactCache(directory=cache_dir)  # fresh instance
    warm, warm_seconds = run(warm_cache)

    if warm_cache.hits < 1:
        failures.append(
            f"warm pass recorded {warm_cache.hits} cache hits; "
            "expected >= 1"
        )
    if not all(p.cache_hit for p in warm):
        misses = [p.parameter for p in warm if not p.cache_hit]
        failures.append(
            f"warm points missed the cache at thresholds {misses}"
        )
    for a, b in zip(cold, warm):
        if (a.n_edges, a.n_clusters, a.average_f) != (
            b.n_edges,
            b.n_clusters,
            b.average_f,
        ):
            failures.append(
                f"threshold {a.parameter}: cold "
                f"({a.n_edges} edges, {a.n_clusters} clusters, "
                f"F={a.average_f}) != warm ({b.n_edges}, "
                f"{b.n_clusters}, F={b.average_f})"
            )

    print(
        f"cache smoke @{graph.n_nodes} nodes x "
        f"{len(THRESHOLDS)} thresholds: "
        f"cold {cold_seconds:.3f}s (misses={cold_cache.misses}), "
        f"warm {warm_seconds:.3f}s (hits={warm_cache.hits}) "
        f"-> {cache_dir}"
    )

    if not args.skip_resume:
        failures.extend(_resume_smoke(args))

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("cache smoke: PASS")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
