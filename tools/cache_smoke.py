"""CI smoke check for the content-addressed artifact cache.

Runs a ``sweep_threshold`` grid twice against one disk-backed
:class:`~repro.engine.ArtifactCache` — a cold pass that computes and
stores the artifacts, then a warm pass that must be served from the
cache — and asserts the engine-cache acceptance criteria:

1. the warm pass records at least one cache hit;
2. every warm point is edge-for-edge identical to its cold twin
   (edges, cluster count, Avg-F);
3. the warm pass also hits when served by a *fresh* cache instance
   over the same directory (the cross-process story CI can't spawn a
   real second process for cheaply).

Exit code 0 on success, 1 with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python tools/cache_smoke.py [--nodes N] [--dir D]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

import numpy as np


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=800)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--dir",
        dest="cache_dir",
        default=None,
        help="cache directory (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)

    from repro.engine.cache import ArtifactCache
    from repro.graph.generators import power_law_digraph
    from repro.pipeline.sweep import sweep_threshold

    cache_dir = args.cache_dir or tempfile.mkdtemp(
        prefix="repro-cache-smoke-"
    )
    graph = power_law_digraph(
        args.nodes, np.random.default_rng(args.seed)
    )
    thresholds = [0.1, 0.25, 0.5]

    def run(cache: ArtifactCache):
        t0 = time.perf_counter()
        points = sweep_threshold(
            graph,
            thresholds=thresholds,
            clusterer="mlrmcl",
            n_clusters=12,
            cache=cache,
        )
        return points, time.perf_counter() - t0

    failures: list[str] = []

    cold_cache = ArtifactCache(directory=cache_dir)
    cold, cold_seconds = run(cold_cache)

    warm_cache = ArtifactCache(directory=cache_dir)  # fresh instance
    warm, warm_seconds = run(warm_cache)

    if warm_cache.hits < 1:
        failures.append(
            f"warm pass recorded {warm_cache.hits} cache hits; "
            "expected >= 1"
        )
    if not all(p.cache_hit for p in warm):
        misses = [p.parameter for p in warm if not p.cache_hit]
        failures.append(
            f"warm points missed the cache at thresholds {misses}"
        )
    for a, b in zip(cold, warm):
        if (a.n_edges, a.n_clusters, a.average_f) != (
            b.n_edges,
            b.n_clusters,
            b.average_f,
        ):
            failures.append(
                f"threshold {a.parameter}: cold "
                f"({a.n_edges} edges, {a.n_clusters} clusters, "
                f"F={a.average_f}) != warm ({b.n_edges}, "
                f"{b.n_clusters}, F={b.average_f})"
            )

    print(
        f"cache smoke @{graph.n_nodes} nodes x "
        f"{len(thresholds)} thresholds: "
        f"cold {cold_seconds:.3f}s (misses={cold_cache.misses}), "
        f"warm {warm_seconds:.3f}s (hits={warm_cache.hits}) "
        f"-> {cache_dir}"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("cache smoke: PASS")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
