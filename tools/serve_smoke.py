"""CI smoke check for the clustering service daemon.

Boots ``python -m repro serve`` as a real subprocess on an ephemeral
port, registers a generated graph over HTTP, submits two identical
jobs plus one distinct job, and asserts the daemon's acceptance
criteria end to end:

1. the two identical submissions share one job id (exactly one dedup
   hit, exactly two executions server-side);
2. both deduplicated submissions return the same labels hash, and the
   distinct job a different job id;
3. ``POST /shutdown`` drains the daemon to a clean exit (code 0)
   within the deadline, leaving no child processes behind.

``--chaos`` runs the durability smoke instead: boot with
``--state-dir``, complete one job, SIGKILL the daemon mid-flight on a
second job, restart against the same state directory, and assert the
graph and the finished result are recovered (no re-registration, the
same labels hash, zero re-executions for the recovered result) before
draining cleanly.

Exit code 0 on success, 1 with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--deadline 60]
    PYTHONPATH=src python tools/serve_smoke.py --chaos [--deadline 90]
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

_RECOVERY = re.compile(
    r"recovered (\d+) graph\(s\), (\d+) result\(s\); "
    r"re-running (\d+) incomplete job\(s\)"
)


def fail(message: str) -> int:
    print(f"serve-smoke FAIL: {message}", file=sys.stderr)
    return 1


def boot(extra_args: list[str]) -> tuple[subprocess.Popen, int, list[str]]:
    """Start the daemon; return (process, port, stdout lines so far).

    Reads stdout until the listen line announces the bound ephemeral
    port — any recovery summary printed before it is captured in the
    returned lines.
    """
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"]
        + extra_args,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(SRC)},
    )
    assert daemon.stdout is not None
    lines: list[str] = []
    for _ in range(20):
        line = daemon.stdout.readline()
        if not line:
            break
        lines.append(line.rstrip("\n"))
        match = re.search(r"http://[\d.]+:(\d+)", line)
        if match:
            return daemon, int(match.group(1)), lines
    daemon.kill()
    daemon.wait(10)
    raise RuntimeError(f"no listen line in daemon output: {lines!r}")


def drain(daemon: subprocess.Popen, client, deadline_s: float) -> int | None:
    """Shut the daemon down; return its exit code (None on timeout)."""
    client.shutdown()
    try:
        return daemon.wait(timeout=max(deadline_s, 1.0))
    except subprocess.TimeoutExpired:
        return None


def run_plain(args: argparse.Namespace, started: float) -> int:
    from repro.datasets import make_cora_like
    from repro.service import ServiceClient

    graph = make_cora_like(n_nodes=200, n_categories=4, seed=7).graph

    with tempfile.TemporaryDirectory() as tmp:
        daemon, port, _ = boot(
            ["--data-dir", str(Path(tmp) / "svc"), "--workers", "2"]
        )
        try:
            client = ServiceClient(
                "127.0.0.1", port, client="smoke", timeout=30.0
            )
            client.register_graph("cora", graph)

            first = client.submit(
                kind="cluster", graph="cora", n_clusters=8
            )
            second = client.submit(
                kind="cluster", graph="cora", n_clusters=8
            )
            distinct = client.submit(
                kind="cluster", graph="cora", n_clusters=16
            )
            if second["job_id"] != first["job_id"]:
                return fail("identical submissions got distinct jobs")
            if not second["deduped"] or first["deduped"]:
                return fail(
                    f"dedup flags wrong: {first['deduped']}, "
                    f"{second['deduped']}"
                )
            if distinct["job_id"] == first["job_id"]:
                return fail("distinct submission was deduplicated")

            shared = client.result(first["job_id"], timeout=60)
            other = client.result(distinct["job_id"], timeout=60)
            if shared["labels_sha256"] == other["labels_sha256"]:
                return fail("distinct jobs returned identical labels")

            counters = client.stats()["metrics"]["counters"]
            if counters.get("service_dedup_hits_total") != 1:
                return fail(f"expected 1 dedup hit, got {counters}")
            if counters.get("service_job_executions_total") != 2:
                return fail(f"expected 2 executions, got {counters}")

            remaining = args.deadline - (time.monotonic() - started)
            code = drain(daemon, client, remaining)
            if code is None:
                return fail(
                    f"daemon did not drain within {args.deadline}s"
                )
            if code != 0:
                return fail(f"daemon exited {code}")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(10)

    elapsed = time.monotonic() - started
    print(
        f"serve-smoke OK: 3 submissions, 1 dedup hit, clean drain "
        f"in {elapsed:.1f}s"
    )
    return 0


def run_chaos(args: argparse.Namespace, started: float) -> int:
    from repro.datasets import make_cora_like
    from repro.service import ServiceClient

    graph = make_cora_like(n_nodes=200, n_categories=4, seed=7).graph

    with tempfile.TemporaryDirectory() as tmp:
        state = str(Path(tmp) / "state")
        serve_args = ["--state-dir", state, "--workers", "2"]

        # Phase 1: durable daemon, one finished job, one in flight,
        # then SIGKILL — no drain, no warning, lights out.
        daemon, port, lines = boot(serve_args)
        killed_cleanly = False
        try:
            if not any(_RECOVERY.search(ln) for ln in lines):
                return fail(f"no recovery summary on boot: {lines!r}")
            client = ServiceClient(
                "127.0.0.1", port, client="chaos", timeout=30.0
            )
            client.register_graph("cora", graph)
            done = client.submit(
                kind="cluster", graph="cora", n_clusters=8
            )
            finished = client.result(done["job_id"], timeout=60)
            reference_sha = finished["labels_sha256"]
            # A second, distinct job goes in and the daemon dies with
            # it (possibly) still running.
            client.submit(kind="cluster", graph="cora", n_clusters=16)
            daemon.send_signal(signal.SIGKILL)
            daemon.wait(10)
            killed_cleanly = True
        finally:
            if not killed_cleanly and daemon.poll() is None:
                daemon.kill()
                daemon.wait(10)

        # Phase 2: restart against the same state dir. The graph and
        # the finished result must come back without re-registration.
        daemon, port, lines = boot(serve_args)
        try:
            summary = next(
                (m for ln in lines if (m := _RECOVERY.search(ln))),
                None,
            )
            if summary is None:
                return fail(f"no recovery summary on restart: {lines!r}")
            graphs, results, rerun = (
                int(summary.group(1)),
                int(summary.group(2)),
                int(summary.group(3)),
            )
            if graphs != 1:
                return fail(f"expected 1 recovered graph, got {graphs}")
            if results < 1:
                return fail(
                    f"expected >=1 recovered result, got {results}"
                )
            print(
                f"serve-smoke chaos: restart recovered {graphs} "
                f"graph(s), {results} result(s), re-ran {rerun}"
            )

            client = ServiceClient(
                "127.0.0.1", port, client="chaos", timeout=30.0
            )
            # No register_graph here: submitting against the
            # recovered graph proves it survived the kill.
            resub = client.submit(
                kind="cluster", graph="cora", n_clusters=8
            )
            if not resub["deduped"]:
                return fail(
                    "finished job was not served from recovered state"
                )
            recovered = client.result(resub["job_id"], timeout=60)
            if recovered["labels_sha256"] != reference_sha:
                return fail(
                    "recovered result not byte-identical: "
                    f"{recovered['labels_sha256']} != {reference_sha}"
                )
            counters = client.stats()["metrics"]["counters"]
            if counters.get("service_results_recovered_total", 0) < 1:
                return fail(f"recovery counters missing: {counters}")

            # The in-flight job converges too — recovered or re-run,
            # resubmission must reach a done state with labels.
            second = client.submit(
                kind="cluster", graph="cora", n_clusters=16
            )
            other = client.result(second["job_id"], timeout=60)
            if other["labels_sha256"] == reference_sha:
                return fail("distinct jobs returned identical labels")

            remaining = args.deadline - (time.monotonic() - started)
            code = drain(daemon, client, remaining)
            if code is None:
                return fail(
                    f"daemon did not drain within {args.deadline}s"
                )
            if code != 0:
                return fail(f"daemon exited {code}")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(10)

    elapsed = time.monotonic() - started
    print(
        f"serve-smoke OK (chaos): SIGKILL + restart recovered state, "
        f"byte-identical result, clean drain in {elapsed:.1f}s"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        help="seconds allowed for the whole boot/submit/drain cycle",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the SIGKILL/restart durability smoke instead",
    )
    args = parser.parse_args()
    started = time.monotonic()
    if args.chaos:
        return run_chaos(args, started)
    return run_plain(args, started)


if __name__ == "__main__":
    sys.exit(main())
