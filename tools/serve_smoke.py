"""CI smoke check for the clustering service daemon.

Boots ``python -m repro serve`` as a real subprocess on an ephemeral
port, registers a generated graph over HTTP, submits two identical
jobs plus one distinct job, and asserts the daemon's acceptance
criteria end to end:

1. the two identical submissions share one job id (exactly one dedup
   hit, exactly two executions server-side);
2. both deduplicated submissions return the same labels hash, and the
   distinct job a different job id;
3. ``POST /shutdown`` drains the daemon to a clean exit (code 0)
   within the deadline, leaving no child processes behind.

Exit code 0 on success, 1 with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--deadline 60]
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))


def fail(message: str) -> int:
    print(f"serve-smoke FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        help="seconds allowed for the whole boot/submit/drain cycle",
    )
    args = parser.parse_args()
    started = time.monotonic()

    from repro.datasets import make_cora_like
    from repro.service import ServiceClient

    graph = make_cora_like(n_nodes=200, n_categories=4, seed=7).graph

    with tempfile.TemporaryDirectory() as tmp:
        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--data-dir",
                str(Path(tmp) / "svc"),
                "--workers",
                "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={**os.environ, "PYTHONPATH": str(SRC)},
        )
        try:
            # The daemon announces its bound ephemeral port on stdout.
            assert daemon.stdout is not None
            line = daemon.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", line)
            if not match:
                return fail(f"no listen line, got {line!r}")
            port = int(match.group(1))
            client = ServiceClient(
                "127.0.0.1", port, client="smoke", timeout=30.0
            )
            client.register_graph("cora", graph)

            first = client.submit(
                kind="cluster", graph="cora", n_clusters=8
            )
            second = client.submit(
                kind="cluster", graph="cora", n_clusters=8
            )
            distinct = client.submit(
                kind="cluster", graph="cora", n_clusters=16
            )
            if second["job_id"] != first["job_id"]:
                return fail("identical submissions got distinct jobs")
            if not second["deduped"] or first["deduped"]:
                return fail(
                    f"dedup flags wrong: {first['deduped']}, "
                    f"{second['deduped']}"
                )
            if distinct["job_id"] == first["job_id"]:
                return fail("distinct submission was deduplicated")

            shared = client.result(first["job_id"], timeout=60)
            other = client.result(distinct["job_id"], timeout=60)
            if shared["labels_sha256"] == other["labels_sha256"]:
                return fail("distinct jobs returned identical labels")

            counters = client.stats()["metrics"]["counters"]
            if counters.get("service_dedup_hits_total") != 1:
                return fail(f"expected 1 dedup hit, got {counters}")
            if counters.get("service_job_executions_total") != 2:
                return fail(f"expected 2 executions, got {counters}")

            client.shutdown()
            remaining = args.deadline - (time.monotonic() - started)
            try:
                code = daemon.wait(timeout=max(remaining, 1.0))
            except subprocess.TimeoutExpired:
                return fail(
                    f"daemon did not drain within {args.deadline}s"
                )
            if code != 0:
                return fail(f"daemon exited {code}")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(10)

    elapsed = time.monotonic() - started
    print(
        f"serve-smoke OK: 3 submissions, 1 dedup hit, clean drain "
        f"in {elapsed:.1f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
