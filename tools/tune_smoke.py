"""CI smoke check for the cost-model autotuner (``repro tune``).

End-to-end over the real corpus plumbing, nothing mocked:

1. **Fit.** Run the seconds-scale all-pairs bench smoke (the same
   corpus the ``bench-smoke`` CI job records), extract samples, fit
   the cost model, score it with the plan-quality replay, and persist
   it to a scratch ``tuning/model.json``.
2. **Round-trip.** Reload the persisted model and assert it is
   byte-equivalent to the fitted one (the versioned-schema contract).
3. **Plan quality.** The replayed auto plan must be within tolerance
   of the best hand-set backend on ≥ 80% of corpus points and never
   slower than the untuned default (the ISSUE acceptance bar).
4. **Auto-tuned pipeline.** Run the same pipeline twice on a fresh
   power-law digraph — hand-set defaults vs. ``tuning="auto"`` with
   ``REPRO_TUNE_MODEL`` pointing at the freshly fitted model — and
   assert the tuned run produces *identical labels* (tuned knobs are
   execution strategy, not output identity), records its decision in
   the result's ``tuning`` section, and lands within 1.25× of the
   default's wall time (plus a small absolute slack for timer noise
   on a smoke-sized graph).

Exit code 0 on success, 1 with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python tools/tune_smoke.py [--nodes N]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

#: Tuned wall time may be at most this multiple of the default's ...
RATIO_CEILING = 1.25
#: ... plus this many seconds of absolute slack: at smoke scale both
#: runs finish in tens of milliseconds, where timer noise dominates.
ABS_SLACK_S = 0.5


def _fail(message: str) -> int:
    print(f"tune-smoke: FAIL: {message}", file=sys.stderr)
    return 1


def _timed_run(pipe, graph, n_clusters):
    t0 = time.perf_counter()
    result = pipe.run(graph, n_clusters=n_clusters)
    return result, time.perf_counter() - t0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=2000)
    args = parser.parse_args(argv)

    from repro.graph.generators import power_law_digraph
    from repro.perf.bench import run_bench
    from repro.pipeline.pipeline import SymmetrizeClusterPipeline
    from repro.tune import (
        MODEL_PATH_ENV,
        evaluate_plan_quality,
        fit_cost_model,
        load_model,
        samples_from_allpairs,
        save_model,
    )

    # 1. Fit from the smoke bench corpus.
    print("tune-smoke: running all-pairs bench smoke corpus...")
    results = run_bench(smoke=True, with_cache_sweep=False)
    samples = samples_from_allpairs(results)
    if not samples:
        return _fail("smoke bench produced no cost-model samples")
    model = fit_cost_model(samples, sources=["bench-smoke"])
    print(
        f"tune-smoke: fitted {len(model.targets)} targets from "
        f"{len(samples)} samples"
    )

    # 3. Plan quality (scored before persisting, stored in stats).
    quality = evaluate_plan_quality(model, results)
    model.stats["plan_quality"] = quality
    if not quality["passed"]:
        return _fail(f"plan quality below the bar: {quality}")
    print(
        f"tune-smoke: plan quality "
        f"{quality['within_tolerance']}/{quality['n_points']} within "
        f"{quality['tolerance']:.0%}, "
        f"{quality['worse_than_default']} worse than default"
    )

    with tempfile.TemporaryDirectory(prefix="tune-smoke-") as tmp:
        model_path = Path(tmp) / "tuning" / "model.json"
        save_model(model, model_path)

        # 2. Round-trip through the versioned schema.
        reloaded = load_model(model_path)
        if reloaded is None or reloaded.as_dict() != model.as_dict():
            return _fail(
                f"model did not round-trip through {model_path}"
            )
        print(f"tune-smoke: model round-tripped via {model_path}")

        # 4. Default vs auto-tuned pipeline on a fresh graph.
        graph = power_law_digraph(
            args.nodes, np.random.default_rng(0)
        )
        default_pipe = SymmetrizeClusterPipeline(
            "degree_discounted", "mlrmcl", threshold=0.5
        )
        default_result, default_s = _timed_run(
            default_pipe, graph, 16
        )

        previous = os.environ.get(MODEL_PATH_ENV)
        os.environ[MODEL_PATH_ENV] = str(model_path)
        try:
            tuned_pipe = SymmetrizeClusterPipeline(
                "degree_discounted",
                "mlrmcl",
                threshold=0.5,
                tuning="auto",
            )
            tuned_result, tuned_s = _timed_run(tuned_pipe, graph, 16)
        finally:
            if previous is None:
                del os.environ[MODEL_PATH_ENV]
            else:
                os.environ[MODEL_PATH_ENV] = previous

    if not np.array_equal(
        default_result.clustering.labels,
        tuned_result.clustering.labels,
    ):
        return _fail("tuned labels differ from the default run's")
    tuning = tuned_result.tuning
    if not tuning or not tuning.get("enabled"):
        return _fail(f"tuned run recorded no decision: {tuning!r}")
    if tuning.get("source") != "model":
        return _fail(
            f"decision did not come from the fitted model: {tuning!r}"
        )
    ceiling = default_s * RATIO_CEILING + ABS_SLACK_S
    print(
        f"tune-smoke: default {default_s:.3f}s, tuned {tuned_s:.3f}s "
        f"(ceiling {ceiling:.3f}s), chose "
        f"{tuning['chosen']['backend']}/"
        f"block {tuning['chosen']['block_size']}"
    )
    if tuned_s > ceiling:
        return _fail(
            f"auto-tuned run too slow: {tuned_s:.3f}s vs default "
            f"{default_s:.3f}s (ceiling {ceiling:.3f}s)"
        )
    print("tune-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
