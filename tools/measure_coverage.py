"""Stdlib line-coverage measurement for the repro test suite.

CI measures coverage with ``pytest-cov``; this tool exists for
environments where that plugin is unavailable (it needs nothing beyond
the standard library). It traces line events in files under
``src/repro`` while running the tier-1 suite, compares them against
the executable lines the compiler reports (``co_lines`` over every
code object in each module), and prints a per-file and total summary::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]

The total percentage is the number the ``[tool.coverage.report]``
``fail_under`` floor in ``pyproject.toml`` is calibrated against
(minus a safety margin — settrace coverage and coverage.py agree on
line sets for straight-line code but can differ around compiler
optimizations, e.g. elided ``continue`` statements).
"""

from __future__ import annotations

import sys
from pathlib import Path

SRC_ROOT = str(
    (Path(__file__).resolve().parent.parent / "src" / "repro")
)


def executable_lines(path: Path) -> set[int]:
    """Line numbers the compiled module can actually execute."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(
            line
            for _start, _end, line in obj.co_lines()
            if line is not None
        )
        stack.extend(
            const
            for const in obj.co_consts
            if isinstance(const, type(code))
        )
    # Module docstrings/def lines execute at import time and are
    # always covered; keeping them mirrors coverage.py's behaviour.
    return lines


def main(argv: list[str]) -> int:
    executed: dict[str, set[int]] = {}

    def tracer(frame, event, _arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(SRC_ROOT):
            return None  # skip the whole frame
        if event == "line":
            executed.setdefault(filename, set()).add(frame.f_lineno)
        return tracer

    import pytest

    sys.settrace(tracer)
    try:
        exit_code = pytest.main(["-q", "-p", "no:cacheprovider", *argv])
    finally:
        sys.settrace(None)

    total_exec = 0
    total_hit = 0
    rows: list[tuple[str, int, int]] = []
    for path in sorted(Path(SRC_ROOT).rglob("*.py")):
        lines = executable_lines(path)
        hit = executed.get(str(path), set()) & lines
        rows.append((str(path.relative_to(SRC_ROOT)), len(lines), len(hit)))
        total_exec += len(lines)
        total_hit += len(hit)

    print()
    print(f"{'file':<44} {'lines':>6} {'hit':>6} {'cover':>7}")
    for name, n_lines, n_hit in rows:
        pct = 100.0 * n_hit / n_lines if n_lines else 100.0
        print(f"{name:<44} {n_lines:>6} {n_hit:>6} {pct:>6.1f}%")
    pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"{'TOTAL':<44} {total_exec:>6} {total_hit:>6} {pct:>6.1f}%")
    return int(exit_code)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
