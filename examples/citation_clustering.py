"""Comparing symmetrizations on a citation network (the Figure-5 story).

Research papers in one field rarely cite each other directly (they are
written concurrently) but cite the same seminal papers and are later
cited together. This example compares all four symmetrizations of the
paper on a synthetic citation network and shows why similarity-based
symmetrizations win.

Run:  python examples/citation_clustering.py
"""

from __future__ import annotations

import time

import repro
from repro.pipeline.report import format_table
from repro.symmetrize.pruning import choose_threshold_for_degree


def main() -> None:
    dataset = repro.make_cora_like(n_nodes=1500, n_categories=25, seed=0)
    print(f"{dataset.name}: {dataset.graph}")
    print(f"description: {dataset.description}\n")

    rows = []
    for name in (
        "naive",
        "random_walk",
        "bibliometric",
        "degree_discounted",
    ):
        sym = repro.get_symmetrization(name)
        full = sym.apply(dataset.graph)
        # Density-matched pruning (§5.3.1): aim for ~20 neighbours.
        threshold = choose_threshold_for_degree(full, 20.0)
        undirected = sym.apply(dataset.graph, threshold=threshold)
        t0 = time.perf_counter()
        clustering = repro.MLRMCL().cluster(undirected, 25)
        seconds = time.perf_counter() - t0
        score = repro.average_f_score(clustering, dataset.ground_truth)
        rows.append(
            [
                name,
                undirected.n_edges,
                round(threshold, 4),
                clustering.n_clusters,
                score,
                seconds,
            ]
        )

    print(
        format_table(
            ["Symmetrization", "Edges", "Threshold", "k", "AvgF", "Secs"],
            rows,
            title="Symmetrization comparison (MLR-MCL, 25 clusters)",
        )
    )
    print(
        "\nExpected shape (paper, Figure 5): degree_discounted best,\n"
        "bibliometric second, naive (A+A') and random_walk behind.\n"
        "(At this synthetic scale the exact margins vary with the seed;\n"
        "benchmarks/test_fig5_cora_quality.py sweeps the full curve.)"
    )


if __name__ == "__main__":
    main()
