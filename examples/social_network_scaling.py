"""Scalability workflow on social networks (the Figure-9 story).

Flickr/LiveJournal-style graphs have no ground truth; the paper uses
them to show that the Degree-discounted graph *clusters faster* and to
demonstrate the threshold-selection recipe of §5.3.1: sample a few
hundred rows of the similarity matrix and pick the threshold whose
average degree matches what you want (50–150 at web scale — here
scaled to the synthetic graph's cluster sizes).

Run:  python examples/social_network_scaling.py
"""

from __future__ import annotations

import time

import repro
from repro.pipeline.report import format_table
from repro.symmetrize.pruning import (
    choose_threshold_for_degree,
    prune_graph,
)


def main() -> None:
    dataset = repro.make_flickr_like(n_nodes=6000, seed=2)
    graph = dataset.graph
    print(f"{dataset.name}: {graph} (no ground truth)\n")

    # §5.3.1 threshold selection: pick the prune threshold from a
    # random sample of rows, for a few target densities.
    sym = repro.get_symmetrization("degree_discounted")
    t0 = time.perf_counter()
    full = sym.apply(graph)
    sym_seconds = time.perf_counter() - t0
    print(
        f"full degree-discounted similarity: {full.n_edges} edges "
        f"({sym_seconds:.1f}s)\n"
    )

    rows = []
    for target_degree in (60.0, 30.0, 15.0):
        threshold = choose_threshold_for_degree(full, target_degree)
        pruned = prune_graph(full, threshold)
        t0 = time.perf_counter()
        clustering = repro.MLRMCL().cluster(pruned, 40)
        seconds = time.perf_counter() - t0
        avg_degree = 2.0 * pruned.n_edges / pruned.n_nodes
        rows.append(
            [
                target_degree,
                round(threshold, 4),
                pruned.n_edges,
                round(avg_degree, 1),
                clustering.n_clusters,
                seconds,
            ]
        )
    print(
        format_table(
            ["Target deg", "Threshold", "Edges", "Actual deg", "k",
             "Cluster secs"],
            rows,
            title="Threshold selection (MLR-MCL, request k=40)",
        )
    )
    print(
        "\nLower thresholds keep more edges (higher quality at full "
        "scale)\nbut cluster slower — the user picks the operating "
        "point (§5.3.1)."
    )

    # Compare clustering time against the naive symmetrization.
    naive = repro.symmetrize(graph, "naive")
    t0 = time.perf_counter()
    repro.MLRMCL().cluster(naive, 40)
    naive_seconds = time.perf_counter() - t0
    print(f"\nA+A' baseline: {naive.n_edges} edges, {naive_seconds:.1f}s")


if __name__ == "__main__":
    main()
