"""Hub nodes and why raw bibliometric similarity fails on web graphs.

Hyperlink graphs are power-law: pages like "Area" or "Population
density" are linked from a large fraction of the network. In the raw
bibliometric matrix (AAᵀ + AᵀA) those hubs (a) own the heaviest
entries and (b) make thresholds impossible to pick — a sparse-enough
threshold strands half the nodes as singletons (§3.5, §5.3, Table 5).
Degree-discounting fixes both. This example reproduces the whole
diagnosis on a synthetic web graph.

Run:  python examples/web_graph_hubs.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.linalg.sparse_utils import top_k_entries
from repro.pipeline.report import format_table
from repro.symmetrize.pruning import (
    choose_threshold_for_degree,
    prune_graph,
    singleton_fraction,
)


def main() -> None:
    dataset = repro.make_wikipedia_like(
        n_nodes=3000, n_categories=30, seed=1
    )
    graph = dataset.graph
    print(f"{dataset.name}: {graph}")
    indegrees = graph.in_degrees()
    print(
        f"max in-degree {indegrees.max():.0f} vs median "
        f"{np.median(indegrees):.0f} — hubs are present\n"
    )

    bib = repro.get_symmetrization("bibliometric").apply(graph)
    dd = repro.get_symmetrization("degree_discounted").apply(graph)

    # --- Part 1: the heaviest similarity pairs (Table 5) -------------
    hub_cutoff = np.quantile(indegrees, 0.995)

    def describe(u, label):
        rows = []
        for i, j, w in top_k_entries(u.adjacency, 5):
            touches = indegrees[i] >= hub_cutoff or (
                indegrees[j] >= hub_cutoff
            )
            rows.append([i, j, round(w, 3), "HUB" if touches else "-"])
        print(
            format_table(
                ["node i", "node j", "weight", "hub pair?"],
                rows,
                title=f"Top-5 weighted pairs: {label}",
            )
        )
        print()

    describe(bib, "bibliometric (AA' + A'A)")
    describe(dd, "degree-discounted (Eq. 8)")

    # --- Part 2: the pruning dilemma (§3.5) --------------------------
    dd_threshold = choose_threshold_for_degree(dd, 20.0)
    dd_pruned = prune_graph(dd, dd_threshold)
    # Prune bibliometric to the same edge budget.
    lo, hi = 0.0, float(bib.adjacency.max())
    for _ in range(40):
        mid = (lo + hi) / 2
        if prune_graph(bib, mid).n_edges > dd_pruned.n_edges:
            lo = mid
        else:
            hi = mid
    bib_pruned = prune_graph(bib, hi)

    print(
        format_table(
            ["Method", "Edges kept", "Singleton fraction"],
            [
                [
                    "bibliometric",
                    bib_pruned.n_edges,
                    singleton_fraction(bib_pruned),
                ],
                [
                    "degree-discounted",
                    dd_pruned.n_edges,
                    singleton_fraction(dd_pruned),
                ],
            ],
            title="Pruning to a matched edge budget (§5.3)",
        )
    )
    print(
        "\nDegree-discounting keeps (almost) every node connected at the"
        "\nsame sparsity, which is what lets subsequent clustering work."
    )


if __name__ == "__main__":
    main()
