"""Bipartite co-clustering (the paper's §6 future-work extension).

Many directed datasets are really bipartite: users x items, authors x
papers, queries x documents. The degree-discounted idea carries over
directly — two users are similar when they interact with the same
items, discounted by item popularity and user activity — giving
*one-mode projections* that any stage-2 clusterer handles.

This example builds a synthetic users-x-tags interaction matrix with
planted communities plus a popular "background" tag everyone uses,
projects each side with ``bipartite_symmetrize``, and clusters both.

Run:  python examples/bipartite_coclustering.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.pipeline.report import format_table


def build_interactions(
    n_groups: int = 4,
    users_per_group: int = 30,
    tags_per_group: int = 12,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Users tag mostly within their community; one global tag is
    popular with everyone (the bipartite analogue of a hub)."""
    rng = np.random.default_rng(seed)
    n_users = n_groups * users_per_group
    n_tags = n_groups * tags_per_group + 1  # +1 global tag
    B = np.zeros((n_users, n_tags))
    user_truth = np.repeat(np.arange(n_groups), users_per_group)
    tag_truth = np.concatenate(
        [np.repeat(np.arange(n_groups), tags_per_group), [-1]]
    )
    for g in range(n_groups):
        users = slice(g * users_per_group, (g + 1) * users_per_group)
        tags = slice(g * tags_per_group, (g + 1) * tags_per_group)
        B[users, tags] = (
            rng.random((users_per_group, tags_per_group)) < 0.4
        )
    # The global tag: used by 70% of all users.
    B[:, -1] = rng.random(n_users) < 0.7
    # Light cross-community noise.
    noise = rng.random(B.shape) < 0.02
    B = np.maximum(B, noise.astype(float))
    return B, user_truth, tag_truth


def main() -> None:
    B, user_truth, tag_truth = build_interactions()
    print(
        f"interaction matrix: {B.shape[0]} users x {B.shape[1]} tags, "
        f"{int(B.sum())} interactions\n"
    )

    rows = []
    for side, truth in (("left", user_truth), ("right", tag_truth)):
        projection = repro.bipartite_symmetrize(B, side=side)
        k = 4
        clustering = repro.MetisClusterer().cluster(projection, k)
        gt = repro.GroundTruth.from_labels(truth)
        score = repro.average_f_score(clustering, gt)
        rows.append(
            [
                "users" if side == "left" else "tags",
                projection.n_nodes,
                projection.n_edges,
                clustering.n_clusters,
                score,
            ]
        )
    print(
        format_table(
            ["Side", "Nodes", "Projection edges", "k", "AvgF"],
            rows,
            title="Degree-discounted one-mode projections (Metis, k=4)",
        )
    )

    # Show the hub discount at work: similarity through the global
    # tag is tiny compared to similarity through community tags.
    sym = repro.BipartiteDegreeDiscounted()
    only_global = np.zeros_like(B)
    only_global[:, -1] = B[:, -1]
    through_global = sym.left_similarity(only_global)
    full = sym.left_similarity(B)
    print(
        f"\nmax user-user similarity through the global tag alone: "
        f"{through_global.adjacency.max():.4f}"
    )
    print(
        f"max user-user similarity overall: "
        f"{full.adjacency.max():.4f}"
    )
    print(
        "-> the popular tag contributes far less than the community "
        "tags,\n   the bipartite analogue of discounting the 'Area' "
        "page in the\n   paper's Wikipedia analysis."
    )


if __name__ == "__main__":
    main()
