"""Quickstart: cluster a directed graph with the two-stage framework.

Builds a small synthetic citation network with known communities,
symmetrizes it with the paper's Degree-discounted transformation,
clusters the result with MLR-MCL, and evaluates against ground truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # 1. A directed graph. Here: a synthetic citation network with 12
    #    planted research fields (see repro.datasets for the full
    #    generators); in your application, load your own edges with
    #    repro.DirectedGraph.from_edges or repro.graph.io.
    dataset = repro.make_cora_like(n_nodes=800, n_categories=12, seed=7)
    graph = dataset.graph
    print(f"input: {graph}")

    # 2. Stage 1 — symmetrize. Degree-discounted (Eq. 8 of the paper)
    #    measures shared in/out-neighbourhoods while discounting hubs.
    #    The threshold prunes weak similarities (§3.5); pick it with
    #    repro.choose_threshold_for_degree for a target density.
    undirected = repro.symmetrize(
        graph, "degree_discounted", threshold=0.05
    )
    print(f"symmetrized: {undirected}")

    # 3. Stage 2 — cluster with any undirected graph clusterer.
    clustering = repro.MLRMCL().cluster(undirected, n_clusters=12)
    print(
        f"found {clustering.n_clusters} clusters, sizes "
        f"{sorted(clustering.sizes.tolist(), reverse=True)[:8]}..."
    )

    # 4. Evaluate against ground truth (the §4.3 best-match F-measure).
    score = repro.average_f_score(clustering, dataset.ground_truth)
    print(f"average F-score vs ground truth: {score:.1f}")

    # One-liner equivalent via the pipeline object:
    pipeline = repro.SymmetrizeClusterPipeline(
        "degree_discounted", "mlrmcl", threshold=0.05
    )
    result = pipeline.run(
        graph, n_clusters=12, ground_truth=dataset.ground_truth
    )
    print(
        f"pipeline: F={result.average_f:.1f} "
        f"(symmetrize {result.symmetrize_seconds:.2f}s, "
        f"cluster {result.cluster_seconds:.2f}s)"
    )


if __name__ == "__main__":
    main()
