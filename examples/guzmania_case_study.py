"""The Guzmania case study (§5.7, Figures 1 and 10).

Wikipedia pages for plant species of the genus Guzmania never link to
one another — but they all point to the genus page, "Poales",
"Ecuador", and are all pointed to by the genus page and list pages.
A+Aᵀ symmetrization leaves them mutually disconnected (unclusterable);
similarity symmetrizations connect them directly.

Run:  python examples/guzmania_case_study.py
"""

from __future__ import annotations

import repro
from repro.graph.generators import figure1_graph
from repro.pipeline.report import format_table


def main() -> None:
    # --- The idealized Figure-1 graph --------------------------------
    g, roles = figure1_graph()
    a, b = roles["pair"]
    rows = []
    for name in ("naive", "bibliometric", "degree_discounted"):
        u = repro.symmetrize(g, name)
        rows.append([name, round(u.edge_weight(a, b), 3)])
    print(
        format_table(
            ["Symmetrization", "weight between the natural pair"],
            rows,
            title="Figure 1: nodes sharing all neighbours, never linking",
        )
    )
    print()

    # --- The Guzmania motif ------------------------------------------
    graph, motif_roles = repro.guzmania_motif(n_species=10)
    species = motif_roles["species"]
    print(f"Guzmania motif: {graph}")
    print(
        "species pages:",
        ", ".join(str(graph.name_of(s)) for s in species[:3]),
        "...",
    )

    for name in ("naive", "degree_discounted"):
        u = repro.symmetrize(graph, name)
        clustering = repro.MLRMCL().cluster(u)
        labels = clustering.labels[species]
        pure = len(set(labels.tolist())) == 1
        print(
            f"{name:20s}: {clustering.n_clusters} clusters; species in "
            f"one cluster: {pure}"
        )
        if pure:
            cluster_id = labels[0]
            members = clustering.members(cluster_id)
            names = [str(graph.name_of(m)) for m in members]
            print(f"{'':22s}cluster contents: {names[:6]}...")

    print(
        "\nThe species cluster exists because Degree-discounted "
        "symmetrization\nturns shared in/out-links into direct edges "
        "— interconnectivity is\nnot the only clue to community "
        "structure in directed graphs."
    )


if __name__ == "__main__":
    main()
