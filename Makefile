# Local mirror of the CI pipeline (.github/workflows/ci.yml).
# Every CI job has a target here so failures reproduce locally:
#
#   make test          tier-1 suite (the hard gate)
#   make lint          ruff check (blocking in CI)
#   make format-check  ruff format --check (advisory in CI)
#   make fault-smoke   fault-injection marker subset
#   make chaos-smoke   chaos-harness recovery subset (retries, budgets)
#   make bench-smoke   repro bench --smoke + benchmark smoke subset
#   make scale-smoke   out-of-core 50k-node bench under wall/mem budget
#   make cache-smoke   cache identity + SIGKILL/resume smoke
#   make serve-smoke   service daemon boot/dedup/drain smoke
#   make serve-chaos   SIGKILL/restart durability smoke (--state-dir)
#   make tune-smoke    cost-model fit + auto-tuned pipeline smoke
#   make coverage      pytest-cov gate (falls back to the stdlib tool)
#   make ci            everything the PR gate runs
#
# The repo is used uninstalled via PYTHONPATH=src, matching ROADMAP.md.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint format-check fault-smoke chaos-smoke bench-smoke \
	scale-smoke cache-smoke serve-smoke serve-chaos tune-smoke \
	coverage ci clean

test:
	$(PYTHON) -m pytest -x -q

lint:
	ruff check src tests benchmarks tools

format-check:
	ruff format --check src tests benchmarks tools

fault-smoke:
	$(PYTHON) -m pytest -m fault_smoke -q

chaos-smoke:
	$(PYTHON) -m pytest -m chaos_smoke -q

bench-smoke:
	$(PYTHON) -m repro bench --smoke \
		-o BENCH_allpairs.json --runlog bench_runs.jsonl
	REPRO_BENCH_SCALE=0.25 $(PYTHON) -m pytest -q \
		benchmarks/test_table1_datasets.py \
		benchmarks/test_table2_edges.py

scale-smoke:
	REPRO_SCALE_SMOKE=1 $(PYTHON) -m pytest -m scale_smoke -q

cache-smoke:
	$(PYTHON) tools/cache_smoke.py

serve-smoke:
	$(PYTHON) tools/serve_smoke.py --deadline 60

serve-chaos:
	$(PYTHON) tools/serve_smoke.py --chaos --deadline 90

tune-smoke:
	$(PYTHON) tools/tune_smoke.py

coverage:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		$(PYTHON) -m pytest -q --cov=repro --cov-report=term; \
	else \
		echo "pytest-cov not installed; using stdlib tracer"; \
		$(PYTHON) tools/measure_coverage.py; \
	fi

ci: lint test fault-smoke chaos-smoke bench-smoke scale-smoke cache-smoke \
	serve-smoke serve-chaos tune-smoke

clean:
	rm -rf .pytest_cache .ruff_cache coverage.xml .coverage \
		bench_runs.jsonl
