"""Command-line interface for the repro library.

Subcommands mirror the library's workflow on plain-text edge lists::

    python -m repro stats       graph.txt
    python -m repro symmetrize  graph.txt out.txt -m degree_discounted -t 0.05
    python -m repro cluster     undirected.txt labels.txt -c mlrmcl -k 20
    python -m repro pipeline    graph.txt labels.txt -m dd -c metis -k 20
    python -m repro generate    cora out.txt --labels labels.txt -n 1500
    python -m repro evaluate    labels.txt truth.txt
    python -m repro bench       -o BENCH_allpairs.json --smoke
    python -m repro bench       --scale -o BENCH_scale.json
    python -m repro cache       list | stats | clear
    python -m repro sweep       graph.txt -k 10 20 30 --journal run.jsonl
    python -m repro resume      run.jsonl
    python -m repro tune        fit | explain graph.txt | show

Autotuning (see ``docs/tuning.md``): ``tune fit`` refits the execution
cost model from recorded bench/run data into ``tuning/model.json``;
``pipeline --tuning auto`` lets the planner pick backend, block size,
worker count and cache sizing from it; ``tune explain`` prints the
predicted-vs-chosen plan for a graph without running anything.

``pipeline --cache-dir DIR`` reuses symmetrization artifacts through
the disk-backed content-addressed cache (``docs/architecture.md``);
``cache list/stats/clear`` inspects or empties it.

Fault tolerance (see ``docs/robustness.md``): ``sweep --journal``
writes a crash-safe write-ahead journal of completed grid points;
``resume <journal>`` replays the recorded work and recomputes only the
unfinished tail; ``runs show <runlog> --failures`` lists the failed
and retried stages a journaled run recorded (the argument may also be
a journal file directly).

Observability (see ``docs/observability.md``): ``pipeline`` and
``bench`` append :class:`~repro.obs.manifest.RunManifest` records to a
JSONL run log with ``--runlog``; ``pipeline --trace-out`` exports the
span tree as Chrome ``trace_event`` JSON; ``runs`` lists/shows/diffs
run logs and ``trace`` re-exports a stored manifest's span tree::

    python -m repro pipeline graph.txt out.txt --runlog runs.jsonl
    python -m repro runs     list runs.jsonl
    python -m repro runs     diff runs.jsonl -a 0 -b 1
    python -m repro trace    runs.jsonl -o trace.json

Clustering as a service (see ``docs/service.md``): ``serve`` runs the
long-lived daemon holding registered graphs and a shared artifact
cache; ``submit`` posts a job (deduplicated against identical
requests) and waits for the result; ``jobs`` lists jobs or streams one
job's journal events::

    python -m repro serve  --port 8752 --graph cora=graph.txt
    python -m repro submit cluster cora -k 20 --port 8752
    python -m repro jobs   --port 8752

Graphs are whitespace edge lists (``src dst [weight]``); labels files
are one integer per line (``-1`` = unlabeled in truth files).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.cluster.common import (
    Clustering,
    available_clusterers,
    get_clusterer,
)
from repro.datasets import (
    make_cora_like,
    make_flickr_like,
    make_livejournal_like,
    make_wikipedia_like,
)
from repro.eval.fmeasure import average_f_score
from repro.eval.groundtruth import GroundTruth
from repro.exceptions import ReproError
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import degree_summary, percent_symmetric_links
from repro.pipeline.pipeline import SymmetrizeClusterPipeline
from repro.symmetrize.base import (
    available_symmetrizations,
    get_symmetrization,
)
from repro.symmetrize.pruning import choose_threshold_for_degree

__all__ = ["main", "build_parser"]

_GENERATORS = {
    "cora": make_cora_like,
    "wikipedia": make_wikipedia_like,
    "flickr": make_flickr_like,
    "livejournal": make_livejournal_like,
}


def _write_labels(labels: np.ndarray, path: str | Path) -> None:
    Path(path).write_text(
        "\n".join(str(int(v)) for v in labels) + "\n"
    )


def _read_labels(path: str | Path) -> np.ndarray:
    values = [
        int(line)
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]
    return np.asarray(values, dtype=np.int64)


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Symmetrizations for clustering directed graphs "
            "(Satuluri & Parthasarathy, EDBT 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="print directed-graph statistics")
    p.add_argument("graph", help="edge-list file")

    p = sub.add_parser(
        "symmetrize", help="symmetrize a directed edge list"
    )
    p.add_argument("graph", help="input directed edge-list file")
    p.add_argument("output", help="output undirected edge-list file")
    p.add_argument(
        "-m",
        "--method",
        default="degree_discounted",
        help=f"one of: {', '.join(available_symmetrizations())}",
    )
    p.add_argument(
        "-t",
        "--threshold",
        type=float,
        default=0.0,
        help="prune threshold (0 keeps everything)",
    )
    p.add_argument(
        "--target-degree",
        type=float,
        default=None,
        help=(
            "choose the threshold automatically for this average "
            "degree (overrides --threshold; the paper's Sec 5.3.1 "
            "recipe)"
        ),
    )

    p = sub.add_parser(
        "cluster", help="cluster an undirected edge list"
    )
    p.add_argument("graph", help="undirected edge-list file")
    p.add_argument("output", help="output labels file")
    p.add_argument(
        "-c",
        "--clusterer",
        default="mlrmcl",
        help=f"one of: {', '.join(available_clusterers())}",
    )
    p.add_argument(
        "-k", "--n-clusters", type=int, default=None,
        help="requested cluster count (advisory for mlrmcl/louvain)",
    )

    p = sub.add_parser(
        "pipeline",
        help="symmetrize + cluster a directed edge list in one go",
    )
    p.add_argument("graph", help="directed edge-list file")
    p.add_argument("output", help="output labels file")
    p.add_argument("-m", "--method", default="degree_discounted")
    p.add_argument("-c", "--clusterer", default="mlrmcl")
    p.add_argument("-k", "--n-clusters", type=int, default=None)
    p.add_argument("-t", "--threshold", type=float, default=0.0)
    p.add_argument(
        "--truth", default=None,
        help="optional ground-truth labels file for Avg-F evaluation",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        help=(
            "trace the run and write the span tree as Chrome "
            "trace_event JSON (open in chrome://tracing or Perfetto)"
        ),
    )
    p.add_argument(
        "--runlog",
        default=None,
        help="append a RunManifest to this JSONL run log",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "reuse symmetrization artifacts through a disk-backed "
            "content-addressed cache at this directory (see "
            "'repro cache')"
        ),
    )
    p.add_argument(
        "--tuning",
        choices=("auto",),
        default=None,
        help=(
            "auto-select backend/block size/n_jobs/cache sizing from "
            "the fitted cost model (see 'repro tune', docs/tuning.md)"
        ),
    )

    p = sub.add_parser(
        "sweep",
        help=(
            "cluster-count sweep with a crash-safe journal; "
            "interrupted runs continue via 'repro resume'"
        ),
    )
    p.add_argument("graph", help="directed edge-list file")
    p.add_argument("-m", "--method", default="degree_discounted")
    p.add_argument("-c", "--clusterer", default="metis")
    p.add_argument(
        "-k",
        "--counts",
        type=int,
        nargs="+",
        required=True,
        help="requested cluster counts (one grid point each)",
    )
    p.add_argument("-t", "--threshold", type=float, default=0.0)
    p.add_argument(
        "--truth", default=None,
        help="optional ground-truth labels file for Avg-F evaluation",
    )
    p.add_argument(
        "--mode",
        choices=("strict", "lenient"),
        default="strict",
        help=(
            "lenient records a failed grid point and keeps sweeping; "
            "strict stops at the first error"
        ),
    )
    p.add_argument(
        "--journal",
        default=None,
        help=(
            "write-ahead journal JSONL file; records each completed "
            "point so 'repro resume' can pick up after a crash"
        ),
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay points already recorded in --journal instead of "
            "recomputing them"
        ),
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="disk-backed artifact cache directory (see 'repro cache')",
    )

    p = sub.add_parser(
        "resume",
        help=(
            "finish an interrupted 'repro sweep' run from its journal"
        ),
    )
    p.add_argument("journal", help="journal JSONL written by sweep")
    p.add_argument(
        "--run-id",
        default=None,
        help="select one run when the journal holds several",
    )

    p = sub.add_parser(
        "generate", help="generate a synthetic benchmark dataset"
    )
    p.add_argument("kind", choices=sorted(_GENERATORS))
    p.add_argument("output", help="output edge-list file")
    p.add_argument(
        "--labels", default=None,
        help="where to write ground-truth labels (datasets with truth)",
    )
    p.add_argument("-n", "--n-nodes", type=int, default=None)
    p.add_argument("-s", "--seed", type=int, default=0)

    p = sub.add_parser(
        "evaluate",
        help="Avg-F of a labels file against a ground-truth file",
    )
    p.add_argument("labels", help="clustering labels file")
    p.add_argument("truth", help="ground-truth labels file (-1 = none)")

    p = sub.add_parser(
        "bench",
        help=(
            "symmetrize+cluster perf sweep on synthetic power-law "
            "graphs; writes BENCH_allpairs.json (BENCH_scale.json "
            "with --scale)"
        ),
    )
    p.add_argument(
        "-o",
        "--output",
        default=None,
        help=(
            "where to write the JSON results (default: "
            "BENCH_allpairs.json, or BENCH_scale.json with --scale)"
        ),
    )
    p.add_argument(
        "--scale",
        action="store_true",
        help=(
            "out-of-core scale bench instead: mmap-backed power-law "
            "graphs (default 100k and 1M nodes) through the sharded "
            "symmetrize->prune path, with peak-RSS regression floor"
        ),
    )
    p.add_argument(
        "--block-size",
        type=int,
        default=4096,
        help="rows per shard block in --scale mode",
    )
    p.add_argument(
        "--d-max",
        type=int,
        default=None,
        help=(
            "cap on out-degrees and expected in-degrees for --scale "
            "graphs (default: fixed cap of 100 so the curve isolates "
            "scaling in n)"
        ),
    )
    p.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="node counts to sweep (default depends on --smoke)",
    )
    p.add_argument(
        "-t",
        "--thresholds",
        type=float,
        nargs="+",
        default=None,
        help="prune thresholds to sweep",
    )
    p.add_argument(
        "--backends",
        nargs="+",
        default=["python", "vectorized"],
        help="all-pairs backends to time",
    )
    p.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        help="parallel row-block workers for the vectorized backend",
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale sweep (one 2k-node graph) for CI",
    )
    p.add_argument(
        "--no-cluster",
        action="store_true",
        help="skip the MLR-MCL stage-2 timing",
    )
    p.add_argument(
        "--no-cache-sweep",
        action="store_true",
        help="skip the cold-vs-warm artifact-cache sweep",
    )
    p.add_argument("-s", "--seed", type=int, default=0)
    p.add_argument(
        "--runlog",
        default=None,
        help="append a bench RunManifest to this JSONL run log",
    )

    p = sub.add_parser(
        "cache",
        help="inspect or clear the on-disk artifact cache",
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("list", "one line per stored artifact, oldest first"),
        ("stats", "entry counts and byte totals per tier"),
        ("clear", "delete every stored artifact"),
    ):
        q = cache_sub.add_parser(name, help=help_text)
        q.add_argument(
            "--dir",
            dest="cache_dir",
            default=None,
            help=(
                "cache directory (default: $REPRO_CACHE_DIR or the "
                "XDG cache path)"
            ),
        )

    p = sub.add_parser(
        "runs",
        help="inspect a JSONL run log of RunManifest records",
    )
    runs_sub = p.add_subparsers(dest="runs_command", required=True)
    q = runs_sub.add_parser("list", help="one line per recorded run")
    q.add_argument("runlog", help="JSONL run log file")
    q = runs_sub.add_parser("show", help="dump one manifest as JSON")
    q.add_argument("runlog", help="JSONL run log file")
    q.add_argument(
        "-i", "--index", type=int, default=-1,
        help="run index (negative counts from the end; default last)",
    )
    q.add_argument(
        "--no-trace",
        action="store_true",
        help="omit the span tree from the dump",
    )
    q.add_argument(
        "--failures",
        action="store_true",
        help=(
            "list the failed/retried stages and skipped sweep points "
            "the run's journal recorded (runlog may also be a "
            "journal file)"
        ),
    )
    q = runs_sub.add_parser(
        "diff", help="compare two recorded runs"
    )
    q.add_argument("runlog", help="JSONL run log file")
    q.add_argument(
        "-a", type=int, default=-2,
        help="first run index (default second-to-last)",
    )
    q.add_argument(
        "-b", type=int, default=-1,
        help="second run index (default last)",
    )
    q.add_argument(
        "--json",
        action="store_true",
        help="emit the structured diff as JSON",
    )

    p = sub.add_parser(
        "trace",
        help=(
            "export a recorded manifest's span tree as Chrome "
            "trace_event JSON"
        ),
    )
    p.add_argument("runlog", help="JSONL run log file")
    p.add_argument(
        "-i", "--index", type=int, default=-1,
        help="run index (negative counts from the end; default last)",
    )
    p.add_argument(
        "-o", "--output", default="trace.json",
        help="where to write the Chrome trace JSON",
    )

    p = sub.add_parser(
        "serve",
        help=(
            "run the clustering service daemon (docs/service.md)"
        ),
    )
    p.add_argument(
        "--host", default="127.0.0.1", help="listen address"
    )
    p.add_argument(
        "--port", type=int, default=8752,
        help="listen port (0 = ephemeral; default 8752)",
    )
    p.add_argument(
        "--data-dir", default="service-data",
        help="state root for job journals and manifests",
    )
    p.add_argument(
        "--state-dir",
        help=(
            "durable state root (graphs, results, write-ahead "
            "journal); a restarted daemon recovers everything "
            "from it. Implies --data-dir=STATE_DIR."
        ),
    )
    p.add_argument(
        "--workers", type=int, default=2,
        help="max concurrently executing jobs (default 2)",
    )
    p.add_argument(
        "--worker-mode", choices=("thread", "process"),
        default="thread",
        help=(
            "'process' supervises jobs in worker processes: a "
            "crashing job is retried and quarantined, never the "
            "daemon (default thread)"
        ),
    )
    p.add_argument(
        "--max-queue", type=int, default=None,
        help=(
            "admission bound on queued jobs; beyond it new "
            "submissions are shed with 503 + Retry-After "
            "(default: unbounded)"
        ),
    )
    p.add_argument(
        "--max-jobs", type=int, default=None,
        help=(
            "retention bound: evict the oldest finished jobs "
            "beyond this many (default: keep all)"
        ),
    )
    p.add_argument(
        "--max-job-age", type=float, default=None,
        help=(
            "retention bound: evict finished jobs older than "
            "this many seconds (default: keep forever)"
        ),
    )
    p.add_argument(
        "--cache-dir",
        help="disk tier for the shared artifact cache "
        "(default: memory only)",
    )
    p.add_argument(
        "--job-wall-s", type=float,
        help="per-job wall-clock budget, seconds",
    )
    p.add_argument(
        "--job-mem-mb", type=float,
        help="per-job memory budget, megabytes",
    )
    p.add_argument(
        "--client-wall-s", type=float,
        help=(
            "cumulative per-client wall-clock allowance, seconds "
            "(default: unlimited)"
        ),
    )
    p.add_argument(
        "--graph", action="append", default=[],
        metavar="NAME=FILE",
        help=(
            "pre-register an edge-list file under NAME "
            "(repeatable)"
        ),
    )

    p = sub.add_parser(
        "submit",
        help="submit one job to a running service daemon",
    )
    p.add_argument(
        "kind", choices=("symmetrize", "cluster", "sweep"),
        help="job kind",
    )
    p.add_argument("graph", help="registered graph name")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8752)
    p.add_argument(
        "--client", default="cli",
        help="tenant identity for budget accounting",
    )
    p.add_argument(
        "-m", "--method", default="degree_discounted",
        help="symmetrization method",
    )
    p.add_argument(
        "-c", "--clusterer", default="mlrmcl",
        help="clustering algorithm",
    )
    p.add_argument(
        "-t", "--threshold", type=float, default=0.0,
        help="prune threshold",
    )
    p.add_argument(
        "-k", "--n-clusters", type=int,
        help="cluster count (cluster jobs)",
    )
    p.add_argument(
        "--counts", type=int, nargs="+",
        help="cluster counts (sweep jobs)",
    )
    p.add_argument(
        "--mode", choices=("strict", "lenient"), default="strict",
    )
    p.add_argument(
        "--upload", metavar="FILE",
        help=(
            "register this edge-list file under the graph name "
            "first (idempotent)"
        ),
    )
    p.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and return without waiting",
    )
    p.add_argument(
        "--timeout", type=float, default=600.0,
        help="seconds to wait for the result (default 600)",
    )
    p.add_argument(
        "-o", "--output",
        help="write cluster labels to this file (cluster jobs)",
    )

    p = sub.add_parser(
        "jobs",
        help="list jobs (or stream one job's events) on a daemon",
    )
    p.add_argument(
        "job_id", nargs="?",
        help="show this job instead of listing all",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8752)
    p.add_argument(
        "--events", action="store_true",
        help="stream the job's journal as NDJSON (needs job_id)",
    )

    p = sub.add_parser(
        "experiment",
        help="regenerate one of the paper's tables/figures",
    )
    p.add_argument(
        "id",
        help="experiment id (e.g. table1, fig5a), 'list', or 'all'",
    )
    p.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset scale multiplier (default 1.0)",
    )
    p.add_argument("-s", "--seed", type=int, default=0)

    p = sub.add_parser(
        "tune",
        help=(
            "fit/inspect the execution cost model behind "
            "'pipeline --tuning auto' (see docs/tuning.md)"
        ),
    )
    tune_sub = p.add_subparsers(dest="tune_command", required=True)
    q = tune_sub.add_parser(
        "fit",
        help="(re)fit the cost model from recorded bench/run data",
    )
    q.add_argument(
        "--allpairs",
        default="BENCH_allpairs.json",
        help="all-pairs bench results (from 'repro bench')",
    )
    q.add_argument(
        "--scale",
        default="BENCH_scale.json",
        help="scale bench results (from 'repro bench --scale')",
    )
    q.add_argument(
        "--runlog",
        action="append",
        default=None,
        help="RunManifest JSONL run log (repeatable)",
    )
    q.add_argument(
        "-o",
        "--model",
        default=None,
        help=(
            "where to persist the fitted model (default "
            "tuning/model.json, or $REPRO_TUNE_MODEL)"
        ),
    )
    q = tune_sub.add_parser(
        "explain",
        help="print the predicted-vs-chosen plan for a graph",
    )
    q.add_argument("graph", help="directed edge-list file")
    q.add_argument("-t", "--threshold", type=float, default=0.0)
    q.add_argument(
        "--model",
        default=None,
        help="model file to load (default tuning/model.json)",
    )
    q = tune_sub.add_parser(
        "show",
        help="print the persisted model's targets and fit stats",
    )
    q.add_argument(
        "--model",
        default=None,
        help="model file to load (default tuning/model.json)",
    )

    return parser


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph, directed=True)
    print(f"nodes:              {graph.n_nodes}")
    print(f"directed edges:     {graph.n_edges}")
    print(
        f"% symmetric links:  "
        f"{percent_symmetric_links(graph):.1f}"
    )
    for label, degrees in (
        ("out", graph.out_degrees()),
        ("in", graph.in_degrees()),
    ):
        summary = degree_summary(degrees)
        print(
            f"{label}-degree:          median {summary.median:.0f}, "
            f"mean {summary.mean:.1f}, max {summary.max:.0f}, "
            f"isolated {summary.n_isolated}"
        )
    return 0


def _cmd_symmetrize(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph, directed=True)
    sym = get_symmetrization(args.method)
    threshold = args.threshold
    if args.target_degree is not None:
        full = sym.apply(graph)
        threshold = choose_threshold_for_degree(
            full, args.target_degree
        )
        print(f"chosen threshold: {threshold:.6g}")
    t0 = time.perf_counter()
    undirected = sym.apply(graph, threshold=threshold)
    seconds = time.perf_counter() - t0
    write_edge_list(undirected, args.output)
    print(
        f"wrote {undirected.n_edges} undirected edges to "
        f"{args.output} ({seconds:.2f}s)"
    )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph, directed=False)
    clusterer = get_clusterer(args.clusterer)
    t0 = time.perf_counter()
    clustering = clusterer.cluster(graph, args.n_clusters)
    seconds = time.perf_counter() - t0
    _write_labels(clustering.labels, args.output)
    print(
        f"found {clustering.n_clusters} clusters in {seconds:.2f}s; "
        f"labels written to {args.output}"
    )
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph, directed=True)
    truth = None
    if args.truth is not None:
        truth = GroundTruth.from_labels(_read_labels(args.truth))
    cache = None
    if args.cache_dir is not None:
        from repro.engine.cache import ArtifactCache

        cache = ArtifactCache(directory=args.cache_dir)
    pipe = SymmetrizeClusterPipeline(
        args.method,
        args.clusterer,
        threshold=args.threshold,
        tuning=args.tuning,
    )
    result = pipe.run(
        graph,
        n_clusters=args.n_clusters,
        ground_truth=truth,
        trace=bool(args.trace_out),
        manifest_path=args.runlog,
        cache=cache,
    )
    _write_labels(result.clustering.labels, args.output)
    print(
        f"symmetrize {result.symmetrize_seconds:.2f}s "
        f"({result.symmetrized.n_edges} edges), cluster "
        f"{result.cluster_seconds:.2f}s "
        f"({result.clustering.n_clusters} clusters)"
    )
    if cache is not None and result.cache is not None:
        print(
            f"artifact cache: {result.cache['hits']} hits, "
            f"{result.cache['misses']} misses -> {args.cache_dir}"
        )
    if result.tuning is not None and result.tuning.get("enabled"):
        chosen = result.tuning.get("chosen", {})
        print(
            f"tuning ({result.tuning.get('source')}): backend "
            f"{chosen.get('backend')}, block {chosen.get('block_size')}"
            f", n_jobs {chosen.get('n_jobs')}, storage "
            f"{chosen.get('storage')}"
        )
    if result.average_f is not None:
        print(f"Avg-F vs ground truth: {result.average_f:.2f}")
    if args.trace_out and result.trace is not None:
        import json

        from repro.obs.trace import Span, to_chrome_trace

        spans = [Span.from_dict(s) for s in result.trace["spans"]]
        payload = to_chrome_trace(spans)
        Path(args.trace_out).write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        print(
            f"chrome trace ({len(payload['traceEvents'])} events) "
            f"-> {args.trace_out}"
        )
    if args.runlog is not None:
        print(f"run manifest appended to {args.runlog}")
    return 0


def _execute_sweep(
    config: dict,
    mode: str,
    journal_path: str | None,
    resume: bool,
    run_id: str | None = None,
) -> int:
    """Run (or resume) a journaled cluster-count sweep.

    ``config`` is the self-describing run_start payload — everything
    needed to rebuild the sweep lives in it, which is what lets
    ``repro resume`` re-run from the journal alone.
    """
    from repro.engine.cache import ArtifactCache
    from repro.engine.journal import JournalReplay, RunJournal
    from repro.pipeline.sweep import (
        aggregate_average_f,
        sweep_n_clusters,
    )

    graph = read_edge_list(config["graph"], directed=True)
    truth = None
    if config.get("truth"):
        truth = GroundTruth.from_labels(_read_labels(config["truth"]))
    cache = None
    if config.get("cache_dir"):
        cache = ArtifactCache(directory=config["cache_dir"])
    journal = None
    replay = None
    if journal_path is not None:
        if resume and Path(journal_path).exists():
            replay = JournalReplay.from_path(
                journal_path, run_id=run_id
            )
        journal = RunJournal(
            journal_path,
            run_id=replay.run_id if replay is not None else run_id,
        )
        journal.ensure_started(
            kind="cli_sweep",
            name="sweep_n_clusters",
            dataset_sha="",
            mode=mode,
            config=config,
        )
    points = sweep_n_clusters(
        graph,
        config["method"],
        config["clusterer"],
        [int(k) for k in config["counts"]],
        ground_truth=truth,
        threshold=float(config.get("threshold", 0.0)),
        cache=cache,
        mode=mode,
        journal=journal,
        resume=replay,
    )
    if journal is not None:
        journal.finish()
        journal.close()
    for point in points:
        if point.failed:
            status = "failed"
        elif point.resumed:
            status = "resumed"
        else:
            status = "ok"
        score = (
            f"{point.average_f:.2f}"
            if point.average_f is not None
            else "-"
        )
        print(
            f"k={point.parameter!s:<6} "
            f"clusters={point.n_clusters:<6} "
            f"AvgF={score:<6} edges={point.n_edges:<8} [{status}]"
        )
    aggregate = aggregate_average_f(points)
    if aggregate is not None:
        print(f"mean Avg-F over successful points: {aggregate:.2f}")
    failed = sum(1 for point in points if point.failed)
    if failed:
        print(f"{failed} point(s) failed and were skipped")
    if journal_path is not None:
        print(f"journal -> {journal_path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = {
        "graph": str(args.graph),
        "method": args.method,
        "clusterer": args.clusterer,
        "counts": [int(k) for k in args.counts],
        "threshold": float(args.threshold),
        "truth": args.truth,
        "cache_dir": args.cache_dir,
    }
    if args.resume and args.journal is None:
        raise ReproError("--resume requires --journal")
    return _execute_sweep(
        config, args.mode, args.journal, resume=args.resume
    )


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.engine.journal import JournalReplay

    replay = JournalReplay.from_path(
        args.journal, run_id=args.run_id
    )
    if replay.run_start is None:
        raise ReproError(
            f"{args.journal} has no run_start record; nothing to "
            "resume"
        )
    if replay.run_start.get("kind") != "cli_sweep":
        raise ReproError(
            "only journals written by 'repro sweep' can be resumed "
            f"from the CLI (this one was started by "
            f"{replay.run_start.get('kind')!r})"
        )
    config = dict(replay.run_start.get("config", {}))
    mode = str(replay.run_start.get("mode", "strict"))
    total = len(config.get("counts", []))
    print(
        f"resuming run {replay.run_id}: "
        f"{len(replay.completed_points)} of {total} points recorded"
    )
    return _execute_sweep(
        config,
        mode,
        args.journal,
        resume=True,
        run_id=replay.run_id,
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    factory = _GENERATORS[args.kind]
    kwargs: dict[str, object] = {"seed": args.seed}
    if args.n_nodes is not None:
        kwargs["n_nodes"] = args.n_nodes
    dataset = factory(**kwargs)  # type: ignore[arg-type]
    write_edge_list(dataset.graph, args.output)
    print(f"{dataset.name}: {dataset.graph} -> {args.output}")
    if args.labels is not None:
        if dataset.ground_truth is None:
            print(
                f"note: {dataset.name} has no ground truth; "
                "no labels written",
                file=sys.stderr,
            )
        else:
            # Flatten overlapping truth to primary labels for the CLI.
            membership = dataset.ground_truth.membership.tocsr()
            labels = np.full(dataset.n_nodes, -1, dtype=np.int64)
            for v in range(dataset.n_nodes):
                start = membership.indptr[v]
                end = membership.indptr[v + 1]
                if end > start:
                    labels[v] = membership.indices[start]
            _write_labels(labels, args.labels)
            print(f"ground-truth labels -> {args.labels}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    labels = _read_labels(args.labels)
    truth_labels = _read_labels(args.truth)
    clustering = Clustering(labels)
    truth = GroundTruth.from_labels(truth_labels)
    score = average_f_score(clustering, truth)
    print(f"Avg-F: {score:.2f}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        bench_manifest,
        format_summary,
        run_bench,
        write_bench,
    )

    if args.scale:
        return _cmd_bench_scale(args)
    if args.output is None:
        args.output = "BENCH_allpairs.json"
    results = run_bench(
        sizes=args.sizes,
        thresholds=args.thresholds,
        backends=args.backends,
        n_jobs=args.n_jobs,
        seed=args.seed,
        smoke=args.smoke,
        with_cluster=not args.no_cluster,
        with_cache_sweep=not args.no_cache_sweep,
    )
    path = write_bench(results, args.output)
    print(format_summary(results))
    print(f"results written to {path}")
    if args.runlog is not None:
        from repro.obs.manifest import append_manifest

        append_manifest(bench_manifest(results), args.runlog)
        print(f"run manifest appended to {args.runlog}")
    return 0 if results["regression"]["passed"] else 1


def _cmd_bench_scale(args: argparse.Namespace) -> int:
    from repro.perf.bench import write_bench
    from repro.perf.scale_bench import (
        DEFAULT_SCALE_D_MAX,
        DEFAULT_SCALE_THRESHOLD,
        format_scale_summary,
        run_scale_bench,
        scale_manifest,
    )

    threshold = (
        args.thresholds[0]
        if args.thresholds
        else DEFAULT_SCALE_THRESHOLD
    )
    results = run_scale_bench(
        sizes=args.sizes,
        threshold=threshold,
        n_jobs=args.n_jobs,
        block_size=args.block_size,
        d_max=(
            args.d_max if args.d_max is not None else DEFAULT_SCALE_D_MAX
        ),
        seed=args.seed,
        smoke=args.smoke,
    )
    path = write_bench(
        results,
        args.output if args.output is not None else "BENCH_scale.json",
    )
    print(format_scale_summary(results))
    print(f"results written to {path}")
    if args.runlog is not None:
        from repro.obs.manifest import append_manifest

        append_manifest(scale_manifest(results), args.runlog)
        print(f"run manifest appended to {args.runlog}")
    return 0 if results["regression"]["passed"] else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.engine.cache import ArtifactCache, default_cache_dir

    directory = (
        Path(args.cache_dir)
        if args.cache_dir is not None
        else default_cache_dir()
    )
    cache = ArtifactCache(directory=directory)
    if args.cache_command == "list":
        entries = cache.entries()
        if not entries:
            print(f"no cached artifacts under {directory}")
            return 0
        for record in entries:
            key = record.get("key", "?")
            print(
                f"{key[:16]}  nodes={record.get('n_nodes', '?'):>7} "
                f"nnz={record.get('nnz', '?'):>9} "
                f"bytes={record.get('nbytes', '?'):>10} "
                f"plan={record.get('plan', '-')}"
            )
        return 0
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"directory:      {stats['directory']}")
        print(f"disk entries:   {stats['disk_entries']}")
        print(f"disk bytes:     {stats['disk_bytes']}")
        return 0
    # clear
    removed = cache.clear()
    print(f"removed {removed} cached artifacts from {directory}")
    return 0


def _select_manifest(manifests, index: int):
    try:
        return manifests[index]
    except IndexError:
        raise ReproError(
            f"run index {index} out of range for a log with "
            f"{len(manifests)} runs"
        ) from None


def _print_journal_failures(journal_path: str | Path) -> int:
    """List a journal's failed/retried stages and skipped points."""
    import json

    from repro.engine.journal import JournalReplay

    replay = JournalReplay.from_path(journal_path)
    failed_points = [
        record
        for record in replay.completed_points.values()
        if record.get("payload", {}).get("failed")
    ]
    if not replay.failures and not failed_points:
        print(f"no failures recorded in {journal_path}")
        return 0
    for record in replay.failures:
        outcome = "fatal" if record.get("fatal") else "retried"
        line = (
            f"stage={record.get('stage')} "
            f"plan={record.get('plan')} "
            f"attempt={record.get('attempt')} [{outcome}] "
            f"{record.get('error')}: {record.get('message')}"
        )
        budget = record.get("budget")
        if budget:
            line += f" budget={json.dumps(budget, sort_keys=True)}"
        print(line)
    for record in failed_points:
        payload = record.get("payload", {})
        print(
            f"point parameter={record.get('parameter')!r} skipped: "
            f"{payload.get('error')} "
            f"(code={payload.get('warning_code')})"
        )
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    import json

    from repro.obs.manifest import (
        diff_manifests,
        format_diff,
        read_manifests,
    )

    if args.runs_command == "show" and args.failures:
        # The argument may be a journal file directly ...
        try:
            return _print_journal_failures(args.runlog)
        except ReproError:
            pass
        # ... or a manifest log whose run points at its journal.
        manifests = read_manifests(args.runlog)
        manifest = _select_manifest(manifests, args.index)
        journal_path = manifest.fault_tolerance.get("journal")
        if not journal_path:
            raise ReproError(
                f"run {args.index} in {args.runlog} recorded no "
                "journal; re-run with a journal to track failures"
            )
        return _print_journal_failures(journal_path)

    manifests = read_manifests(args.runlog)
    if args.runs_command == "list":
        for i, manifest in enumerate(manifests):
            print(f"[{i}] {manifest.summary()}")
        return 0
    if args.runs_command == "show":
        manifest = _select_manifest(manifests, args.index)
        payload = manifest.as_dict()
        if args.no_trace:
            payload["trace"] = []
        print(json.dumps(payload, indent=2))
        return 0
    # diff
    a = _select_manifest(manifests, args.a)
    b = _select_manifest(manifests, args.b)
    diff = diff_manifests(a, b)
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(format_diff(diff))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.manifest import read_manifests
    from repro.obs.trace import Span, to_chrome_trace

    manifests = read_manifests(args.runlog)
    manifest = _select_manifest(manifests, args.index)
    if not manifest.trace:
        raise ReproError(
            f"run {args.index} in {args.runlog} has no span tree; "
            "record it with --trace-out/--runlog on a traced run"
        )
    spans = [Span.from_dict(node) for node in manifest.trace]
    payload = to_chrome_trace(spans)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"chrome trace ({len(payload['traceEvents'])} events) "
        f"-> {args.output}"
    )
    return 0


def _print_experiment(result, with_chart: bool) -> None:
    from repro.pipeline.charts import render_series_chart

    print(result.title)
    print(result.text)
    if with_chart and result.experiment.startswith("fig"):
        chart = render_series_chart(result.text)
        if chart is not None:
            print()
            print(chart)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        available_experiments,
        run_all_experiments,
        run_experiment,
    )

    if args.id == "list":
        for name in available_experiments():
            print(name)
        return 0
    if args.id == "all":
        for result in run_all_experiments(
            scale=args.scale, seed=args.seed
        ):
            _print_experiment(result, with_chart=True)
            print()
        return 0
    result = run_experiment(args.id, scale=args.scale, seed=args.seed)
    _print_experiment(result, with_chart=True)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.engine import ArtifactCache, Budget
    from repro.service import ServiceServer, ServiceStore
    from repro.service.server import serve

    job_budget = None
    if args.job_wall_s is not None or args.job_mem_mb is not None:
        job_budget = Budget(
            wall_s=args.job_wall_s,
            mem_bytes=(
                int(args.job_mem_mb * 1024 * 1024)
                if args.job_mem_mb is not None
                else None
            ),
        )
    cache = ArtifactCache(directory=args.cache_dir)
    store = None
    data_dir = args.data_dir
    if args.state_dir:
        # Durable mode: every state artifact under one root, so a
        # restart recovers graphs, results and incomplete jobs.
        data_dir = args.state_dir
        store = ServiceStore(args.state_dir)
    server = ServiceServer(
        data_dir,
        host=args.host,
        port=args.port,
        cache=cache,
        max_workers=args.workers,
        job_budget=job_budget,
        client_wall_s=args.client_wall_s,
        store=store,
        worker_mode=args.worker_mode,
        max_queue_depth=args.max_queue,
        max_jobs=args.max_jobs,
        max_job_age_s=args.max_job_age,
    )
    if store is not None:
        counters = server.manager.metrics.as_dict().get(
            "counters", {}
        )
        print(
            "recovered "
            f"{int(counters.get('service_graphs_recovered_total', 0))}"
            " graph(s), "
            f"{int(counters.get('service_results_recovered_total', 0))}"
            " result(s); re-running "
            f"{int(counters.get('service_jobs_rerun_total', 0))}"
            " incomplete job(s)",
            flush=True,
        )
    for entry in args.graph:
        name, _, path = entry.partition("=")
        if not name or not path:
            raise ReproError(
                f"--graph expects NAME=FILE, got {entry!r}"
            )
        graph = read_edge_list(path, directed=True)
        server.manager.register_graph(name, graph)
        print(f"registered {name}: {graph.n_nodes} nodes, "
              f"{graph.n_edges} edges")
    clean = serve(server)
    return 0 if clean else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(
        args.host, args.port, client=args.client,
        timeout=max(args.timeout, 60.0),
    )
    if args.upload:
        graph = read_edge_list(args.upload, directed=True)
        registered = client.register_graph(args.graph, graph)
        print(
            f"graph {args.graph}: sha {registered['sha']}, "
            f"{registered['n_nodes']} nodes"
        )
    spec: dict[str, object] = {
        "kind": args.kind,
        "graph": args.graph,
        "method": args.method,
        "clusterer": args.clusterer,
        "threshold": args.threshold,
        "mode": args.mode,
    }
    if args.n_clusters is not None:
        spec["n_clusters"] = args.n_clusters
    if args.counts:
        spec["counts"] = args.counts
    submitted = client.submit(**spec)
    dedup = " (deduplicated)" if submitted["deduped"] else ""
    print(f"job {submitted['job_id']}{dedup}")
    if args.no_wait:
        return 0
    result = client.result(submitted["job_id"], timeout=args.timeout)
    if args.kind == "cluster":
        print(
            f"clusters: {result['n_clusters']}  "
            f"labels sha {result['labels_sha256']}  "
            f"{result['cluster_seconds']:.3f}s"
        )
        if args.output:
            labels = np.asarray(result["labels"], dtype=np.int64)
            _write_labels(labels, args.output)
            print(f"labels -> {args.output}")
    elif args.kind == "symmetrize":
        print(
            f"symmetrized: {result['n_edges']} edges  "
            f"sha {result['result_sha']}"
        )
    else:
        for point in result["points"]:
            marker = "cached" if point["cache_hit"] else "computed"
            avg_f = (
                f"{point['average_f']:.2f}"
                if point["average_f"] is not None
                else "-"
            )
            print(
                f"k={point['parameter']:>6}  "
                f"clusters={point['n_clusters']:>6}  "
                f"avg-f={avg_f:>7}  {marker}"
            )
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service import ServiceClient

    client = ServiceClient(args.host, args.port)
    if args.events:
        if not args.job_id:
            raise ReproError("--events needs a job id")
        for record in client.events(args.job_id):
            print(_json.dumps(record, sort_keys=True))
        return 0
    if args.job_id:
        print(
            _json.dumps(
                client.job(args.job_id), indent=2, sort_keys=True
            )
        )
        return 0
    for job in client.jobs():
        clients = ",".join(job["clients"])
        print(
            f"{job['job_id']}  {job['state']:>8}  "
            f"{job['kind']:>10}  {job['graph']:<12} {clients}"
        )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.tune import (
        Planner,
        default_model_path,
        default_plan,
        evaluate_plan_quality,
        fit_cost_model,
        load_corpus,
        load_model,
        save_model,
    )

    if args.tune_command == "fit":
        samples, sources, allpairs = load_corpus(
            allpairs_path=args.allpairs,
            scale_path=args.scale,
            runlog_paths=tuple(args.runlog or ()),
        )
        model = fit_cost_model(samples, sources)
        if allpairs is not None:
            model.stats["plan_quality"] = evaluate_plan_quality(
                model, allpairs
            )
        path = save_model(model, args.model)
        print(
            f"fitted {len(model.targets)} targets from "
            f"{len(samples)} samples ({', '.join(sources)})"
        )
        for name in sorted(model.targets):
            fit = model.targets[name]
            print(
                f"  {name:24s} n={fit.n_samples:<4d} "
                f"r2={fit.r2:.3f}"
            )
        quality = model.stats.get("plan_quality")
        if quality and quality["n_points"]:
            print(
                f"plan quality: {quality['within_tolerance']}/"
                f"{quality['n_points']} points within "
                f"{quality['tolerance']:.0%} of best, "
                f"{quality['worse_than_default']} worse than default "
                f"-> {'PASS' if quality['passed'] else 'FAIL'}"
            )
        print(f"model -> {path}")
        return 0

    if args.tune_command == "show":
        path = (
            Path(args.model)
            if args.model is not None
            else default_model_path()
        )
        model = load_model(path)
        if model is None:
            print(f"no model at {path} (run 'repro tune fit')")
            return 1
        print(f"model: {path}")
        stats = model.stats
        print(
            f"fitted from {stats.get('n_samples', '?')} samples: "
            f"{', '.join(stats.get('sources', []) or ['?'])}"
        )
        for name in sorted(model.targets):
            fit = model.targets[name]
            print(
                f"  {name:24s} n={fit.n_samples:<4d} "
                f"r2={fit.r2:.3f}"
            )
        quality = stats.get("plan_quality")
        if quality and quality.get("n_points"):
            print(
                f"plan quality: "
                f"{quality['within_tolerance_fraction']:.0%} within "
                f"{quality['tolerance']:.0%} of best, "
                f"{quality['worse_than_default']} worse than default "
                f"-> {'PASS' if quality['passed'] else 'FAIL'}"
            )
        return 0

    # explain: predicted-vs-chosen plan for a concrete graph.
    graph = read_edge_list(args.graph, directed=True)
    planner = Planner(model_path=args.model)
    decision = planner.decide(graph, args.threshold)
    print(
        f"graph: {graph.n_nodes} nodes, {graph.n_edges} edges, "
        f"threshold {args.threshold:g}"
    )
    for key, value in decision.features.items():
        print(f"  {key:14s} {value:g}")
    if decision.predicted_seconds:
        print("predicted symmetrize seconds:")
        for backend, seconds in sorted(
            decision.predicted_seconds.items()
        ):
            marker = "*" if backend == decision.backend else " "
            print(f"  {marker} {backend:12s} {seconds:.4g}s")
    else:
        print(
            "no fitted model found -> hand-set defaults "
            "(run 'repro tune fit')"
        )
    if decision.predicted_peak_bytes is not None:
        print(
            f"predicted peak rss: "
            f"{decision.predicted_peak_bytes / 1024**2:.1f} MiB"
        )
    defaults = default_plan()
    print(f"plan (source: {decision.source}):")
    for key, value in decision.chosen().items():
        note = "" if value == defaults[key] else (
            f"   (default: {defaults[key]})"
        )
        print(f"  {key:16s} {value}{note}")
    return 0


_COMMANDS = {
    "stats": _cmd_stats,
    "symmetrize": _cmd_symmetrize,
    "cluster": _cmd_cluster,
    "pipeline": _cmd_pipeline,
    "sweep": _cmd_sweep,
    "resume": _cmd_resume,
    "generate": _cmd_generate,
    "evaluate": _cmd_evaluate,
    "bench": _cmd_bench,
    "cache": _cmd_cache,
    "runs": _cmd_runs,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "experiment": _cmd_experiment,
    "tune": _cmd_tune,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
