"""Counters, gauges and histograms for pipeline hot paths.

The symmetrize/prune/cluster/eval stages emit named metrics —
``edges_pruned_total``, ``mcl_iterations``, ``singleton_fraction``,
``pagerank_convergence_delta`` — through the same ambient-contextvar
pattern as :mod:`repro.perf` timings and :mod:`repro.obs.trace` spans:
library code calls :func:`metric_inc` / :func:`metric_set` /
:func:`metric_observe` unconditionally, and each call is a no-op
(one contextvar read) unless a :class:`MetricsRegistry` is installed
with :func:`metrics_active`.

Metric kinds follow the usual conventions:

- **counter** — monotonically accumulated total (``_total`` suffix by
  convention): ``edges_pruned_total``, ``mcl_iterations``.
- **gauge** — last-written value: ``singleton_fraction``,
  ``mcl_prune_fraction``, ``pagerank_convergence_delta``.
- **histogram** — distribution summary (count/sum/min/max plus decade
  buckets): per-block candidate counts, per-span durations.

``repro bench`` and the pipeline's run manifests snapshot the registry
with :meth:`MetricsRegistry.as_dict`; see ``docs/observability.md``
for the metrics glossary.
"""

from __future__ import annotations

import contextlib
import contextvars
import math
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "metrics_active",
    "current_metrics",
    "metric_inc",
    "metric_set",
    "metric_observe",
    "peak_rss_bytes",
]


@dataclass
class Histogram:
    """Streaming distribution summary with decade buckets.

    ``buckets`` maps a decade label to the number of observations with
    ``10^(d) <= value < 10^(d+1)`` (label ``"1e{d+1}"`` = the bucket's
    exclusive upper bound); zero and negative values land in ``"0"``.
    """

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: dict[str, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0:
            label = f"1e{math.floor(math.log10(value)) + 1:d}"
        else:
            label = "0"
        self.buckets[label] = self.buckets.get(label, 0) + 1

    @property
    def mean(self) -> float:
        """Average observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable view."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": dict(self.buckets),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms for one run.

    Examples
    --------
    >>> reg = MetricsRegistry()
    >>> with metrics_active(reg):
    ...     metric_inc("edges_pruned_total", 10)
    ...     metric_inc("edges_pruned_total", 5)
    ...     metric_set("singleton_fraction", 0.25)
    >>> reg.counters["edges_pruned_total"]
    15.0
    >>> reg.gauges["singleton_fraction"]
    0.25
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def set(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def names(self) -> list[str]:
        """All metric names across the three kinds, sorted."""
        return sorted(
            set(self.counters) | set(self.gauges) | set(self.histograms)
        )

    def __len__(self) -> int:
        return (
            len(self.counters) + len(self.gauges) + len(self.histograms)
        )

    def flat(self) -> dict[str, float]:
        """Counters and gauges as one flat ``{name: value}`` mapping.

        Histograms contribute their count under ``<name>_count`` and
        sum under ``<name>_sum`` — the shape ``repro bench`` embeds in
        ``BENCH_allpairs.json`` run entries.
        """
        out: dict[str, float] = {}
        out.update(self.counters)
        out.update(self.gauges)
        for name, hist in self.histograms.items():
            out[f"{name}_count"] = float(hist.count)
            out[f"{name}_sum"] = hist.total
        return out

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot, keyed by metric kind."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.as_dict()
                for name, hist in self.histograms.items()
            },
        }

    def report(self) -> str:
        """Human-readable listing, one metric per line."""
        lines: list[str] = []
        for name in sorted(self.counters):
            lines.append(f"counter    {name} = {self.counters[name]:g}")
        for name in sorted(self.gauges):
            lines.append(f"gauge      {name} = {self.gauges[name]:g}")
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            lines.append(
                f"histogram  {name}: count={hist.count} "
                f"mean={hist.mean:g} min={hist.min:g} max={hist.max:g}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def __repr__(self) -> str:
        return f"MetricsRegistry(metrics={len(self)})"


_METRICS: contextvars.ContextVar[MetricsRegistry | None] = (
    contextvars.ContextVar("repro_metrics", default=None)
)


def current_metrics() -> MetricsRegistry | None:
    """The ambient registry, or ``None`` when metrics are disabled."""
    return _METRICS.get()


@contextlib.contextmanager
def metrics_active(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Install ``registry`` (or a fresh one) as the ambient registry.

    Nested blocks shadow the outer registry; the outer one is restored
    on exit.
    """
    reg = registry if registry is not None else MetricsRegistry()
    token = _METRICS.set(reg)
    try:
        yield reg
    finally:
        _METRICS.reset(token)


def metric_inc(name: str, value: float = 1.0) -> None:
    """Bump counter ``name`` in the ambient registry (no-op otherwise)."""
    reg = _METRICS.get()
    if reg is not None:
        reg.inc(name, value)


def metric_set(name: str, value: float) -> None:
    """Set gauge ``name`` in the ambient registry (no-op otherwise)."""
    reg = _METRICS.get()
    if reg is not None:
        reg.set(name, value)


def metric_observe(name: str, value: float) -> None:
    """Observe into histogram ``name`` (no-op without a registry)."""
    reg = _METRICS.get()
    if reg is not None:
        reg.observe(name, value)


def peak_rss_bytes() -> int:
    """This process's lifetime peak resident set size, in bytes.

    A monotone high-water mark (``getrusage``'s ``ru_maxrss``), not an
    instantaneous reading — the number the out-of-core paths report as
    the ``peak_rss_bytes`` gauge and the scale bench asserts its
    memory ceiling against. Returns 0 on platforms without
    :mod:`resource` (Windows).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    import sys

    if sys.platform == "darwin":  # pragma: no cover
        return int(rss)
    return int(rss) * 1024
