"""Observability: tracing, metrics and run manifests.

This package grows the stage-timing layer of :mod:`repro.perf` into a
full observability subsystem — the paper's empirical claims are
*comparative* (degree-discounted clusters 2–5x faster, ≈22% better
Avg-F than BestWCut on Cora), so seeing where time, memory and quality
go per stage and per run is a first-class concern:

- :mod:`~repro.obs.trace` — hierarchical :class:`Span` trees
  (stage → substage → gram block) with wall/CPU time, optional memory
  deltas and attributes, exportable as Chrome ``trace_event`` JSON
  for flamegraph viewers.
- :mod:`~repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and histograms (``edges_pruned_total``, ``mcl_iterations``,
  ``singleton_fraction``, ...) emitted by the hot paths.
- :mod:`~repro.obs.manifest` — :class:`RunManifest` provenance records
  (config, dataset fingerprint, versions, git SHA, seed, warnings,
  span tree, metrics) appended to JSONL run logs that the
  ``repro runs`` CLI lists and diffs.

All three share the ambient-contextvar pattern of
:func:`repro.perf.recording`: instrumentation calls are no-ops when
nothing is installed, so the library costs nothing to observe when
observation is off. The flat stage timers (:class:`.PerfRecorder`,
:class:`.Stopwatch`) remain available here as the fourth primitive.

See ``docs/observability.md`` for a guide.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    SUPPORTED_SCHEMAS,
    RunManifest,
    append_manifest,
    collect_environment,
    diff_manifests,
    fingerprint_graph,
    format_diff,
    read_manifests,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    current_metrics,
    metric_inc,
    metric_observe,
    metric_set,
    metrics_active,
)
from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    span,
    spans_from_chrome_trace,
    to_chrome_trace,
    tracing,
)
from repro.perf.stopwatch import (
    PerfRecorder,
    Stopwatch,
    current_recorder,
    recording,
)

__all__ = [
    # tracing
    "Span",
    "Tracer",
    "tracing",
    "current_tracer",
    "span",
    "to_chrome_trace",
    "spans_from_chrome_trace",
    # metrics
    "Histogram",
    "MetricsRegistry",
    "metrics_active",
    "current_metrics",
    "metric_inc",
    "metric_set",
    "metric_observe",
    # manifests
    "MANIFEST_SCHEMA",
    "SUPPORTED_SCHEMAS",
    "RunManifest",
    "fingerprint_graph",
    "collect_environment",
    "append_manifest",
    "read_manifests",
    "diff_manifests",
    "format_diff",
    # re-exported flat timers
    "PerfRecorder",
    "Stopwatch",
    "recording",
    "current_recorder",
]
