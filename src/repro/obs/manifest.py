"""Run manifests: provenance records for pipeline and bench runs.

A :class:`RunManifest` captures everything needed to interpret — and
re-run — one invocation: the configuration, a content fingerprint of
the input dataset, library versions and git revision, the seed, every
structured warning the run emitted, the span tree from
:mod:`repro.obs.trace` and the metrics snapshot from
:mod:`repro.obs.metrics`. Manifests append to a JSONL *run log*, one
JSON object per line, which the ``repro runs`` CLI lists, shows and
diffs::

    repro pipeline graph.txt out.txt --runlog runs.jsonl
    repro runs list runs.jsonl
    repro runs diff runs.jsonl -a 0 -b 1

The manifest schema is versioned (:data:`MANIFEST_SCHEMA`) and pinned
by a golden-file test, so downstream tooling can rely on its shape
across PRs.
"""

from __future__ import annotations

import functools
import hashlib
import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.exceptions import ReproError

__all__ = [
    "MANIFEST_SCHEMA",
    "SUPPORTED_SCHEMAS",
    "RunManifest",
    "fingerprint_graph",
    "collect_environment",
    "append_manifest",
    "read_manifests",
    "diff_manifests",
    "format_diff",
]

#: Schema identifier embedded in every manifest; bump on breaking
#: changes to the JSON shape (tests/data/manifest_golden.json pins it).
#: v2 added the ``cache`` section (artifact-cache provenance); v3 the
#: ``fault_tolerance`` section (journal / retry / resume provenance);
#: v4 the ``tuning`` section (autotuning chosen-vs-default plan
#: provenance, see :mod:`repro.tune`).
MANIFEST_SCHEMA = "repro-run-manifest/v4"

#: Schemas :meth:`RunManifest.from_dict` can still read. v1 manifests
#: (pre-artifact-cache) load with an empty ``cache`` section; v1/v2
#: (pre-fault-tolerance) with an empty ``fault_tolerance`` section;
#: v1–v3 (pre-autotuning) with an empty ``tuning`` section.
SUPPORTED_SCHEMAS = (
    "repro-run-manifest/v1",
    "repro-run-manifest/v2",
    "repro-run-manifest/v3",
    "repro-run-manifest/v4",
)


def fingerprint_graph(graph: Any) -> dict[str, Any]:
    """Content fingerprint of a graph (or sparse adjacency matrix).

    The digest hashes the CSR structure and weights, so two runs on
    byte-identical inputs share a fingerprint while any edge or weight
    change produces a different one — the manifest-level notion of
    "same dataset".
    """
    adjacency = getattr(graph, "adjacency", graph)
    csr = adjacency.tocsr()
    digest = hashlib.sha256()
    digest.update(repr(csr.shape).encode())
    digest.update(csr.indptr.tobytes())
    digest.update(csr.indices.tobytes())
    digest.update(csr.data.tobytes())
    return {
        "n_nodes": int(csr.shape[0]),
        "nnz": int(csr.nnz),
        "sha256": digest.hexdigest()[:16],
    }


@functools.lru_cache(maxsize=1)
def _git_sha() -> str | None:
    """Short revision of the working tree, or ``None`` outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def collect_environment() -> dict[str, Any]:
    """Library versions, interpreter and host for provenance."""
    import numpy
    import scipy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "platform": platform.system(),
        "machine": platform.machine(),
        "git_sha": _git_sha(),
    }


@dataclass
class RunManifest:
    """Provenance record of one pipeline or bench invocation.

    Attributes
    ----------
    kind:
        ``"pipeline"`` or ``"bench"``.
    name:
        Human label, e.g. ``"degree_discounted.mlrmcl"``.
    created_unix:
        Wall-clock creation time (``time.time()``); pass explicitly
        for deterministic manifests in tests.
    config:
        The invocation's parameters (symmetrization, clusterer,
        threshold, mode, sweep sizes, ...).
    dataset:
        :func:`fingerprint_graph` output (or a generator description
        for synthetic sweeps).
    environment:
        :func:`collect_environment` output.
    seed:
        Random seed, when the invocation had one.
    warnings:
        Structured warning records (``stage``/``code``/``message``).
    trace:
        Span forest (list of :meth:`~repro.obs.trace.Span.as_dict`
        trees); empty when the run was not traced.
    metrics:
        :meth:`~repro.obs.metrics.MetricsRegistry.as_dict` snapshot.
    cache:
        Artifact-cache provenance (``enabled``, ``hits``, ``misses``,
        ``artifact_keys``) when the run consulted the
        content-addressed cache; empty otherwise (and for v1
        manifests, which predate the cache).
    fault_tolerance:
        Fault-tolerance provenance (``journal`` path and ``run_id``
        when the run was journaled, ``stage_retries``,
        ``stages_resumed``, ``resumed`` — whether the run replayed a
        prior journal); empty for unjournaled runs and for v1/v2
        manifests, which predate the runtime.
    tuning:
        Autotuning provenance (``enabled``, decision ``source``,
        ``chosen`` vs ``default`` plan knobs, predicted stage
        seconds, the graph features the planner saw) when the run
        executed with ``tuning="auto"``; ``{"enabled": False}`` for
        untuned pipeline runs and empty for v1–v3 manifests, which
        predate the autotuner (:mod:`repro.tune`).
    timings:
        Headline stage durations in seconds.
    job:
        Service-daemon provenance (``job_id``, ``key``, the
        ``clients`` that joined the job, and the ``worker_mode`` —
        ``"thread"`` for in-process execution, ``"process"`` when a
        supervised worker ran the job) when the run executed as a
        ``repro serve`` job; empty — and omitted from the serialized
        record — for library and CLI runs, so pre-service manifests
        are byte-identical.
    """

    kind: str
    name: str
    created_unix: float = field(default_factory=time.time)
    config: dict[str, Any] = field(default_factory=dict)
    dataset: dict[str, Any] = field(default_factory=dict)
    environment: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    warnings: list[dict[str, str]] = field(default_factory=list)
    trace: list[dict[str, Any]] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)
    cache: dict[str, Any] = field(default_factory=dict)
    fault_tolerance: dict[str, Any] = field(default_factory=dict)
    tuning: dict[str, Any] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    job: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable view with the schema marker first."""
        payload = {
            "schema": MANIFEST_SCHEMA,
            "kind": self.kind,
            "name": self.name,
            "created_unix": self.created_unix,
            "config": self.config,
            "dataset": self.dataset,
            "environment": self.environment,
            "seed": self.seed,
            "warnings": self.warnings,
            "trace": self.trace,
            "metrics": self.metrics,
            "cache": self.cache,
            "fault_tolerance": self.fault_tolerance,
            "tuning": self.tuning,
            "timings": self.timings,
        }
        if self.job:
            payload["job"] = self.job
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest from :meth:`as_dict` output.

        Accepts every schema in :data:`SUPPORTED_SCHEMAS`; v1 lines
        (written before the artifact cache existed) load with an
        empty ``cache`` section.
        """
        schema = payload.get("schema")
        if schema not in SUPPORTED_SCHEMAS:
            raise ReproError(
                f"unsupported manifest schema {schema!r}; "
                f"expected one of {SUPPORTED_SCHEMAS}"
            )
        return cls(
            kind=payload["kind"],
            name=payload["name"],
            created_unix=float(payload.get("created_unix", 0.0)),
            config=dict(payload.get("config", {})),
            dataset=dict(payload.get("dataset", {})),
            environment=dict(payload.get("environment", {})),
            seed=payload.get("seed"),
            warnings=list(payload.get("warnings", [])),
            trace=list(payload.get("trace", [])),
            metrics=dict(payload.get("metrics", {})),
            cache=dict(payload.get("cache", {})),
            fault_tolerance=dict(
                payload.get("fault_tolerance", {})
            ),
            tuning=dict(payload.get("tuning", {})),
            timings=dict(payload.get("timings", {})),
            job=dict(payload.get("job", {})),
        )

    def flat_metrics(self) -> dict[str, float]:
        """Counters and gauges flattened to ``{name: value}``."""
        out: dict[str, float] = {}
        for kind in ("counters", "gauges"):
            for name, value in self.metrics.get(kind, {}).items():
                out[name] = float(value)
        return out

    def total_seconds(self) -> float:
        """Sum of the headline timings."""
        return float(sum(self.timings.values()))

    def summary(self) -> str:
        """One-line description for run-log listings."""
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(self.created_unix)
        )
        n_spans = sum(_count_spans(node) for node in self.trace)
        return (
            f"{stamp}  {self.kind:<8} {self.name:<32} "
            f"{self.total_seconds():8.3f}s  spans={n_spans:<4d} "
            f"warnings={len(self.warnings)}"
        )


def _count_spans(node: dict[str, Any]) -> int:
    return 1 + sum(_count_spans(c) for c in node.get("children", []))


def append_manifest(
    manifest: RunManifest, path: str | Path
) -> Path:
    """Append ``manifest`` as one JSONL line to the run log at ``path``."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("a") as handle:
        handle.write(json.dumps(manifest.as_dict()) + "\n")
    return out


def read_manifests(path: str | Path) -> list[RunManifest]:
    """Load every manifest from a JSONL run log."""
    source = Path(path)
    if not source.exists():
        raise ReproError(f"run log not found: {source}")
    manifests: list[RunManifest] = []
    for lineno, line in enumerate(source.read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            manifests.append(RunManifest.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError) as exc:
            raise ReproError(
                f"{source}:{lineno}: malformed manifest line: {exc}"
            ) from exc
    return manifests


# ---------------------------------------------------------------------------
# Diffing


def _dict_changes(
    a: dict[str, Any], b: dict[str, Any]
) -> dict[str, list[Any]]:
    """Keys whose values differ, mapped to ``[a_value, b_value]``."""
    changes: dict[str, list[Any]] = {}
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            changes[key] = [va, vb]
    return changes


def diff_manifests(
    a: RunManifest, b: RunManifest
) -> dict[str, Any]:
    """Structured comparison of two runs.

    Returns a dict with ``config``/``dataset``/``environment`` change
    maps (``{key: [a, b]}``), per-metric deltas, per-timing deltas and
    the warning codes that appeared or disappeared between the runs.
    """
    metrics_a, metrics_b = a.flat_metrics(), b.flat_metrics()
    metric_deltas: dict[str, dict[str, float | None]] = {}
    for name in sorted(set(metrics_a) | set(metrics_b)):
        va, vb = metrics_a.get(name), metrics_b.get(name)
        if va == vb:
            continue
        metric_deltas[name] = {
            "a": va,
            "b": vb,
            "delta": (vb - va) if va is not None and vb is not None
            else None,
        }
    timing_deltas: dict[str, dict[str, float | None]] = {}
    for name in sorted(set(a.timings) | set(b.timings)):
        ta, tb = a.timings.get(name), b.timings.get(name)
        if ta == tb:
            continue
        timing_deltas[name] = {
            "a": ta,
            "b": tb,
            "delta": (tb - ta) if ta is not None and tb is not None
            else None,
        }
    codes_a = {w.get("code") for w in a.warnings}
    codes_b = {w.get("code") for w in b.warnings}
    return {
        "runs": [a.name, b.name],
        "config": _dict_changes(a.config, b.config),
        "dataset": _dict_changes(a.dataset, b.dataset),
        "environment": _dict_changes(a.environment, b.environment),
        "cache": _dict_changes(a.cache, b.cache),
        "fault_tolerance": _dict_changes(
            a.fault_tolerance, b.fault_tolerance
        ),
        "tuning": _dict_changes(a.tuning, b.tuning),
        "metrics": metric_deltas,
        "timings": timing_deltas,
        "warnings": {
            "added": sorted(c for c in codes_b - codes_a if c),
            "removed": sorted(c for c in codes_a - codes_b if c),
        },
    }


def format_diff(diff: dict[str, Any]) -> str:
    """Human-readable rendering of :func:`diff_manifests` output."""
    lines = [f"diff: {diff['runs'][0]}  vs  {diff['runs'][1]}"]
    for section in (
        "config",
        "dataset",
        "environment",
        "cache",
        "fault_tolerance",
        "tuning",
    ):
        changes = diff.get(section)
        if not changes:
            continue
        lines.append(f"{section}:")
        for key, (va, vb) in changes.items():
            lines.append(f"  {key}: {va!r} -> {vb!r}")
    if diff["timings"]:
        lines.append("timings:")
        for name, entry in diff["timings"].items():
            delta = entry["delta"]
            arrow = f"{delta:+.3f}s" if delta is not None else "n/a"
            lines.append(
                f"  {name}: {entry['a']} -> {entry['b']} ({arrow})"
            )
    if diff["metrics"]:
        lines.append("metrics:")
        for name, entry in diff["metrics"].items():
            delta = entry["delta"]
            arrow = f"{delta:+g}" if delta is not None else "n/a"
            lines.append(
                f"  {name}: {entry['a']} -> {entry['b']} ({arrow})"
            )
    warn = diff["warnings"]
    if warn["added"] or warn["removed"]:
        lines.append("warnings:")
        for code in warn["added"]:
            lines.append(f"  + {code}")
        for code in warn["removed"]:
            lines.append(f"  - {code}")
    if len(lines) == 1:
        lines.append("(no differences)")
    return "\n".join(lines)
