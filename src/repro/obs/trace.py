"""Hierarchical tracing: span trees for pipeline runs.

A :class:`Span` is one timed region of a run — a pipeline stage, a
symmetrization, a single gram block inside the all-pairs engine. Spans
nest, forming a tree (``pipeline`` → ``symmetrize`` →
``gram_block[512]``), and each records wall-clock time, CPU time,
optional memory deltas and free-form numeric/string attributes.

Like the :mod:`repro.perf` stage recorder, tracing is *ambient*:
library code calls :func:`span` unconditionally, and without an
installed :class:`Tracer` the call returns a shared no-op span — one
contextvar read, zero allocations — so instrumented hot paths cost
nothing when tracing is off. Install a tracer with :func:`tracing`::

    with tracing() as tracer:
        result = pipeline.run(graph)
    print(tracer.report())
    Path("trace.json").write_text(json.dumps(tracer.to_chrome_trace()))

The Chrome ``trace_event`` export opens directly in ``chrome://tracing``
or https://ui.perfetto.dev as a flamegraph. See
``docs/observability.md``.
"""

from __future__ import annotations

import contextlib
import contextvars
import resource
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "Span",
    "Tracer",
    "tracing",
    "current_tracer",
    "span",
    "to_chrome_trace",
    "spans_from_chrome_trace",
]


@dataclass
class Span:
    """One timed region of a run, possibly with nested child spans.

    Attributes
    ----------
    name:
        Region identifier (e.g. ``"symmetrize:degree_discounted"``,
        ``"gram_block[512]"``). Paths are implied by nesting, not
        encoded in the name.
    start:
        Start time in seconds relative to the tracer's epoch (the
        moment the tracer was created), so sibling ordering and Chrome
        trace timestamps are meaningful.
    wall_seconds, cpu_seconds:
        Elapsed wall-clock and process CPU time of the region.
    mem_alloc_bytes:
        Net bytes allocated during the span (``tracemalloc``), only
        when the tracer was created with ``memory=True``.
    rss_peak_delta_kb:
        Growth of the process peak RSS (``ru_maxrss``) across the
        span, only when ``memory=True``. Usually 0 for small spans —
        peak RSS is monotonic — but pinpoints which stage pushed the
        high-water mark.
    attributes:
        Free-form numeric/string annotations (nnz counts, edge counts,
        backend names).
    children:
        Nested spans, in start order.
    """

    name: str
    start: float = 0.0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    mem_alloc_bytes: int | None = None
    rss_peak_delta_kb: int | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def set(self, **attributes: Any) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attributes.update(attributes)

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with ``name``, depth-first."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def depth(self) -> int:
        """Number of nesting levels rooted here (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable view (recursive)."""
        out: dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "attributes": dict(self.attributes),
            "children": [c.as_dict() for c in self.children],
        }
        if self.mem_alloc_bytes is not None:
            out["mem_alloc_bytes"] = self.mem_alloc_bytes
        if self.rss_peak_delta_kb is not None:
            out["rss_peak_delta_kb"] = self.rss_peak_delta_kb
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`as_dict` output."""
        return cls(
            name=payload["name"],
            start=float(payload.get("start", 0.0)),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            cpu_seconds=float(payload.get("cpu_seconds", 0.0)),
            mem_alloc_bytes=payload.get("mem_alloc_bytes"),
            rss_peak_delta_kb=payload.get("rss_peak_delta_kb"),
            attributes=dict(payload.get("attributes", {})),
            children=[
                cls.from_dict(c) for c in payload.get("children", [])
            ],
        )


class _NullSpan:
    """Shared do-nothing span returned when tracing is disabled.

    A singleton: :func:`span` without an active tracer returns this
    exact object, so the disabled path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attributes: Any) -> None:
        """No-op."""


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of :class:`Span` trees for one run.

    Parameters
    ----------
    memory:
        Also record per-span memory deltas. Starts ``tracemalloc``
        (noticeable overhead on allocation-heavy code) for net
        allocated bytes and samples ``ru_maxrss`` for peak-RSS growth,
        so it is opt-in.
    """

    def __init__(self, memory: bool = False) -> None:
        self.memory = bool(memory)
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._epoch = time.perf_counter()
        self._started_tracemalloc = False

    # -- lifecycle -----------------------------------------------------

    def _enable_memory(self) -> None:
        if self.memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    def _disable_memory(self) -> None:
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False

    # -- span recording ------------------------------------------------

    @contextlib.contextmanager
    def start_span(
        self, name: str, attributes: dict[str, Any] | None = None
    ) -> Iterator[Span]:
        """Open a span as the child of the innermost open span."""
        # One timestamp serves as both the start and the wall-clock
        # origin, so start + wall_seconds is exactly the exit time and
        # a child interval can never leak past its parent's — the
        # Chrome-trace round-trip recovers nesting from containment.
        wall0 = time.perf_counter()
        node = Span(
            name=name,
            start=wall0 - self._epoch,
            attributes=dict(attributes) if attributes else {},
        )
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(
            node
        )
        self._stack.append(node)
        mem0 = rss0 = None
        if self.memory:
            if tracemalloc.is_tracing():
                mem0 = tracemalloc.get_traced_memory()[0]
            rss0 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        cpu0 = time.process_time()
        try:
            yield node
        finally:
            node.wall_seconds = time.perf_counter() - wall0
            node.cpu_seconds = time.process_time() - cpu0
            if mem0 is not None:
                node.mem_alloc_bytes = (
                    tracemalloc.get_traced_memory()[0] - mem0
                )
            if rss0 is not None:
                node.rss_peak_delta_kb = (
                    resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                    - rss0
                )
            self._stack.pop()

    # -- inspection ----------------------------------------------------

    def walk(self) -> Iterator[Span]:
        """Every recorded span, depth-first across all roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Span | None:
        """First span with ``name`` across all roots."""
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def max_depth(self) -> int:
        """Deepest nesting level across all roots (0 when empty)."""
        return max((root.depth() for root in self.roots), default=0)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the span forest."""
        return {
            "spans": [root.as_dict() for root in self.roots],
            "max_depth": self.max_depth(),
        }

    def to_chrome_trace(self) -> dict[str, Any]:
        """The span forest in Chrome ``trace_event`` format."""
        return to_chrome_trace(self.roots)

    def report(self, max_depth: int | None = None) -> str:
        """Indented plain-text rendering of the span forest."""
        lines: list[str] = []

        def visit(node: Span, indent: int) -> None:
            attrs = ", ".join(
                f"{k}={v}" for k, v in sorted(node.attributes.items())
            )
            suffix = f"  [{attrs}]" if attrs else ""
            extra = ""
            if node.mem_alloc_bytes is not None:
                extra = f"  mem={node.mem_alloc_bytes / 1e6:+.2f}MB"
            lines.append(
                f"{'  ' * indent}{node.name}  "
                f"{node.wall_seconds * 1e3:9.2f}ms"
                f"{extra}{suffix}"
            )
            if max_depth is None or indent + 1 < max_depth:
                for child in node.children:
                    visit(child, indent + 1)

        for root in self.roots:
            visit(root, 0)
        return "\n".join(lines) if lines else "(no spans recorded)"

    def __repr__(self) -> str:
        n = sum(1 for _ in self.walk())
        return f"Tracer(spans={n}, max_depth={self.max_depth()})"


_TRACER: contextvars.ContextVar[Tracer | None] = contextvars.ContextVar(
    "repro_tracer", default=None
)


def current_tracer() -> Tracer | None:
    """The ambient tracer, or ``None`` when tracing is disabled."""
    return _TRACER.get()


@contextlib.contextmanager
def tracing(
    tracer: Tracer | None = None, memory: bool = False
) -> Iterator[Tracer]:
    """Install ``tracer`` (or a fresh one) as the ambient tracer.

    Nested ``tracing`` blocks shadow the outer tracer; the outer one
    is restored on exit. ``memory=True`` is forwarded to the fresh
    tracer when none is supplied.
    """
    active = tracer if tracer is not None else Tracer(memory=memory)
    active._enable_memory()
    token = _TRACER.set(active)
    try:
        yield active
    finally:
        _TRACER.reset(token)
        active._disable_memory()


def span(name: str, **attributes: Any):
    """Open a span in the ambient tracer (shared no-op span otherwise).

    The hot-path contract: with no tracer installed this is one
    contextvar read returning a module-level singleton — zero
    allocations when called without keyword attributes. Prefer
    ``with span("x") as sp: sp.set(...)`` over ``span("x", k=v)`` in
    per-block loops so the disabled path stays allocation-free.
    """
    tracer = _TRACER.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.start_span(name, attributes or None)


# ---------------------------------------------------------------------------
# Chrome trace_event interchange


def to_chrome_trace(spans: list[Span]) -> dict[str, Any]:
    """Render a span forest as a Chrome ``trace_event`` JSON object.

    Every span becomes one complete (``"ph": "X"``) event with
    microsecond timestamps; ``chrome://tracing`` and Perfetto render
    the containment hierarchy as a flamegraph. Attributes, CPU time
    and memory deltas land in ``args``.
    """
    events: list[dict[str, Any]] = []

    def visit(node: Span) -> None:
        args: dict[str, Any] = dict(node.attributes)
        args["cpu_seconds"] = node.cpu_seconds
        if node.mem_alloc_bytes is not None:
            args["mem_alloc_bytes"] = node.mem_alloc_bytes
        if node.rss_peak_delta_kb is not None:
            args["rss_peak_delta_kb"] = node.rss_peak_delta_kb
        events.append(
            {
                "name": node.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(node.start * 1e6, 3),
                "dur": round(node.wall_seconds * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
        for child in node.children:
            visit(child)

    for root in spans:
        visit(root)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_from_chrome_trace(payload: dict[str, Any]) -> list[Span]:
    """Rebuild a span forest from :func:`to_chrome_trace` output.

    Nesting is recovered from interval containment (an event is a
    child of the innermost earlier event whose ``[ts, ts + dur)``
    range contains it), which is exactly how the trace viewers stack
    the events — so export → import round-trips the tree shape.
    """
    events = sorted(
        payload.get("traceEvents", []),
        key=lambda e: (e["ts"], -e["dur"]),
    )
    roots: list[Span] = []
    stack: list[tuple[float, Span]] = []  # (end ts, span)
    for event in events:
        args = dict(event.get("args", {}))
        node = Span(
            name=event["name"],
            start=event["ts"] / 1e6,
            wall_seconds=event["dur"] / 1e6,
            cpu_seconds=float(args.pop("cpu_seconds", 0.0)),
            mem_alloc_bytes=args.pop("mem_alloc_bytes", None),
            rss_peak_delta_kb=args.pop("rss_peak_delta_kb", None),
            attributes=args,
        )
        end = event["ts"] + event["dur"]
        # Pop completed enclosing intervals; a tiny slack absorbs the
        # microsecond rounding of the export.
        while stack and event["ts"] >= stack[-1][0] - 1e-3:
            stack.pop()
        (stack[-1][1].children if stack else roots).append(node)
        stack.append((end, node))
    return roots
