"""Sparse linear-algebra helpers shared across the library.

- :mod:`~repro.linalg.allpairs` — threshold-aware all-pairs similarity
  (§3.6): the blocked vectorized engine and the pure-Python reference
  oracle behind the degree-discounted fast path.
- :mod:`~repro.linalg.mmcsr` — out-of-core CSR storage: chunk-built,
  memory-mapped matrices that the sharded kernels and streaming graph
  readers use to reach paper-scale graphs without RAM-resident edges.
- :mod:`~repro.linalg.pagerank` — transition matrices and stationary
  distributions of random walks (used by the Random-walk symmetrization
  and the directed spectral baselines).
- :mod:`~repro.linalg.sparse_utils` — row normalization, degree scaling,
  pruning and top-k extraction on CSR matrices.
"""

from repro.linalg.allpairs import thresholded_gram_matrix
from repro.linalg.mmcsr import MmapCSR, MmapCSRBuilder, choose_storage
from repro.linalg.pagerank import (
    pagerank,
    stationary_distribution,
    transition_matrix,
)
from repro.linalg.sparse_utils import (
    degree_scale,
    prune_matrix,
    row_normalize,
    top_k_entries,
)

__all__ = [
    "thresholded_gram_matrix",
    "MmapCSR",
    "MmapCSRBuilder",
    "choose_storage",
    "pagerank",
    "stationary_distribution",
    "transition_matrix",
    "row_normalize",
    "degree_scale",
    "prune_matrix",
    "top_k_entries",
]
