"""Out-of-core CSR storage: memory-mapped matrices built in chunks.

The paper's scalability experiments (fig. 8–9) run on graphs —
Flickr at 1.9M nodes / 22.6M edges, LiveJournal at 5.3M / 77.4M —
whose edge lists do not comfortably fit in RAM next to the working
set of the symmetrization kernels. This module provides the storage
layer that lets the rest of the library stream such graphs from disk:

- :class:`MmapCSR` — a read-only CSR matrix whose ``indptr`` /
  ``indices`` / ``data`` arrays live in three ``.npy`` files opened
  with ``numpy.load(mmap_mode="r")``. Row windows materialize as
  ordinary :class:`scipy.sparse.csr_array` views over the mapped
  buffers, so kernels touch only the pages of the rows they read.
- :class:`MmapCSRBuilder` — an append-only builder that accepts edge
  chunks of any size, spills them to scratch files, and finalizes
  into a canonical (sorted, duplicate-summed) store using O(chunk +
  n_rows) resident memory. The finished store appears atomically:
  everything is written under a ``*.tmp-<pid>`` scratch directory
  and published with a single ``os.replace``, so a crash mid-build
  leaves no partially-written store behind.

Store layout (``<dir>/`` after :meth:`MmapCSRBuilder.finalize`)::

    meta.json     shape, nnz, dtypes — written last, the commit point
    indptr.npy    int32/int64, length n_rows + 1
    indices.npy   int32/int64, capacity >= nnz (meta nnz is canonical)
    data.npy      float64 (or requested dtype), same capacity

``indices.npy`` / ``data.npy`` may carry trailing capacity beyond
``nnz`` when duplicate edges were merged during the build; readers
must slice to ``meta["nnz"]``, which :meth:`MmapCSR.open` does.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from collections.abc import Iterator
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.exceptions import StorageError

__all__ = [
    "MmapCSR",
    "MmapCSRBuilder",
    "DEFAULT_CHUNK_EDGES",
    "DEFAULT_IN_CORE_BUDGET_BYTES",
    "choose_storage",
]

#: Default edge-chunk size for streaming builds: ~1.5M edges keeps the
#: resident triple buffers near 36 MB while amortizing spill overhead.
DEFAULT_CHUNK_EDGES = 1 << 20

#: Resident-memory budget :func:`choose_storage` plans against — the
#: same 2 GiB high-water mark the scale bench's regression floor
#: enforces (:data:`repro.perf.scale_bench.MAX_PEAK_RSS_BYTES`).
DEFAULT_IN_CORE_BUDGET_BYTES = 2 * 1024**3

#: Working-set multiplier over the raw CSR bytes: the in-core
#: degree-discounted product holds the scaled matrix, its transpose
#: and the gram output block simultaneously, plus scipy scratch.
_IN_CORE_WORKING_FACTOR = 6


def choose_storage(
    n_nodes: int,
    nnz: int,
    budget_bytes: int | None = None,
) -> str:
    """``"in_core"`` or ``"mmcsr"`` for a graph of this shape.

    Estimates the resident working set of the in-core symmetrize
    path (CSR arrays times :data:`_IN_CORE_WORKING_FACTOR`) and
    recommends the out-of-core store when it would blow the budget.
    This is the storage half of the autotuning planner
    (:mod:`repro.tune.planner`); it lives here so the estimate sits
    next to the store whose economics it encodes.
    """
    if budget_bytes is None:
        budget_bytes = DEFAULT_IN_CORE_BUDGET_BYTES
    index_bytes = _index_dtype(max(n_nodes, 1), max(nnz, 1)).itemsize
    csr_bytes = nnz * (8 + index_bytes) + (n_nodes + 1) * index_bytes
    working = csr_bytes * _IN_CORE_WORKING_FACTOR
    return "mmcsr" if working > budget_bytes else "in_core"

_META_NAME = "meta.json"
_FORMAT = "mmcsr/v1"
_INT32_MAX = np.iinfo(np.int32).max


def _index_dtype(n_cols: int, nnz: int) -> np.dtype:
    """int32 when both column ids and indptr offsets fit, else int64."""
    if n_cols <= _INT32_MAX and nnz <= _INT32_MAX:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


class MmapCSR:
    """A read-only CSR matrix stored as three memory-mapped ``.npy``
    files plus a ``meta.json`` manifest.

    Instances are cheap handles: opening maps the files lazily (the
    OS pages data in on access) and pickles as just the directory
    path, so worker processes can be handed a store for the cost of a
    short string and re-open it locally.

    Examples
    --------
    >>> import scipy.sparse as sp, tempfile, os
    >>> m = sp.random_array((50, 40), density=0.1, rng=7).tocsr()
    >>> d = os.path.join(tempfile.mkdtemp(), "m")
    >>> store = MmapCSR.from_scipy(m, d)
    >>> (store.to_scipy() != m.astype(store.dtype)).nnz
    0
    >>> store.to_scipy(rows=(10, 20)).shape
    (10, 40)
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        shape: tuple[int, int],
        nnz: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        meta: dict,
    ) -> None:
        self.directory = Path(directory)
        self.shape = shape
        self.nnz = nnz
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.meta = meta

    # -- opening ---------------------------------------------------

    @classmethod
    def open(cls, directory: str | Path) -> MmapCSR:
        """Open an existing store, validating its manifest.

        Raises :class:`~repro.exceptions.StorageError` if the
        directory is missing, incomplete (e.g. a crashed build's
        scratch dir), or inconsistent with its arrays.
        """
        directory = Path(directory)
        meta_path = directory / _META_NAME
        if not meta_path.is_file():
            raise StorageError(
                f"{directory}: not an mmcsr store (missing {_META_NAME})"
            )
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError) as exc:
            raise StorageError(
                f"{meta_path}: unreadable store manifest: {exc}"
            ) from exc
        if meta.get("format") != _FORMAT:
            raise StorageError(
                f"{directory}: unsupported store format "
                f"{meta.get('format')!r} (expected {_FORMAT!r})"
            )
        try:
            n_rows, n_cols = (int(x) for x in meta["shape"])
            nnz = int(meta["nnz"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(
                f"{directory}: malformed store manifest: {exc}"
            ) from exc
        arrays = {}
        for name in ("indptr", "indices", "data"):
            path = directory / f"{name}.npy"
            try:
                arrays[name] = np.load(path, mmap_mode="r")
            except (OSError, ValueError) as exc:
                raise StorageError(
                    f"{path}: unreadable store array: {exc}"
                ) from exc
        if arrays["indptr"].shape != (n_rows + 1,):
            raise StorageError(
                f"{directory}: indptr length "
                f"{arrays['indptr'].shape[0]} != n_rows + 1 "
                f"({n_rows + 1})"
            )
        for name in ("indices", "data"):
            if arrays[name].shape[0] < nnz:
                raise StorageError(
                    f"{directory}: {name} capacity "
                    f"{arrays[name].shape[0]} < nnz {nnz}"
                )
        return cls(
            directory,
            shape=(n_rows, n_cols),
            nnz=nnz,
            indptr=arrays["indptr"],
            indices=arrays["indices"][:nnz],
            data=arrays["data"][:nnz],
            meta=meta,
        )

    @classmethod
    def from_scipy(
        cls, matrix: sp.csr_array, directory: str | Path
    ) -> MmapCSR:
        """Persist an in-RAM CSR matrix as a store (atomic publish)."""
        csr = sp.csr_array(matrix).tocsr()
        csr.sum_duplicates()
        csr.sort_indices()
        n_rows, n_cols = csr.shape
        idx_dtype = _index_dtype(n_cols, csr.nnz)
        directory = Path(directory)
        tmp = _scratch_dir(directory)
        try:
            np.save(tmp / "indptr.npy", csr.indptr.astype(idx_dtype))
            np.save(tmp / "indices.npy", csr.indices.astype(idx_dtype))
            np.save(tmp / "data.npy", np.asarray(csr.data, dtype=np.float64))
            _publish(tmp, directory, shape=(n_rows, n_cols), nnz=csr.nnz,
                     index_dtype=idx_dtype, n_duplicates=0)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return cls.open(directory)

    # -- views -----------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        """On-disk footprint of the three arrays (logical, not capacity)."""
        return int(
            self.indptr.nbytes + self.nnz * self.indices.dtype.itemsize
            + self.nnz * self.data.dtype.itemsize
        )

    def to_scipy(
        self, rows: tuple[int, int] | None = None
    ) -> sp.csr_array:
        """A :class:`scipy.sparse.csr_array` over the mapped buffers.

        With ``rows=(start, stop)`` only that half-open row window is
        wrapped: the index/data slices are zero-copy views into the
        maps and only the (small) window ``indptr`` is materialized.
        Without ``rows`` the whole matrix is wrapped; scipy keeps the
        buffers as views, so no dense copy is made either way.
        """
        if rows is None:
            start, stop = 0, self.shape[0]
        else:
            start, stop = rows
            if not 0 <= start <= stop <= self.shape[0]:
                raise StorageError(
                    f"row window {rows!r} out of range for "
                    f"{self.shape[0]} rows"
                )
        lo = int(self.indptr[start])
        hi = int(self.indptr[stop])
        window_indptr = np.asarray(
            self.indptr[start : stop + 1], dtype=self.indptr.dtype
        ) - self.indptr[start]
        return sp.csr_array(
            (
                self.data[lo:hi],
                self.indices[lo:hi],
                window_indptr,
            ),
            shape=(stop - start, self.shape[1]),
        )

    def row_blocks(
        self, block_size: int
    ) -> Iterator[tuple[int, int, sp.csr_array]]:
        """Iterate ``(start, stop, window)`` over row blocks.

        Each ``window`` is a :meth:`to_scipy` view of ``block_size``
        rows (the last block may be shorter), so a full scan touches
        each page of the store once, in order.
        """
        if block_size <= 0:
            raise StorageError("block_size must be positive")
        n_rows = self.shape[0]
        for start in range(0, n_rows, block_size):
            stop = min(start + block_size, n_rows)
            yield start, stop, self.to_scipy(rows=(start, stop))

    # -- pickling: workers re-open by path -------------------------

    def __reduce__(self):
        return (MmapCSR.open, (str(self.directory),))

    def __repr__(self) -> str:
        return (
            f"MmapCSR(shape={self.shape}, nnz={self.nnz}, "
            f"dtype={self.dtype}, directory={str(self.directory)!r})"
        )


def _scratch_dir(directory: Path) -> Path:
    """Create the build scratch dir next to the final location.

    Same filesystem as the destination so the final ``os.replace``
    is an atomic rename, never a copy.
    """
    directory.parent.mkdir(parents=True, exist_ok=True)
    tmp = directory.parent / f"{directory.name}.tmp-{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    return tmp


def _publish(
    tmp: Path,
    directory: Path,
    *,
    shape: tuple[int, int],
    nnz: int,
    index_dtype: np.dtype,
    n_duplicates: int,
) -> None:
    """Write the manifest and atomically rename scratch -> final.

    ``meta.json`` is the commit record: it is written (and fsynced)
    before the rename, so a store directory either does not exist or
    is complete. An existing destination is replaced.
    """
    meta = {
        "format": _FORMAT,
        "shape": [int(shape[0]), int(shape[1])],
        "nnz": int(nnz),
        "dtype": "float64",
        "index_dtype": np.dtype(index_dtype).name,
        "n_duplicates_merged": int(n_duplicates),
    }
    meta_path = tmp / _META_NAME
    with meta_path.open("w") as f:
        json.dump(meta, f, indent=2)
        f.flush()
        os.fsync(f.fileno())
    if directory.exists():
        shutil.rmtree(directory)
    os.replace(tmp, directory)


class MmapCSRBuilder:
    """Stream edge chunks to disk and finalize an :class:`MmapCSR`.

    The build is three passes, none of which holds more than one
    chunk (plus O(n_rows) bookkeeping) in RAM:

    1. :meth:`add_chunk` spills each ``(rows, cols, vals)`` triple to
       a scratch ``.npz`` and accumulates per-row edge counts.
    2. :meth:`finalize` turns the counts into a raw ``indptr``,
       then scatters every spilled chunk into place in the
       ``indices`` / ``data`` memmaps using a per-row write cursor.
    3. A block-wise compaction pass sorts each row's columns and
       merges duplicate edges (weights summed, as
       :func:`~repro.graph.io.read_edge_list` documents) in place;
       the merged count is reported via :attr:`n_duplicates`.

    The finished store is published atomically (scratch dir +
    ``os.replace``); aborting — explicitly, via the context manager,
    or by crashing — leaves no partial store at the target path.

    Examples
    --------
    >>> import numpy as np, tempfile, os
    >>> d = os.path.join(tempfile.mkdtemp(), "g")
    >>> with MmapCSRBuilder(d, n_rows=3, n_cols=3) as b:
    ...     b.add_chunk([0, 2, 0], [1, 0, 1], [1.0, 1.0, 2.0])
    ...     store = b.finalize()
    >>> store.to_scipy().toarray()[0]  # duplicate (0, 1) summed
    array([0., 3., 0.])
    >>> b.n_duplicates
    1
    """

    def __init__(
        self,
        directory: str | Path,
        n_rows: int | None = None,
        n_cols: int | None = None,
        square: bool = False,
        block_rows: int = 65536,
    ) -> None:
        self.directory = Path(directory)
        self._declared_rows = n_rows
        self._declared_cols = n_cols
        #: With ``square=True`` and no declared dimensions, both are
        #: inferred as ``max(row id, col id) + 1`` — the adjacency
        #: convention, where an edge list's node universe spans both
        #: endpoint columns.
        self._square = bool(square)
        self._block_rows = int(block_rows)
        self._tmp = _scratch_dir(self.directory)
        self._chunks: list[Path] = []
        self._counts = np.zeros(1024, dtype=np.int64)
        self._max_row = -1
        self._max_col = -1
        self._nnz_raw = 0
        self._finalized = False
        #: Number of duplicate (row, col) entries merged by finalize.
        self.n_duplicates = 0

    # -- pass 1: spill ---------------------------------------------

    def add_chunk(self, rows, cols, vals) -> None:
        """Append a chunk of COO triples (any size, any row order)."""
        if self._finalized:
            raise StorageError("builder already finalized")
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        vals = np.asarray(vals, dtype=np.float64).ravel()
        if not (rows.size == cols.size == vals.size):
            raise StorageError(
                "rows/cols/vals length mismatch: "
                f"{rows.size}/{cols.size}/{vals.size}"
            )
        if rows.size == 0:
            return
        if rows.min() < 0 or cols.min() < 0:
            raise StorageError("negative node id in edge chunk")
        self._max_row = max(self._max_row, int(rows.max()))
        self._max_col = max(self._max_col, int(cols.max()))
        for name, limit in (
            ("row", self._declared_rows),
            ("col", self._declared_cols),
        ):
            observed = self._max_row if name == "row" else self._max_col
            if limit is not None and observed >= limit:
                raise StorageError(
                    f"{name} id {observed} out of range for declared "
                    f"{'n_rows' if name == 'row' else 'n_cols'}={limit}"
                )
        if self._max_row >= self._counts.size:
            grown = np.zeros(
                max(self._counts.size * 2, self._max_row + 1),
                dtype=np.int64,
            )
            grown[: self._counts.size] = self._counts
            self._counts = grown
        np.add.at(self._counts, rows, 1)
        path = self._tmp / f"chunk-{len(self._chunks):06d}.npz"
        np.savez(path, rows=rows, cols=cols, vals=vals)
        self._chunks.append(path)
        self._nnz_raw += rows.size

    # -- passes 2+3: scatter, compact, publish ---------------------

    def finalize(self) -> MmapCSR:
        """Assemble the canonical store and publish it atomically."""
        if self._finalized:
            raise StorageError("builder already finalized")
        if self._square and self._declared_rows is None:
            inferred = max(self._max_row, self._max_col) + 1
            n_rows = n_cols = max(inferred, 0)
        else:
            n_rows = (
                self._declared_rows
                if self._declared_rows is not None
                else self._max_row + 1
            )
            n_cols = (
                self._declared_cols
                if self._declared_cols is not None
                else max(self._max_col + 1, n_rows)
            )
            if self._square:
                n_cols = n_rows = max(n_rows, n_cols)
        n_rows = max(n_rows, 0)
        n_cols = max(n_cols, 0)
        counts = np.zeros(n_rows, dtype=np.int64)
        observed = min(n_rows, self._counts.size)
        counts[:observed] = self._counts[:observed]
        idx_dtype = _index_dtype(n_cols, self._nnz_raw)

        indptr_raw = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr_raw[1:])
        capacity = max(self._nnz_raw, 1)
        indices = np.lib.format.open_memmap(
            self._tmp / "indices.npy",
            mode="w+",
            dtype=idx_dtype,
            shape=(capacity,),
        )
        data = np.lib.format.open_memmap(
            self._tmp / "data.npy",
            mode="w+",
            dtype=np.float64,
            shape=(capacity,),
        )

        # Pass 2: scatter each spilled chunk into row order. The
        # cursor array tracks the next free slot per row; repeated
        # rows within a chunk get consecutive slots via their
        # occurrence index inside the (stably) row-sorted chunk.
        cursor = indptr_raw[:-1].copy()
        for path in self._chunks:
            with np.load(path) as chunk:
                rows = chunk["rows"]
                cols = chunk["cols"]
                vals = chunk["vals"]
            order = np.argsort(rows, kind="stable")
            r = rows[order]
            starts = np.flatnonzero(np.r_[True, r[1:] != r[:-1]])
            run_lengths = np.diff(np.r_[starts, r.size])
            within = np.arange(r.size) - np.repeat(starts, run_lengths)
            pos = cursor[r] + within
            indices[pos] = cols[order]
            data[pos] = vals[order]
            cursor[r[starts]] += run_lengths
            path.unlink()

        # Pass 3: block-wise compaction. Each block's slab is pulled
        # into RAM, rows are column-sorted, duplicates merged, and
        # the shrunk slab written back at a forward-only cursor
        # (wp <= the block's read offset, so in-place is safe).
        final_counts = np.zeros(n_rows, dtype=np.int64)
        wp = 0
        for r0 in range(0, n_rows, self._block_rows):
            r1 = min(r0 + self._block_rows, n_rows)
            lo, hi = int(indptr_raw[r0]), int(indptr_raw[r1])
            if lo == hi:
                continue
            slab_cols = np.asarray(indices[lo:hi], dtype=np.int64)
            slab_vals = np.array(data[lo:hi])
            rowids = np.repeat(
                np.arange(r0, r1, dtype=np.int64),
                np.diff(indptr_raw[r0 : r1 + 1]),
            )
            order = np.lexsort((slab_cols, rowids))
            rr = rowids[order]
            cc = slab_cols[order]
            keep = np.r_[
                True, (rr[1:] != rr[:-1]) | (cc[1:] != cc[:-1])
            ]
            group_starts = np.flatnonzero(keep)
            summed = np.add.reduceat(slab_vals[order], group_starts)
            k = group_starts.size
            self.n_duplicates += rr.size - k
            indices[wp : wp + k] = cc[group_starts].astype(idx_dtype)
            data[wp : wp + k] = summed
            final_counts[r0:r1] = np.bincount(
                rr[group_starts] - r0, minlength=r1 - r0
            )
            wp += k

        indices.flush()
        data.flush()
        del indices, data
        indptr = np.zeros(n_rows + 1, dtype=idx_dtype)
        np.cumsum(final_counts, out=indptr[1:])
        np.save(self._tmp / "indptr.npy", indptr)
        _publish(
            self._tmp,
            self.directory,
            shape=(n_rows, n_cols),
            nnz=wp,
            index_dtype=idx_dtype,
            n_duplicates=self.n_duplicates,
        )
        self._finalized = True
        return MmapCSR.open(self.directory)

    def abort(self) -> None:
        """Discard the scratch directory; the target path is untouched."""
        if not self._finalized:
            shutil.rmtree(self._tmp, ignore_errors=True)

    def __enter__(self) -> MmapCSRBuilder:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.abort()
