"""CSR matrix utilities: normalization, scaling, pruning, top-k.

These operations are the building blocks of the symmetrizations:
degree scaling implements the ``D^-alpha`` factors of Eq. 6–8, pruning
implements §3.5, and top-k extraction regenerates Table 5 (the
top-weighted edges of each symmetrized Wikipedia graph).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GraphError, SymmetrizationError

__all__ = [
    "TIE_RTOL",
    "row_normalize",
    "degree_scale",
    "degree_power",
    "prune_matrix",
    "top_k_entries",
    "sample_rows_similarity",
]

#: Relative tolerance for threshold comparisons: a value within
#: ``threshold * TIE_RTOL`` below the threshold counts as a tie and is
#: kept. Differently-ordered computations of the same mathematical
#: similarity drift by a few ULPs; without the tolerance the exact and
#: pruned all-pairs paths can disagree on edges that tie the threshold.
TIE_RTOL = 1e-12


def row_normalize(matrix: sp.csr_array) -> sp.csr_array:
    """Scale each row to sum to 1 (zero rows stay zero)."""
    csr = matrix.tocsr()
    sums = np.asarray(csr.sum(axis=1)).ravel()
    inv = np.divide(
        1.0, sums, out=np.zeros_like(sums), where=sums != 0
    )
    return (sp.diags_array(inv) @ csr).tocsr()


def degree_power(degrees: np.ndarray, exponent: float) -> np.ndarray:
    """Element-wise ``degrees ** -exponent`` with 0 ** -x defined as 0.

    This is the convention the degree-discounted symmetrization needs:
    a node with zero out-degree contributes nothing to out-link
    similarity, so its scaling factor is immaterial and set to zero to
    avoid division by zero.

    An ``exponent`` of 0 returns an indicator of non-zero degree (nodes
    with no links still must not contribute).
    """
    deg = np.asarray(degrees, dtype=np.float64)
    if np.any(deg < 0):
        raise SymmetrizationError("degrees must be non-negative")
    out = np.zeros_like(deg)
    nz = deg > 0
    out[nz] = deg[nz] ** (-exponent)
    return out


def degree_scale(
    matrix: sp.csr_array,
    row_factors: np.ndarray | None = None,
    col_factors: np.ndarray | None = None,
) -> sp.csr_array:
    """Compute ``diag(row_factors) @ M @ diag(col_factors)`` sparsely."""
    csr = matrix.tocsr()
    if row_factors is not None:
        row_factors = np.asarray(row_factors, dtype=np.float64)
        if row_factors.size != csr.shape[0]:
            raise GraphError("row_factors length mismatch")
        csr = sp.diags_array(row_factors).tocsr() @ csr
    if col_factors is not None:
        col_factors = np.asarray(col_factors, dtype=np.float64)
        if col_factors.size != csr.shape[1]:
            raise GraphError("col_factors length mismatch")
        csr = csr @ sp.diags_array(col_factors).tocsr()
    return csr.tocsr()


def prune_matrix(
    matrix: sp.csr_array,
    threshold: float,
    keep_diagonal: bool = False,
) -> sp.csr_array:
    """Drop entries with value strictly below ``threshold`` (§3.5).

    Values within a relative tolerance of :data:`TIE_RTOL` below the
    threshold count as ties and are kept, so float drift between
    differently-ordered computations of the same similarity cannot
    flip a keep/drop decision (the exact and §3.6 pruned paths must
    agree edge-for-edge).

    A threshold of 0 only removes explicit zeros. With
    ``keep_diagonal=True`` diagonal entries survive regardless of value
    (useful when self-similarities carry bookkeeping information).
    """
    if threshold < 0:
        raise SymmetrizationError("prune threshold must be >= 0")
    csr = matrix.tocsr().copy()
    if threshold == 0:
        csr.eliminate_zeros()
        return csr
    coo = csr.tocoo()
    keep = coo.data >= threshold * (1.0 - TIE_RTOL)
    if keep_diagonal:
        keep |= coo.row == coo.col
    pruned = sp.coo_array(
        (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=csr.shape
    ).tocsr()
    pruned.eliminate_zeros()
    return pruned


def top_k_entries(
    matrix: sp.csr_array,
    k: int,
    upper_triangle_only: bool = True,
    exclude_diagonal: bool = True,
) -> list[tuple[int, int, float]]:
    """The ``k`` largest entries of a sparse matrix as ``(i, j, value)``.

    With the defaults, symmetric matrices report each undirected edge
    once and self-similarities are skipped — the form of Table 5.
    Entries are returned in descending value order.
    """
    if k < 0:
        raise GraphError("k must be >= 0")
    coo = matrix.tocoo()
    mask = np.ones(coo.nnz, dtype=bool)
    if exclude_diagonal:
        mask &= coo.row != coo.col
    if upper_triangle_only:
        mask &= coo.row <= coo.col
    rows, cols, vals = coo.row[mask], coo.col[mask], coo.data[mask]
    if vals.size == 0 or k == 0:
        return []
    k = min(k, vals.size)
    top = np.argpartition(vals, -k)[-k:]
    order = top[np.argsort(vals[top])[::-1]]
    return [
        (int(rows[t]), int(cols[t]), float(vals[t])) for t in order
    ]


def sample_rows_similarity(
    matrix: sp.csr_array,
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Nonzero values from a random sample of rows of a matrix.

    This is the §5.3.1 threshold-selection primitive: "compute all the
    similarities corresponding to a small random sample of the nodes,
    and choose a prune threshold such that the average degree when this
    threshold is applied to the random sample approximates the final
    average degree that the user desires." The returned values are the
    sampled similarities; threshold selection on them lives in
    :func:`repro.symmetrize.pruning.choose_threshold_for_degree`.
    """
    csr = matrix.tocsr()
    n = csr.shape[0]
    if n == 0:
        return np.array([], dtype=np.float64)
    n_samples = min(max(1, n_samples), n)
    sample = rng.choice(n, size=n_samples, replace=False)
    chunks = [
        csr.data[csr.indptr[i]: csr.indptr[i + 1]] for i in sample
    ]
    if not chunks:
        return np.array([], dtype=np.float64)
    return np.concatenate(chunks) if chunks else np.array([])
