"""Threshold-aware all-pairs similarity search (§3.6).

The paper's complexity analysis points to Bayardo, Ma & Srikant
("Scaling up all pairs similarity search", WWW 2007) for "curtailing
similarity computations that will provably lead to similarities lower
than the prune threshold". This module implements that idea for the
dot-product similarities the symmetrizations need: given a sparse
row matrix ``R``, compute exactly the entries of ``R Rᵀ`` that are at
least ``threshold`` — *without* materializing the full product.

Both backends share the same prefix-filter pruning guarantee: a row's
*prefix* is the longest leading run of features whose maximum possible
contribution ``sum(prefix values * column max)`` stays below the
threshold, and only the complementary *suffix* is indexed. Any pair
reaching the threshold must then share at least one indexed suffix
feature of its earlier row, so probing the index yields a complete
candidate set; candidates are verified with exact dot products.

``backend="python"`` is the reference oracle: a row-at-a-time loop
over a ``dict[int, list[tuple]]`` inverted index with per-pair merge
joins, kept verbatim for differential testing.

``backend="vectorized"`` (default) is the production engine. It
exploits that the prefix boundaries depend only on the global column
maxima — not on processing order — so the whole suffix index ``I``
can be built upfront as flat NumPy arrays (one segmented-cumsum pass,
no Python loop). Rows are then processed in *blocks*:

1. **Candidate generation**: one sparse product
   ``block @ I[:end].T`` per block; its nonzero pattern, masked to
   strictly-earlier partners, is exactly the candidate set the
   sequential algorithm would probe.
2. **Batched verification**: candidate pairs are verified in batches
   with gathered sparse row selections and one elementwise
   multiply-and-row-sum per batch — no per-pair Python work.
3. Accepted triplets accumulate in growable NumPy buffers
   (:class:`_TripletBuffer`), doubled geometrically like a C++
   vector.

Blocks are independent, so an opt-in ``n_jobs`` fans them out over
worker processes (SciPy's sparse kernels hold the GIL, so threads
cannot overlap them) and merges the per-block triplets exactly;
environments that cannot fork fall back to the serial path. The
fan-out is *out-of-core*: the matrix and its suffix index are spilled
once to :class:`~repro.linalg.mmcsr.MmapCSR` stores and workers
receive only shard descriptors (store paths plus a chunk index — a
few hundred bytes), mapping the rows they need instead of unpickling
whole matrices; accepted triplets are spilled back as per-shard
artifacts the parent concatenates. With an ambient disk
:class:`~repro.engine.cache.ArtifactCache`, spills and finished
shards are content-addressed under ``<cache>/shards/`` and reused on
resume. Workers come from the ambient
:class:`~repro.engine.pool.WorkerPool` when one is installed (so a
sweep shares one pool across points), or a private pool otherwise.

:meth:`repro.symmetrize.DegreeDiscountedSymmetrization` exposes this
through ``apply_pruned`` using the factorizations
``B_d = Y Yᵀ`` with ``Y = Do^-α A Di^-β/2`` and
``C_d = Z Zᵀ`` with ``Z = Di^-β Aᵀ Do^-α/2``.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.engine.cache import current_cache
from repro.engine.chaos import chaos
from repro.engine.pool import WorkerPool, current_pool
from repro.exceptions import StorageError, SymmetrizationError
from repro.linalg.mmcsr import MmapCSR
from repro.obs.metrics import (
    metric_inc,
    metric_observe,
    metric_set,
    peak_rss_bytes,
)
from repro.obs.trace import span
from repro.perf.stopwatch import add_counters

__all__ = ["thresholded_gram_matrix", "BACKENDS"]

#: Recognized values for the ``backend`` argument.
BACKENDS = ("vectorized", "python")

#: Rows per block in the vectorized backend (amortizes sparse-product
#: setup while bounding the candidate matrix held at once).
DEFAULT_BLOCK_SIZE = 512

#: Candidate pairs verified per gather batch (bounds the memory of the
#: gathered row selections).
_VERIFY_BATCH = 1 << 16

#: Ceiling on the estimated candidate count materialized by one sparse
#: product. A row block's candidate matrix ``block @ suffixᵀ`` has one
#: entry per (row, earlier-row) pair sharing an indexed feature, which
#: is bounded by row count only through the *column* sizes of the
#: suffix index — a hub column shared by ten thousand rows makes a
#: 4096-row block emit tens of millions of pairs, and the COO
#: expansion of such a product transiently allocates gigabytes.
#: Blocks are therefore split into row spans whose estimated candidate
#: count (sum of suffix column sizes over each row's features, an
#: upper bound on the product nnz) stays under this ceiling, keeping
#: peak memory bounded by the ceiling rather than the graph's hub
#: structure. Output is unaffected: candidates are per-row, so the
#: split changes batching only.
_MAX_BLOCK_CANDIDATES = 4 << 20

#: Relative safety margin on the prefix boundary: the segmented cumsum
#: differs from the oracle's per-row accumulation in the last ULP, so
#: the vectorized backend indexes marginally *more* (never fewer)
#: features than the exact bound requires. Extra candidates are
#: harmless — verification is exact — while a missed index entry could
#: drop a qualifying pair.
_BOUNDARY_SLACK = 1e-9


# ---------------------------------------------------------------------------
# Shared validation


def _validated_csr(rows: sp.csr_array, threshold: float) -> sp.csr_array:
    if threshold <= 0:
        raise SymmetrizationError(
            "thresholded_gram_matrix needs a positive threshold; "
            "use a plain sparse product for threshold 0"
        )
    csr = rows.tocsr()
    if csr.nnz and csr.data.min() < 0:
        raise SymmetrizationError("row values must be non-negative")
    return csr


def _column_maxima(csr: sp.csr_array) -> np.ndarray:
    col_max = np.zeros(csr.shape[1])
    if csr.nnz:
        coo = csr.tocoo()
        np.maximum.at(col_max, coo.col, coo.data)
    return col_max


# ---------------------------------------------------------------------------
# Reference oracle: the row-at-a-time pure-Python engine


def _exact_dot(
    indices_a: np.ndarray,
    data_a: np.ndarray,
    indices_b: np.ndarray,
    data_b: np.ndarray,
) -> float:
    """Sparse dot product of two rows given as (sorted indices, data)."""
    total = 0.0
    ia = ib = 0
    na, nb = indices_a.size, indices_b.size
    while ia < na and ib < nb:
        ca, cb = indices_a[ia], indices_b[ib]
        if ca == cb:
            total += data_a[ia] * data_b[ib]
            ia += 1
            ib += 1
        elif ca < cb:
            ia += 1
        else:
            ib += 1
    return total


def _python_engine(
    csr: sp.csr_array, threshold: float, include_diagonal: bool
) -> sp.csr_array:
    """The WWW'07 inverted-index scheme, one row at a time."""
    n = csr.shape[0]
    col_max = _column_maxima(csr)

    # Inverted index: column -> list of (row id, value); rows append
    # only their suffix features (prefix filtering).
    index: dict[int, list[tuple[int, float]]] = {}
    stored_indices: list[np.ndarray] = []
    stored_data: list[np.ndarray] = []

    out_rows: list[int] = []
    out_cols: list[int] = []
    out_vals: list[float] = []
    n_candidates = 0

    for i in range(n):
        start, end = csr.indptr[i], csr.indptr[i + 1]
        cols_i = csr.indices[start:end]
        vals_i = csr.data[start:end]

        # --- candidate generation + verification --------------------
        candidates: set[int] = set()
        for c, v in zip(cols_i, vals_i):
            postings = index.get(int(c))
            if postings:
                for k, _ in postings:
                    candidates.add(k)
        n_candidates += len(candidates)
        for k in candidates:
            score = _exact_dot(
                cols_i, vals_i, stored_indices[k], stored_data[k]
            )
            if score >= threshold:
                out_rows.append(i)
                out_cols.append(k)
                out_vals.append(score)

        if include_diagonal:
            self_score = float((vals_i**2).sum())
            if self_score >= threshold:
                out_rows.append(i)
                out_cols.append(i)
                out_vals.append(self_score / 2.0)  # symmetrized later

        # --- prefix filtering: find the indexing boundary ------------
        # Largest prefix whose max possible contribution stays below
        # the threshold; only the remaining suffix is indexed.
        stored_indices.append(cols_i)
        stored_data.append(vals_i)
        bound = 0.0
        boundary = 0
        for pos in range(cols_i.size):
            bound += vals_i[pos] * col_max[cols_i[pos]]
            if bound >= threshold:
                boundary = pos
                break
        else:
            boundary = cols_i.size  # whole row is prunable: index none
        for pos in range(boundary, cols_i.size):
            index.setdefault(int(cols_i[pos]), []).append(
                (i, float(vals_i[pos]))
            )

    add_counters(
        "allpairs:python",
        rows=n,
        nnz_in=csr.nnz,
        candidate_pairs=n_candidates,
        kept_pairs=len(out_vals),
        pruned_pairs=n_candidates - len(out_vals),
    )
    metric_inc("allpairs_candidate_pairs_total", n_candidates)
    metric_inc(
        "allpairs_pairs_pruned_total", n_candidates - len(out_vals)
    )
    result = sp.coo_array(
        (out_vals, (out_rows, out_cols)), shape=(n, n)
    ).tocsr()
    return (result + result.T).tocsr()


# ---------------------------------------------------------------------------
# Production engine: blocked, vectorized, optionally parallel


class _TripletBuffer:
    """Growable (row, col, value) COO buffer backed by NumPy arrays.

    Capacity doubles geometrically, so ``extend`` is amortized O(1)
    per element — the array-native replacement for the three Python
    lists the oracle engine appends to.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self._rows = np.empty(capacity, dtype=np.int64)
        self._cols = np.empty(capacity, dtype=np.int64)
        self._vals = np.empty(capacity, dtype=np.float64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._rows.size
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_rows", "_cols", "_vals"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: self._size] = old[: self._size]
            setattr(self, name, grown)

    def extend(
        self, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
    ) -> None:
        """Append a batch of triplets."""
        count = rows.size
        if count == 0:
            return
        self._reserve(count)
        end = self._size + count
        self._rows[self._size : end] = rows
        self._cols[self._size : end] = cols
        self._vals[self._size : end] = vals
        self._size = end

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Views of the filled prefixes (no copy)."""
        return (
            self._rows[: self._size],
            self._cols[: self._size],
            self._vals[: self._size],
        )


def _suffix_index(
    csr: sp.csr_array, col_max: np.ndarray, threshold: float
) -> sp.csr_array:
    """The prefix-filtered inverted index as a sparse matrix.

    Row ``i`` of the result holds exactly the suffix features row
    ``i`` of ``csr`` would post to the inverted index: feature ``p``
    is indexed iff the running bound ``sum_{q<=p} value_q * col_max``
    has reached the threshold at ``p``. The bound is order-independent
    (it only needs the global column maxima), which is what lets the
    whole index be built upfront and the blocks processed in any
    order or in parallel.
    """
    n, d = csr.shape
    if csr.nnz == 0:
        return sp.csr_array((n, d))
    contrib = csr.data * col_max[csr.indices]
    running = np.cumsum(contrib)
    starts = csr.indptr[:-1]
    counts = np.diff(csr.indptr)
    # Per-row cumulative bound: global cumsum minus the total before
    # each row's first element.
    before = np.where(starts > 0, running[np.maximum(starts, 1) - 1], 0.0)
    row_bound = running - np.repeat(before, counts)
    keep = row_bound >= threshold * (1.0 - _BOUNDARY_SLACK)
    kept_per_row = np.bincount(
        np.repeat(np.arange(n), counts)[keep], minlength=n
    )
    indptr = np.concatenate(([0], np.cumsum(kept_per_row)))
    # The kept entries stay in row-major, column-sorted order, so the
    # CSR can be assembled directly without a COO sort.
    return sp.csr_array(
        (csr.data[keep], csr.indices[keep], indptr), shape=(n, d)
    )


def _verify_pairs(
    csr: sp.csr_array,
    left: np.ndarray,
    right: np.ndarray,
    threshold: float,
    out: _TripletBuffer,
) -> None:
    """Exact-score the candidate pairs ``(left[k], right[k])`` and keep
    those reaching the threshold — gathered row selections and one
    elementwise multiply + row-sum per batch."""
    for lo in range(0, left.size, _VERIFY_BATCH):
        sl = slice(lo, lo + _VERIFY_BATCH)
        li, ri = left[sl], right[sl]
        scores = np.asarray(
            csr[li].multiply(csr[ri]).sum(axis=1)
        ).ravel()
        keep = scores >= threshold
        out.extend(li[keep], ri[keep], scores[keep])


def _suffix_column_counts(suffix: sp.csr_array) -> np.ndarray:
    """Entries per column of the suffix index (the posting sizes)."""
    return np.bincount(
        suffix.indices, minlength=suffix.shape[1]
    ).astype(np.int64)


def _row_spans(
    block: sp.csr_array,
    colcount: np.ndarray,
    cap: int = _MAX_BLOCK_CANDIDATES,
) -> list[tuple[int, int]]:
    """Split a row block into spans of bounded candidate estimate.

    ``colcount`` holds the suffix index's per-column entry counts, so
    ``sum(colcount[features of row r])`` upper-bounds row ``r``'s
    share of the candidate product's nnz. Greedy accumulation keeps
    each span's estimate under ``cap`` (single rows may exceed it —
    a row's candidates cannot be subdivided). Spans cover the block's
    rows exactly once, in order.
    """
    n_rows = block.shape[0]
    entry_cum = np.concatenate(
        ([0], np.cumsum(colcount[block.indices], dtype=np.int64))
    )
    # Cumulative estimate by row boundary: row_cum[i] covers rows < i.
    row_cum = entry_cum[block.indptr]
    spans: list[tuple[int, int]] = []
    a = 0
    while a < n_rows:
        b = int(
            np.searchsorted(row_cum, row_cum[a] + cap, side="right") - 1
        )
        b = max(b, a + 1)
        spans.append((a, min(b, n_rows)))
        a = b
    return spans


def _candidate_pairs(
    block: sp.csr_array,
    suffix_window: sp.csr_array,
    start: int,
    colcount: np.ndarray,
):
    """Yield ``(left, right)`` candidate-pair arrays for one block.

    The nonzeros of ``block @ suffix_windowᵀ`` are the pairs sharing
    an indexed feature; partners are restricted to strictly-earlier
    rows, which reproduces the sequential probe order exactly. The
    product is materialized one bounded row span at a time (see
    :data:`_MAX_BLOCK_CANDIDATES`), so peak memory tracks the span
    ceiling, not the hub structure of the matrix.
    """
    suffix_t = suffix_window.T
    for a, b in _row_spans(block, colcount):
        cand = (block[a:b] @ suffix_t).tocoo()
        left = cand.row.astype(np.int64) + start + a
        right = cand.col.astype(np.int64)
        earlier = right < left
        yield left[earlier], right[earlier]


def _process_blocks(
    csr: sp.csr_array,
    suffix: sp.csr_array,
    threshold: float,
    block_starts: list[int],
    block_size: int,
) -> tuple[_TripletBuffer, int]:
    """Run candidate generation + verification for a run of blocks.

    Returns the accepted triplets and the number of candidate pairs
    generated (for the perf counters). Safe to call concurrently: it
    only reads ``csr``/``suffix``.
    """
    out = _TripletBuffer()
    n_candidates = 0
    colcount = _suffix_column_counts(suffix)
    for start in block_starts:
        end = min(start + block_size, csr.shape[0])
        block = csr[start:end]
        if block.nnz == 0:
            continue
        with span(f"gram_block[{start}]") as sp_:
            block_candidates = 0
            kept_before = len(out)
            for left, right in _candidate_pairs(
                block, suffix[:end], start, colcount
            ):
                block_candidates += left.size
                _verify_pairs(csr, left, right, threshold, out)
            n_candidates += block_candidates
            sp_.set(
                rows=end - start,
                candidate_pairs=block_candidates,
                kept_pairs=len(out) - kept_before,
            )
            metric_observe("gram_block_candidates", block_candidates)
    return out, n_candidates


def _chunk_starts(
    n_rows: int, block_size: int, chunk_index: int, n_chunks: int
) -> list[int]:
    """The block starts of one worker chunk, derived from four ints.

    Workers receive ``(chunk_index, n_chunks)`` instead of an explicit
    start list so the pickled payload stays O(1) regardless of graph
    size; chunks interleave (``starts[w::n_chunks]``) to balance the
    denser early blocks (which face fewer earlier partners) across
    workers, exactly as the in-RAM fan-out always has.
    """
    return list(range(0, n_rows, block_size))[chunk_index::n_chunks]


def _content_key(
    csr: sp.csr_array, threshold: float, block_size: int, n_chunks: int
) -> str:
    """Content address of a shard scratch dir: hash of exact inputs.

    ``n_chunks`` is part of the key because shard artifacts are per
    chunk of a specific partition — a run with a different worker
    count must not adopt another partition's shards.
    """
    digest = hashlib.sha256()
    digest.update(np.asarray(csr.shape, dtype=np.int64).tobytes())
    digest.update(np.float64(threshold).tobytes())
    digest.update(np.int64(block_size).tobytes())
    digest.update(np.int64(n_chunks).tobytes())
    for arr in (csr.indptr, csr.indices, csr.data):
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()[:32]


def _shard_scratch(key: str) -> tuple[Path, bool]:
    """Pick the shard spill directory; returns ``(path, ephemeral)``.

    With an ambient disk :class:`~repro.engine.cache.ArtifactCache`
    the scratch lives under ``<cache>/shards/<content-key>`` and
    survives the process, so a resumed run re-opens the spilled
    inputs and any finished shard artifacts instead of recomputing
    them. Without one, a tempdir is used and removed after the merge.
    """
    cache = current_cache()
    if cache is not None and cache.directory is not None:
        directory = cache.directory / "shards" / key
        directory.mkdir(parents=True, exist_ok=True)
        return directory, False
    return Path(tempfile.mkdtemp(prefix="repro-shards-")), True


def _spill_store(csr: sp.csr_array, directory: Path) -> MmapCSR:
    """Persist ``csr`` as an :class:`MmapCSR`, reusing a prior spill."""
    try:
        store = MmapCSR.open(directory)
        if store.shape == tuple(csr.shape) and store.nnz == csr.nnz:
            metric_inc("shard_spills_reused_total")
            return store
    except StorageError:
        pass
    return MmapCSR.from_scipy(csr, directory)


def _save_shard(
    path: Path,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    n_candidates: int,
) -> None:
    """Write one shard artifact atomically (tmp + rename), so a shard
    file either exists complete or not at all — resumed runs can trust
    any artifact they find."""
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    np.savez(
        tmp,
        rows=rows,
        cols=cols,
        vals=vals,
        n_candidates=np.int64(n_candidates),
    )
    # np.savez appends .npz to paths without it.
    os.replace(str(tmp) + ".npz", path)


def _shard_worker(spec: dict) -> str:
    """Process-pool task: open the stores named by the descriptor,
    run this chunk's blocks, spill the accepted triplets.

    The payload is a small dict of paths and ints (asserted < 1 KB in
    the tests) — workers map the inputs from disk instead of receiving
    pickled matrices, which is what lets the fan-out scale to graphs
    that never fit in one process's RAM.

    ``chaos_exit`` is the chaos harness's kill-worker lever: the flag
    is decided in the parent (fault plans do not cross process
    boundaries) and makes the worker die the way an OOM kill or
    segfault would — no exception, no return value, just a dead
    process the pool reports as broken.
    """
    if spec.get("chaos_exit"):
        os._exit(1)
    csr_store = MmapCSR.open(spec["csr_path"])
    suffix_store = MmapCSR.open(spec["suffix_path"])
    threshold = spec["threshold"]
    block_size = spec["block_size"]
    n_rows = csr_store.shape[0]
    starts = _chunk_starts(
        n_rows, block_size, spec["chunk_index"], spec["n_chunks"]
    )
    # Full wrap for the verification gathers: scipy keeps the mapped
    # buffers as views, so only the touched rows' pages are resident.
    csr = csr_store.to_scipy()
    colcount = _suffix_column_counts(suffix_store.to_scipy())
    out = _TripletBuffer()
    n_candidates = 0
    for start in starts:
        end = min(start + block_size, n_rows)
        block = csr_store.to_scipy(rows=(start, end))
        if block.nnz == 0:
            continue
        # Same candidate rule (and the same bounded row spans) as
        # _process_blocks. The suffix window is a zero-copy view of
        # the store, so slicing costs O(rows), not O(nnz).
        for left, right in _candidate_pairs(
            block, suffix_store.to_scipy(rows=(0, end)), start, colcount
        ):
            n_candidates += left.size
            _verify_pairs(csr, left, right, threshold, out)
    rows, cols, vals = out.arrays()
    out_path = Path(spec["out_path"])
    _save_shard(out_path, rows, cols, vals, n_candidates)
    return str(out_path)


def _fan_out_shards(
    csr: sp.csr_array,
    suffix: sp.csr_array,
    threshold: float,
    block_starts: list[int],
    block_size: int,
    n_jobs: int,
) -> tuple[_TripletBuffer, int] | None:
    """Run blocks across a process pool via memory-mapped shard
    descriptors; ``None`` if pooling is unavailable (serial fallback).

    The matrix and its suffix index are spilled once to
    :class:`MmapCSR` stores (reused when a prior call already spilled
    identical content under the ambient cache); each worker receives
    only a descriptor — store paths plus ``(chunk_index, n_chunks)``
    — and spills its accepted triplets to a per-shard ``.npz``
    artifact the parent concatenates. Shard artifacts are atomic and
    content-addressed, so an interrupted run resumes by re-opening
    finished shards.

    Crash isolation is the worker pool's: a worker that dies
    mid-chunk (OOM killer, segfault, injected ``kill_worker`` fault)
    loses only its own chunks, which are re-executed *in-process* on
    the in-RAM inputs (blocks are pure functions of shared read-only
    inputs, so re-execution is exact), counted in
    ``worker_crashes_total``. The merge is deterministic — each row
    lands in exactly one chunk, so triplet sets are disjoint and COO
    assembly canonicalizes order.
    """
    n_rows = csr.shape[0]
    workers = min(n_jobs, len(block_starts))
    scratch, ephemeral = _shard_scratch(
        _content_key(csr, threshold, block_size, workers)
    )
    pool = current_pool()
    owned_pool = pool is None
    if pool is None:
        pool = WorkerPool(workers)
    try:
        csr_store = _spill_store(csr, scratch / "rows")
        suffix_store = _spill_store(suffix, scratch / "suffix")
        specs = []
        for index in range(workers):
            flag = chaos("allpairs.worker")
            specs.append(
                {
                    "csr_path": str(csr_store.directory),
                    "suffix_path": str(suffix_store.directory),
                    "threshold": float(threshold),
                    "block_size": int(block_size),
                    "chunk_index": index,
                    "n_chunks": workers,
                    "out_path": str(scratch / f"shard-{index:04d}.npz"),
                    "chaos_exit": (
                        flag is not None and flag.kind == "kill_worker"
                    ),
                }
            )

        def _rerun_in_process(spec: dict) -> str:
            starts = _chunk_starts(
                n_rows, block_size, spec["chunk_index"], spec["n_chunks"]
            )
            out, candidates = _process_blocks(
                csr, suffix, threshold, starts, block_size
            )
            rows, cols, vals = out.arrays()
            _save_shard(
                Path(spec["out_path"]), rows, cols, vals, candidates
            )
            return spec["out_path"]

        todo = [
            spec
            for spec in specs
            if not Path(spec["out_path"]).exists()
        ]
        if len(todo) < len(specs):
            metric_inc(
                "shard_results_reused_total", len(specs) - len(todo)
            )
        if todo:
            results = pool.run(
                _shard_worker, todo, fallback=_rerun_in_process
            )
            if results is None:
                return None
        merged = _TripletBuffer()
        n_candidates = 0
        bytes_spilled = 0
        for spec in specs:
            path = Path(spec["out_path"])
            bytes_spilled += path.stat().st_size
            with np.load(path) as shard:
                merged.extend(
                    shard["rows"], shard["cols"], shard["vals"]
                )
                n_candidates += int(shard["n_candidates"])
        metric_set("shard_count", len(specs))
        metric_inc("shard_bytes_spilled", bytes_spilled)
        metric_set("peak_rss_bytes", peak_rss_bytes())
        return merged, n_candidates
    finally:
        if owned_pool:
            pool.close()
        if ephemeral:
            shutil.rmtree(scratch, ignore_errors=True)


def _vectorized_engine(
    csr: sp.csr_array,
    threshold: float,
    include_diagonal: bool,
    block_size: int,
    n_jobs: int | None,
) -> sp.csr_array:
    """Blocked array-native engine; see the module docstring."""
    n = csr.shape[0]
    with span("suffix_index") as sp_:
        col_max = _column_maxima(csr)
        suffix = _suffix_index(csr, col_max, threshold)
        sp_.set(indexed_nnz=suffix.nnz, nnz_in=csr.nnz)

    block_starts = list(range(0, n, block_size))
    merged: tuple[_TripletBuffer, int] | None = None
    if n_jobs is not None and n_jobs > 1 and len(block_starts) > 1:
        merged = _fan_out_shards(
            csr, suffix, threshold, block_starts, block_size, n_jobs
        )
    if merged is None:
        merged = _process_blocks(
            csr, suffix, threshold, block_starts, block_size
        )
    buffer, n_candidates = merged
    out_rows, out_cols, out_vals = buffer.arrays()

    if include_diagonal and csr.nnz:
        counts = np.diff(csr.indptr)
        self_scores = np.zeros(n)
        nonempty = np.flatnonzero(counts)
        if nonempty.size:
            self_scores[nonempty] = np.add.reduceat(
                csr.data**2, csr.indptr[nonempty]
            )
        keep = np.flatnonzero(self_scores >= threshold)
        # Halved here because the final symmetrization below doubles
        # the diagonal (matching the oracle's convention).
        out_rows = np.concatenate((out_rows, keep))
        out_cols = np.concatenate((out_cols, keep))
        out_vals = np.concatenate((out_vals, self_scores[keep] / 2.0))

    add_counters(
        "allpairs:vectorized",
        rows=n,
        nnz_in=csr.nnz,
        indexed_nnz=suffix.nnz,
        candidate_pairs=n_candidates,
        kept_pairs=len(buffer),
        pruned_pairs=n_candidates - len(buffer),
    )
    metric_inc("allpairs_candidate_pairs_total", n_candidates)
    metric_inc(
        "allpairs_pairs_pruned_total", n_candidates - len(buffer)
    )
    result = sp.coo_array(
        (out_vals, (out_rows, out_cols)), shape=(n, n)
    ).tocsr()
    return (result + result.T).tocsr()


# ---------------------------------------------------------------------------
# Public entry point


def thresholded_gram_matrix(
    rows: sp.csr_array,
    threshold: float,
    include_diagonal: bool = False,
    backend: str = "vectorized",
    block_size: int = DEFAULT_BLOCK_SIZE,
    n_jobs: int | None = None,
) -> sp.csr_array:
    """Entries of ``rows @ rows.T`` that are ``>= threshold``.

    Parameters
    ----------
    rows:
        Sparse ``(n, d)`` matrix with non-negative values (the
        symmetrizations' scaled rows are non-negative by
        construction).
    threshold:
        Positive similarity cut-off. The result is exact: it contains
        every off-diagonal pair with dot product at least
        ``threshold`` and nothing below it.
    include_diagonal:
        Also emit the self-similarities (row norms squared).
    backend:
        ``"vectorized"`` (default) — the blocked array-native engine;
        ``"python"`` — the row-at-a-time reference oracle. Both apply
        the same prefix-filter pruning and produce the same result
        (sparsity patterns may differ only for pairs whose similarity
        ties the threshold to within floating-point rounding).
    block_size:
        Rows per block in the vectorized backend.
    n_jobs:
        Fan blocks out over this many threads (vectorized backend
        only; ``None``/``1`` runs serially). Results are merged
        exactly, so the output is independent of ``n_jobs``.

    Returns
    -------
    Symmetric CSR ``(n, n)`` matrix.

    Notes
    -----
    The §3.6 point is the *candidate pruning* (pairs whose similarity
    provably falls below the threshold are never scored), implemented
    via prefix filtering in both backends. For small thresholds it
    degrades gracefully toward a sparse matrix product.
    """
    csr = _validated_csr(rows, threshold)
    if backend == "vectorized":
        if block_size < 1:
            raise SymmetrizationError("block_size must be >= 1")
        with span("allpairs:vectorized") as sp_:
            result = _vectorized_engine(
                csr, threshold, include_diagonal, block_size, n_jobs
            )
            sp_.set(
                rows=csr.shape[0],
                threshold=threshold,
                nnz_out=result.nnz,
            )
        return result
    if backend == "python":
        with span("allpairs:python") as sp_:
            result = _python_engine(csr, threshold, include_diagonal)
            sp_.set(
                rows=csr.shape[0],
                threshold=threshold,
                nnz_out=result.nnz,
            )
        return result
    raise SymmetrizationError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}"
    )
