"""Threshold-aware all-pairs similarity search (§3.6).

The paper's complexity analysis points to Bayardo, Ma & Srikant
("Scaling up all pairs similarity search", WWW 2007) for "curtailing
similarity computations that will provably lead to similarities lower
than the prune threshold". This module implements that idea for the
dot-product similarities the symmetrizations need: given a sparse
row matrix ``R``, compute exactly the entries of ``R Rᵀ`` that are at
least ``threshold`` — *without* materializing the full product.

Algorithm (the prefix-filtered inverted-index scheme of Bayardo et
al., with candidate verification):

1. Sort nothing — process rows in their given order, maintaining an
   inverted index from feature (column) to the rows already seen.
2. For each row, *index only its suffix features*: the shortest
   suffix whose complementary prefix has maximum possible
   contribution ``sum(prefix values * column max) < threshold``. Any
   qualifying pair must then share at least one indexed feature.
3. For a new row, collect candidate partners from the index and
   verify each with an exact sparse dot product.

:meth:`repro.symmetrize.DegreeDiscountedSymmetrization` exposes this
through ``apply_pruned`` using the factorizations
``B_d = Y Yᵀ`` with ``Y = Do^-α A Di^-β/2`` and
``C_d = Z Zᵀ`` with ``Z = Di^-β Aᵀ Do^-α/2``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import SymmetrizationError

__all__ = ["thresholded_gram_matrix"]


def _exact_dot(
    indices_a: np.ndarray,
    data_a: np.ndarray,
    indices_b: np.ndarray,
    data_b: np.ndarray,
) -> float:
    """Sparse dot product of two rows given as (sorted indices, data)."""
    total = 0.0
    ia = ib = 0
    na, nb = indices_a.size, indices_b.size
    while ia < na and ib < nb:
        ca, cb = indices_a[ia], indices_b[ib]
        if ca == cb:
            total += data_a[ia] * data_b[ib]
            ia += 1
            ib += 1
        elif ca < cb:
            ia += 1
        else:
            ib += 1
    return total


def thresholded_gram_matrix(
    rows: sp.csr_array,
    threshold: float,
    include_diagonal: bool = False,
) -> sp.csr_array:
    """Entries of ``rows @ rows.T`` that are ``>= threshold``.

    Parameters
    ----------
    rows:
        Sparse ``(n, d)`` matrix with non-negative values (the
        symmetrizations' scaled rows are non-negative by
        construction).
    threshold:
        Positive similarity cut-off. The result is exact: it contains
        every off-diagonal pair with dot product at least
        ``threshold`` and nothing below it.
    include_diagonal:
        Also emit the self-similarities (row norms squared).

    Returns
    -------
    Symmetric CSR ``(n, n)`` matrix.

    Notes
    -----
    Runs in pure Python over an inverted index; the §3.6 point is the
    *candidate pruning* (pairs whose similarity provably falls below
    the threshold are never scored), which this implements via prefix
    filtering. For small thresholds it degrades gracefully toward a
    sparse matrix product.
    """
    if threshold <= 0:
        raise SymmetrizationError(
            "thresholded_gram_matrix needs a positive threshold; "
            "use a plain sparse product for threshold 0"
        )
    csr = rows.tocsr()
    if csr.nnz and csr.data.min() < 0:
        raise SymmetrizationError("row values must be non-negative")
    n, d = csr.shape
    col_max = np.zeros(d)
    if csr.nnz:
        coo = csr.tocoo()
        np.maximum.at(col_max, coo.col, coo.data)

    # Inverted index: column -> list of (row id, value); rows append
    # only their suffix features (prefix filtering).
    index: dict[int, list[tuple[int, float]]] = {}
    stored_indices: list[np.ndarray] = []
    stored_data: list[np.ndarray] = []

    out_rows: list[int] = []
    out_cols: list[int] = []
    out_vals: list[float] = []

    for i in range(n):
        start, end = csr.indptr[i], csr.indptr[i + 1]
        cols_i = csr.indices[start:end]
        vals_i = csr.data[start:end]

        # --- candidate generation + verification --------------------
        candidates: set[int] = set()
        for c, v in zip(cols_i, vals_i):
            postings = index.get(int(c))
            if postings:
                for k, _ in postings:
                    candidates.add(k)
        for k in candidates:
            score = _exact_dot(
                cols_i, vals_i, stored_indices[k], stored_data[k]
            )
            if score >= threshold:
                out_rows.append(i)
                out_cols.append(k)
                out_vals.append(score)

        if include_diagonal:
            self_score = float((vals_i**2).sum())
            if self_score >= threshold:
                out_rows.append(i)
                out_cols.append(i)
                out_vals.append(self_score / 2.0)  # symmetrized later

        # --- prefix filtering: find the indexing boundary ------------
        # Largest prefix whose max possible contribution stays below
        # the threshold; only the remaining suffix is indexed.
        stored_indices.append(cols_i)
        stored_data.append(vals_i)
        bound = 0.0
        boundary = 0
        for pos in range(cols_i.size):
            bound += vals_i[pos] * col_max[cols_i[pos]]
            if bound >= threshold:
                boundary = pos
                break
        else:
            boundary = cols_i.size  # whole row is prunable: index none
        for pos in range(boundary, cols_i.size):
            index.setdefault(int(cols_i[pos]), []).append(
                (i, float(vals_i[pos]))
            )

    result = sp.coo_array(
        (out_vals, (out_rows, out_cols)), shape=(n, n)
    ).tocsr()
    return (result + result.T).tocsr()
