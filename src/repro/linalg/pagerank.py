"""Random-walk transition matrices and stationary distributions.

The Random-walk symmetrization (§3.2) and the directed spectral
baselines (Zhou et al., Meila–Pentney) all need the transition matrix
``P`` of the random walk on the directed graph and its stationary
distribution ``pi`` with ``pi P = pi``. Following §4.2 of the paper, the
stationary distribution is computed by power iteration with a uniform
teleport ("PageRank") so it exists and is unique even on graphs that
are not strongly connected.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.sparse as sp

from repro.exceptions import (
    ConvergenceError,
    ConvergenceWarning,
    GraphError,
)
from repro.graph.digraph import DirectedGraph
from repro.obs.metrics import metric_inc, metric_set
from repro.obs.trace import span

__all__ = ["transition_matrix", "pagerank", "stationary_distribution"]


def transition_matrix(
    graph: DirectedGraph | sp.csr_array,
) -> tuple[sp.csr_array, np.ndarray]:
    """Row-stochastic transition matrix of the random walk on ``graph``.

    Rows of dangling nodes (out-degree zero) are left all-zero; the
    returned boolean mask identifies them so callers can decide how to
    handle dangling mass (PageRank redistributes it uniformly).

    Returns
    -------
    (P, dangling):
        ``P`` is CSR with each non-dangling row summing to 1;
        ``dangling`` is a boolean array marking zero-out-degree rows.
    """
    adj = graph.adjacency if isinstance(graph, DirectedGraph) else graph
    if adj.shape[0] != adj.shape[1]:
        raise GraphError("transition matrix needs a square adjacency")
    out_weight = np.asarray(adj.sum(axis=1)).ravel()
    dangling = out_weight == 0
    inv = np.zeros_like(out_weight)
    inv[~dangling] = 1.0 / out_weight[~dangling]
    P = sp.diags_array(inv).tocsr() @ adj.tocsr()
    return P.tocsr(), dangling


#: Budget-exhausted runs whose final delta is within this factor of
#: ``tol`` are treated as converged (with a ConvergenceWarning) rather
#: than raised: the iterate is within round-off of the answer for every
#: downstream use (symmetrization weights, spectral seeds).
NEAR_CONVERGENCE_FACTOR = 10.0


def pagerank(
    graph: DirectedGraph | sp.csr_array,
    teleport: float = 0.05,
    tol: float = 1e-10,
    max_iter: int = 1000,
    raise_on_no_convergence: bool = True,
) -> np.ndarray:
    """PageRank vector by power iteration.

    Parameters
    ----------
    graph:
        Directed graph or adjacency matrix.
    teleport:
        Uniform teleport probability. The paper uses 0.05 (§4.2) for the
        Random-walk symmetrization; the classic PageRank damping of 0.85
        corresponds to ``teleport = 0.15``.
    tol:
        L1 convergence tolerance between successive iterates.
    max_iter:
        Iteration budget. If it is exhausted with the last delta still
        more than 10x ``tol`` away,
        :class:`~repro.exceptions.ConvergenceError` is raised (the
        message includes the achieved delta); a near-miss within 10x of
        ``tol`` returns the iterate with a
        :class:`~repro.exceptions.ConvergenceWarning` instead.
    raise_on_no_convergence:
        Escape hatch for lenient callers: with ``False`` the best
        iterate is always returned (normalized), warning instead of
        raising no matter how large the final delta is.

    Returns
    -------
    A probability vector ``pi`` (sums to 1) satisfying, at convergence,
    ``pi = (1 - teleport) * (pi P + dangling_mass / n) + teleport / n``.
    """
    if not 0 < teleport <= 1:
        raise GraphError("teleport must lie in (0, 1]")
    P, dangling = transition_matrix(graph)
    n = P.shape[0]
    if n == 0:
        return np.array([], dtype=np.float64)
    pi = np.full(n, 1.0 / n)
    damping = 1.0 - teleport
    delta = np.inf
    PT = P.T.tocsr()  # iterate with column-access for speed
    with span("pagerank") as sp_:
        performed = 0
        for _ in range(max_iter):
            dangling_mass = pi[dangling].sum()
            new_pi = (
                damping * (PT @ pi + dangling_mass / n) + teleport / n
            )
            delta = np.abs(new_pi - pi).sum()
            pi = new_pi
            performed += 1
            if delta < tol:
                break
        sp_.set(n_nodes=n, iterations=performed, delta=delta)
        metric_inc("pagerank_iterations", performed)
        metric_set("pagerank_convergence_delta", delta)
    if delta < tol:
        pi /= pi.sum()
        return pi
    if raise_on_no_convergence and delta > NEAR_CONVERGENCE_FACTOR * tol:
        raise ConvergenceError(
            f"PageRank did not converge in {max_iter} iterations: "
            f"achieved delta {delta:.3e} vs tol {tol:.3e}; pass "
            "raise_on_no_convergence=False to accept the best iterate"
        )
    warnings.warn(
        ConvergenceWarning(
            f"PageRank stopped after {max_iter} iterations at delta "
            f"{delta:.3e} (tol {tol:.3e}); returning the best iterate",
            code="pagerank_no_convergence",
        ),
        stacklevel=2,
    )
    pi /= pi.sum()
    return pi


def stationary_distribution(
    graph: DirectedGraph | sp.csr_array,
    teleport: float = 0.05,
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> np.ndarray:
    """Alias of :func:`pagerank`, named as the paper names it.

    The stationary distribution of the teleporting random walk is
    exactly the PageRank vector; the paper (§4.2) computes it "with a
    uniform random teleport probability of 0.05 in all cases".
    """
    return pagerank(graph, teleport=teleport, tol=tol, max_iter=max_iter)
