"""repro — Symmetrizations for Clustering Directed Graphs.

A from-scratch reproduction of Satuluri & Parthasarathy,
*Symmetrizations for Clustering Directed Graphs* (EDBT 2011): a
two-stage framework that first transforms a directed graph into an
undirected one (symmetrization) and then applies off-the-shelf
undirected graph clustering.

Quickstart
----------
>>> import repro
>>> ds = repro.make_cora_like(n_nodes=600, n_categories=12, seed=0)
>>> undirected = repro.symmetrize(ds.graph, "degree_discounted")
>>> clustering = repro.get_clusterer("metis").cluster(undirected, 12)
>>> score = repro.average_f_score(clustering, ds.ground_truth)

Package layout
--------------
- :mod:`repro.graph` — directed/undirected sparse graphs, IO,
  generators, statistics.
- :mod:`repro.symmetrize` — the four symmetrizations of §3 plus
  pruning and threshold selection.
- :mod:`repro.cluster` — MLR-MCL, METIS-style, Graclus-style and
  spectral clustering, all implemented from scratch.
- :mod:`repro.directed` — directed-spectral baselines (Zhou et al.,
  Meila–Pentney WCut) and cut objectives.
- :mod:`repro.eval` — §4.3 F-measure, ground truth, §5.6 sign test.
- :mod:`repro.pipeline` — the Figure-2 pipeline and the experiment
  sweeps.
- :mod:`repro.datasets` — synthetic stand-ins for the paper's four
  datasets.
- :mod:`repro.obs` — observability: hierarchical tracing, a metrics
  registry and run manifests (see ``docs/observability.md``).
"""

from repro.cluster import (
    Clustering,
    ConsensusClusterer,
    GraclusClusterer,
    GraphClusterer,
    LouvainClusterer,
    MLRMCL,
    MetisClusterer,
    SpectralClusterer,
    available_clusterers,
    get_clusterer,
)
from repro.datasets import (
    Dataset,
    DegenerateCase,
    degenerate_case,
    degenerate_corpus,
    guzmania_motif,
    load_dataset,
    make_cora_like,
    make_flickr_like,
    make_livejournal_like,
    make_wikipedia_like,
    save_dataset,
)
from repro.directed import (
    WCutSpectral,
    ZhouDirectedSpectral,
    best_wcut,
    clustering_ncut,
    ncut,
    ncut_directed,
)
from repro.directed.objectives import conductance
from repro.eval import (
    GroundTruth,
    adjusted_rand_index,
    average_f_score,
    correctly_clustered_mask,
    f_score_report,
    flatten_ground_truth,
    normalized_mutual_information,
    purity,
    sign_test,
)
from repro.exceptions import (
    ClusteringError,
    ConvergenceError,
    ConvergenceWarning,
    DatasetError,
    DegenerateGraphWarning,
    EvaluationError,
    GraphError,
    GraphFormatError,
    PipelineError,
    RepairWarning,
    ReproError,
    ReproWarning,
    SymmetrizationError,
    ValidationError,
    ValidationWarning,
)
from repro.graph import DirectedGraph, UndirectedGraph
from repro.obs import (
    MetricsRegistry,
    RunManifest,
    Span,
    Tracer,
    diff_manifests,
    metrics_active,
    read_manifests,
    to_chrome_trace,
    tracing,
)
from repro.pipeline import (
    PipelineResult,
    PipelineWarning,
    SymmetrizeClusterPipeline,
    TuningPoint,
    sweep_alpha_beta,
    sweep_n_clusters,
    sweep_threshold,
    tune_threshold,
)
from repro.symmetrize import (
    BibliometricSymmetrization,
    BipartiteDegreeDiscounted,
    DegreeDiscountedSymmetrization,
    HybridSymmetrization,
    JaccardSymmetrization,
    NaiveSymmetrization,
    RandomWalkSymmetrization,
    Symmetrization,
    available_symmetrizations,
    bipartite_symmetrize,
    choose_threshold_for_degree,
    get_symmetrization,
    symmetrize,
)
from repro.validate import (
    ValidationIssue,
    ValidationReport,
    lenient,
    repair_graph,
    strictness,
    validate_directed_graph,
    validate_edge_list,
    validate_symmetrization_output,
    validate_undirected_graph,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # graphs
    "DirectedGraph",
    "UndirectedGraph",
    # symmetrizations
    "Symmetrization",
    "symmetrize",
    "get_symmetrization",
    "available_symmetrizations",
    "NaiveSymmetrization",
    "RandomWalkSymmetrization",
    "BibliometricSymmetrization",
    "DegreeDiscountedSymmetrization",
    "BipartiteDegreeDiscounted",
    "bipartite_symmetrize",
    "JaccardSymmetrization",
    "HybridSymmetrization",
    "choose_threshold_for_degree",
    # clustering
    "Clustering",
    "GraphClusterer",
    "get_clusterer",
    "available_clusterers",
    "MLRMCL",
    "MetisClusterer",
    "GraclusClusterer",
    "SpectralClusterer",
    "LouvainClusterer",
    "ConsensusClusterer",
    # directed baselines / objectives
    "ZhouDirectedSpectral",
    "WCutSpectral",
    "best_wcut",
    "ncut",
    "ncut_directed",
    "clustering_ncut",
    "conductance",
    # evaluation
    "GroundTruth",
    "average_f_score",
    "f_score_report",
    "correctly_clustered_mask",
    "sign_test",
    "purity",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "flatten_ground_truth",
    # pipeline
    "SymmetrizeClusterPipeline",
    "PipelineResult",
    "PipelineWarning",
    "sweep_n_clusters",
    "sweep_threshold",
    "sweep_alpha_beta",
    "tune_threshold",
    "TuningPoint",
    # datasets
    "Dataset",
    "make_cora_like",
    "make_wikipedia_like",
    "make_flickr_like",
    "make_livejournal_like",
    "guzmania_motif",
    "save_dataset",
    "load_dataset",
    "DegenerateCase",
    "degenerate_corpus",
    "degenerate_case",
    # validation
    "ValidationIssue",
    "ValidationReport",
    "validate_directed_graph",
    "validate_undirected_graph",
    "validate_symmetrization_output",
    "validate_edge_list",
    "repair_graph",
    "strictness",
    "lenient",
    # observability
    "Tracer",
    "Span",
    "tracing",
    "to_chrome_trace",
    "MetricsRegistry",
    "metrics_active",
    "RunManifest",
    "read_manifests",
    "diff_manifests",
    # exceptions
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "ValidationError",
    "SymmetrizationError",
    "ClusteringError",
    "ConvergenceError",
    "EvaluationError",
    "DatasetError",
    "PipelineError",
    # warnings
    "ReproWarning",
    "ValidationWarning",
    "DegenerateGraphWarning",
    "RepairWarning",
    "ConvergenceWarning",
]
