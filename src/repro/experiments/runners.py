"""Runners for every table and figure of the paper's evaluation.

Each ``run_*`` function regenerates one experiment on the synthetic
stand-in datasets and returns an
:class:`~repro.experiments.support.ExperimentResult` whose ``data``
dict carries the values the benchmark harness asserts on. The public
entry points are :func:`run_experiment` and
:func:`available_experiments`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cluster import (
    GraclusClusterer,
    MetisClusterer,
    MLRMCL,
)
from repro.directed.objectives import clustering_ncut
from repro.directed.wcut import best_wcut
from repro.directed.zhou import ZhouDirectedSpectral
from repro.engine.executor import ExecutionResult, Executor
from repro.engine.journal import RunJournal, run_journal
from repro.engine.plan import Plan
from repro.engine.policy import RetryPolicy
from repro.engine.stage import Stage
from repro.engine.stages import ClusterStage, EvaluateStage
from repro.eval.fmeasure import (
    average_f_score,
    correctly_clustered_mask,
)
from repro.eval.groundtruth import GroundTruth
from repro.eval.significance import sign_test
from repro.exceptions import ReproError
from repro.experiments.support import (
    DISPLAY,
    SYMMETRIZATIONS,
    DatasetBundle,
    ExperimentResult,
    full_symmetrization,
    match_edge_budget,
    pruned_symmetrization,
    shared_bundle,
)
from repro.graph.stats import (
    degree_summary,
    log_binned_degree_histogram,
    percent_symmetric_links,
)
from repro.graph.ugraph import UndirectedGraph
from repro.linalg.pagerank import pagerank
from repro.linalg.sparse_utils import top_k_entries
from repro.pipeline.report import format_series, format_table
from repro.pipeline.sweep import sweep_alpha_beta, sweep_threshold
from repro.symmetrize import symmetrize
from repro.symmetrize.pruning import (
    choose_threshold_for_degree,
    singleton_fraction,
)

__all__ = [
    "available_experiments",
    "run_experiment",
    "run_all_experiments",
]


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def run_table1(bundle: DatasetBundle) -> ExperimentResult:
    """Table 1: dataset statistics."""
    rows = []
    for ds in (
        bundle.wiki(),
        bundle.cora(),
        bundle.flickr(),
        bundle.livejournal(),
    ):
        gt = ds.ground_truth
        rows.append(
            [
                ds.name,
                ds.n_nodes,
                ds.n_edges,
                percent_symmetric_links(ds.graph),
                gt.n_categories if gt is not None else "N.A.",
            ]
        )
    title = "Table 1: dataset statistics (synthetic stand-ins)"
    text = format_table(
        ["Dataset", "Vertices", "Edges", "%Symmetric", "#Categories"],
        rows,
        title=title,
    )
    reciprocity = {r[0]: r[3] for r in rows}
    return ExperimentResult(
        "table1", title, text, {"rows": rows, "reciprocity": reciprocity}
    )


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------


def _table2_rows(ds, target_degree: float) -> list[list]:
    rows = []
    naive, _ = pruned_symmetrization(ds.graph, "naive", target_degree)
    dd, dd_thr = pruned_symmetrization(
        ds.graph, "degree_discounted", target_degree
    )
    bib_full = full_symmetrization(ds.graph, "bibliometric")
    bib, bib_thr = match_edge_budget(bib_full, dd.n_edges)
    rows.append(
        [ds.name, DISPLAY["naive"] + " / Random Walk", naive.n_edges,
         0.0, singleton_fraction(naive)]
    )
    rows.append(
        [ds.name, DISPLAY["bibliometric"], bib.n_edges, bib_thr,
         singleton_fraction(bib)]
    )
    rows.append(
        [ds.name, DISPLAY["degree_discounted"], dd.n_edges, dd_thr,
         singleton_fraction(dd)]
    )
    return rows


def run_table2(bundle: DatasetBundle) -> ExperimentResult:
    """Table 2: edge counts per symmetrization + singleton pathology."""
    rows = _table2_rows(bundle.wiki(), 25.0) + _table2_rows(
        bundle.cora(), 15.0
    )
    title = "Table 2: symmetrized edge counts and prune thresholds"
    text = format_table(
        ["Dataset", "Symmetrization", "Edges", "Threshold",
         "SingletonFrac"],
        rows,
        title=title,
    )
    return ExperimentResult(
        "table2",
        title,
        text,
        {
            "rows": rows,
            "wiki_bib_singletons": rows[1][4],
            "wiki_dd_singletons": rows[2][4],
        },
    )


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------


def run_fig4(bundle: DatasetBundle) -> ExperimentResult:
    """Figure 4: degree distributions of the symmetrized graphs."""
    ds = bundle.wiki()
    graphs = {}
    dd, _ = pruned_symmetrization(ds.graph, "degree_discounted", 25.0)
    graphs["degree_discounted"] = dd
    graphs["bibliometric"], _ = match_edge_budget(
        full_symmetrization(ds.graph, "bibliometric"), dd.n_edges
    )
    graphs["naive"], _ = pruned_symmetrization(ds.graph, "naive", 25.0)
    graphs["random_walk"], _ = pruned_symmetrization(
        ds.graph, "random_walk", 25.0
    )
    band = (10.0, 100.0)
    lines = []
    summaries = {}
    for name in SYMMETRIZATIONS:
        degrees = graphs[name].degrees(weighted=False)
        summaries[name] = degree_summary(degrees, band=band)
        centers, counts = log_binned_degree_histogram(degrees, n_bins=12)
        lines.append(
            format_series(
                DISPLAY[name],
                [round(c, 1) for c in centers],
                counts.tolist(),
                x_label="degree",
                y_label="#nodes",
            )
        )
    rows = [
        [DISPLAY[n], s.n_isolated, s.median, s.max,
         s.frac_in_medium_band, s.frac_hubs]
        for n, s in summaries.items()
    ]
    title = "Figure 4: degree distribution summaries (wikipedia-like)"
    text = (
        format_table(
            ["Symmetrization", "Isolated", "Median", "Max",
             f"Frac in {band}", "Frac hubs"],
            rows,
            title=title,
        )
        + "\n\n"
        + "\n".join(lines)
    )
    return ExperimentResult(
        "fig4", title, text, {"summaries": summaries}
    )


# ---------------------------------------------------------------------------
# Figures 5, 7, 8, 9 — spec-driven quality/timing panels
# ---------------------------------------------------------------------------
#
# The paper's eight figure panels are all the same experiment with
# different coordinates: build one symmetrized graph per series from a
# per-series recipe, run a clustering plan through the engine at every
# cluster count, and report either Avg-F (quality panels) or seconds
# (timing panels). One declarative spec per panel replaces the four
# near-identical `_run_figN_panel` helpers.

FIG5_CLUSTER_COUNTS = [15, 20, 25, 35, 50]
FIG7_CLUSTER_COUNTS = [25, 38, 55, 80]
FIG8_CLUSTER_COUNTS = [25, 55, 80]
FIG8_SERIES = ["degree_discounted", "naive", "bibliometric"]
FIG9_CLUSTER_COUNTS = [50, 100, 200]
FIG9_SERIES = ["degree_discounted", "naive", "random_walk"]

#: Graph recipes a panel series can ask for: the unpruned artifact,
#: the §5.3.1 density-matched prune, or an edge budget matched to
#: another (already built) series — how the paper matched
#: Bibliometric's edge count to Degree-discounted's.
_FULL = ("full",)


def _pruned(target_degree: float) -> tuple:
    return ("pruned", target_degree)


def _match(other: str) -> tuple:
    return ("match", other)


@dataclass(frozen=True)
class PanelSpec:
    """Everything that distinguishes one figure panel from another."""

    experiment: str
    figure: str
    dataset: str  #: :class:`DatasetBundle` accessor name.
    subject: str  #: Title tail; may reference ``{dataset}``.
    clusterer: type  #: Factory; a fresh instance per grid point.
    cluster_counts: tuple[int, ...]
    series: tuple[str, ...]
    recipes: dict[str, tuple] = field(default_factory=dict)
    kind: str = "quality"  #: ``"quality"`` or ``"timing"``.
    with_ncut: bool = False


def _panel_graphs(
    graph, recipes: dict[str, tuple]
) -> dict[str, UndirectedGraph]:
    """Build each series' symmetrized graph from its recipe.

    Two passes so an edge-budget match can reference another series'
    graph regardless of declaration order.
    """
    graphs: dict[str, UndirectedGraph] = {}
    for name, recipe in recipes.items():
        if recipe[0] == "full":
            graphs[name] = full_symmetrization(graph, name)
        elif recipe[0] == "pruned":
            graphs[name], _ = pruned_symmetrization(
                graph, name, target_degree=recipe[1]
            )
    for name, recipe in recipes.items():
        if recipe[0] == "match":
            graphs[name], _ = match_edge_budget(
                full_symmetrization(graph, name),
                graphs[recipe[1]].n_edges,
            )
    return graphs


#: Transient failures in experiment grids (a flaky worker, an
#: injected chaos fault) get one bounded re-execution; deterministic
#: errors still fail fast.
_EXPERIMENT_RETRY = RetryPolicy(max_attempts=2, backoff_s=0.01)


def _cluster_point(
    symmetrized: UndirectedGraph,
    clusterer,
    n_clusters: int,
    ground_truth: GroundTruth | None = None,
) -> ExecutionResult:
    """Run one cluster(+evaluate) plan through the engine."""
    stages: list[Stage] = [ClusterStage(clusterer, n_clusters)]
    initial = ["symmetrized"]
    values: dict[str, object] = {"symmetrized": symmetrized}
    if ground_truth is not None:
        stages.append(EvaluateStage())
        initial.append("ground_truth")
        values["ground_truth"] = ground_truth
    plan = Plan(
        stages,
        initial=tuple(initial),
        name=f"experiments.cluster_point[k={n_clusters}]",
    )
    executor = Executor(mode="strict", retry=_EXPERIMENT_RETRY)
    return executor.execute(plan, values)


def _quality_panel(
    spec: PanelSpec, ds, graphs: dict, title: str
) -> ExperimentResult:
    results = {}
    for name in spec.series:
        ks, fs = [], []
        for k in spec.cluster_counts:
            execution = _cluster_point(
                graphs[name], spec.clusterer(), int(k),
                ds.ground_truth,
            )
            ks.append(execution.values["clustering"].n_clusters)
            fs.append(execution.values["average_f"])
        results[name] = (ks, fs)
    lines = [
        format_series(
            DISPLAY[name], results[name][0], results[name][1],
            x_label="#clusters", y_label="AvgF",
        )
        for name in spec.series
    ]
    peaks = {name: max(results[name][1]) for name in spec.series}
    return ExperimentResult(
        spec.experiment, title, "\n".join(lines),
        {"series": results, "peaks": peaks},
    )


def _timing_panel(
    spec: PanelSpec, ds, graphs: dict, title: str
) -> ExperimentResult:
    counts = list(spec.cluster_counts)
    times, ncuts, achieved = {}, {}, {}
    for name in spec.series:
        per_k = []
        clustering = None
        for k in counts:
            execution = _cluster_point(
                graphs[name], spec.clusterer(), int(k)
            )
            clustering = execution.values["clustering"]
            per_k.append(execution.seconds("cluster"))
        times[name] = per_k
        if spec.with_ncut:
            achieved[name] = clustering.n_clusters
            ncuts[name] = clustering_ncut(
                graphs[name], clustering.labels
            )
    lines = [
        format_series(
            DISPLAY[name], counts, times[name],
            x_label="#clusters", y_label="seconds",
        )
        for name in spec.series
    ]
    data: dict = {"times": times}
    if spec.with_ncut:
        lines.append(
            "k-way normalized cuts at top k (lower = cleaner "
            "structure): "
            + ", ".join(
                f"{DISPLAY[n]}={ncuts[n]:.2f} (k={achieved[n]})"
                for n in spec.series
            )
        )
        data = {
            "times": times,
            "ncuts": ncuts,
            "achieved": achieved,
            "cluster_counts": counts,
        }
    return ExperimentResult(
        spec.experiment, title, "\n".join(lines), data
    )


def _run_panel(bundle: DatasetBundle, spec: PanelSpec) -> ExperimentResult:
    ds = getattr(bundle, spec.dataset)()
    graphs = _panel_graphs(ds.graph, spec.recipes)
    title = (
        f"{spec.figure} ({spec.experiment}): "
        + spec.subject.format(dataset=ds.name)
    )
    if spec.kind == "quality":
        return _quality_panel(spec, ds, graphs, title)
    return _timing_panel(spec, ds, graphs, title)


def _fig5_spec(experiment: str, clusterer: type, deg: float) -> PanelSpec:
    return PanelSpec(
        experiment=experiment,
        figure="Figure 5",
        dataset="cora",
        subject="Cora Avg-F vs #clusters",
        clusterer=clusterer,
        cluster_counts=tuple(FIG5_CLUSTER_COUNTS),
        series=tuple(SYMMETRIZATIONS),
        recipes={
            "degree_discounted": _pruned(deg),
            "bibliometric": _pruned(deg),
            "naive": _FULL,
            "random_walk": _FULL,
        },
    )


def _fig7_spec(experiment: str, clusterer: type) -> PanelSpec:
    return PanelSpec(
        experiment=experiment,
        figure="Figure 7",
        dataset="wiki",
        subject="Wikipedia Avg-F vs #clusters",
        clusterer=clusterer,
        cluster_counts=tuple(FIG7_CLUSTER_COUNTS),
        series=tuple(SYMMETRIZATIONS),
        recipes={
            "degree_discounted": _pruned(25.0),
            "bibliometric": _match("degree_discounted"),
            "naive": _FULL,
            "random_walk": _FULL,
        },
    )


def _fig8_spec(experiment: str, clusterer: type) -> PanelSpec:
    return PanelSpec(
        experiment=experiment,
        figure="Figure 8",
        dataset="wiki",
        subject="Wikipedia clustering times",
        clusterer=clusterer,
        cluster_counts=tuple(FIG8_CLUSTER_COUNTS),
        series=tuple(FIG8_SERIES),
        recipes={
            "degree_discounted": _pruned(25.0),
            "bibliometric": _match("degree_discounted"),
            "naive": _FULL,
        },
        kind="timing",
        with_ncut=True,
    )


def _fig9_spec(experiment: str, dataset: str) -> PanelSpec:
    return PanelSpec(
        experiment=experiment,
        figure="Figure 9",
        dataset=dataset,
        subject="{dataset} clustering times",
        clusterer=MLRMCL,
        cluster_counts=tuple(FIG9_CLUSTER_COUNTS),
        series=tuple(FIG9_SERIES),
        recipes={
            "degree_discounted": _pruned(30.0),
            "naive": _FULL,
            "random_walk": _FULL,
        },
        kind="timing",
    )


def run_fig5a(bundle: DatasetBundle) -> ExperimentResult:
    """Figure 5(a): Cora quality with MLR-MCL."""
    return _run_panel(bundle, _fig5_spec("fig5a", MLRMCL, 20.0))


def run_fig5b(bundle: DatasetBundle) -> ExperimentResult:
    """Figure 5(b): Cora quality with Graclus."""
    return _run_panel(bundle, _fig5_spec("fig5b", GraclusClusterer, 40.0))


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------

FIG6_CLUSTER_COUNTS = [15, 25, 35]


def run_fig6(bundle: DatasetBundle) -> ExperimentResult:
    """Figure 6: dd pipelines vs BestWCut / Zhou (quality + speed)."""
    ds = bundle.cora()
    undirected, _ = pruned_symmetrization(
        ds.graph, "degree_discounted", 20.0
    )
    rows = []
    for label, runner in [
        ("Degree-discounted + MLR-MCL",
         lambda k: MLRMCL().cluster(undirected, k)),
        ("Degree-discounted + Graclus",
         lambda k: GraclusClusterer().cluster(undirected, k)),
        ("Degree-discounted + Metis",
         lambda k: MetisClusterer().cluster(undirected, k)),
        ("BestWCut (Meila-Pentney)",
         lambda k: best_wcut().cluster(ds.graph, k)),
        ("Zhou directed spectral",
         lambda k: ZhouDirectedSpectral().cluster(ds.graph, k)),
    ]:
        best_f, total = 0.0, 0.0
        for k in FIG6_CLUSTER_COUNTS:
            t0 = time.perf_counter()
            clustering = runner(k)
            total += time.perf_counter() - t0
            best_f = max(
                best_f, average_f_score(clustering, ds.ground_truth)
            )
        rows.append([label, best_f, total / len(FIG6_CLUSTER_COUNTS)])
    title = "Figure 6: Degree-discounted pipelines vs directed spectral"
    text = format_table(
        ["Method", "Peak AvgF", "Mean seconds/run"], rows, title=title
    )
    return ExperimentResult(
        "fig6", title, text,
        {"by_method": {r[0]: (r[1], r[2]) for r in rows}},
    )


# ---------------------------------------------------------------------------
# Figures 7, 8, 9 — panels of the shared spec engine above
# ---------------------------------------------------------------------------


def run_fig7a(bundle: DatasetBundle) -> ExperimentResult:
    """Figure 7(a): Wikipedia quality with MLR-MCL."""
    return _run_panel(bundle, _fig7_spec("fig7a", MLRMCL))


def run_fig7b(bundle: DatasetBundle) -> ExperimentResult:
    """Figure 7(b): Wikipedia quality with Metis."""
    return _run_panel(bundle, _fig7_spec("fig7b", MetisClusterer))


def run_fig8a(bundle: DatasetBundle) -> ExperimentResult:
    """Figure 8(a): Wikipedia times with MLR-MCL."""
    return _run_panel(bundle, _fig8_spec("fig8a", MLRMCL))


def run_fig8b(bundle: DatasetBundle) -> ExperimentResult:
    """Figure 8(b): Wikipedia times with Metis."""
    return _run_panel(bundle, _fig8_spec("fig8b", MetisClusterer))


def run_fig9a(bundle: DatasetBundle) -> ExperimentResult:
    """Figure 9(a): Flickr clustering times."""
    return _run_panel(bundle, _fig9_spec("fig9a", "flickr"))


def run_fig9b(bundle: DatasetBundle) -> ExperimentResult:
    """Figure 9(b): LiveJournal clustering times."""
    return _run_panel(bundle, _fig9_spec("fig9b", "livejournal"))


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------


def run_table3(bundle: DatasetBundle) -> ExperimentResult:
    """Table 3: prune-threshold effect on edges / F / time."""
    ds = bundle.wiki()
    full = full_symmetrization(ds.graph, "degree_discounted")
    lo = choose_threshold_for_degree(
        full, 40.0, rng=np.random.default_rng(0)
    )
    hi = choose_threshold_for_degree(
        full, 8.0, rng=np.random.default_rng(0)
    )
    thresholds = list(np.linspace(lo, hi, 4))
    results = {}
    for clusterer in ("mlrmcl", "metis"):
        results[clusterer] = sweep_threshold(
            ds.graph,
            thresholds=thresholds,
            clusterer=clusterer,
            n_clusters=38,
            ground_truth=ds.ground_truth,
        )
    rows = []
    for clusterer, points in results.items():
        for p in points:
            rows.append(
                [clusterer, float(p.parameter), p.n_edges,
                 p.average_f, p.cluster_seconds]
            )
    title = "Table 3: effect of the prune threshold (wikipedia-like)"
    text = format_table(
        ["Clusterer", "Threshold", "Edges", "AvgF", "Seconds"],
        rows,
        title=title,
    )
    return ExperimentResult(
        "table3", title, text, {"points": results}
    )


# ---------------------------------------------------------------------------
# Table 4
# ---------------------------------------------------------------------------

TABLE4_CONFIGURATIONS = [
    (0.0, 0.0),
    ("log", "log"),
    (0.25, 0.25),
    (0.5, 0.5),
    (0.75, 0.75),
    (1.0, 1.0),
    (0.25, 0.5),
    (0.25, 0.75),
    (0.5, 0.25),
    (0.5, 0.75),
    (0.75, 0.25),
    (0.75, 0.5),
]


def run_table4(bundle: DatasetBundle) -> ExperimentResult:
    """Table 4: (alpha, beta) grid with Metis."""
    cora_points = sweep_alpha_beta(
        bundle.cora().graph,
        configurations=TABLE4_CONFIGURATIONS,
        clusterer="metis",
        n_clusters=25,
        ground_truth=bundle.cora().ground_truth,
        target_degree=20.0,
    )
    wiki_points = sweep_alpha_beta(
        bundle.wiki().graph,
        configurations=TABLE4_CONFIGURATIONS,
        clusterer="metis",
        n_clusters=38,
        ground_truth=bundle.wiki().ground_truth,
        target_degree=25.0,
    )
    rows = [
        [str(c.parameter[0]), str(c.parameter[1]),
         c.average_f, w.average_f]
        for c, w in zip(cora_points, wiki_points)
    ]
    title = "Table 4: effect of varying alpha, beta (Metis)"
    text = format_table(
        ["alpha", "beta", "F (cora-like)", "F (wiki-like)"],
        rows,
        title=title,
    )
    return ExperimentResult(
        "table4",
        title,
        text,
        {
            "cora": {p.parameter: p.average_f for p in cora_points},
            "wiki": {p.parameter: p.average_f for p in wiki_points},
        },
    )


# ---------------------------------------------------------------------------
# Table 5
# ---------------------------------------------------------------------------

TABLE5_TOP_K = 5


def run_table5(bundle: DatasetBundle) -> ExperimentResult:
    """Table 5: top-weighted edges per symmetrization."""
    ds = bundle.wiki()
    indeg = ds.graph.in_degrees()
    hub_cutoff = np.quantile(indeg, 0.995)
    rows = []
    hub_touch = {}
    tops = {}
    for name in ("random_walk", "bibliometric", "degree_discounted"):
        u = full_symmetrization(ds.graph, name)
        entries = top_k_entries(u.adjacency, TABLE5_TOP_K)
        tops[name] = entries
        count = 0
        for i, j, w in entries:
            touches = bool(
                indeg[i] >= hub_cutoff or indeg[j] >= hub_cutoff
            )
            count += touches
            rows.append(
                [DISPLAY[name], i, j, w, "hub" if touches else "-"]
            )
        hub_touch[name] = count
    pi = pagerank(ds.graph, teleport=0.05)
    title = "Table 5: top-weighted edges per symmetrization"
    text = format_table(
        ["Symmetrization", "Node 1", "Node 2", "Weight", "Hub pair?"],
        rows,
        title=title,
    )
    return ExperimentResult(
        "table5",
        title,
        text,
        {
            "hub_touch": hub_touch,
            "tops": tops,
            "pagerank": pi,
            "median_pagerank": float(np.median(pi)),
        },
    )


# ---------------------------------------------------------------------------
# §5.6 significance
# ---------------------------------------------------------------------------


def _sec56_clusterings(ds, k: int, target_degree: float) -> dict:
    dd, _ = pruned_symmetrization(
        ds.graph, "degree_discounted", target_degree
    )
    naive = full_symmetrization(ds.graph, "naive")
    return {
        "dd+mlrmcl": MLRMCL().cluster(dd, k),
        "naive+mlrmcl": MLRMCL().cluster(naive, k),
        "dd+metis": MetisClusterer().cluster(dd, k),
        "naive+metis": MetisClusterer().cluster(naive, k),
    }


def run_sec56(bundle: DatasetBundle) -> ExperimentResult:
    """§5.6: paired binomial sign tests on per-node correctness."""
    rows = []
    cora = bundle.cora()
    clusterings = _sec56_clusterings(cora, 25, 20.0)
    clusterings["bestwcut"] = best_wcut().cluster(cora.graph, 25)
    masks = {
        name: correctly_clustered_mask(c, cora.ground_truth)
        for name, c in clusterings.items()
    }
    for a, b in [
        ("dd+mlrmcl", "naive+mlrmcl"),
        ("dd+metis", "naive+metis"),
        ("dd+mlrmcl", "bestwcut"),
        ("dd+metis", "bestwcut"),
    ]:
        r = sign_test(masks[a], masks[b])
        rows.append(
            ["cora-like", a, b, r.n_a_only, r.n_b_only,
             r.log10_p, r.winner]
        )
    wiki = bundle.wiki()
    wiki_masks = {
        name: correctly_clustered_mask(c, wiki.ground_truth)
        for name, c in _sec56_clusterings(wiki, 38, 25.0).items()
    }
    for a, b in [
        ("dd+mlrmcl", "naive+mlrmcl"),
        ("dd+metis", "naive+metis"),
    ]:
        r = sign_test(wiki_masks[a], wiki_masks[b])
        rows.append(
            ["wiki-like", a, b, r.n_a_only, r.n_b_only,
             r.log10_p, r.winner]
        )
    title = "Sec 5.6: paired binomial sign tests"
    text = format_table(
        ["Dataset", "Method A", "Method B", "A-only", "B-only",
         "log10(p)", "Winner"],
        rows,
        title=title,
    )
    return ExperimentResult("sec56", title, text, {"rows": rows})


# ---------------------------------------------------------------------------
# §5.7 case study
# ---------------------------------------------------------------------------


def run_sec57(bundle: DatasetBundle) -> ExperimentResult:
    """§5.7: Guzmania / Figure-1 case studies."""
    from repro.datasets import guzmania_motif
    from repro.graph.generators import figure1_graph

    lines = []
    data: dict = {}

    # Figure-1 pair weights.
    g, roles = figure1_graph()
    a, b = roles["pair"]
    pair_weights = {
        name: symmetrize(g, name).edge_weight(a, b)
        for name in ("naive", "bibliometric", "degree_discounted")
    }
    data["figure1_pair_weights"] = pair_weights
    lines.append(
        format_table(
            ["Symmetrization", "Weight between the Figure-1 pair"],
            [[k, v] for k, v in pair_weights.items()],
            title="Figure 1: can the natural pair ever be clustered?",
        )
    )

    # Guzmania motif recovery.
    motif, motif_roles = guzmania_motif(n_species=12)
    rows = []
    recovery = {}
    for sym in ("naive", "degree_discounted"):
        u = symmetrize(motif, sym)
        for clusterer_name, clustering in [
            ("MLR-MCL", MLRMCL().cluster(u)),
            ("Metis", MetisClusterer(imbalance=1.6).cluster(u, 2)),
        ]:
            species = np.array(motif_roles["species"])
            values, counts = np.unique(
                clustering.labels[species], return_counts=True
            )
            purity = counts.max() / species.size
            species_label = values[counts.argmax()]
            leaked = int(
                np.count_nonzero(
                    clustering.labels[motif_roles["background"]]
                    == species_label
                )
            )
            rows.append([sym, clusterer_name, purity, leaked])
            recovery[(sym, clusterer_name)] = (float(purity), leaked)
    data["guzmania"] = recovery
    lines.append(
        format_table(
            ["Symmetrization", "Clusterer", "Species purity",
             "Background leaked"],
            rows,
            title="Sec 5.7: Guzmania list-pattern cluster recovery",
        )
    )
    title = "Sec 5.7: case studies"
    return ExperimentResult("sec57", title, "\n\n".join(lines), data)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_RUNNERS = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "fig4": run_fig4,
    "fig5a": run_fig5a,
    "fig5b": run_fig5b,
    "fig6": run_fig6,
    "fig7a": run_fig7a,
    "fig7b": run_fig7b,
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "fig9a": run_fig9a,
    "fig9b": run_fig9b,
    "sec56": run_sec56,
    "sec57": run_sec57,
}


def available_experiments() -> list[str]:
    """Ids of all experiment runners, sorted."""
    return sorted(_RUNNERS)


def run_all_experiments(
    bundle: DatasetBundle | None = None,
    scale: float = 1.0,
    seed: int = 0,
) -> list[ExperimentResult]:
    """Run every registered experiment, sharing one dataset bundle.

    Experiments run in registry (alphabetical) order; the bundle's
    caches amortize dataset generation and symmetrization across them.
    """
    if bundle is None:
        bundle = shared_bundle(scale=scale, seed=seed)
    return [
        run_experiment(name, bundle=bundle)
        for name in available_experiments()
    ]


def run_experiment(
    name: str,
    bundle: DatasetBundle | None = None,
    scale: float = 1.0,
    seed: int = 0,
    journal: RunJournal | None = None,
) -> ExperimentResult:
    """Run one experiment by id.

    Parameters
    ----------
    name:
        One of :func:`available_experiments`.
    bundle:
        Optional pre-built dataset bundle (reused across experiments
        to amortize generation and symmetrization); defaults to a
        process-wide shared bundle at ``scale``/``seed``.
    scale, seed:
        Dataset scale multiplier and seed when no bundle is given.
    journal:
        Optional write-ahead :class:`~repro.engine.RunJournal`:
        installed as the ambient journal for the experiment, so every
        engine execution inside it (sweeps, cluster points) records
        its progress for crash recovery.
    """
    try:
        runner = _RUNNERS[name.lower()]
    except KeyError:
        known = ", ".join(available_experiments())
        raise ReproError(
            f"unknown experiment {name!r}; known: {known}"
        ) from None
    if bundle is None:
        bundle = shared_bundle(scale=scale, seed=seed)
    if journal is None:
        return runner(bundle)
    journal.ensure_started(
        kind="experiment",
        name=name.lower(),
        dataset_sha="",
        mode="strict",
        config={"scale": scale, "seed": seed},
    )
    with run_journal(journal):
        result = runner(bundle)
    journal.finish()
    return result
