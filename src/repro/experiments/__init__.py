"""Programmatic experiment runners for the paper's tables and figures.

Each runner regenerates one experiment of the paper's evaluation
section and returns an :class:`~repro.experiments.support.ExperimentResult`
carrying both the formatted text block and machine-readable values.
The pytest benchmark harness (``benchmarks/``) and the CLI
(``python -m repro experiment <id>``) both delegate here, so the
experiment definitions live in exactly one place.

>>> from repro.experiments import run_experiment
>>> result = run_experiment("table1", scale=0.2)   # doctest: +SKIP
>>> print(result.text)                             # doctest: +SKIP
"""

from repro.experiments.runners import (
    available_experiments,
    run_all_experiments,
    run_experiment,
)
from repro.experiments.support import (
    DISPLAY,
    SYMMETRIZATIONS,
    DatasetBundle,
    ExperimentResult,
    full_symmetrization,
    match_edge_budget,
    pruned_symmetrization,
)

__all__ = [
    "run_experiment",
    "run_all_experiments",
    "available_experiments",
    "ExperimentResult",
    "DatasetBundle",
    "SYMMETRIZATIONS",
    "DISPLAY",
    "full_symmetrization",
    "pruned_symmetrization",
    "match_edge_budget",
]
