"""Shared infrastructure for the experiment runners.

Holds the benchmark dataset bundle (the synthetic stand-ins at a
configurable scale, cached per scale), the result container, and the
symmetrize-and-prune helpers every experiment uses.

Symmetrization artifacts are shared across experiments through the
engine's content-addressed :class:`~repro.engine.ArtifactCache` —
keyed on the dataset fingerprint and the symmetrization config, not
on Python object identity — so re-running an experiment on an equal
graph (same bundle, a reloaded dataset, another process with a
disk-backed cache) reuses the artifact where the old id()-keyed cache
could not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.datasets import (
    Dataset,
    make_cora_like,
    make_flickr_like,
    make_livejournal_like,
    make_wikipedia_like,
)
from repro.engine.cache import ArtifactCache, current_cache
from repro.engine.executor import Executor
from repro.engine.plan import Plan
from repro.engine.stages import SymmetrizeStage
from repro.graph.digraph import DirectedGraph
from repro.graph.ugraph import UndirectedGraph
from repro.symmetrize import get_symmetrization
from repro.symmetrize.pruning import (
    choose_threshold_for_degree,
    prune_graph,
)

__all__ = [
    "SYMMETRIZATIONS",
    "DISPLAY",
    "ExperimentResult",
    "DatasetBundle",
    "experiment_cache",
    "full_symmetrization",
    "pruned_symmetrization",
    "match_edge_budget",
]

#: The four symmetrizations in the paper's reporting order.
SYMMETRIZATIONS = [
    "degree_discounted",
    "bibliometric",
    "naive",
    "random_walk",
]

#: Display names matching the paper's legends.
DISPLAY = {
    "naive": "A+A'",
    "random_walk": "Random Walk",
    "bibliometric": "Bibliometric",
    "degree_discounted": "Degree-discounted",
}


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment runner.

    Attributes
    ----------
    experiment:
        Experiment id (``"table1"``, ``"fig5a"``, …).
    title:
        Human-readable title.
    text:
        The formatted table / series block, as printed by the paper's
        harness.
    data:
        Machine-readable values (peaks, fractions, timings) used by
        the benchmark assertions.
    """

    experiment: str
    title: str
    text: str
    data: dict = field(default_factory=dict)


class DatasetBundle:
    """The four stand-in datasets at one scale, built lazily.

    Scale 1.0 gives the default benchmark sizes (cora-like 1,500
    nodes, wikipedia-like 3,000, flickr-like 6,000, livejournal-like
    10,000); other scales multiply every node budget.
    """

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        self.scale = float(scale)
        self.seed = int(seed)
        self._cache: dict[str, Dataset] = {}

    def cora(self) -> Dataset:
        """Cora-like citation dataset."""
        if "cora" not in self._cache:
            self._cache["cora"] = make_cora_like(
                n_nodes=int(1500 * self.scale),
                n_categories=25,
                seed=self.seed,
            )
        return self._cache["cora"]

    def wiki(self) -> Dataset:
        """Wikipedia-like hyperlink dataset.

        The list-cluster count shrinks with the node budget (8 at the
        default scale) so tiny bundles remain buildable.
        """
        if "wiki" not in self._cache:
            n_nodes = int(3000 * self.scale)
            n_list_clusters = max(2, min(8, n_nodes // 350))
            self._cache["wiki"] = make_wikipedia_like(
                n_nodes=n_nodes,
                n_categories=30,
                seed=self.seed,
                n_list_clusters=n_list_clusters,
            )
        return self._cache["wiki"]

    def flickr(self) -> Dataset:
        """Flickr-like social dataset (timing only)."""
        if "flickr" not in self._cache:
            self._cache["flickr"] = make_flickr_like(
                n_nodes=int(6000 * self.scale), seed=self.seed
            )
        return self._cache["flickr"]

    def livejournal(self) -> Dataset:
        """LiveJournal-like social dataset (timing only)."""
        if "livejournal" not in self._cache:
            self._cache["livejournal"] = make_livejournal_like(
                n_nodes=int(10000 * self.scale), seed=self.seed
            )
        return self._cache["livejournal"]


@lru_cache(maxsize=1)
def _shared_bundle_cache() -> dict:
    return {}


def shared_bundle(scale: float = 1.0, seed: int = 0) -> DatasetBundle:
    """A process-wide cached bundle per (scale, seed)."""
    cache = _shared_bundle_cache()
    key = (float(scale), int(seed))
    if key not in cache:
        cache[key] = DatasetBundle(scale=scale, seed=seed)
    return cache[key]


#: Process-wide in-memory artifact cache the experiment runners share.
_ARTIFACTS = ArtifactCache()


def experiment_cache() -> ArtifactCache:
    """The artifact cache experiment helpers run against.

    An ambient :func:`repro.engine.artifact_cache` block (e.g. a
    disk-backed cache installed by the CLI) takes precedence; without
    one the runners share a process-wide in-memory cache, which is the
    cross-experiment reuse the old identity-keyed cache provided.
    """
    ambient = current_cache()
    return ambient if ambient is not None else _ARTIFACTS


def full_symmetrization(
    graph: DirectedGraph, name: str
) -> UndirectedGraph:
    """Unpruned symmetrized graph, content-addressed-cached.

    Runs a one-stage engine plan so the artifact is keyed on the
    dataset fingerprint plus the symmetrization config and lands in
    :func:`experiment_cache` — shared across experiments, equal graph
    objects, and (with a disk cache installed) across processes.
    """
    plan = Plan(
        [SymmetrizeStage(get_symmetrization(name))],
        initial=("graph",),
        name=f"experiments.full_symmetrization[{name}]",
    )
    executor = Executor(mode="strict", cache=experiment_cache())
    return executor.execute(plan, {"graph": graph}).values["symmetrized"]


def pruned_symmetrization(
    graph: DirectedGraph,
    name: str,
    target_degree: float = 20.0,
) -> tuple[UndirectedGraph, float]:
    """Symmetrize and prune to roughly ``target_degree`` avg degree.

    The §5.3.1 threshold-selection recipe applied uniformly to every
    method, mirroring the paper's matched edge budgets (Table 2).
    """
    full = full_symmetrization(graph, name)
    threshold = choose_threshold_for_degree(
        full, target_degree, rng=np.random.default_rng(0)
    )
    return prune_graph(full, threshold), threshold


def match_edge_budget(
    full: UndirectedGraph, target_edges: int
) -> tuple[UndirectedGraph, float]:
    """Prune ``full`` to at most ``target_edges`` by threshold
    bisection (how the paper matched Bibliometric's edge count to
    Degree-discounted's in §5.3)."""
    adj_max = float(full.adjacency.max()) if full.adjacency.nnz else 0.0
    lo, hi = 0.0, adj_max
    for _ in range(40):
        mid = (lo + hi) / 2
        if prune_graph(full, mid).n_edges > target_edges:
            lo = mid
        else:
            hi = mid
    return prune_graph(full, hi), hi
