"""The ``repro bench --scale`` harness: paper-scale out-of-core runs.

Where :mod:`repro.perf.bench` sweeps backends on graphs that fit
comfortably in RAM, this harness reproduces the *scaling* claims
(Figures 8–9 of the paper): generate power-law digraphs at 100k and
1M nodes straight into memory-mapped CSR stores
(:func:`~repro.graph.generators.power_law_mmcsr`), run the
degree-discounted symmetrize → prune pipeline end-to-end through the
out-of-core sharded all-pairs engine, and emit ``BENCH_scale.json``
with one timing point per size:

- **generation** and **symmetrize** wall-clock per size — the fig-8/9
  timing curve;
- **peak RSS** of the bench process *and* its pool workers
  (``getrusage`` high-water marks), because the whole point of the
  mmap + shard-descriptor design is that resident memory stays
  bounded by block size, not graph size;
- the shard fan-out's own gauges (``shard_count``,
  ``shard_bytes_spilled``, ``peak_rss_bytes``) captured from a
  per-point metrics registry;
- a **shard-vs-monolithic differential** at the smallest benched
  size: the sharded (``n_jobs > 1``) and serial paths must produce
  byte-identical pruned adjacencies;
- a **regression block** asserting peak RSS stays under the 2 GB
  floor and the differential held, so scale regressions fail CI the
  same way perf regressions do.

``smoke=True`` shrinks the run to one ~50k-node graph so the harness
finishes in CI time; that mode is exercised by
``tests/test_scale_bench.py`` and the ``make scale-smoke`` target.
"""

from __future__ import annotations

import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np
import scipy

from repro.exceptions import ReproError
from repro.obs.metrics import MetricsRegistry, metrics_active

__all__ = [
    "SCALE_SCHEMA",
    "SCALE_SMOKE_ENV",
    "DEFAULT_SCALE_SIZES",
    "SMOKE_SCALE_SIZES",
    "DEFAULT_SCALE_THRESHOLD",
    "DEFAULT_SCALE_D_MAX",
    "MAX_PEAK_RSS_BYTES",
    "REQUIRED_POINT_KEYS",
    "scale_smoke_enabled",
    "run_scale_bench",
    "scale_manifest",
    "format_scale_summary",
]

#: Schema identifier embedded in ``BENCH_scale.json``.
SCALE_SCHEMA = "repro-bench-scale/v1"

#: Environment gate for the minutes-long scale smoke (see
#: ``docs/performance.md``): tests and CI jobs marked ``scale_smoke``
#: only run when this variable is ``"1"``.
SCALE_SMOKE_ENV = "REPRO_SCALE_SMOKE"


def scale_smoke_enabled(
    environ: Mapping[str, str] | None = None,
) -> bool:
    """Whether the opt-in scale smoke should run in this process.

    The single authority for the :data:`SCALE_SMOKE_ENV` gate —
    ``tests/test_scale_bench.py``'s skip marks and the CI/Makefile
    smoke targets all route through the same convention.
    """
    env = os.environ if environ is None else environ
    return env.get(SCALE_SMOKE_ENV) == "1"

#: Full-run sizes: the two operating points the paper's timing figures
#: report (DBLP-scale and LiveJournal-order-of-magnitude).
DEFAULT_SCALE_SIZES = (100_000, 1_000_000)

#: Smoke-mode size: big enough that the mmap + shard path is actually
#: exercised, small enough for CI.
SMOKE_SCALE_SIZES = (50_000,)

#: Prune threshold for the scale runs. 0.5 is the paper's cosine-style
#: operating point; with α = β = 0.5 discounting it prunes hub columns
#: hard enough that 1M nodes completes on one core.
DEFAULT_SCALE_THRESHOLD = 0.5

#: Degree cap for the scale graphs. The generator's default cap grows
#: as ``4·√n``, which makes the all-pairs candidate count (∝ Σ d_in²)
#: grow *quadratically* with n — a property of the graph family, not
#: of the engine. A fixed cap holds the degree structure constant
#: across sizes so the curve measures scaling in n; it's a config
#: knob, not a hard-coded assumption. The streaming generator applies
#: it to *both* tails (out-degrees via the degree sequence,
#: in-degrees by ceiling the target-sampling weights), so no hub's
#: expected in-degree exceeds it either.
DEFAULT_SCALE_D_MAX = 100

#: Regression floor: the symmetrize → prune run must keep the resident
#: high-water mark (parent and any pool worker) under this.
MAX_PEAK_RSS_BYTES = 2 * 1024**3

#: Keys every entry of ``results["points"]`` must carry (asserted by
#: the smoke test so downstream consumers can rely on them).
REQUIRED_POINT_KEYS = frozenset(
    {
        "n_nodes",
        "n_edges",
        "threshold",
        "n_jobs",
        "block_size",
        "generate_seconds",
        "symmetrize_seconds",
        "edges_out",
        "store_bytes",
        "peak_rss_bytes",
        "peak_rss_children_bytes",
        "metrics",
    }
)


def _rusage_peak_bytes() -> tuple[int, int]:
    """Lifetime RSS high-water of this process and reaped children.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; platforms
    without the ``resource`` module report 0 (the regression block
    then passes vacuously rather than failing on Windows).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0, 0
    scale = 1 if sys.platform == "darwin" else 1024
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * scale
    return int(own), int(kids)


def _scale_point(
    n_nodes: int,
    threshold: float,
    n_jobs: int | None,
    block_size: int,
    d_max: int | None,
    seed: int,
    workdir: Path,
) -> dict[str, Any]:
    """Generate one mmap-backed graph and time symmetrize → prune."""
    from repro.graph.generators import power_law_mmcsr
    from repro.symmetrize.degree_discounted import (
        DegreeDiscountedSymmetrization,
    )

    rng = np.random.default_rng(seed)
    store_dir = workdir / f"graph-{n_nodes}.mmcsr"
    t0 = time.perf_counter()
    graph = power_law_mmcsr(n_nodes, store_dir, rng, d_max=d_max)
    generate_seconds = time.perf_counter() - t0
    store = graph.mmap_store

    registry = MetricsRegistry()
    with metrics_active(registry):
        t0 = time.perf_counter()
        pruned = DegreeDiscountedSymmetrization().apply_pruned(
            graph, threshold, block_size=block_size, n_jobs=n_jobs
        )
        symmetrize_seconds = time.perf_counter() - t0
    rss_self, rss_children = _rusage_peak_bytes()
    return {
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "threshold": threshold,
        "n_jobs": n_jobs,
        "block_size": block_size,
        "generate_seconds": generate_seconds,
        "symmetrize_seconds": symmetrize_seconds,
        "edges_out": pruned.n_edges,
        "store_bytes": int(store.nbytes) if store is not None else 0,
        "peak_rss_bytes": rss_self,
        "peak_rss_children_bytes": rss_children,
        "metrics": registry.flat(),
    }


def _differential_block(
    n_nodes: int,
    threshold: float,
    block_size: int,
    shard_jobs: int,
    d_max: int | None,
    seed: int,
    workdir: Path,
) -> dict[str, Any]:
    """Shard-vs-monolithic identity on one mmap-backed graph.

    Runs ``apply_pruned`` serially and through ``shard_jobs`` shard
    workers on the same graph and compares the pruned adjacencies
    byte-for-byte (indptr, indices *and* data) — the acceptance
    criterion that the out-of-core fan-out is an execution strategy,
    not an approximation.
    """
    from repro.graph.generators import power_law_mmcsr
    from repro.symmetrize.degree_discounted import (
        DegreeDiscountedSymmetrization,
    )

    rng = np.random.default_rng(seed)
    graph = power_law_mmcsr(
        n_nodes, workdir / f"diff-{n_nodes}.mmcsr", rng, d_max=d_max
    )
    sym = DegreeDiscountedSymmetrization()
    t0 = time.perf_counter()
    mono = sym.apply_pruned(
        graph, threshold, block_size=block_size, n_jobs=None
    )
    monolithic_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    sharded = sym.apply_pruned(
        graph, threshold, block_size=block_size, n_jobs=shard_jobs
    )
    sharded_seconds = time.perf_counter() - t0
    a, b = mono.adjacency.tocsr(), sharded.adjacency.tocsr()
    identical = (
        a.shape == b.shape
        and a.indptr.tobytes() == b.indptr.tobytes()
        and a.indices.tobytes() == b.indices.tobytes()
        and a.data.tobytes() == b.data.tobytes()
    )
    return {
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "threshold": threshold,
        "shard_jobs": shard_jobs,
        "monolithic_seconds": monolithic_seconds,
        "sharded_seconds": sharded_seconds,
        "edges_out": mono.n_edges,
        "identical": identical,
    }


def run_scale_bench(
    sizes: Sequence[int] | None = None,
    threshold: float = DEFAULT_SCALE_THRESHOLD,
    n_jobs: int | None = 2,
    block_size: int = 4096,
    shard_jobs: int = 4,
    d_max: int | None = DEFAULT_SCALE_D_MAX,
    seed: int = 0,
    smoke: bool = False,
    with_differential: bool = True,
    workdir: str | Path | None = None,
) -> dict[str, Any]:
    """Run the out-of-core scale sweep; returns the results dict.

    Parameters
    ----------
    sizes:
        Node counts to bench, ascending (defaults depend on
        ``smoke``). Each size gets its own mmap-backed power-law
        graph and one symmetrize → prune timing point.
    threshold:
        Prune threshold for every point.
    n_jobs:
        Shard workers for the timing points (``None`` = serial).
    block_size:
        Rows per shard block — the knob that bounds worker RSS.
    shard_jobs:
        Worker count for the differential's sharded leg.
    d_max:
        Degree cap for the generated graphs (see
        :data:`DEFAULT_SCALE_D_MAX`; ``None`` = the generator's
        ``4·√n`` default, which makes the curve superlinear).
    seed:
        Graph-generation seed.
    smoke:
        Bench one ~50k graph instead of 100k + 1M.
    with_differential:
        Run the shard-vs-monolithic identity check at the smallest
        benched size.
    workdir:
        Where the mmap stores are built (default: a temp directory,
        removed afterwards).
    """
    if sizes is None:
        sizes = SMOKE_SCALE_SIZES if smoke else DEFAULT_SCALE_SIZES
    if not sizes:
        raise ReproError("scale bench needs at least one size")
    if threshold <= 0:
        raise ReproError("scale bench needs a positive threshold")

    owns_workdir = workdir is None
    base = (
        Path(tempfile.mkdtemp(prefix="repro-scale-"))
        if owns_workdir
        else Path(workdir)
    )
    base.mkdir(parents=True, exist_ok=True)
    try:
        points = [
            _scale_point(
                int(n),
                float(threshold),
                n_jobs,
                block_size,
                d_max,
                seed,
                base,
            )
            for n in sorted(int(n) for n in sizes)
        ]
        differential = (
            _differential_block(
                min(int(n) for n in sizes),
                float(threshold),
                block_size,
                shard_jobs,
                d_max,
                seed,
                base,
            )
            if with_differential
            else None
        )
    finally:
        if owns_workdir:
            shutil.rmtree(base, ignore_errors=True)

    regression = _regression_block(points, differential)
    return {
        "schema": SCALE_SCHEMA,
        "config": {
            "sizes": [int(s) for s in sizes],
            "threshold": float(threshold),
            "n_jobs": n_jobs,
            "block_size": block_size,
            "shard_jobs": shard_jobs,
            "d_max": d_max,
            "seed": seed,
            "smoke": smoke,
            "with_differential": with_differential,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
        },
        "points": points,
        "differential": differential,
        "regression": regression,
    }


def _regression_block(
    points: list[dict[str, Any]],
    differential: dict[str, Any] | None,
) -> dict[str, Any]:
    """Pass/fail: RSS under the floor, differential identical."""
    observed = max(
        max(p["peak_rss_bytes"], p["peak_rss_children_bytes"])
        for p in points
    )
    at = max(p["n_nodes"] for p in points)
    failures = []
    if observed > MAX_PEAK_RSS_BYTES:
        failures.append(
            f"peak RSS {observed / 1024**3:.2f} GiB at {at} nodes "
            f"exceeds the {MAX_PEAK_RSS_BYTES / 1024**3:.0f} GiB floor"
        )
    if differential is not None and not differential["identical"]:
        failures.append(
            "sharded output differs from the monolithic path at "
            f"{differential['n_nodes']} nodes"
        )
    return {
        "thresholds": {
            "max_peak_rss_bytes": MAX_PEAK_RSS_BYTES,
            "at": at,
        },
        "observed_peak_rss_bytes": observed,
        "differential_identical": (
            None if differential is None else differential["identical"]
        ),
        "passed": not failures,
        "failures": failures,
    }


def scale_manifest(results: dict[str, Any]):
    """Condense scale-bench ``results`` into a :class:`RunManifest`."""
    from repro.obs.manifest import RunManifest, collect_environment

    metrics: dict[str, float] = {}
    timings: dict[str, float] = {}
    for point in results["points"]:
        tag = f"scale@{point['n_nodes']}"
        timings[f"{tag}_generate_seconds"] = float(
            point["generate_seconds"]
        )
        timings[f"{tag}_symmetrize_seconds"] = float(
            point["symmetrize_seconds"]
        )
        metrics[f"{tag}.peak_rss_bytes"] = float(point["peak_rss_bytes"])
        for name, value in point.get("metrics", {}).items():
            metrics[f"{tag}.{name}"] = float(value)
    reg = results["regression"]
    metrics["regression_passed"] = float(bool(reg["passed"]))
    metrics["observed_peak_rss_bytes"] = float(
        reg["observed_peak_rss_bytes"]
    )
    diff = results.get("differential")
    if diff is not None:
        metrics["differential_identical"] = float(bool(diff["identical"]))
        timings["differential_monolithic_seconds"] = float(
            diff["monolithic_seconds"]
        )
        timings["differential_sharded_seconds"] = float(
            diff["sharded_seconds"]
        )
    return RunManifest(
        kind="bench",
        name="bench-scale",
        config=dict(results["config"]),
        dataset={
            "sizes": list(results["config"]["sizes"]),
            "generator": "power_law_mmcsr",
        },
        environment=collect_environment(),
        seed=results["config"].get("seed"),
        metrics=metrics,
        cache={"enabled": False},
        timings=timings,
    )


def format_scale_summary(results: dict[str, Any]) -> str:
    """Human-readable table of the scale points and the verdict."""
    lines = [
        f"{'nodes':>9} {'edges':>10} {'gen_s':>8} {'sym_s':>9} "
        f"{'edges_out':>10} {'rss_self':>9} {'rss_kids':>9}"
    ]
    for p in results["points"]:
        lines.append(
            f"{p['n_nodes']:>9} {p['n_edges']:>10} "
            f"{p['generate_seconds']:>8.2f} "
            f"{p['symmetrize_seconds']:>9.2f} {p['edges_out']:>10} "
            f"{p['peak_rss_bytes'] / 1024**2:>8.0f}M "
            f"{p['peak_rss_children_bytes'] / 1024**2:>8.0f}M"
        )
        m = p.get("metrics", {})
        if "shard_count" in m:
            lines.append(
                f"{'':>9}   shards={m['shard_count']:g} "
                f"spilled={m.get('shard_bytes_spilled', 0) / 1024**2:.1f}M"
            )
    diff = results.get("differential")
    if diff is not None:
        lines.append("")
        lines.append(
            f"differential @{diff['n_nodes']} nodes: "
            f"monolithic {diff['monolithic_seconds']:.2f}s vs "
            f"{diff['shard_jobs']}-shard {diff['sharded_seconds']:.2f}s "
            f"(identical={'yes' if diff['identical'] else 'NO'})"
        )
    reg = results["regression"]
    verdict = "PASS" if reg["passed"] else "FAIL"
    lines.append(
        f"regression: {verdict} "
        f"(peak RSS {reg['observed_peak_rss_bytes'] / 1024**3:.2f} GiB, "
        f"floor {reg['thresholds']['max_peak_rss_bytes'] / 1024**3:.0f} "
        f"GiB at {reg['thresholds']['at']} nodes)"
    )
    for failure in reg["failures"]:
        lines.append(f"  - {failure}")
    return "\n".join(lines)
