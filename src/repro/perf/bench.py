"""The ``repro bench`` harness: stage-level perf on synthetic graphs.

Runs the degree-discounted symmetrize + cluster pipeline on synthetic
power-law digraphs across sizes, prune thresholds and all-pairs
backends, and emits a machine-readable ``BENCH_allpairs.json`` so the
perf trajectory is visible across PRs:

- **symmetrize runs** time
  :meth:`~repro.symmetrize.DegreeDiscountedSymmetrization.apply_pruned`
  per backend and capture the engine counters (candidate pairs,
  pruned pairs, indexed nnz) from the :mod:`repro.perf` recorder;
- **cluster runs** time MLR-MCL on the vectorized backend's output
  and record its convergence metrics (iteration count, final prune
  fraction) from the :mod:`repro.obs` metrics registry;
- the **regression block** encodes the thresholds future PRs are held
  to (minimum vectorized-over-python speedup at the largest benched
  size) together with whether this run passed them.

``smoke=True`` shrinks the sweep to a single 2 000-node graph at
threshold 0.5 so the whole harness runs in seconds — that mode is
wired into the test suite (``tests/test_perf.py``) to keep the JSON
schema and the backend ordering honest on every run.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Sequence

import numpy as np
import scipy

from repro.exceptions import ReproError
from repro.obs.metrics import MetricsRegistry, metrics_active
from repro.perf.stopwatch import PerfRecorder, recording

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_SIZES",
    "DEFAULT_THRESHOLDS",
    "SMOKE_SIZES",
    "SMOKE_THRESHOLDS",
    "REQUIRED_RUN_KEYS",
    "run_bench",
    "write_bench",
    "bench_manifest",
    "format_summary",
]

#: Schema identifier embedded in the JSON for forward compatibility.
#: v2 added the per-run ``"metrics"`` key (observability registry
#: snapshot: MCL iteration counts, prune fractions, engine totals).
#: v3 added the top-level ``"cache"`` block (cold-vs-warm artifact
#: cache sweep: seconds, speedup, hit/miss counters).
BENCH_SCHEMA = "repro-bench-allpairs/v3"

#: Full-sweep defaults: sizes bracket the regime where the pure-Python
#: engine is still tolerable; thresholds bracket the Table-3 operating
#: range (dense, medium, heavily-pruned).
DEFAULT_SIZES = (1_000, 3_000, 10_000)
DEFAULT_THRESHOLDS = (0.1, 0.25, 0.5)

#: Smoke-mode sweep: one size/threshold pair, runs in seconds.
SMOKE_SIZES = (2_000,)
SMOKE_THRESHOLDS = (0.5,)

#: Keys every entry of ``results["runs"]`` must carry (asserted by the
#: smoke test so downstream consumers can rely on them).
REQUIRED_RUN_KEYS = frozenset(
    {
        "kind",
        "backend",
        "n_nodes",
        "n_edges",
        "threshold",
        "seconds",
        "edges_out",
        "counters",
        "metrics",
    }
)

#: Vectorized-over-python speedup floor at the largest benched size.
FULL_MIN_SPEEDUP = 5.0
SMOKE_MIN_SPEEDUP = 1.0


def _bench_graph(n_nodes: int, seed: int):
    from repro.graph.generators import power_law_digraph

    rng = np.random.default_rng(seed)
    return power_law_digraph(n_nodes, rng)


def _symmetrize_run(
    sym, graph, threshold: float, backend: str, n_jobs: int | None
) -> tuple[dict[str, Any], Any]:
    recorder = PerfRecorder()
    registry = MetricsRegistry()
    with recording(recorder), metrics_active(registry):
        t0 = time.perf_counter()
        result = sym.apply_pruned(
            graph, threshold, backend=backend, n_jobs=n_jobs
        )
        seconds = time.perf_counter() - t0
    counters = {
        name: dict(stage.counters)
        for name, stage in recorder.stages.items()
        if stage.counters
    }
    return {
        "kind": "symmetrize",
        "backend": backend,
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "threshold": threshold,
        "seconds": seconds,
        "edges_out": result.n_edges,
        "counters": counters,
        "metrics": registry.flat(),
    }, result


def _cluster_run(graph, symmetrized, threshold: float) -> dict[str, Any]:
    from repro.cluster.mlrmcl import MLRMCL

    recorder = PerfRecorder()
    registry = MetricsRegistry()
    with recording(recorder), metrics_active(registry):
        t0 = time.perf_counter()
        clustering = MLRMCL().cluster(symmetrized)
        seconds = time.perf_counter() - t0
    counters = {
        name: dict(stage.counters)
        for name, stage in recorder.stages.items()
        if stage.counters
    }
    return {
        "kind": "cluster",
        "backend": "mlrmcl",
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "threshold": threshold,
        "seconds": seconds,
        "edges_out": int(clustering.n_clusters),
        "counters": counters,
        "metrics": registry.flat(),
    }


def _cache_sweep_block(
    n_nodes: int, thresholds: Sequence[float], seed: int
) -> dict[str, Any]:
    """Cold-vs-warm ``sweep_threshold`` through one artifact cache.

    The cold pass computes and stores the shared symmetrization
    artifact plus one pruned artifact per threshold; the warm pass is
    served entirely from the cache, so its wall-clock isolates the
    clusterer. The block records both timings, the hit/miss counters
    and whether the two passes produced identical sweeps — the
    engine-cache acceptance criteria, measured where perf trends are
    tracked.
    """
    from repro.engine.cache import ArtifactCache
    from repro.pipeline.sweep import sweep_threshold

    graph = _bench_graph(int(n_nodes), seed)
    cache = ArtifactCache()
    passes = []
    points = []
    for _ in range(2):
        t0 = time.perf_counter()
        points.append(
            sweep_threshold(
                graph,
                thresholds=[float(t) for t in thresholds],
                clusterer="mlrmcl",
                n_clusters=20,
                cache=cache,
            )
        )
        passes.append(time.perf_counter() - t0)
    cold, warm = points
    identical = len(cold) == len(warm) and all(
        a.n_edges == b.n_edges and a.n_clusters == b.n_clusters
        for a, b in zip(cold, warm)
    )
    return {
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "thresholds": [float(t) for t in thresholds],
        "cold_seconds": passes[0],
        "warm_seconds": passes[1],
        "speedup": passes[0] / max(passes[1], 1e-12),
        "hits": cache.hits,
        "misses": cache.misses,
        "warm_all_hits": all(bool(p.cache_hit) for p in warm),
        "identical": identical,
    }


def run_bench(
    sizes: Sequence[int] | None = None,
    thresholds: Sequence[float] | None = None,
    backends: Sequence[str] = ("python", "vectorized"),
    n_jobs: int | None = None,
    seed: int = 0,
    smoke: bool = False,
    with_cluster: bool = True,
    with_cache_sweep: bool = True,
) -> dict[str, Any]:
    """Run the symmetrize + cluster sweep; returns the results dict.

    Parameters
    ----------
    sizes, thresholds:
        Node counts and prune thresholds to sweep (defaults depend on
        ``smoke``).
    backends:
        All-pairs backends to time; ``"python"`` must be present for
        speedups to be reported.
    n_jobs:
        Forwarded to the vectorized engine's block fan-out.
    seed:
        Graph-generation seed (one graph per size, shared across
        thresholds and backends).
    smoke:
        Use the seconds-scale smoke sweep and the lenient regression
        floor (vectorized merely must not be slower than python).
    with_cluster:
        Also time MLR-MCL on the vectorized backend's output.
    with_cache_sweep:
        Also run the cold-vs-warm artifact-cache sweep (the ``"cache"``
        block) at the largest benched size.
    """
    from repro.symmetrize.degree_discounted import (
        DegreeDiscountedSymmetrization,
    )

    if sizes is None:
        sizes = SMOKE_SIZES if smoke else DEFAULT_SIZES
    if thresholds is None:
        thresholds = SMOKE_THRESHOLDS if smoke else DEFAULT_THRESHOLDS
    if not sizes or not thresholds or not backends:
        raise ReproError("bench needs at least one size/threshold/backend")
    sym = DegreeDiscountedSymmetrization()
    min_speedup = SMOKE_MIN_SPEEDUP if smoke else FULL_MIN_SPEEDUP

    runs: list[dict[str, Any]] = []
    speedups: dict[str, float] = {}
    for n_nodes in sizes:
        graph = _bench_graph(int(n_nodes), seed)
        for threshold in thresholds:
            by_backend: dict[str, float] = {}
            vec_output = None
            for backend in backends:
                run, symmetrized = _symmetrize_run(
                    sym, graph, float(threshold), backend, n_jobs
                )
                runs.append(run)
                by_backend[backend] = run["seconds"]
                if backend == "vectorized":
                    vec_output = symmetrized
            if "python" in by_backend and "vectorized" in by_backend:
                key = f"{int(n_nodes)}@{float(threshold):g}"
                speedups[key] = by_backend["python"] / max(
                    by_backend["vectorized"], 1e-12
                )
            if with_cluster and vec_output is not None:
                if vec_output.n_edges > 0:
                    runs.append(
                        _cluster_run(graph, vec_output, float(threshold))
                    )

    regression = _regression_block(
        speedups, sizes, thresholds, min_speedup
    )
    cache_block = (
        _cache_sweep_block(int(max(sizes)), thresholds, seed)
        if with_cache_sweep
        else None
    )
    return {
        "schema": BENCH_SCHEMA,
        "config": {
            "sizes": [int(s) for s in sizes],
            "thresholds": [float(t) for t in thresholds],
            "backends": list(backends),
            "n_jobs": n_jobs,
            "seed": seed,
            "smoke": smoke,
            "with_cluster": with_cluster,
            "with_cache_sweep": with_cache_sweep,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
        },
        "runs": runs,
        "speedups": speedups,
        "cache": cache_block,
        "regression": regression,
    }


def _regression_block(
    speedups: dict[str, float],
    sizes: Sequence[int],
    thresholds: Sequence[float],
    min_speedup: float,
) -> dict[str, Any]:
    """Pass/fail against the perf floor at the largest benched size.

    The floor binds at the largest size and highest threshold of the
    sweep — the regime the prefix filter is built for — so smaller,
    noisier configurations don't flap the verdict.
    """
    at = f"{int(max(sizes))}@{float(max(thresholds)):g}"
    observed = speedups.get(at)
    passed = observed is None or observed >= min_speedup
    failures = []
    if not passed:
        failures.append(
            f"vectorized speedup {observed:.2f}x at {at} is below the "
            f"{min_speedup:.2f}x floor"
        )
    return {
        "thresholds": {
            "min_speedup_vectorized": min_speedup,
            "at": at,
        },
        "observed_speedup": observed,
        "passed": passed,
        "failures": failures,
    }


def write_bench(results: dict[str, Any], path: str | Path) -> Path:
    """Serialize ``results`` to ``path`` (pretty-printed JSON)."""
    out = Path(path)
    out.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")
    return out


def bench_manifest(results: dict[str, Any]):
    """Condense a bench ``results`` dict into a :class:`RunManifest`.

    The manifest carries the sweep config, the aggregated per-kind
    metrics (summed counters, last-write gauges across runs) and one
    timing entry per run, so ``repro runs diff`` can compare two bench
    invocations the same way it compares two pipeline runs.
    """
    from repro.obs.manifest import RunManifest, collect_environment

    metrics: dict[str, float] = {}
    timings: dict[str, float] = {}
    for i, run in enumerate(results["runs"]):
        tag = f"{run['kind']}:{run['backend']}@{run['n_nodes']}"
        timings[f"{tag}#{i}_seconds"] = float(run["seconds"])
        for name, value in run.get("metrics", {}).items():
            metrics[f"{run['kind']}.{name}"] = float(value)
    reg = results["regression"]
    metrics["regression_passed"] = float(bool(reg["passed"]))
    if reg["observed_speedup"] is not None:
        metrics["observed_speedup"] = float(reg["observed_speedup"])
    cache_block = results.get("cache")
    cache_section: dict[str, Any] = {"enabled": cache_block is not None}
    if cache_block is not None:
        cache_section.update(
            hits=int(cache_block["hits"]),
            misses=int(cache_block["misses"]),
        )
        timings["cache_sweep_cold_seconds"] = float(
            cache_block["cold_seconds"]
        )
        timings["cache_sweep_warm_seconds"] = float(
            cache_block["warm_seconds"]
        )
        metrics["cache_sweep_speedup"] = float(cache_block["speedup"])
    return RunManifest(
        kind="bench",
        name="bench-allpairs",
        config=dict(results["config"]),
        dataset={
            "sizes": list(results["config"]["sizes"]),
            "generator": "power_law_digraph",
        },
        environment=collect_environment(),
        seed=results["config"].get("seed"),
        metrics=metrics,
        cache=cache_section,
        timings=timings,
    )


def format_summary(results: dict[str, Any]) -> str:
    """Human-readable table of the benched runs and speedups."""
    lines = [
        f"{'kind':<11} {'backend':<11} {'nodes':>7} {'thr':>5} "
        f"{'seconds':>9} {'edges_out':>10}"
    ]
    for run in results["runs"]:
        lines.append(
            f"{run['kind']:<11} {run['backend']:<11} "
            f"{run['n_nodes']:>7} {run['threshold']:>5g} "
            f"{run['seconds']:>9.3f} {run['edges_out']:>10}"
        )
        if run["kind"] == "cluster":
            m = run.get("metrics", {})
            if "mcl_iterations" in m:
                lines.append(
                    f"{'':<11}   iterations={m['mcl_iterations']:g} "
                    f"prune_fraction={m.get('mcl_prune_fraction', 0.0):.3f}"
                )
    if results["speedups"]:
        lines.append("")
        for key, value in results["speedups"].items():
            lines.append(f"speedup[{key}] = {value:.2f}x (python/vectorized)")
    cache = results.get("cache")
    if cache is not None:
        lines.append("")
        lines.append(
            f"cache sweep @{cache['n_nodes']} nodes: "
            f"cold {cache['cold_seconds']:.3f}s -> "
            f"warm {cache['warm_seconds']:.3f}s "
            f"({cache['speedup']:.2f}x, hits={cache['hits']}, "
            f"misses={cache['misses']}, "
            f"identical={'yes' if cache['identical'] else 'NO'})"
        )
    reg = results["regression"]
    verdict = "PASS" if reg["passed"] else "FAIL"
    floor = reg["thresholds"]["min_speedup_vectorized"]
    lines.append(
        f"regression: {verdict} "
        f"(floor {floor:g}x at {reg['thresholds']['at']})"
    )
    for failure in reg["failures"]:
        lines.append(f"  - {failure}")
    return "\n".join(lines)
