"""Stage-level timing instrumentation.

Three layers, from low to high level:

- :class:`Stopwatch` — a re-entrant wall-clock timer (context manager
  or manual ``start``/``stop``) with attached counters.
- :class:`PerfRecorder` — an ordered collection of
  :class:`StageRecord` entries keyed by stage name; repeated records
  for the same stage accumulate (seconds and counters sum, calls
  count up), so a recorder spanning a whole sweep reports totals.
- The *ambient recorder* — a :mod:`contextvars`-based current
  recorder installed with :func:`recording`. Library code calls
  :func:`record_stage` / :func:`add_counters` unconditionally; both
  are no-ops when no recorder is active, so instrumentation costs two
  ``perf_counter`` calls and a context-variable read per stage.

The pipeline, the symmetrizations, the clusterers and the all-pairs
similarity engine all report through this module; the ``repro bench``
harness (:mod:`repro.perf.bench`) snapshots the recorder per run.
"""

from __future__ import annotations

import contextlib
import contextvars
import functools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "StageRecord",
    "PerfRecorder",
    "Stopwatch",
    "recording",
    "current_recorder",
    "record_stage",
    "add_counters",
    "timed",
]


@dataclass
class StageRecord:
    """Accumulated measurements for one named stage.

    Attributes
    ----------
    name:
        Stage identifier, conventionally ``"<layer>:<detail>"`` (e.g.
        ``"symmetrize:degree_discounted"``, ``"allpairs:vectorized"``).
    seconds:
        Total wall-clock time across all calls.
    calls:
        How many times the stage was recorded.
    counters:
        Summed numeric side-counters (``nnz_out``, ``candidate_pairs``,
        ``pruned_pairs``, ...).
    """

    name: str
    seconds: float = 0.0
    calls: int = 0
    counters: dict[str, float] = field(default_factory=dict)

    def merge(self, seconds: float, counters: dict[str, float]) -> None:
        """Fold one more measurement into this record."""
        self.seconds += float(seconds)
        self.calls += 1
        for key, value in counters.items():
            self.counters[key] = self.counters.get(key, 0.0) + float(value)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable view."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "calls": self.calls,
            "counters": dict(self.counters),
        }


class PerfRecorder:
    """Ordered per-stage accumulator of timings and counters.

    Examples
    --------
    >>> rec = PerfRecorder()
    >>> with recording(rec):
    ...     record_stage("demo", 0.5, items=3)
    ...     record_stage("demo", 0.25, items=1)
    >>> rec.stages["demo"].calls
    2
    >>> rec.stages["demo"].counters["items"]
    4.0
    """

    def __init__(self) -> None:
        self.stages: dict[str, StageRecord] = {}

    def record(self, stage: str, seconds: float = 0.0, **counters: float) -> None:
        """Add ``seconds`` (and counters) to ``stage``, creating it if new."""
        entry = self.stages.get(stage)
        if entry is None:
            entry = self.stages[stage] = StageRecord(stage)
        entry.merge(seconds, counters)

    def add_counters(self, stage: str, **counters: float) -> None:
        """Bump counters on ``stage`` without touching its call count."""
        entry = self.stages.get(stage)
        if entry is None:
            entry = self.stages[stage] = StageRecord(stage)
        for key, value in counters.items():
            entry.counters[key] = entry.counters.get(key, 0.0) + float(value)

    def total_seconds(self) -> float:
        """Sum of all stage durations."""
        return sum(s.seconds for s in self.stages.values())

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot: ``{"stages": [...], "total_seconds": ...}``."""
        return {
            "stages": [s.as_dict() for s in self.stages.values()],
            "total_seconds": self.total_seconds(),
        }

    def report(self) -> str:
        """Human-readable per-stage table."""
        if not self.stages:
            return "(no stages recorded)"
        width = max(len(name) for name in self.stages)
        lines = []
        for stage in self.stages.values():
            counters = ", ".join(
                f"{k}={stage.counters[k]:g}" for k in sorted(stage.counters)
            )
            suffix = f"  [{counters}]" if counters else ""
            lines.append(
                f"{stage.name:<{width}}  {stage.seconds:9.4f}s"
                f"  x{stage.calls}{suffix}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"PerfRecorder(stages={len(self.stages)})"


_CURRENT: contextvars.ContextVar[PerfRecorder | None] = contextvars.ContextVar(
    "repro_perf_recorder", default=None
)


def current_recorder() -> PerfRecorder | None:
    """The ambient recorder, or ``None`` when not recording."""
    return _CURRENT.get()


@contextlib.contextmanager
def recording(recorder: PerfRecorder | None = None) -> Iterator[PerfRecorder]:
    """Install ``recorder`` (or a fresh one) as the ambient recorder.

    Nested ``recording`` blocks shadow the outer recorder; the outer
    one is restored on exit.
    """
    rec = recorder if recorder is not None else PerfRecorder()
    token = _CURRENT.set(rec)
    try:
        yield rec
    finally:
        _CURRENT.reset(token)


def record_stage(stage: str, seconds: float, **counters: float) -> None:
    """Report a stage duration into the ambient recorder (no-op otherwise)."""
    rec = _CURRENT.get()
    if rec is not None:
        rec.record(stage, seconds, **counters)


def add_counters(stage: str, **counters: float) -> None:
    """Bump stage counters in the ambient recorder (no-op otherwise)."""
    rec = _CURRENT.get()
    if rec is not None:
        rec.add_counters(stage, **counters)


class Stopwatch:
    """Wall-clock timer with optional auto-reporting.

    Use as a context manager::

        with Stopwatch("symmetrize:dd") as sw:
            ...
            sw.count(nnz_out=matrix.nnz)
        # on exit, the elapsed time + counters were reported into the
        # ambient recorder under the stage name

    or manually with :meth:`start` / :meth:`stop` (re-entrant: the
    elapsed time accumulates across start/stop cycles). Construct with
    ``stage=None`` for a pure timer that reports nowhere.
    """

    def __init__(self, stage: str | None = None) -> None:
        self.stage = stage
        self.seconds = 0.0
        self.counters: dict[str, float] = {}
        self._started: float | None = None

    def start(self) -> "Stopwatch":
        """Begin (or resume) timing."""
        if self._started is None:
            self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        """Pause timing; returns the total elapsed seconds so far."""
        if self._started is not None:
            self.seconds += time.perf_counter() - self._started
            self._started = None
        return self.seconds

    def count(self, **counters: float) -> None:
        """Attach counters, summed into any prior values."""
        for key, value in counters.items():
            self.counters[key] = self.counters.get(key, 0.0) + float(value)

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently ticking."""
        return self._started is not None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
        if self.stage is not None:
            record_stage(self.stage, self.seconds, **self.counters)

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"Stopwatch(stage={self.stage!r}, {state}, {self.seconds:.4f}s)"


def timed(stage: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: report the wrapped function's wall time as ``stage``.

    The measurement goes to the ambient recorder; without one the
    overhead is two ``perf_counter`` calls.

    Examples
    --------
    >>> @timed("demo:square")
    ... def square(x):
    ...     return x * x
    >>> with recording() as rec:
    ...     _ = square(7)
    >>> rec.stages["demo:square"].calls
    1
    """

    def decorator(func: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            t0 = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                record_stage(stage, time.perf_counter() - t0)

        return wrapper

    return decorator
