"""Stage-level performance instrumentation and the bench harness.

The north-star of this reproduction is running "as fast as the
hardware allows" on web-scale graphs, which makes *measuring* each
pipeline stage a first-class concern. This package provides:

- :mod:`~repro.perf.stopwatch` — a :class:`Stopwatch` timer, a
  ``@timed`` decorator, and a :class:`PerfRecorder` that the pipeline,
  symmetrizations, clusterers and the all-pairs engine report into
  (per-stage wall time plus counters such as nnz in/out, candidate
  pairs generated, pairs pruned).
- :mod:`~repro.perf.bench` — the ``repro bench`` harness: a
  symmetrize + cluster sweep over synthetic power-law graphs across
  sizes and backends that emits ``BENCH_allpairs.json`` with
  per-backend timings and regression thresholds.
- :mod:`~repro.perf.scale_bench` — the ``repro bench --scale``
  harness: mmap-backed 100k/1M-node graphs through the out-of-core
  sharded symmetrize → prune path, emitting ``BENCH_scale.json``
  with timing points, peak-RSS high-water marks and a
  shard-vs-monolithic identity check.

Instrumentation is zero-configuration and near-zero overhead: stages
record into the *ambient* recorder installed by
:func:`~repro.perf.recording`, and recording calls are no-ops when no
recorder is active.

This package has since grown into the fuller observability layer in
:mod:`repro.obs` — hierarchical span tracing with Chrome
``trace_event`` export, a counters/gauges/histograms metrics registry
and run manifests — which re-exports the stopwatch API. New code
should import from :mod:`repro.obs`; this module remains the home of
the flat stage recorder and the bench harness.
"""

from repro.perf.stopwatch import (
    PerfRecorder,
    StageRecord,
    Stopwatch,
    add_counters,
    current_recorder,
    record_stage,
    recording,
    timed,
)

__all__ = [
    "PerfRecorder",
    "StageRecord",
    "Stopwatch",
    "add_counters",
    "current_recorder",
    "record_stage",
    "recording",
    "timed",
]
