"""The two-stage clustering pipeline of Figure 2.

Stage 1 symmetrizes the directed graph, stage 2 clusters the result
with an off-the-shelf undirected clusterer. The pipeline records both
stage timings separately, because the paper's speed claims concern the
*clustering* time on differently-symmetrized graphs (Figures 8–9,
Table 3) — degree-discounted graphs cluster 2–5x faster because they
have no hubs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.common import Clustering, GraphClusterer, get_clusterer
from repro.eval.fmeasure import average_f_score
from repro.eval.groundtruth import GroundTruth
from repro.exceptions import ClusteringError
from repro.graph.digraph import DirectedGraph
from repro.graph.ugraph import UndirectedGraph
from repro.perf.stopwatch import (
    PerfRecorder,
    current_recorder,
    record_stage,
    recording,
)
from repro.symmetrize.base import Symmetrization, get_symmetrization

__all__ = ["SymmetrizeClusterPipeline", "PipelineResult"]


@dataclass(frozen=True)
class PipelineResult:
    """Everything one pipeline run produced.

    Attributes
    ----------
    clustering:
        The stage-2 output.
    symmetrized:
        The stage-1 undirected graph (kept for inspection — edge
        counts, degree distributions, top edges).
    symmetrize_seconds, cluster_seconds:
        Wall-clock duration of each stage.
    average_f:
        §4.3 Avg-F in percent, when ground truth was supplied to
        :meth:`SymmetrizeClusterPipeline.run`; ``None`` otherwise.
    stages:
        Per-stage instrumentation snapshot (the
        :meth:`~repro.perf.PerfRecorder.as_dict` of the recorder that
        observed this run): wall time, call counts and counters such
        as nnz in/out, candidate-pair and pruned-pair totals. When the
        run happened inside an ambient :func:`repro.perf.recording`
        block the shared recorder accumulates across runs and this
        snapshot reflects the totals so far.
    """

    clustering: Clustering
    symmetrized: UndirectedGraph
    symmetrize_seconds: float
    cluster_seconds: float
    average_f: float | None
    stages: dict[str, Any] | None = field(default=None, compare=False)

    @property
    def total_seconds(self) -> float:
        """Sum of both stage durations."""
        return self.symmetrize_seconds + self.cluster_seconds


class SymmetrizeClusterPipeline:
    """Symmetrize a directed graph, then cluster it (Figure 2).

    Parameters
    ----------
    symmetrization:
        A :class:`~repro.symmetrize.Symmetrization` instance or
        registered name.
    clusterer:
        A :class:`~repro.cluster.GraphClusterer` instance or registered
        name.
    threshold:
        Prune threshold applied to the symmetrized matrix (§3.5).

    Examples
    --------
    >>> from repro.datasets import make_cora_like
    >>> ds = make_cora_like(n_nodes=400, n_categories=8, seed=1)
    >>> pipe = SymmetrizeClusterPipeline("degree_discounted", "metis")
    >>> result = pipe.run(ds.graph, n_clusters=8,
    ...                   ground_truth=ds.ground_truth)
    >>> result.clustering.n_clusters
    8
    """

    def __init__(
        self,
        symmetrization: str | Symmetrization,
        clusterer: str | GraphClusterer,
        threshold: float = 0.0,
    ) -> None:
        if isinstance(symmetrization, str):
            symmetrization = get_symmetrization(symmetrization)
        if isinstance(clusterer, str):
            clusterer = get_clusterer(clusterer)
        if not isinstance(symmetrization, Symmetrization):
            raise ClusteringError(
                "symmetrization must be a name or Symmetrization"
            )
        if not isinstance(clusterer, GraphClusterer):
            raise ClusteringError(
                "clusterer must be a name or GraphClusterer"
            )
        self.symmetrization = symmetrization
        self.clusterer = clusterer
        self.threshold = float(threshold)

    def symmetrize(self, graph: DirectedGraph) -> UndirectedGraph:
        """Run stage 1 only."""
        return self.symmetrization.apply(graph, threshold=self.threshold)

    def run(
        self,
        graph: DirectedGraph,
        n_clusters: int | None = None,
        ground_truth: GroundTruth | None = None,
        symmetrized: UndirectedGraph | None = None,
    ) -> PipelineResult:
        """Run the full pipeline.

        Parameters
        ----------
        graph:
            The directed input.
        n_clusters:
            Requested cluster count (advisory for MLR-MCL).
        ground_truth:
            When given, the result carries the §4.3 Avg-F score.
        symmetrized:
            Pass a pre-computed stage-1 output to amortize
            symmetrization across many stage-2 runs (the sweeps do
            this); its symmetrize time is then reported as 0.
        """
        recorder = current_recorder()
        if recorder is None:
            recorder = PerfRecorder()
        with recording(recorder):
            if symmetrized is None:
                t0 = time.perf_counter()
                symmetrized = self.symmetrize(graph)
                t_sym = time.perf_counter() - t0
                record_stage(
                    "pipeline:symmetrize",
                    t_sym,
                    nnz_in=graph.adjacency.nnz,
                    nnz_out=symmetrized.adjacency.nnz,
                )
            else:
                t_sym = 0.0
            t0 = time.perf_counter()
            clustering = self.clusterer.cluster(symmetrized, n_clusters)
            t_cluster = time.perf_counter() - t0
            record_stage(
                "pipeline:cluster",
                t_cluster,
                nnz_in=symmetrized.adjacency.nnz,
                n_clusters=clustering.n_clusters,
            )
        avg_f = (
            average_f_score(clustering, ground_truth)
            if ground_truth is not None
            else None
        )
        return PipelineResult(
            clustering=clustering,
            symmetrized=symmetrized,
            symmetrize_seconds=t_sym,
            cluster_seconds=t_cluster,
            average_f=avg_f,
            stages=recorder.as_dict(),
        )

    def __repr__(self) -> str:
        return (
            f"SymmetrizeClusterPipeline({self.symmetrization!r}, "
            f"{self.clusterer!r}, threshold={self.threshold})"
        )
