"""The two-stage clustering pipeline of Figure 2.

Stage 1 symmetrizes the directed graph, stage 2 clusters the result
with an off-the-shelf undirected clusterer. The pipeline records both
stage timings separately, because the paper's speed claims concern the
*clustering* time on differently-symmetrized graphs (Figures 8–9,
Table 3) — degree-discounted graphs cluster 2–5x faster because they
have no hubs.

Robustness modes
----------------
Real inputs arrive with dangling nodes, self-loops, duplicate edges
and occasionally malformed weights. The pipeline therefore runs in one
of two modes (see ``docs/robustness.md``):

- ``mode="strict"`` (default): inputs are validated up front and any
  error-severity violation raises a typed
  :class:`~repro.exceptions.ValidationError`; degenerate intermediate
  states (e.g. the all-dangling random-walk case) raise
  :class:`~repro.exceptions.SymmetrizationError`.
- ``mode="lenient"``: malformed weights are repaired (dropped) and
  degenerate states downgraded to warnings; every
  :class:`~repro.exceptions.ReproWarning` raised anywhere in the run
  is captured into the structured ``warnings`` channel of the
  :class:`PipelineResult` instead of reaching the user's warning
  filters.
"""

from __future__ import annotations

import contextlib
import time
import warnings as _warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.cluster.common import Clustering, GraphClusterer, get_clusterer
from repro.eval.fmeasure import average_f_score
from repro.eval.groundtruth import GroundTruth
from repro.exceptions import ClusteringError, PipelineError, ReproWarning
from repro.graph.digraph import DirectedGraph
from repro.graph.ugraph import UndirectedGraph
from repro.obs.manifest import (
    RunManifest,
    append_manifest,
    collect_environment,
    fingerprint_graph,
)
from repro.obs.metrics import (
    MetricsRegistry,
    current_metrics,
    metric_inc,
    metric_set,
    metrics_active,
)
from repro.obs.trace import Tracer, current_tracer, span, tracing
from repro.perf.stopwatch import (
    PerfRecorder,
    current_recorder,
    record_stage,
    recording,
)
from repro.symmetrize.base import Symmetrization, get_symmetrization
from repro.validate.invariants import (
    repair_graph,
    strictness,
    validate_directed_graph,
    validate_undirected_graph,
)

__all__ = [
    "SymmetrizeClusterPipeline",
    "PipelineResult",
    "PipelineWarning",
    "PIPELINE_MODES",
]

#: Recognized pipeline robustness modes.
PIPELINE_MODES = ("strict", "lenient")


@dataclass(frozen=True)
class PipelineWarning:
    """One structured warning captured during a pipeline run.

    Attributes
    ----------
    stage:
        Which pipeline stage emitted it: ``"validate"``,
        ``"symmetrize"`` or ``"cluster"``.
    code:
        Machine-readable identifier from the originating
        :class:`~repro.exceptions.ReproWarning` (e.g.
        ``"all_dangling"``, ``"repaired_weights"``).
    message:
        Human-readable description.
    """

    stage: str
    code: str
    message: str


@dataclass(frozen=True)
class PipelineResult:
    """Everything one pipeline run produced.

    Attributes
    ----------
    clustering:
        The stage-2 output.
    symmetrized:
        The stage-1 undirected graph (kept for inspection — edge
        counts, degree distributions, top edges).
    symmetrize_seconds, cluster_seconds:
        Wall-clock duration of each stage.
    average_f:
        §4.3 Avg-F in percent, when ground truth was supplied to
        :meth:`SymmetrizeClusterPipeline.run`; ``None`` otherwise.
    stages:
        Per-stage instrumentation snapshot (the
        :meth:`~repro.perf.PerfRecorder.as_dict` of the recorder that
        observed this run): wall time, call counts and counters such
        as nnz in/out, candidate-pair and pruned-pair totals. When the
        run happened inside an ambient :func:`repro.perf.recording`
        block the shared recorder accumulates across runs and this
        snapshot reflects the totals so far.
    warnings:
        Structured :class:`PipelineWarning` records for every
        :class:`~repro.exceptions.ReproWarning` the run emitted —
        repairs applied, degenerate structure detected, convergence
        shortfalls. Empty on clean inputs.
    trace:
        Span-forest snapshot (``{"spans": [...], "max_depth": n}``)
        when the run was traced (``trace=True`` or an ambient
        :func:`repro.obs.tracing` block); ``None`` otherwise.
    metrics:
        :meth:`~repro.obs.MetricsRegistry.as_dict` snapshot of the
        counters/gauges/histograms the run emitted, under the same
        condition; ``None`` otherwise.
    manifest:
        The :class:`~repro.obs.RunManifest` provenance record, built
        whenever the run was traced and appended to the run log when
        ``manifest_path`` was given.
    """

    clustering: Clustering
    symmetrized: UndirectedGraph
    symmetrize_seconds: float
    cluster_seconds: float
    average_f: float | None
    stages: dict[str, Any] | None = field(default=None, compare=False)
    warnings: tuple[PipelineWarning, ...] = field(
        default=(), compare=False
    )
    trace: dict[str, Any] | None = field(default=None, compare=False)
    metrics: dict[str, Any] | None = field(default=None, compare=False)
    manifest: RunManifest | None = field(default=None, compare=False)

    @property
    def total_seconds(self) -> float:
        """Sum of both stage durations."""
        return self.symmetrize_seconds + self.cluster_seconds

    def warning_codes(self) -> tuple[str, ...]:
        """The distinct warning codes, in order of first appearance."""
        seen: list[str] = []
        for w in self.warnings:
            if w.code not in seen:
                seen.append(w.code)
        return tuple(seen)


@contextlib.contextmanager
def _capture_stage(
    stage: str, records: list[PipelineWarning]
) -> Iterator[None]:
    """Record every ReproWarning raised in the block as a structured
    :class:`PipelineWarning`; re-emit third-party warnings untouched."""
    with _warnings.catch_warnings(record=True) as caught:
        _warnings.simplefilter("always")
        yield
    for item in caught:
        if isinstance(item.message, ReproWarning):
            records.append(
                PipelineWarning(
                    stage=stage,
                    code=getattr(item.message, "code", "generic"),
                    message=str(item.message),
                )
            )
        else:
            _warnings.warn_explicit(
                item.message, item.category, item.filename, item.lineno
            )


class SymmetrizeClusterPipeline:
    """Symmetrize a directed graph, then cluster it (Figure 2).

    Parameters
    ----------
    symmetrization:
        A :class:`~repro.symmetrize.Symmetrization` instance or
        registered name.
    clusterer:
        A :class:`~repro.cluster.GraphClusterer` instance or registered
        name.
    threshold:
        Prune threshold applied to the symmetrized matrix (§3.5).
    mode:
        ``"strict"`` (default) raises typed errors on malformed or
        degenerate inputs; ``"lenient"`` repairs what it can, warns
        about the rest, and records everything on
        :attr:`PipelineResult.warnings`.

    Examples
    --------
    >>> from repro.datasets import make_cora_like
    >>> ds = make_cora_like(n_nodes=400, n_categories=8, seed=1)
    >>> pipe = SymmetrizeClusterPipeline("degree_discounted", "metis")
    >>> result = pipe.run(ds.graph, n_clusters=8,
    ...                   ground_truth=ds.ground_truth)
    >>> result.clustering.n_clusters
    8
    """

    def __init__(
        self,
        symmetrization: str | Symmetrization,
        clusterer: str | GraphClusterer,
        threshold: float = 0.0,
        mode: str = "strict",
    ) -> None:
        if isinstance(symmetrization, str):
            symmetrization = get_symmetrization(symmetrization)
        if isinstance(clusterer, str):
            clusterer = get_clusterer(clusterer)
        if not isinstance(symmetrization, Symmetrization):
            raise ClusteringError(
                "symmetrization must be a name or Symmetrization"
            )
        if not isinstance(clusterer, GraphClusterer):
            raise ClusteringError(
                "clusterer must be a name or GraphClusterer"
            )
        if mode not in PIPELINE_MODES:
            raise PipelineError(
                f"unknown pipeline mode {mode!r}; "
                f"expected one of {PIPELINE_MODES}"
            )
        self.symmetrization = symmetrization
        self.clusterer = clusterer
        self.threshold = float(threshold)
        self.mode = mode

    def symmetrize(self, graph: DirectedGraph) -> UndirectedGraph:
        """Run stage 1 only."""
        return self.symmetrization.apply(graph, threshold=self.threshold)

    def _validated_input(
        self, graph: DirectedGraph, records: list[PipelineWarning]
    ) -> DirectedGraph:
        """Validate (and in lenient mode repair) the directed input."""
        with _capture_stage("validate", records):
            report = validate_directed_graph(graph.adjacency, level="full")
            if not report.ok:
                if self.mode == "strict":
                    report.raise_errors()
                graph, repair_report = repair_graph(graph)
                repair_report.emit_warnings()
            report.emit_warnings()
        return graph

    def _validated_symmetrized(
        self,
        symmetrized: UndirectedGraph,
        records: list[PipelineWarning],
    ) -> UndirectedGraph:
        """Validate a caller-supplied stage-1 result before stage 2."""
        with _capture_stage("validate", records):
            report = validate_undirected_graph(
                symmetrized.adjacency, level="basic"
            )
            if not report.ok:
                if self.mode == "strict":
                    report.raise_errors()
                symmetrized, repair_report = repair_graph(symmetrized)
                repair_report.emit_warnings()
        return symmetrized

    def run(
        self,
        graph: DirectedGraph,
        n_clusters: int | None = None,
        ground_truth: GroundTruth | None = None,
        symmetrized: UndirectedGraph | None = None,
        trace: bool = False,
        manifest_path: str | Path | None = None,
    ) -> PipelineResult:
        """Run the full pipeline.

        Parameters
        ----------
        graph:
            The directed input.
        n_clusters:
            Requested cluster count (advisory for MLR-MCL).
        ground_truth:
            When given, the result carries the §4.3 Avg-F score.
        symmetrized:
            Pass a pre-computed stage-1 output to amortize
            symmetrization across many stage-2 runs (the sweeps do
            this); its symmetrize time is then reported as 0.
        trace:
            Record a hierarchical span tree and metrics snapshot for
            this run (see :mod:`repro.obs`) onto the result's
            ``trace``/``metrics``/``manifest`` fields. An ambient
            :func:`repro.obs.tracing` block enables this implicitly.
        manifest_path:
            Append the run's :class:`~repro.obs.RunManifest` to this
            JSONL run log (implies ``trace``).
        """
        recorder = current_recorder()
        if recorder is None:
            recorder = PerfRecorder()
        tracer = current_tracer()
        own_tracer = None
        if tracer is None and (trace or manifest_path is not None):
            own_tracer = tracer = Tracer()
        metrics = current_metrics()
        own_metrics = None
        if metrics is None and tracer is not None:
            own_metrics = metrics = MetricsRegistry()
        records: list[PipelineWarning] = []
        with contextlib.ExitStack() as stack:
            if own_tracer is not None:
                stack.enter_context(tracing(own_tracer))
            if own_metrics is not None:
                stack.enter_context(metrics_active(own_metrics))
            stack.enter_context(strictness(self.mode == "strict"))
            stack.enter_context(recording(recorder))
            root = stack.enter_context(span("pipeline"))
            root.set(
                symmetrization=self.symmetrization.name,
                clusterer=self.clusterer.name,
                threshold=self.threshold,
                mode=self.mode,
                n_nodes=graph.n_nodes,
                n_edges=graph.n_edges,
            )
            metric_inc("pipeline_runs_total")
            with span("validate"):
                graph = self._validated_input(graph, records)
            if symmetrized is None:
                t0 = time.perf_counter()
                with span("symmetrize"), _capture_stage(
                    "symmetrize", records
                ):
                    symmetrized = self.symmetrize(graph)
                t_sym = time.perf_counter() - t0
                record_stage(
                    "pipeline:symmetrize",
                    t_sym,
                    nnz_in=graph.adjacency.nnz,
                    nnz_out=symmetrized.adjacency.nnz,
                )
            else:
                with span("validate"):
                    symmetrized = self._validated_symmetrized(
                        symmetrized, records
                    )
                t_sym = 0.0
            t0 = time.perf_counter()
            with span("cluster"), _capture_stage("cluster", records):
                clustering = self.clusterer.cluster(
                    symmetrized, n_clusters
                )
            t_cluster = time.perf_counter() - t0
            record_stage(
                "pipeline:cluster",
                t_cluster,
                nnz_in=symmetrized.adjacency.nnz,
                n_clusters=clustering.n_clusters,
            )
            if ground_truth is not None:
                with span("evaluate"):
                    avg_f = average_f_score(clustering, ground_truth)
                metric_set("average_f", avg_f)
            else:
                avg_f = None
        trace_snapshot = (
            tracer.as_dict() if tracer is not None else None
        )
        metrics_snapshot = (
            metrics.as_dict() if metrics is not None else None
        )
        manifest = None
        if tracer is not None:
            manifest = self._build_manifest(
                graph,
                n_clusters,
                records,
                trace_snapshot,
                metrics_snapshot,
                t_sym,
                t_cluster,
            )
            if manifest_path is not None:
                append_manifest(manifest, manifest_path)
        return PipelineResult(
            clustering=clustering,
            symmetrized=symmetrized,
            symmetrize_seconds=t_sym,
            cluster_seconds=t_cluster,
            average_f=avg_f,
            stages=recorder.as_dict(),
            warnings=tuple(records),
            trace=trace_snapshot,
            metrics=metrics_snapshot,
            manifest=manifest,
        )

    def _build_manifest(
        self,
        graph: DirectedGraph,
        n_clusters: int | None,
        records: list[PipelineWarning],
        trace_snapshot: dict[str, Any] | None,
        metrics_snapshot: dict[str, Any] | None,
        t_sym: float,
        t_cluster: float,
    ) -> RunManifest:
        """Assemble the provenance record for one traced run."""
        # average_f is already in the metrics snapshot (set as a
        # gauge during the evaluate span); timings stay durations-only
        # so RunManifest.total_seconds means what it says.
        timings = {
            "symmetrize_seconds": t_sym,
            "cluster_seconds": t_cluster,
        }
        return RunManifest(
            kind="pipeline",
            name=f"{self.symmetrization.name}.{self.clusterer.name}",
            config={
                "symmetrization": self.symmetrization.name,
                "clusterer": self.clusterer.name,
                "threshold": self.threshold,
                "mode": self.mode,
                "n_clusters": n_clusters,
            },
            dataset=fingerprint_graph(graph),
            environment=collect_environment(),
            warnings=[
                {"stage": w.stage, "code": w.code, "message": w.message}
                for w in records
            ],
            trace=(trace_snapshot or {}).get("spans", []),
            metrics=metrics_snapshot or {},
            timings=timings,
        )

    def __repr__(self) -> str:
        return (
            f"SymmetrizeClusterPipeline({self.symmetrization!r}, "
            f"{self.clusterer!r}, threshold={self.threshold}, "
            f"mode={self.mode!r})"
        )
