"""The two-stage clustering pipeline of Figure 2.

Stage 1 symmetrizes the directed graph, stage 2 clusters the result
with an off-the-shelf undirected clusterer. The pipeline records both
stage timings separately, because the paper's speed claims concern the
*clustering* time on differently-symmetrized graphs (Figures 8–9,
Table 3) — degree-discounted graphs cluster 2–5x faster because they
have no hubs.

Since the stage-graph refactor this class is a thin facade over the
execution engine (:mod:`repro.engine`): it assembles a
:class:`~repro.engine.Plan` of validate → symmetrize → cluster →
evaluate stages and hands it to an :class:`~repro.engine.Executor`,
which owns per-stage validation strictness, tracing spans, warning
capture, timing and the content-addressed artifact cache. Results,
traces, metrics and manifests are unchanged from the monolithic
implementation; the facade exists so ``pipe.run(...)`` keeps working
untouched while sweeps and experiment runners share the same engine.

Robustness modes
----------------
Real inputs arrive with dangling nodes, self-loops, duplicate edges
and occasionally malformed weights. The pipeline therefore runs in one
of two modes (see ``docs/robustness.md``):

- ``mode="strict"`` (default): inputs are validated up front and any
  error-severity violation raises a typed
  :class:`~repro.exceptions.ValidationError`; degenerate intermediate
  states (e.g. the all-dangling random-walk case) raise
  :class:`~repro.exceptions.SymmetrizationError`.
- ``mode="lenient"``: malformed weights are repaired (dropped) and
  degenerate states downgraded to warnings; every
  :class:`~repro.exceptions.ReproWarning` raised anywhere in the run
  is captured into the structured ``warnings`` channel of the
  :class:`PipelineResult` instead of reaching the user's warning
  filters.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.cluster.common import Clustering, GraphClusterer, get_clusterer
from repro.engine.cache import ArtifactCache
from repro.engine.executor import (
    EXECUTION_MODES,
    ExecutionResult,
    Executor,
    PipelineWarning,
)
from repro.engine.journal import JournalReplay, RunJournal
from repro.engine.plan import Plan
from repro.engine.policy import Budget, RetryPolicy
from repro.engine.stages import (
    ClusterStage,
    EvaluateStage,
    SymmetrizeStage,
    ValidateInputStage,
    ValidateSymmetrizedStage,
)
from repro.eval.groundtruth import GroundTruth
from repro.exceptions import ClusteringError, PipelineError
from repro.graph.digraph import DirectedGraph
from repro.graph.ugraph import UndirectedGraph
from repro.obs.manifest import (
    RunManifest,
    append_manifest,
    collect_environment,
    fingerprint_graph,
)
from repro.obs.metrics import (
    MetricsRegistry,
    current_metrics,
    metric_inc,
    metrics_active,
)
from repro.obs.trace import Tracer, current_tracer, span, tracing
from repro.perf.stopwatch import (
    PerfRecorder,
    current_recorder,
    recording,
)
from repro.symmetrize.base import Symmetrization, get_symmetrization

__all__ = [
    "SymmetrizeClusterPipeline",
    "PipelineResult",
    "PipelineWarning",
    "PIPELINE_MODES",
]

#: Recognized pipeline robustness modes.
PIPELINE_MODES = EXECUTION_MODES


@dataclass(frozen=True)
class PipelineResult:
    """Everything one pipeline run produced.

    Attributes
    ----------
    clustering:
        The stage-2 output.
    symmetrized:
        The stage-1 undirected graph (kept for inspection — edge
        counts, degree distributions, top edges).
    symmetrize_seconds, cluster_seconds:
        Wall-clock duration of each stage.
    average_f:
        §4.3 Avg-F in percent, when ground truth was supplied to
        :meth:`SymmetrizeClusterPipeline.run`; ``None`` otherwise.
    stages:
        Per-stage instrumentation snapshot (the
        :meth:`~repro.perf.PerfRecorder.as_dict` of the recorder that
        observed this run): wall time, call counts and counters such
        as nnz in/out, candidate-pair and pruned-pair totals. When the
        run happened inside an ambient :func:`repro.perf.recording`
        block the shared recorder accumulates across runs and this
        snapshot reflects the totals so far.
    warnings:
        Structured :class:`PipelineWarning` records for every
        :class:`~repro.exceptions.ReproWarning` the run emitted —
        repairs applied, degenerate structure detected, convergence
        shortfalls. Empty on clean inputs.
    trace:
        Span-forest snapshot (``{"spans": [...], "max_depth": n}``)
        when the run was traced (``trace=True`` or an ambient
        :func:`repro.obs.tracing` block); ``None`` otherwise.
    metrics:
        :meth:`~repro.obs.MetricsRegistry.as_dict` snapshot of the
        counters/gauges/histograms the run emitted, under the same
        condition; ``None`` otherwise.
    manifest:
        The :class:`~repro.obs.RunManifest` provenance record, built
        whenever the run was traced and appended to the run log when
        ``manifest_path`` was given.
    cache:
        Artifact-cache provenance of the run: ``{"enabled": bool,
        "hits": n, "misses": n, "artifact_keys": [...]}``. All-zero
        with ``enabled=False`` when no cache was installed.
    fault_tolerance:
        Fault-tolerance provenance: the journal path and run id when
        the run was journaled, whether it resumed a prior journal,
        and the ``stage_retries`` / ``stages_resumed`` totals from
        :meth:`~repro.engine.ExecutionResult.fault_summary`.
    tuning:
        Autotuning provenance: ``{"enabled": False}`` for untuned
        runs; for ``tuning="auto"`` runs the serialized
        :class:`~repro.tune.planner.PlanDecision` — decision source,
        chosen vs. default plan knobs, predicted stage seconds and
        the graph features the planner conditioned on.
    """

    clustering: Clustering
    symmetrized: UndirectedGraph
    symmetrize_seconds: float
    cluster_seconds: float
    average_f: float | None
    stages: dict[str, Any] | None = field(default=None, compare=False)
    warnings: tuple[PipelineWarning, ...] = field(
        default=(), compare=False
    )
    trace: dict[str, Any] | None = field(default=None, compare=False)
    metrics: dict[str, Any] | None = field(default=None, compare=False)
    manifest: RunManifest | None = field(default=None, compare=False)
    cache: dict[str, Any] | None = field(default=None, compare=False)
    fault_tolerance: dict[str, Any] | None = field(
        default=None, compare=False
    )
    tuning: dict[str, Any] | None = field(default=None, compare=False)

    @property
    def total_seconds(self) -> float:
        """Sum of both stage durations."""
        return self.symmetrize_seconds + self.cluster_seconds

    def warning_codes(self) -> tuple[str, ...]:
        """The distinct warning codes, in order of first appearance."""
        seen: list[str] = []
        for w in self.warnings:
            if w.code not in seen:
                seen.append(w.code)
        return tuple(seen)


class SymmetrizeClusterPipeline:
    """Symmetrize a directed graph, then cluster it (Figure 2).

    Parameters
    ----------
    symmetrization:
        A :class:`~repro.symmetrize.Symmetrization` instance or
        registered name.
    clusterer:
        A :class:`~repro.cluster.GraphClusterer` instance or registered
        name.
    threshold:
        Prune threshold applied to the symmetrized matrix (§3.5).
    mode:
        ``"strict"`` (default) raises typed errors on malformed or
        degenerate inputs; ``"lenient"`` repairs what it can, warns
        about the rest, and records everything on
        :attr:`PipelineResult.warnings`.
    cache:
        Optional :class:`~repro.engine.ArtifactCache` consulted for
        the symmetrize stage on every :meth:`run`. When omitted, an
        ambient :func:`repro.engine.artifact_cache` block (if any)
        applies; otherwise caching is off and behavior is identical
        to the pre-engine pipeline.
    tuning:
        ``None`` (default) keeps the hand-set configuration.
        ``"auto"`` lets the fitted cost model (:mod:`repro.tune`,
        ``tuning/model.json``) choose the all-pairs backend, block
        size, ``n_jobs``, storage and cache sizing per run; the
        decision is recorded on :attr:`PipelineResult.tuning` and in
        the manifest's v4 ``tuning`` section. A
        :class:`~repro.tune.Planner` / :class:`~repro.tune.
        PlanDecision` pins the behavior explicitly.

    Examples
    --------
    >>> from repro.datasets import make_cora_like
    >>> ds = make_cora_like(n_nodes=400, n_categories=8, seed=1)
    >>> pipe = SymmetrizeClusterPipeline("degree_discounted", "metis")
    >>> result = pipe.run(ds.graph, n_clusters=8,
    ...                   ground_truth=ds.ground_truth)
    >>> result.clustering.n_clusters
    8
    """

    def __init__(
        self,
        symmetrization: str | Symmetrization,
        clusterer: str | GraphClusterer,
        threshold: float = 0.0,
        mode: str = "strict",
        cache: ArtifactCache | None = None,
        tuning: Any = None,
    ) -> None:
        if isinstance(symmetrization, str):
            symmetrization = get_symmetrization(symmetrization)
        if isinstance(clusterer, str):
            clusterer = get_clusterer(clusterer)
        if not isinstance(symmetrization, Symmetrization):
            raise ClusteringError(
                "symmetrization must be a name or Symmetrization"
            )
        if not isinstance(clusterer, GraphClusterer):
            raise ClusteringError(
                "clusterer must be a name or GraphClusterer"
            )
        if mode not in PIPELINE_MODES:
            raise PipelineError(
                f"unknown pipeline mode {mode!r}; "
                f"expected one of {PIPELINE_MODES}"
            )
        if isinstance(tuning, str) and tuning != "auto":
            raise PipelineError(
                f"unknown tuning setting {tuning!r}; expected None, "
                "'auto', a Planner or a PlanDecision"
            )
        self.symmetrization = symmetrization
        self.clusterer = clusterer
        self.threshold = float(threshold)
        self.mode = mode
        self.cache = cache
        self.tuning = tuning

    def symmetrize(self, graph: DirectedGraph) -> UndirectedGraph:
        """Run stage 1 only."""
        return self.symmetrization.apply(graph, threshold=self.threshold)

    def plan(
        self,
        n_clusters: int | None = None,
        with_ground_truth: bool = False,
        precomputed_symmetrized: bool = False,
    ) -> Plan:
        """The :class:`~repro.engine.Plan` a :meth:`run` would execute.

        Exposed for inspection (``plan().describe()``) and for callers
        that drive the engine directly (sweeps, experiment runners).
        """
        stages: list[Any] = [ValidateInputStage()]
        initial = ["graph"]
        if precomputed_symmetrized:
            initial.append("symmetrized")
            stages.append(ValidateSymmetrizedStage())
        else:
            stages.append(
                SymmetrizeStage(
                    self.symmetrization, threshold=self.threshold
                )
            )
        stages.append(ClusterStage(self.clusterer, n_clusters))
        if with_ground_truth:
            initial.append("ground_truth")
            stages.append(EvaluateStage())
        return Plan(
            stages,
            initial=tuple(initial),
            name=f"{self.symmetrization.name}.{self.clusterer.name}",
        )

    def run(
        self,
        graph: DirectedGraph,
        n_clusters: int | None = None,
        ground_truth: GroundTruth | None = None,
        symmetrized: UndirectedGraph | None = None,
        trace: bool = False,
        manifest_path: str | Path | None = None,
        cache: ArtifactCache | None = None,
        journal: RunJournal | None = None,
        resume: JournalReplay | None = None,
        retry: RetryPolicy | None = None,
        budgets: dict[str, Budget] | None = None,
        plan_budget: Budget | None = None,
    ) -> PipelineResult:
        """Run the full pipeline.

        Parameters
        ----------
        graph:
            The directed input.
        n_clusters:
            Requested cluster count (advisory for MLR-MCL).
        ground_truth:
            When given, the result carries the §4.3 Avg-F score.
        symmetrized:
            Pass a pre-computed stage-1 output to amortize
            symmetrization across many stage-2 runs; its symmetrize
            time is then reported as 0. With an artifact cache
            installed the engine amortizes stage 1 automatically, so
            this parameter is mostly legacy.
        trace:
            Record a hierarchical span tree and metrics snapshot for
            this run (see :mod:`repro.obs`) onto the result's
            ``trace``/``metrics``/``manifest`` fields. An ambient
            :func:`repro.obs.tracing` block enables this implicitly.
        manifest_path:
            Append the run's :class:`~repro.obs.RunManifest` to this
            JSONL run log (implies ``trace``).
        cache:
            Artifact cache for this run, overriding the
            constructor-level and ambient caches.
        journal:
            Write-ahead :class:`~repro.engine.RunJournal` recording
            per-stage progress for crash recovery; ``None`` falls
            back to the ambient :func:`repro.engine.run_journal`
            block, if any.
        resume:
            :class:`~repro.engine.JournalReplay` of an interrupted
            run: recorded stages are served from the artifact cache
            instead of recomputed.
        retry:
            :class:`~repro.engine.RetryPolicy` for transient stage
            failures (``None`` disables retries).
        budgets:
            Per-stage :class:`~repro.engine.Budget` ceilings, keyed
            by stage name.
        plan_budget:
            Whole-run :class:`~repro.engine.Budget` ceiling.
        """
        recorder = current_recorder()
        if recorder is None:
            recorder = PerfRecorder()
        tracer = current_tracer()
        own_tracer = None
        if tracer is None and (trace or manifest_path is not None):
            own_tracer = tracer = Tracer()
        metrics = current_metrics()
        own_metrics = None
        if metrics is None and tracer is not None:
            own_metrics = metrics = MetricsRegistry()
        plan = self.plan(
            n_clusters=n_clusters,
            with_ground_truth=ground_truth is not None,
            precomputed_symmetrized=symmetrized is not None,
        )
        values: dict[str, Any] = {"graph": graph}
        if symmetrized is not None:
            values["symmetrized"] = symmetrized
        if ground_truth is not None:
            values["ground_truth"] = ground_truth
        executor = Executor(
            mode=self.mode,
            cache=cache if cache is not None else self.cache,
            budgets=budgets,
            plan_budget=plan_budget,
            retry=retry,
            journal=journal,
            resume_from=resume,
            tuning=self.tuning,
        )
        with contextlib.ExitStack() as stack:
            if own_tracer is not None:
                stack.enter_context(tracing(own_tracer))
            if own_metrics is not None:
                stack.enter_context(metrics_active(own_metrics))
            stack.enter_context(recording(recorder))
            root = stack.enter_context(span("pipeline"))
            root.set(
                symmetrization=self.symmetrization.name,
                clusterer=self.clusterer.name,
                threshold=self.threshold,
                mode=self.mode,
                n_nodes=graph.n_nodes,
                n_edges=graph.n_edges,
            )
            metric_inc("pipeline_runs_total")
            cache_enabled = executor.cache is not None
            execution = executor.execute(plan, values)
        t_sym = execution.seconds("symmetrize")
        t_cluster = execution.seconds("cluster")
        tuning_section = (
            execution.tuning
            if execution.tuning is not None
            else {"enabled": False}
        )
        cache_section = {
            "enabled": cache_enabled
            or bool(tuning_section.get("cache_installed")),
            **execution.cache_summary(),
        }
        active_journal = executor.journal
        fault_section = {
            "journal": (
                str(active_journal.path)
                if active_journal is not None
                else None
            ),
            "run_id": (
                active_journal.run_id
                if active_journal is not None
                else None
            ),
            "resumed": resume is not None,
            **execution.fault_summary(),
        }
        trace_snapshot = (
            tracer.as_dict() if tracer is not None else None
        )
        metrics_snapshot = (
            metrics.as_dict() if metrics is not None else None
        )
        manifest = None
        if tracer is not None:
            manifest = self._build_manifest(
                execution.values["graph"],
                n_clusters,
                execution,
                trace_snapshot,
                metrics_snapshot,
                t_sym,
                t_cluster,
                cache_section,
                fault_section,
                tuning_section,
            )
            if manifest_path is not None:
                append_manifest(manifest, manifest_path)
        avg_f = (
            execution.values.get("average_f")
            if ground_truth is not None
            else None
        )
        return PipelineResult(
            clustering=execution.values["clustering"],
            symmetrized=execution.values["symmetrized"],
            symmetrize_seconds=t_sym,
            cluster_seconds=t_cluster,
            average_f=avg_f,
            stages=recorder.as_dict(),
            warnings=execution.warnings,
            trace=trace_snapshot,
            metrics=metrics_snapshot,
            manifest=manifest,
            cache=cache_section,
            fault_tolerance=fault_section,
            tuning=tuning_section,
        )

    def _build_manifest(
        self,
        graph: DirectedGraph,
        n_clusters: int | None,
        execution: ExecutionResult,
        trace_snapshot: dict[str, Any] | None,
        metrics_snapshot: dict[str, Any] | None,
        t_sym: float,
        t_cluster: float,
        cache_section: dict[str, Any],
        fault_section: dict[str, Any],
        tuning_section: dict[str, Any],
    ) -> RunManifest:
        """Assemble the provenance record for one traced run."""
        # average_f is already in the metrics snapshot (set as a
        # gauge during the evaluate span); timings stay durations-only
        # so RunManifest.total_seconds means what it says.
        timings = {
            "symmetrize_seconds": t_sym,
            "cluster_seconds": t_cluster,
        }
        return RunManifest(
            kind="pipeline",
            name=f"{self.symmetrization.name}.{self.clusterer.name}",
            config={
                "symmetrization": self.symmetrization.name,
                "clusterer": self.clusterer.name,
                "threshold": self.threshold,
                "mode": self.mode,
                "n_clusters": n_clusters,
            },
            dataset=fingerprint_graph(graph),
            environment=collect_environment(),
            warnings=[
                {"stage": w.stage, "code": w.code, "message": w.message}
                for w in execution.warnings
            ],
            trace=(trace_snapshot or {}).get("spans", []),
            metrics=metrics_snapshot or {},
            timings=timings,
            cache=cache_section,
            fault_tolerance=fault_section,
            tuning=tuning_section,
        )

    def __repr__(self) -> str:
        return (
            f"SymmetrizeClusterPipeline({self.symmetrization!r}, "
            f"{self.clusterer!r}, threshold={self.threshold}, "
            f"mode={self.mode!r})"
        )
