"""The two-stage symmetrize-then-cluster framework (Figure 2).

- :class:`SymmetrizeClusterPipeline` — symmetrization + clusterer +
  prune threshold, with per-stage timing, the unit every experiment in
  the paper runs.
- :mod:`~repro.pipeline.sweep` — sweeps over cluster counts, prune
  thresholds and (α, β) grids, producing the series behind the paper's
  figures and tables.
- :mod:`~repro.pipeline.report` — plain-text table/series rendering
  for the benchmark harness.
"""

from repro.pipeline.pipeline import (
    PIPELINE_MODES,
    PipelineResult,
    PipelineWarning,
    SymmetrizeClusterPipeline,
)
from repro.pipeline.report import format_series, format_table
from repro.pipeline.sweep import (
    SweepPoint,
    sweep_alpha_beta,
    sweep_n_clusters,
    sweep_threshold,
)
from repro.pipeline.tuning import TuningPoint, tune_threshold

__all__ = [
    "SymmetrizeClusterPipeline",
    "PipelineResult",
    "PipelineWarning",
    "PIPELINE_MODES",
    "SweepPoint",
    "sweep_n_clusters",
    "sweep_threshold",
    "sweep_alpha_beta",
    "tune_threshold",
    "TuningPoint",
    "format_table",
    "format_series",
]
