"""Plain-text rendering of experiment outputs.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table.

    Floats are shown with two decimals; everything else via ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[object],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as labeled ``x -> y`` pairs."""
    def fmt(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.2f}"
        return str(v)

    pairs = ", ".join(
        f"{fmt(x)}:{fmt(y)}" for x, y in zip(xs, ys)
    )
    return f"{name} [{x_label} -> {y_label}]: {pairs}"
