"""Threshold tuning for the symmetrize-then-cluster pipeline.

§5.3.1 observes there is "no single correct pruning threshold": lower
thresholds buy quality with time, higher thresholds the reverse, and
the user picks by computational constraint. This module automates the
two selection policies the paper describes:

- :func:`repro.symmetrize.pruning.choose_threshold_for_degree`
  (re-exported here) — the *unsupervised* recipe: sample similarities
  and hit a target average degree.
- :func:`tune_threshold` — the *supervised* recipe: when ground truth
  (or a quality proxy) is available, sweep candidate densities and
  keep the best-scoring operating point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cluster.common import GraphClusterer, get_clusterer
from repro.directed.objectives import clustering_ncut
from repro.eval.fmeasure import average_f_score
from repro.eval.groundtruth import GroundTruth
from repro.exceptions import ReproError
from repro.graph.digraph import DirectedGraph
from repro.symmetrize.base import Symmetrization, get_symmetrization
from repro.symmetrize.pruning import (
    choose_threshold_for_degree,
    prune_graph,
)

__all__ = ["tune_threshold", "TuningPoint", "choose_threshold_for_degree"]


@dataclass(frozen=True)
class TuningPoint:
    """One evaluated operating point of :func:`tune_threshold`.

    Attributes
    ----------
    target_degree:
        The candidate average degree.
    threshold:
        The similarity threshold achieving it (§5.3.1 sample recipe).
    n_edges:
        Edges kept at that threshold.
    score:
        Avg-F (with ground truth) or negative k-way Ncut (without).
    seconds:
        Stage-2 clustering time at this density.
    """

    target_degree: float
    threshold: float
    n_edges: int
    score: float
    seconds: float


def tune_threshold(
    graph: DirectedGraph,
    symmetrization: str | Symmetrization = "degree_discounted",
    clusterer: str | GraphClusterer = "mlrmcl",
    n_clusters: int | None = None,
    ground_truth: GroundTruth | None = None,
    candidate_degrees: list[float] | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[float, list[TuningPoint]]:
    """Pick a prune threshold by sweeping candidate densities.

    For each candidate average degree, the similarity matrix is pruned
    with the §5.3.1 sample recipe and clustered once; the density with
    the best score wins. With ``ground_truth`` the score is the §4.3
    Avg-F; without it, the negative k-way normalized cut of the
    clustering serves as an unsupervised proxy (lower Ncut = cleaner
    structure, the §5.4 observation).

    Returns
    -------
    (best_threshold, points):
        The winning threshold and every evaluated operating point (so
        callers can inspect the quality/time trade-off like Table 3).
    """
    if isinstance(symmetrization, str):
        symmetrization = get_symmetrization(symmetrization)
    if isinstance(clusterer, str):
        clusterer = get_clusterer(clusterer)
    if candidate_degrees is None:
        candidate_degrees = [10.0, 20.0, 40.0]
    if not candidate_degrees:
        raise ReproError("candidate_degrees must be non-empty")
    if rng is None:
        rng = np.random.default_rng(0)

    full = symmetrization.apply(graph)
    points: list[TuningPoint] = []
    for target in candidate_degrees:
        threshold = choose_threshold_for_degree(full, target, rng=rng)
        pruned = prune_graph(full, threshold)
        t0 = time.perf_counter()
        clustering = clusterer.cluster(pruned, n_clusters)
        seconds = time.perf_counter() - t0
        if ground_truth is not None:
            score = average_f_score(clustering, ground_truth)
        else:
            score = -clustering_ncut(pruned, clustering.labels)
        points.append(
            TuningPoint(
                target_degree=float(target),
                threshold=float(threshold),
                n_edges=pruned.n_edges,
                score=float(score),
                seconds=seconds,
            )
        )
    best = max(points, key=lambda p: p.score)
    return best.threshold, points
