"""Parameter sweeps behind the paper's figures and tables.

- :func:`sweep_n_clusters` — Avg-F and time vs cluster count for one
  (symmetrization, clusterer) pair: one curve of Figures 5, 7, 8, 9.
- :func:`sweep_threshold` — the Table-3 prune-threshold study.
- :func:`sweep_alpha_beta` — the Table-4 (α, β) grid.

Each sweep symmetrizes once and reuses the undirected graph across
cluster counts (matching the paper's methodology, which times the
clustering stage).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.cluster.common import GraphClusterer, get_clusterer
from repro.eval.fmeasure import average_f_score
from repro.eval.groundtruth import GroundTruth
from repro.graph.digraph import DirectedGraph
from repro.pipeline.pipeline import SymmetrizeClusterPipeline
from repro.symmetrize.base import Symmetrization, get_symmetrization
from repro.symmetrize.degree_discounted import (
    DegreeDiscountedSymmetrization,
)

__all__ = [
    "SweepPoint",
    "sweep_n_clusters",
    "sweep_threshold",
    "sweep_alpha_beta",
]


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of a sweep.

    Attributes
    ----------
    parameter:
        The swept value (cluster count, threshold, or an (α, β) pair).
    n_clusters:
        Actual cluster count produced (MLR-MCL controls it only
        indirectly).
    average_f:
        §4.3 Avg-F in percent (``None`` without ground truth).
    cluster_seconds:
        Stage-2 wall-clock time.
    n_edges:
        Edge count of the (pruned) symmetrized graph used.
    """

    parameter: object
    n_clusters: int
    average_f: float | None
    cluster_seconds: float
    n_edges: int


def sweep_n_clusters(
    graph: DirectedGraph,
    symmetrization: str | Symmetrization,
    clusterer: str | GraphClusterer,
    cluster_counts: list[int],
    ground_truth: GroundTruth | None = None,
    threshold: float = 0.0,
) -> list[SweepPoint]:
    """Avg-F / time vs requested cluster count (Figures 5, 7, 8, 9)."""
    pipe = SymmetrizeClusterPipeline(
        symmetrization, clusterer, threshold=threshold
    )
    undirected = pipe.symmetrize(graph)
    points = []
    for k in cluster_counts:
        result = pipe.run(
            graph,
            n_clusters=k,
            ground_truth=ground_truth,
            symmetrized=undirected,
        )
        points.append(
            SweepPoint(
                parameter=k,
                n_clusters=result.clustering.n_clusters,
                average_f=result.average_f,
                cluster_seconds=result.cluster_seconds,
                n_edges=undirected.n_edges,
            )
        )
    return points


def sweep_threshold(
    graph: DirectedGraph,
    thresholds: list[float],
    clusterer: str | GraphClusterer,
    n_clusters: int,
    ground_truth: GroundTruth | None = None,
    symmetrization: str | Symmetrization = "degree_discounted",
) -> list[SweepPoint]:
    """The Table-3 study: prune threshold vs edges / Avg-F / time.

    Symmetrizes once without pruning, then prunes the same similarity
    matrix at every threshold (exactly what varying the threshold means
    in §5.3.1).
    """
    if isinstance(symmetrization, str):
        symmetrization = get_symmetrization(symmetrization)
    if isinstance(clusterer, str):
        clusterer = get_clusterer(clusterer)
    from repro.symmetrize.pruning import prune_graph

    full = symmetrization.apply(graph, threshold=0.0)
    points = []
    for threshold in thresholds:
        pruned = prune_graph(full, threshold)
        t0 = time.perf_counter()
        clustering = clusterer.cluster(pruned, n_clusters)
        seconds = time.perf_counter() - t0
        avg_f = (
            average_f_score(clustering, ground_truth)
            if ground_truth is not None
            else None
        )
        points.append(
            SweepPoint(
                parameter=threshold,
                n_clusters=clustering.n_clusters,
                average_f=avg_f,
                cluster_seconds=seconds,
                n_edges=pruned.n_edges,
            )
        )
    return points


def sweep_alpha_beta(
    graph: DirectedGraph,
    configurations: list[tuple[float | str, float | str]],
    clusterer: str | GraphClusterer,
    n_clusters: int,
    ground_truth: GroundTruth | None = None,
    threshold: float = 0.0,
    target_degree: float | None = None,
) -> list[SweepPoint]:
    """The Table-4 study: Avg-F per (α, β) configuration.

    ``(0, 0)`` reproduces the paper's no-discounting row — note it is
    *not* the same as Bibliometric, because zero-degree nodes still
    contribute nothing — and ``("log", "log")`` the IDF-style row.

    Because (α, β) changes the *scale* of the similarity values, a
    shared absolute ``threshold`` would bias the grid; pass
    ``target_degree`` instead to choose a per-configuration threshold
    with the §5.3.1 sample recipe (density-matched comparisons).
    """
    if isinstance(clusterer, str):
        clusterer = get_clusterer(clusterer)
    from repro.symmetrize.pruning import (
        choose_threshold_for_degree,
        prune_graph,
    )

    points = []
    for alpha, beta in configurations:
        sym = DegreeDiscountedSymmetrization(alpha=alpha, beta=beta)
        if target_degree is not None:
            undirected = sym.apply(graph)
            per_config = choose_threshold_for_degree(
                undirected, target_degree
            )
            undirected = prune_graph(undirected, per_config)
        else:
            undirected = sym.apply(graph, threshold=threshold)
        t0 = time.perf_counter()
        clustering = clusterer.cluster(undirected, n_clusters)
        seconds = time.perf_counter() - t0
        avg_f = (
            average_f_score(clustering, ground_truth)
            if ground_truth is not None
            else None
        )
        points.append(
            SweepPoint(
                parameter=(alpha, beta),
                n_clusters=clustering.n_clusters,
                average_f=avg_f,
                cluster_seconds=seconds,
                n_edges=undirected.n_edges,
            )
        )
    return points
