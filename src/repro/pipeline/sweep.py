"""Parameter sweeps behind the paper's figures and tables.

- :func:`sweep_n_clusters` — Avg-F and time vs cluster count for one
  (symmetrization, clusterer) pair: one curve of Figures 5, 7, 8, 9.
- :func:`sweep_threshold` — the Table-3 prune-threshold study.
- :func:`sweep_alpha_beta` — the Table-4 (α, β) grid.

Every sweep builds one :class:`~repro.engine.Plan` per grid point and
runs it through the :class:`~repro.engine.Executor` with an artifact
cache: the first point computes and stores the stage-1 symmetrization
artifact, every later point that shares its lineage is served from the
cache. This replaces the old hand-rolled symmetrize-once shortcut —
with no cache installed a sweep still symmetrizes exactly once
(a fresh in-memory :class:`~repro.engine.ArtifactCache` scopes the
reuse to the sweep), while an ambient :func:`repro.engine.artifact_cache`
block (or an explicit ``cache=`` argument, possibly disk-backed)
extends the reuse across sweeps, grids and processes.

Each :class:`SweepPoint` records its cache provenance: whether any
stage was served from the cache and the content address of the
symmetrized artifact the clusterer consumed.

Fault tolerance
---------------
Sweeps are the long-running surface of this codebase, so they carry
the full runtime:

- ``mode="lenient"`` degrades per-point failures instead of aborting
  the grid: the failed point is recorded with ``failed=True``, the
  exception summary, and the machine-readable warning code
  ``point_failed``; :func:`aggregate_average_f` excludes such points.
  In strict mode (default) the first failure propagates.
- ``retry=``/``budgets=``/``plan_budget=`` forward the corresponding
  :class:`~repro.engine.RetryPolicy` / :class:`~repro.engine.Budget`
  policies to each point's executor.
- An ambient or explicit write-ahead journal
  (:class:`~repro.engine.RunJournal`) records one ``point_done``
  record per completed grid point; ``resume=`` replays those records
  (a :class:`~repro.engine.JournalReplay`) so an interrupted sweep
  recomputes only its unfinished tail — replayed points are marked
  ``resumed=True`` and are byte-identical to what the first run
  measured, including recorded failures.
- ``n_jobs=`` installs one shared
  :class:`~repro.engine.pool.WorkerPool` for the whole grid: every
  point's sharded kernels (the out-of-core all-pairs fan-out beneath
  ``apply_pruned``) draw workers from that single pool instead of
  forking a pool per point, and both recovery layers compose — the
  journal replays finished *points*, the content-addressed shard
  artifacts replay finished *shards* of the interrupted point.
"""

from __future__ import annotations

import contextlib
import warnings as _warnings
from dataclasses import dataclass
from typing import Any

from repro.cluster.common import GraphClusterer, get_clusterer
from repro.engine.cache import ArtifactCache, current_cache
from repro.engine.chaos import chaos
from repro.engine.pool import current_pool, worker_pool
from repro.engine.executor import ExecutionResult, Executor
from repro.engine.journal import (
    JournalReplay,
    RunJournal,
    current_journal,
    point_key,
)
from repro.engine.plan import Plan
from repro.engine.policy import Budget, RetryPolicy
from repro.engine.stage import Stage
from repro.engine.stages import (
    ClusterStage,
    EvaluateStage,
    PruneStage,
    PruneToDegreeStage,
    SymmetrizeStage,
    ValidateInputStage,
)
from repro.eval.groundtruth import GroundTruth
from repro.exceptions import ExecutionWarning, ReproError
from repro.graph.digraph import DirectedGraph
from repro.obs.manifest import fingerprint_graph
from repro.obs.metrics import metric_inc
from repro.symmetrize.base import Symmetrization, get_symmetrization
from repro.symmetrize.degree_discounted import (
    DegreeDiscountedSymmetrization,
)

__all__ = [
    "SweepPoint",
    "sweep_n_clusters",
    "sweep_threshold",
    "sweep_alpha_beta",
    "aggregate_average_f",
]


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of a sweep.

    Attributes
    ----------
    parameter:
        The swept value (cluster count, threshold, or an (α, β) pair).
    n_clusters:
        Actual cluster count produced (MLR-MCL controls it only
        indirectly).
    average_f:
        §4.3 Avg-F in percent (``None`` without ground truth).
    cluster_seconds:
        Stage-2 wall-clock time.
    n_edges:
        Edge count of the (pruned) symmetrized graph used.
    cache_hit:
        Whether any stage of this point was served from the artifact
        cache (``None`` when the point ran without a cache). Within
        one sweep the first point misses and stores; later points
        sharing the symmetrization lineage hit.
    artifact_key:
        Content address of the symmetrized artifact the clusterer
        consumed — the key of the last cacheable stage of the point's
        plan (``None`` without a cache).
    failed:
        ``True`` when a lenient-mode sweep skipped this point after an
        unrecoverable failure; the measurement fields are zeroed and
        ``average_f`` is ``None``, so aggregation must exclude it
        (:func:`aggregate_average_f` does).
    error:
        ``"ExceptionType: message"`` summary of the failure.
    warning_code:
        Machine-readable code of the degradation (``point_failed``).
    resumed:
        ``True`` when the point was replayed from a run journal
        instead of being recomputed.
    """

    parameter: object
    n_clusters: int
    average_f: float | None
    cluster_seconds: float
    n_edges: int
    cache_hit: bool | None = None
    artifact_key: str | None = None
    failed: bool = False
    error: str | None = None
    warning_code: str | None = None
    resumed: bool = False


def aggregate_average_f(points: list[SweepPoint]) -> float | None:
    """Mean Avg-F over the *successful* points of a sweep.

    Failed (skipped) points and points without ground truth carry no
    Avg-F and are excluded; returns ``None`` when nothing remains.
    """
    scores = [
        p.average_f
        for p in points
        if not p.failed and p.average_f is not None
    ]
    if not scores:
        return None
    return float(sum(scores) / len(scores))


def _sweep_cache(cache: ArtifactCache | None) -> ArtifactCache:
    """The cache a sweep runs against.

    Explicit argument first, then the ambient cache; with neither, a
    fresh in-memory cache scoped to this sweep — which is exactly the
    old symmetrize-once behavior, engine-managed.
    """
    if cache is not None:
        return cache
    ambient = current_cache()
    if ambient is not None:
        return ambient
    return ArtifactCache()


def _run_point(
    plan: Plan,
    graph: DirectedGraph,
    ground_truth: GroundTruth | None,
    cache: ArtifactCache,
    dataset_sha: str,
    mode: str,
    retry: RetryPolicy | None,
    budgets: dict[str, Budget] | None,
    plan_budget: Budget | None,
    journal: RunJournal | None,
    resume: JournalReplay | None,
    tuning: Any = None,
) -> ExecutionResult:
    """Execute one grid point's plan against the sweep cache."""
    values: dict[str, object] = {"graph": graph}
    if ground_truth is not None:
        values["ground_truth"] = ground_truth
    executor = Executor(
        mode=mode,
        cache=cache,
        budgets=budgets,
        plan_budget=plan_budget,
        retry=retry,
        journal=journal,
        resume_from=resume,
        tuning=tuning,
    )
    return executor.execute(plan, values, dataset_sha=dataset_sha)


def _point_from_execution(
    parameter: object,
    execution: ExecutionResult,
    ground_truth: GroundTruth | None,
) -> SweepPoint:
    """Fold one execution into a :class:`SweepPoint`."""
    consulted = [
        e for e in execution.executions if e.cached is not None
    ]
    artifact_key = None
    for e in execution.executions:
        if e.artifact_key is not None:
            artifact_key = e.artifact_key
    clustering = execution.values["clustering"]
    return SweepPoint(
        parameter=parameter,
        n_clusters=clustering.n_clusters,
        average_f=(
            execution.values.get("average_f")
            if ground_truth is not None
            else None
        ),
        cluster_seconds=execution.seconds("cluster"),
        n_edges=execution.values["symmetrized"].n_edges,
        cache_hit=(
            any(e.cached for e in consulted) if consulted else None
        ),
        artifact_key=artifact_key,
    )


def _point_payload(point: SweepPoint) -> dict[str, Any]:
    """The journal-ready scalar record of one sweep point."""
    return {
        "n_clusters": point.n_clusters,
        "average_f": point.average_f,
        "cluster_seconds": point.cluster_seconds,
        "n_edges": point.n_edges,
        "cache_hit": point.cache_hit,
        "artifact_key": point.artifact_key,
        "failed": point.failed,
        "error": point.error,
        "warning_code": point.warning_code,
    }


def _point_from_payload(
    parameter: object, payload: dict[str, Any]
) -> SweepPoint:
    """Rebuild a recorded point during resume (marked ``resumed``)."""
    return SweepPoint(
        parameter=parameter,
        n_clusters=int(payload.get("n_clusters", 0)),
        average_f=payload.get("average_f"),
        cluster_seconds=float(payload.get("cluster_seconds", 0.0)),
        n_edges=int(payload.get("n_edges", 0)),
        cache_hit=payload.get("cache_hit"),
        artifact_key=payload.get("artifact_key"),
        failed=bool(payload.get("failed", False)),
        error=payload.get("error"),
        warning_code=payload.get("warning_code"),
        resumed=True,
    )


def _failed_point(
    parameter: object, exc: BaseException
) -> SweepPoint:
    return SweepPoint(
        parameter=parameter,
        n_clusters=0,
        average_f=None,
        cluster_seconds=0.0,
        n_edges=0,
        failed=True,
        error=f"{type(exc).__name__}: {exc}",
        warning_code="point_failed",
    )


def _sweep(
    graph: DirectedGraph,
    parameters: list[object],
    make_stages,
    ground_truth: GroundTruth | None,
    cache: ArtifactCache | None,
    name: str,
    mode: str = "strict",
    retry: RetryPolicy | None = None,
    budgets: dict[str, Budget] | None = None,
    plan_budget: Budget | None = None,
    journal: RunJournal | None = None,
    resume: JournalReplay | None = None,
    n_jobs: int | None = None,
    tuning: Any = None,
) -> list[SweepPoint]:
    """Shared sweep driver: one engine plan per grid point.

    With ``n_jobs > 1`` a single :class:`~repro.engine.WorkerPool` is
    installed around the grid loop (unless one is already ambient),
    so the sharded kernels of every point share one set of worker
    processes for the sweep's lifetime.
    """
    active = _sweep_cache(cache)
    dataset_sha = fingerprint_graph(graph)["sha256"]
    if journal is None:
        journal = current_journal()
    if journal is not None:
        journal.ensure_started(
            kind="sweep",
            name=name,
            dataset_sha=dataset_sha,
            mode=mode,
            config={"parameters": [repr(p) for p in parameters]},
        )
    pool_scope = (
        worker_pool(n_jobs)
        if n_jobs is not None and n_jobs > 1 and current_pool() is None
        else contextlib.nullcontext()
    )
    with pool_scope:
        points = _sweep_points(
            graph, parameters, make_stages, ground_truth, active,
            name, mode, retry, budgets, plan_budget, journal, resume,
            dataset_sha, tuning,
        )
    return points


def _sweep_points(
    graph: DirectedGraph,
    parameters: list[object],
    make_stages,
    ground_truth: GroundTruth | None,
    active: ArtifactCache,
    name: str,
    mode: str,
    retry: RetryPolicy | None,
    budgets: dict[str, Budget] | None,
    plan_budget: Budget | None,
    journal: RunJournal | None,
    resume: JournalReplay | None,
    dataset_sha: str,
    tuning: Any = None,
) -> list[SweepPoint]:
    points = []
    for parameter in parameters:
        stages: list[Stage] = make_stages(parameter)
        initial = ["graph"]
        if ground_truth is not None:
            stages.append(EvaluateStage())
            initial.append("ground_truth")
        plan = Plan(
            stages,
            initial=tuple(initial),
            name=f"{name}[{parameter!r}]",
        )
        key = point_key(
            dataset_sha,
            [stage.fingerprint() for stage in plan.stages],
            parameter,
            mode,
        )
        if resume is not None:
            payload = resume.point(key)
            if payload is not None:
                points.append(
                    _point_from_payload(parameter, payload)
                )
                metric_inc("resume_points_skipped")
                continue
        try:
            execution = _run_point(
                plan, graph, ground_truth, active, dataset_sha,
                mode, retry, budgets, plan_budget, journal, resume,
                tuning,
            )
        except ReproError as exc:
            if mode != "lenient":
                raise
            # Lenient: one poisoned grid point must not cost the
            # sweep. Record the skip, structured, and move on.
            point = _failed_point(parameter, exc)
            _warnings.warn(
                ExecutionWarning(
                    f"{name}: point {parameter!r} failed "
                    f"({point.error}); skipped in lenient mode",
                    code="point_failed",
                ),
                stacklevel=3,
            )
            metric_inc("sweep_points_failed_total")
        else:
            point = _point_from_execution(
                parameter, execution, ground_truth
            )
        if journal is not None:
            journal.record_point(
                key, parameter, _point_payload(point)
            )
        points.append(point)
        chaos("sweep.point")
    return points


def sweep_n_clusters(
    graph: DirectedGraph,
    symmetrization: str | Symmetrization,
    clusterer: str | GraphClusterer,
    cluster_counts: list[int],
    ground_truth: GroundTruth | None = None,
    threshold: float = 0.0,
    cache: ArtifactCache | None = None,
    mode: str = "strict",
    retry: RetryPolicy | None = None,
    budgets: dict[str, Budget] | None = None,
    plan_budget: Budget | None = None,
    journal: RunJournal | None = None,
    resume: JournalReplay | None = None,
    n_jobs: int | None = None,
    tuning: Any = None,
) -> list[SweepPoint]:
    """Avg-F / time vs requested cluster count (Figures 5, 7, 8, 9).

    The symmetrization artifact is shared across cluster counts via
    the artifact cache (first point computes, later points hit).
    ``n_jobs`` installs one shared worker pool for the whole grid.
    """
    if isinstance(symmetrization, str):
        symmetrization = get_symmetrization(symmetrization)
    if isinstance(clusterer, str):
        clusterer = get_clusterer(clusterer)

    def make_stages(k: object) -> list[Stage]:
        return [
            ValidateInputStage(),
            SymmetrizeStage(symmetrization, threshold=threshold),
            ClusterStage(clusterer, int(k)),  # type: ignore[arg-type]
        ]

    return _sweep(
        graph,
        list(cluster_counts),
        make_stages,
        ground_truth,
        cache,
        "sweep_n_clusters",
        mode=mode,
        retry=retry,
        budgets=budgets,
        plan_budget=plan_budget,
        journal=journal,
        resume=resume,
        n_jobs=n_jobs,
        tuning=tuning,
    )


def sweep_threshold(
    graph: DirectedGraph,
    thresholds: list[float],
    clusterer: str | GraphClusterer,
    n_clusters: int,
    ground_truth: GroundTruth | None = None,
    symmetrization: str | Symmetrization = "degree_discounted",
    cache: ArtifactCache | None = None,
    mode: str = "strict",
    retry: RetryPolicy | None = None,
    budgets: dict[str, Budget] | None = None,
    plan_budget: Budget | None = None,
    journal: RunJournal | None = None,
    resume: JournalReplay | None = None,
    n_jobs: int | None = None,
    tuning: Any = None,
) -> list[SweepPoint]:
    """The Table-3 study: prune threshold vs edges / Avg-F / time.

    Symmetrizes once without pruning, then prunes the same similarity
    matrix at every threshold (exactly what varying the threshold means
    in §5.3.1) — the shared unpruned artifact is cache-served after the
    first point.
    """
    if isinstance(symmetrization, str):
        symmetrization = get_symmetrization(symmetrization)
    if isinstance(clusterer, str):
        clusterer = get_clusterer(clusterer)

    def make_stages(threshold: object) -> list[Stage]:
        return [
            ValidateInputStage(),
            SymmetrizeStage(symmetrization, threshold=0.0),
            PruneStage(float(threshold)),  # type: ignore[arg-type]
            ClusterStage(clusterer, n_clusters),
        ]

    return _sweep(
        graph,
        list(thresholds),
        make_stages,
        ground_truth,
        cache,
        "sweep_threshold",
        mode=mode,
        retry=retry,
        budgets=budgets,
        plan_budget=plan_budget,
        journal=journal,
        resume=resume,
        n_jobs=n_jobs,
        tuning=tuning,
    )


def sweep_alpha_beta(
    graph: DirectedGraph,
    configurations: list[tuple[float | str, float | str]],
    clusterer: str | GraphClusterer,
    n_clusters: int,
    ground_truth: GroundTruth | None = None,
    threshold: float = 0.0,
    target_degree: float | None = None,
    cache: ArtifactCache | None = None,
    mode: str = "strict",
    retry: RetryPolicy | None = None,
    budgets: dict[str, Budget] | None = None,
    plan_budget: Budget | None = None,
    journal: RunJournal | None = None,
    resume: JournalReplay | None = None,
    n_jobs: int | None = None,
    tuning: Any = None,
) -> list[SweepPoint]:
    """The Table-4 study: Avg-F per (α, β) configuration.

    ``(0, 0)`` reproduces the paper's no-discounting row — note it is
    *not* the same as Bibliometric, because zero-degree nodes still
    contribute nothing — and ``("log", "log")`` the IDF-style row.

    Because (α, β) changes the *scale* of the similarity values, a
    shared absolute ``threshold`` would bias the grid; pass
    ``target_degree`` instead to choose a per-configuration threshold
    with the §5.3.1 sample recipe (density-matched comparisons).

    Each configuration symmetrizes its own artifact (the (α, β) pair
    is part of the cache lineage), so within one grid nothing is
    shared — but a disk-backed or ambient cache serves repeated grids
    (re-runs, figure regeneration) entirely from the cache.
    """
    if isinstance(clusterer, str):
        clusterer = get_clusterer(clusterer)

    def make_stages(configuration: object) -> list[Stage]:
        alpha, beta = configuration  # type: ignore[misc]
        sym = DegreeDiscountedSymmetrization(alpha=alpha, beta=beta)
        stages: list[Stage] = [ValidateInputStage()]
        if target_degree is not None:
            stages.append(SymmetrizeStage(sym, threshold=0.0))
            stages.append(PruneToDegreeStage(target_degree))
        else:
            stages.append(SymmetrizeStage(sym, threshold=threshold))
        stages.append(ClusterStage(clusterer, n_clusters))
        return stages

    return _sweep(
        graph,
        list(configurations),
        make_stages,
        ground_truth,
        cache,
        "sweep_alpha_beta",
        mode=mode,
        retry=retry,
        budgets=budgets,
        plan_budget=plan_budget,
        journal=journal,
        resume=resume,
        n_jobs=n_jobs,
        tuning=tuning,
    )
