"""ASCII chart rendering for figure-style experiment output.

The paper's figures are line charts (Avg-F or seconds vs number of
clusters). The CLI regenerates them as data series; this module adds a
terminal rendering so ``python -m repro experiment fig5a`` shows the
curve shapes directly, not just the numbers.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ReproError

__all__ = ["ascii_chart", "render_series_chart"]

_MARKS = "ox+*#@%&"


def ascii_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named ``(xs, ys)`` series as an ASCII scatter/line chart.

    Parameters
    ----------
    series:
        Mapping of series name to ``(xs, ys)``; all points share one
        coordinate system. Each series gets its own mark character.
    width, height:
        Plot-area size in characters.
    x_label, y_label:
        Axis annotations.

    Returns
    -------
    A multi-line string: plot area with axes, then a legend.
    """
    if not series:
        raise ReproError("ascii_chart needs at least one series")
    if width < 8 or height < 4:
        raise ReproError("chart area too small")
    all_x = [float(x) for xs, _ in series.values() for x in xs]
    all_y = [float(y) for _, ys in series.values() for y in ys]
    if not all_x:
        raise ReproError("ascii_chart needs at least one point")
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, (xs, ys)), mark in zip(series.items(), _MARKS):
        for x, y in zip(xs, ys):
            col = int((float(x) - x_lo) / x_span * (width - 1))
            row = int((float(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    top_label = f"{y_hi:.6g}"
    bottom_label = f"{y_lo:.6g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for r, row_cells in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(margin)
        elif r == height - 1:
            prefix = bottom_label.rjust(margin)
        elif r == height // 2:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(prefix + "|" + "".join(row_cells))
    lines.append(" " * margin + "+" + "-" * width)
    left = f"{x_lo:.6g}"
    right = f"{x_hi:.6g}"
    gap = width - len(left) - len(right) - len(x_label)
    if gap >= 2:
        x_axis = (
            left
            + " " * (gap // 2)
            + x_label
            + " " * (gap - gap // 2)
            + right
        )
    else:
        x_axis = f"{left} .. {right} ({x_label})"
    lines.append(" " * (margin + 1) + x_axis)
    legend = "  ".join(
        f"{mark}={name}"
        for (name, _), mark in zip(series.items(), _MARKS)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def render_series_chart(
    series_text: str, width: int = 60, height: int = 16
) -> str | None:
    """Parse :func:`repro.pipeline.report.format_series` lines and
    chart them.

    Returns ``None`` when the text contains no parsable series (the
    caller then falls back to the plain text).
    """
    series: dict[str, tuple[list[float], list[float]]] = {}
    x_label = y_label = ""
    for line in series_text.splitlines():
        if "[" not in line or "]" not in line or ":" not in line:
            continue
        head, _, body = line.partition("[")
        name = head.strip()
        labels, _, points = body.partition("]")
        if "->" in labels:
            x_label, _, y_label = labels.partition("->")
            x_label, y_label = x_label.strip(), y_label.strip()
        xs: list[float] = []
        ys: list[float] = []
        for pair in points.lstrip(":").split(","):
            if ":" not in pair:
                continue
            x_str, _, y_str = pair.partition(":")
            try:
                xs.append(float(x_str))
                ys.append(float(y_str))
            except ValueError:
                continue
        if xs:
            series[name] = (xs, ys)
    if not series:
        return None
    return ascii_chart(
        series, width=width, height=height,
        x_label=x_label or "x", y_label=y_label or "y",
    )
