"""Graph feature extraction for the cost model.

The cost model (:mod:`repro.tune.model`) predicts stage wall time and
peak memory from a handful of cheap graph statistics. Everything the
model ever sees about a graph is a :class:`GraphFeatures` record —
size (``n_nodes``), density (``nnz``), the prune threshold the stage
will run at, and the *degree skew*

.. math:: s = n \\cdot \\frac{\\sum_i d_i^2}{(\\sum_i d_i)^2} \\ge 1

(the normalized second moment of the in-degree distribution). Skew is
the right shape parameter here because the all-pairs candidate count
grows with :math:`\\sum d_i^2` — two graphs with the same ``nnz`` but
different hub structure cost very different amounts.

Features enter the model in log space (:meth:`GraphFeatures.vector`),
so the fitted form is a power law in each statistic — the right family
for kernels whose complexity is a product of polynomial terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "FEATURE_NAMES",
    "GraphFeatures",
    "degree_skew",
    "features_from_graph",
    "features_from_counts",
]

#: Order of the design-matrix columns produced by
#: :meth:`GraphFeatures.vector`; persisted in ``tuning/model.json`` so
#: a model fitted against a different feature set is rejected on load.
FEATURE_NAMES = (
    "intercept",
    "log_n_nodes",
    "log_nnz",
    "log_degree_skew",
    "log_inv_threshold",
)

#: Threshold floor for the ``log(1/t)`` feature: ``t = 0`` (no
#: pruning) is mapped to this instead of infinity.
_MIN_THRESHOLD = 1e-3


def degree_skew(degrees: np.ndarray) -> float:
    """``n * sum(d^2) / sum(d)^2`` of a degree vector (1.0 if empty)."""
    d = np.asarray(degrees, dtype=np.float64)
    total = float(d.sum())
    if d.size == 0 or total <= 0:
        return 1.0
    return float(d.size * float((d * d).sum()) / (total * total))


@dataclass(frozen=True)
class GraphFeatures:
    """The statistics the cost model conditions on."""

    n_nodes: int
    nnz: int
    threshold: float
    degree_skew: float = 1.0

    def vector(self) -> np.ndarray:
        """One log-space design-matrix row, ordered as FEATURE_NAMES."""
        t = max(float(self.threshold), _MIN_THRESHOLD)
        return np.array(
            [
                1.0,
                math.log(max(self.n_nodes, 1)),
                math.log(max(self.nnz, 1)),
                math.log(max(self.degree_skew, 1.0)),
                math.log(1.0 / t),
            ],
            dtype=np.float64,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "n_nodes": int(self.n_nodes),
            "nnz": int(self.nnz),
            "threshold": float(self.threshold),
            "degree_skew": float(self.degree_skew),
        }


def features_from_graph(graph: Any, threshold: float) -> GraphFeatures:
    """Extract features from a live graph object.

    Works for :class:`~repro.graph.digraph.DirectedGraph` (skew from
    in-degrees — the axis the all-pairs product contracts over) and
    :class:`~repro.graph.ugraph.UndirectedGraph` (total degrees).
    """
    if hasattr(graph, "in_degrees"):
        degrees = graph.in_degrees()
    elif hasattr(graph, "degrees"):
        degrees = graph.degrees()
    else:  # bare sparse matrix
        adjacency = getattr(graph, "adjacency", graph)
        degrees = np.diff(adjacency.tocsr().indptr)
    return GraphFeatures(
        n_nodes=int(graph.n_nodes),
        nnz=int(graph.adjacency.nnz)
        if hasattr(graph, "adjacency")
        else int(graph.nnz),
        threshold=float(threshold),
        degree_skew=degree_skew(degrees),
    )


def features_from_counts(
    n_nodes: int,
    nnz: int,
    threshold: float,
    skew: float = 1.0,
) -> GraphFeatures:
    """Build features from recorded counts (bench JSON, manifests).

    Recorded runs carry ``n_nodes``/``n_edges``/``threshold`` but not
    the degree vector, so ``skew`` defaults to 1.0 — the fit then
    shrinks the skew coefficient to zero and the model conditions on
    size, density and threshold alone, which is exactly the
    information the corpus contains.
    """
    return GraphFeatures(
        n_nodes=int(n_nodes),
        nnz=int(nnz),
        threshold=float(threshold),
        degree_skew=float(skew),
    )
