"""Corpus extraction: recorded run data → cost-model samples.

``repro tune`` does not run new benchmarks — it *replays* what the
repo already records on every CI run and every ``--runlog``-ed
invocation:

- ``BENCH_allpairs.json`` (:mod:`repro.perf.bench`): one timed
  ``symmetrize`` run per (size, threshold, backend) plus MLR-MCL
  cluster timings → targets ``"symmetrize:<backend>"`` and
  ``"cluster:<clusterer>"``;
- ``BENCH_scale.json`` (:mod:`repro.perf.scale_bench`): out-of-core
  sharded symmetrize timings and peak-RSS high-water marks → targets
  ``"symmetrize:sharded"`` and ``"peak_rss"``;
- RunManifest JSONL run logs (:mod:`repro.obs.manifest`): pipeline
  stage timings keyed by the recorded dataset fingerprint → targets
  ``"symmetrize:default"`` and ``"cluster:<clusterer>"``.

:func:`evaluate_plan_quality` closes the loop: it replays the
all-pairs corpus through the fitted model's backend choice and scores
the auto plan against the hand-set configurations actually measured —
the fraction of points where the auto choice is within 10% of the best
benched backend, and whether it is ever slower than the untuned
default. Those numbers persist into the model's ``stats`` block so
``repro tune show`` can answer "should I trust this model?" without
re-running anything.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import TuningError
from repro.tune.features import features_from_counts
from repro.tune.model import CostModel, Sample

__all__ = [
    "samples_from_allpairs",
    "samples_from_scale",
    "samples_from_runlog",
    "load_corpus",
    "evaluate_plan_quality",
]


def _require_schema(
    results: Mapping[str, Any], prefix: str, what: str
) -> None:
    schema = results.get("schema")
    if not isinstance(schema, str) or not schema.startswith(prefix):
        raise TuningError(
            f"{what} has schema {schema!r}; expected {prefix}*"
        )


def samples_from_allpairs(
    results: Mapping[str, Any],
) -> list[Sample]:
    """Samples from a ``BENCH_allpairs.json`` results dict."""
    _require_schema(
        results, "repro-bench-allpairs/", "all-pairs bench corpus"
    )
    samples: list[Sample] = []
    for run in results.get("runs", []):
        try:
            target = f"{run['kind']}:{run['backend']}"
            features = features_from_counts(
                run["n_nodes"],
                run["n_edges"],
                run["threshold"],
            )
            value = float(run["seconds"])
        except (KeyError, TypeError, ValueError):
            continue  # tolerate partial records from older schemas
        samples.append(Sample(target, features, value))
    return samples


def samples_from_scale(results: Mapping[str, Any]) -> list[Sample]:
    """Samples from a ``BENCH_scale.json`` results dict."""
    _require_schema(
        results, "repro-bench-scale/", "scale bench corpus"
    )
    samples: list[Sample] = []
    for point in results.get("points", []):
        try:
            features = features_from_counts(
                point["n_nodes"],
                point["n_edges"],
                point["threshold"],
            )
            seconds = float(point["symmetrize_seconds"])
            peak = float(
                max(
                    point.get("peak_rss_bytes", 0),
                    point.get("peak_rss_children_bytes", 0),
                )
            )
        except (KeyError, TypeError, ValueError):
            continue
        samples.append(Sample("symmetrize:sharded", features, seconds))
        if peak > 0:
            samples.append(Sample("peak_rss", features, peak))
    return samples


def samples_from_runlog(path: str | Path) -> list[Sample]:
    """Samples from a RunManifest JSONL run log (pipeline runs)."""
    from repro.obs.manifest import read_manifests

    samples: list[Sample] = []
    for manifest in read_manifests(path):
        if manifest.kind != "pipeline":
            continue
        dataset = manifest.dataset
        n_nodes = dataset.get("n_nodes")
        nnz = dataset.get("nnz")
        if not n_nodes or not nnz:
            continue
        features = features_from_counts(
            n_nodes,
            nnz,
            float(manifest.config.get("threshold", 0.0) or 0.0),
        )
        t_sym = manifest.timings.get("symmetrize_seconds")
        if t_sym is not None and t_sym > 0:
            samples.append(
                Sample("symmetrize:default", features, float(t_sym))
            )
        t_cluster = manifest.timings.get("cluster_seconds")
        clusterer = manifest.config.get("clusterer")
        if t_cluster is not None and t_cluster > 0 and clusterer:
            samples.append(
                Sample(
                    f"cluster:{clusterer}", features, float(t_cluster)
                )
            )
    return samples


def load_corpus(
    allpairs_path: str | Path | None = None,
    scale_path: str | Path | None = None,
    runlog_paths: tuple[str | Path, ...] = (),
) -> tuple[list[Sample], list[str], dict[str, Any] | None]:
    """Gather samples from every corpus source that exists.

    Returns ``(samples, sources, allpairs_results)`` — the parsed
    all-pairs dict rides along so the caller can feed it straight to
    :func:`evaluate_plan_quality` without re-reading the file. Missing
    files are skipped; an entirely empty corpus is a
    :class:`TuningError`.
    """
    samples: list[Sample] = []
    sources: list[str] = []
    allpairs_results: dict[str, Any] | None = None
    if allpairs_path is not None and Path(allpairs_path).exists():
        allpairs_results = json.loads(Path(allpairs_path).read_text())
        samples.extend(samples_from_allpairs(allpairs_results))
        sources.append(str(allpairs_path))
    if scale_path is not None and Path(scale_path).exists():
        samples.extend(
            samples_from_scale(
                json.loads(Path(scale_path).read_text())
            )
        )
        sources.append(str(scale_path))
    for runlog in runlog_paths:
        if Path(runlog).exists():
            samples.extend(samples_from_runlog(runlog))
            sources.append(str(runlog))
    if not samples:
        raise TuningError(
            "no cost-model samples found; pass an existing "
            "BENCH_allpairs.json / BENCH_scale.json / --runlog file"
        )
    return samples, sources, allpairs_results


def evaluate_plan_quality(
    model: CostModel,
    allpairs_results: Mapping[str, Any],
    tolerance: float = 0.10,
) -> dict[str, Any]:
    """Replay the all-pairs corpus through the model's backend choice.

    For every (size, threshold) point with at least two benched
    backends, the auto plan's cost is the *measured* seconds of the
    backend the model would choose there. The acceptance bar: within
    ``tolerance`` of the best hand-set backend on ≥ 80% of points and
    never slower than the untuned default backend.
    """
    from repro.tune.planner import DEFAULT_BACKEND, choose_backend

    by_point: dict[tuple[int, float], dict[str, float]] = {}
    for run in allpairs_results.get("runs", []):
        if run.get("kind") != "symmetrize":
            continue
        key = (int(run["n_nodes"]), float(run["threshold"]))
        by_point.setdefault(key, {})[run["backend"]] = float(
            run["seconds"]
        )
        by_point[key].setdefault("_nnz", float(run["n_edges"]))

    n_points = 0
    within = 0
    worse_than_default = 0
    details: list[dict[str, Any]] = []
    for (n_nodes, threshold), timed in sorted(by_point.items()):
        nnz = int(timed.pop("_nnz", 0))
        if len(timed) < 2 or DEFAULT_BACKEND not in timed:
            continue
        features = features_from_counts(n_nodes, nnz, threshold)
        chosen, _, _ = choose_backend(model, features)
        if chosen not in timed:
            chosen = DEFAULT_BACKEND
        chosen_s = timed[chosen]
        best_s = min(timed.values())
        default_s = timed[DEFAULT_BACKEND]
        n_points += 1
        ok = chosen_s <= best_s * (1.0 + tolerance)
        within += int(ok)
        worse_than_default += int(chosen_s > default_s)
        details.append(
            {
                "n_nodes": n_nodes,
                "threshold": threshold,
                "chosen": chosen,
                "chosen_seconds": chosen_s,
                "best_seconds": best_s,
                "default_seconds": default_s,
                "within_tolerance": ok,
            }
        )
    fraction = within / n_points if n_points else 1.0
    return {
        "tolerance": tolerance,
        "n_points": n_points,
        "within_tolerance": within,
        "within_tolerance_fraction": fraction,
        "worse_than_default": worse_than_default,
        "passed": n_points == 0
        or (fraction >= 0.8 and worse_than_default == 0),
        "points": details,
    }
