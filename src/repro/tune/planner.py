"""The planner: cost model + graph features → an execution plan.

A :class:`PlanDecision` is the autotuner's answer for one run: which
all-pairs backend to use, the row-block size, the shard worker count,
in-core vs. memory-mapped storage, and how large a memory-tier
artifact cache to install. Decisions are *execution strategy, not
output identity* — every knob here is proven output-invariant by the
engine's differential tests (backend oracle, shard-vs-monolithic
byte identity), which is why they deliberately do **not** enter stage
fingerprints or artifact keys: a tuned run can still hit artifacts a
hand-configured run cached.

Choice logic, in order of authority:

- **backend** — model-driven argmin over the predicted
  ``symmetrize:<backend>`` seconds, with hysteresis: deviate from the
  default (``vectorized``) only when the alternative is predicted at
  least 10% faster, so a noisy model can never pick a plan worse than
  the hand-set default by more than its own prediction error on a
  regime the default already wins.
- **storage** — :func:`repro.linalg.choose_storage`'s working-set
  estimate against the 2 GiB resident budget.
- **block size / n_jobs / cache bytes** — deterministic functions of
  the graph shape, mirroring the hand-tuned values the bench
  harnesses converged on (512-row blocks in core, 4096-row shard
  blocks out of core).

Every decision increments the ``tuning_decisions_total`` metric and
serializes into the manifest's v4 ``tuning`` section with full
chosen-vs-default provenance.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.linalg.allpairs import DEFAULT_BLOCK_SIZE
from repro.linalg.mmcsr import choose_storage
from repro.obs.metrics import metric_inc
from repro.tune.features import GraphFeatures, features_from_graph
from repro.tune.model import CostModel, load_model

__all__ = [
    "DEFAULT_BACKEND",
    "BACKEND_CANDIDATES",
    "HYSTERESIS",
    "PlanDecision",
    "Planner",
    "default_plan",
    "choose_backend",
]

#: The hand-set default backend (the production engine since PR 1).
DEFAULT_BACKEND = "vectorized"

#: Backends the planner may choose between.
BACKEND_CANDIDATES = ("vectorized", "python")

#: Deviate from the default only when predicted at least this much
#: faster (ratio of predicted seconds, alternative / default).
HYSTERESIS = 0.9

#: nnz above which the shard fan-out is worth its process overhead.
_PARALLEL_NNZ_FLOOR = 2_000_000

#: Memory-tier cache sizing bounds.
_CACHE_MIN_BYTES = 64 * 1024**2
_CACHE_MAX_BYTES = 1024**3

#: Artifacts the cache should be able to hold (one symmetrized graph
#: per sweep threshold is the common reuse pattern).
_CACHE_ARTIFACTS = 8


def default_plan() -> dict[str, Any]:
    """The knobs an untuned run effectively uses."""
    return {
        "backend": DEFAULT_BACKEND,
        "block_size": DEFAULT_BLOCK_SIZE,
        "n_jobs": None,
        "storage": "in_core",
        "cache_max_bytes": None,
    }


def choose_backend(
    model: CostModel | None, features: GraphFeatures
) -> tuple[str, dict[str, float], str]:
    """(backend, per-backend predicted seconds, decision source)."""
    predicted: dict[str, float] = {}
    if model is not None:
        for backend in BACKEND_CANDIDATES:
            seconds = model.predict(
                f"symmetrize:{backend}", features
            )
            if seconds is not None:
                predicted[backend] = seconds
    if DEFAULT_BACKEND not in predicted or len(predicted) < 2:
        # Without a usable model (or with only one backend fitted)
        # there is nothing to argmin over: keep the default.
        source = "model" if predicted else "default"
        return DEFAULT_BACKEND, predicted, source
    best = min(predicted, key=lambda b: predicted[b])
    if (
        best != DEFAULT_BACKEND
        and predicted[best] >= HYSTERESIS * predicted[DEFAULT_BACKEND]
    ):
        best = DEFAULT_BACKEND
    return best, predicted, "model"


def _choose_block_size(features: GraphFeatures, storage: str) -> int:
    if storage == "mmcsr":
        return 4096  # the scale bench's shard block
    if features.n_nodes >= 50_000:
        return 2048
    return DEFAULT_BLOCK_SIZE


def _choose_n_jobs(
    features: GraphFeatures, storage: str
) -> int | None:
    cores = os.cpu_count() or 1
    if cores < 2:
        return None
    if storage == "mmcsr" or features.nnz >= _PARALLEL_NNZ_FLOOR:
        return min(4, cores)
    return None


def _choose_cache_bytes(features: GraphFeatures) -> int:
    # A symmetrized CSR artifact is ~16 bytes/nonzero (float64 data +
    # int32/64 indices); budget room for a sweep's worth of them.
    artifact = features.nnz * 16
    return int(
        min(
            max(artifact * _CACHE_ARTIFACTS, _CACHE_MIN_BYTES),
            _CACHE_MAX_BYTES,
        )
    )


@dataclass(frozen=True)
class PlanDecision:
    """One auto-tuned execution plan, with provenance."""

    backend: str
    block_size: int
    n_jobs: int | None
    storage: str
    cache_max_bytes: int | None
    source: str
    predicted_seconds: dict[str, float] = field(default_factory=dict)
    predicted_peak_bytes: float | None = None
    features: dict[str, Any] = field(default_factory=dict)

    def chosen(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "block_size": self.block_size,
            "n_jobs": self.n_jobs,
            "storage": self.storage,
            "cache_max_bytes": self.cache_max_bytes,
        }

    def as_dict(self) -> dict[str, Any]:
        """The manifest v4 ``tuning`` section for this decision."""
        return {
            "enabled": True,
            "source": self.source,
            "chosen": self.chosen(),
            "default": default_plan(),
            "predicted_seconds": dict(self.predicted_seconds),
            "predicted_peak_bytes": self.predicted_peak_bytes,
            "features": dict(self.features),
        }


class Planner:
    """Loads the persisted cost model and makes plan decisions.

    Parameters
    ----------
    model:
        An in-memory :class:`CostModel`, bypassing disk entirely.
    model_path:
        Where to load the persisted model from (default:
        ``$REPRO_TUNE_MODEL`` or ``tuning/model.json``). A missing
        file is fine — decisions then fall back to the defaults.
    mode:
        ``"strict"`` raises :class:`~repro.exceptions.TuningError` on
        a corrupt model file; ``"lenient"`` warns (code
        ``"tuning_model_invalid"``) and proceeds on defaults.
    """

    def __init__(
        self,
        model: CostModel | None = None,
        model_path: str | Path | None = None,
        mode: str = "strict",
    ) -> None:
        self.mode = mode
        self.model_path = model_path
        self._model = model
        self._loaded = model is not None

    @property
    def model(self) -> CostModel | None:
        if not self._loaded:
            self._model = load_model(
                self.model_path, strict=self.mode == "strict"
            )
            self._loaded = True
        return self._model

    def decide(self, graph: Any, threshold: float) -> PlanDecision:
        """Plan for a live graph at a given prune threshold."""
        return self.decide_from_features(
            features_from_graph(graph, threshold)
        )

    def decide_from_features(
        self, features: GraphFeatures
    ) -> PlanDecision:
        model = self.model
        backend, predicted, source = choose_backend(model, features)
        storage = choose_storage(features.n_nodes, features.nnz)
        peak = (
            model.predict("peak_rss", features)
            if model is not None
            else None
        )
        decision = PlanDecision(
            backend=backend,
            block_size=_choose_block_size(features, storage),
            n_jobs=_choose_n_jobs(features, storage),
            storage=storage,
            cache_max_bytes=_choose_cache_bytes(features),
            source=source,
            predicted_seconds=predicted,
            predicted_peak_bytes=peak,
            features=features.as_dict(),
        )
        metric_inc("tuning_decisions_total")
        return decision
