"""The fitted cost model and its versioned on-disk form.

A :class:`CostModel` maps (target, :class:`~repro.tune.features.
GraphFeatures`) to a predicted cost — wall seconds for stage targets
like ``"symmetrize:vectorized"`` or ``"cluster:mlrmcl"``, bytes for
``"peak_rss"``. Each target is an independent log-log linear fit: with
design rows :math:`x` from :meth:`GraphFeatures.vector` and observed
costs :math:`y`, we solve the ridge system

.. math:: (X^T X + \\lambda I)\\,w = X^T \\log y

and predict :math:`\\exp(x \\cdot w)`. Power laws in n/nnz/skew/
threshold are the natural family for these kernels, the fit is a
50-line closed form on numpy (no new dependencies), and it behaves
sanely on the tiny smoke corpus (one sample per target) because the
ridge term keeps the system well-posed.

The model persists to ``tuning/model.json`` under the versioned schema
:data:`MODEL_SCHEMA` together with goodness-of-fit stats (log-space
R², sample counts) and the plan-quality evaluation from ``repro tune``
(see :func:`repro.tune.corpus.evaluate_plan_quality`). Loading follows
the :mod:`repro.validate` taxonomy: a corrupt or unsupported file is a
typed :class:`~repro.exceptions.TuningError` on the strict path and a
warned fallback to defaults (:class:`~repro.exceptions.RepairWarning`,
code ``"tuning_model_invalid"``) on the lenient path. A *missing*
model file is not an error — it simply means nothing has been fitted
yet and the planner uses the hand-set defaults.
"""

from __future__ import annotations

import json
import math
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from repro.exceptions import RepairWarning, TuningError
from repro.tune.features import FEATURE_NAMES, GraphFeatures

__all__ = [
    "MODEL_SCHEMA",
    "SUPPORTED_MODEL_SCHEMAS",
    "MODEL_PATH_ENV",
    "DEFAULT_MODEL_PATH",
    "Sample",
    "TargetFit",
    "CostModel",
    "fit_cost_model",
    "default_model_path",
    "load_model",
    "save_model",
]

#: Schema identifier embedded in ``tuning/model.json``; bump on
#: breaking changes to the JSON shape.
MODEL_SCHEMA = "repro-tune-model/v1"

#: Schemas :meth:`CostModel.from_dict` can still read.
SUPPORTED_MODEL_SCHEMAS = (MODEL_SCHEMA,)

#: Environment override for the model location (used by CI smokes and
#: tests to point a pipeline at a freshly fitted model).
MODEL_PATH_ENV = "REPRO_TUNE_MODEL"

#: Default model location, relative to the working directory.
DEFAULT_MODEL_PATH = "tuning/model.json"

#: Ridge regularization strength. Large enough to keep single-sample
#: targets well-posed, small enough not to bias a real corpus.
_RIDGE_LAMBDA = 1e-3

#: Cost floor: observed seconds/bytes are clipped here before the log.
_MIN_COST = 1e-9


@dataclass(frozen=True)
class Sample:
    """One observed (target, features, cost) triple from the corpus."""

    target: str
    features: GraphFeatures
    value: float


@dataclass(frozen=True)
class TargetFit:
    """The fitted coefficients and fit quality for one target."""

    coef: tuple[float, ...]
    r2: float
    n_samples: int

    def predict(self, features: GraphFeatures) -> float:
        log_cost = float(
            np.dot(np.asarray(self.coef), features.vector())
        )
        # Clamp the exponent so a wild extrapolation can't overflow.
        return math.exp(min(log_cost, 700.0))


@dataclass
class CostModel:
    """Per-target log-log fits plus provenance/quality stats."""

    targets: dict[str, TargetFit] = field(default_factory=dict)
    stats: dict[str, Any] = field(default_factory=dict)

    def can_predict(self, target: str) -> bool:
        return target in self.targets

    def predict(
        self, target: str, features: GraphFeatures
    ) -> float | None:
        """Predicted cost for ``target``, or None if never fitted."""
        fit = self.targets.get(target)
        if fit is None:
            return None
        return fit.predict(features)

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": MODEL_SCHEMA,
            "features": list(FEATURE_NAMES),
            "targets": {
                name: {
                    "coef": [float(c) for c in fit.coef],
                    "r2": float(fit.r2),
                    "n_samples": int(fit.n_samples),
                }
                for name, fit in sorted(self.targets.items())
            },
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CostModel":
        """Rebuild a model from :meth:`as_dict` output (validating).

        Raises :class:`TuningError` on any shape violation; callers
        that want the lenient warned-fallback path go through
        :func:`load_model`.
        """
        if not isinstance(payload, Mapping):
            raise TuningError("cost model payload is not an object")
        schema = payload.get("schema")
        if schema not in SUPPORTED_MODEL_SCHEMAS:
            raise TuningError(
                f"unsupported cost-model schema {schema!r}; "
                f"expected one of {SUPPORTED_MODEL_SCHEMAS}"
            )
        feature_names = payload.get("features")
        if list(feature_names or ()) != list(FEATURE_NAMES):
            raise TuningError(
                f"cost model was fitted against features "
                f"{feature_names!r}, not {list(FEATURE_NAMES)!r}"
            )
        raw_targets = payload.get("targets")
        if not isinstance(raw_targets, Mapping):
            raise TuningError("cost model has no 'targets' mapping")
        targets: dict[str, TargetFit] = {}
        for name, entry in raw_targets.items():
            if not isinstance(entry, Mapping):
                raise TuningError(
                    f"cost-model target {name!r} is not an object"
                )
            coef = entry.get("coef")
            if (
                not isinstance(coef, (list, tuple))
                or len(coef) != len(FEATURE_NAMES)
                or not all(
                    isinstance(c, (int, float))
                    and not isinstance(c, bool)
                    and math.isfinite(float(c))
                    for c in coef
                )
            ):
                raise TuningError(
                    f"cost-model target {name!r} needs "
                    f"{len(FEATURE_NAMES)} finite coefficients"
                )
            targets[name] = TargetFit(
                coef=tuple(float(c) for c in coef),
                r2=float(entry.get("r2", 0.0)),
                n_samples=int(entry.get("n_samples", 0)),
            )
        stats = payload.get("stats", {})
        if not isinstance(stats, Mapping):
            raise TuningError("cost-model 'stats' is not an object")
        return cls(targets=targets, stats=dict(stats))


def fit_cost_model(
    samples: Iterable[Sample],
    sources: Iterable[str] = (),
) -> CostModel:
    """Fit one ridge log-log regression per distinct sample target."""
    by_target: dict[str, list[Sample]] = {}
    for sample in samples:
        by_target.setdefault(sample.target, []).append(sample)
    if not by_target:
        raise TuningError(
            "cannot fit a cost model from an empty corpus"
        )
    targets: dict[str, TargetFit] = {}
    for name, group in by_target.items():
        x = np.stack([s.features.vector() for s in group])
        y = np.log(
            np.clip(
                np.array([s.value for s in group], dtype=np.float64),
                _MIN_COST,
                None,
            )
        )
        gram = x.T @ x + _RIDGE_LAMBDA * np.eye(x.shape[1])
        coef = np.linalg.solve(gram, x.T @ y)
        predicted = x @ coef
        ss_res = float(np.sum((y - predicted) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
        targets[name] = TargetFit(
            coef=tuple(float(c) for c in coef),
            r2=r2,
            n_samples=len(group),
        )
    return CostModel(
        targets=targets,
        stats={
            "created_unix": time.time(),
            "n_samples": sum(len(g) for g in by_target.values()),
            "sources": list(sources),
        },
    )


def default_model_path() -> Path:
    """``$REPRO_TUNE_MODEL`` or ``tuning/model.json``."""
    return Path(os.environ.get(MODEL_PATH_ENV, DEFAULT_MODEL_PATH))


def save_model(model: CostModel, path: str | Path | None = None) -> Path:
    """Serialize ``model`` to ``path`` (default: the standard spot)."""
    out = Path(path) if path is not None else default_model_path()
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(model.as_dict(), indent=2, sort_keys=False) + "\n"
    )
    return out


def load_model(
    path: str | Path | None = None, strict: bool = True
) -> CostModel | None:
    """Load a persisted model; the robustness contract lives here.

    - Missing file → ``None`` silently (nothing fitted yet; the
      planner falls back to the hand-set defaults).
    - Corrupt JSON / unsupported schema / malformed coefficients →
      :class:`TuningError` when ``strict``, else a
      :class:`RepairWarning` (code ``"tuning_model_invalid"``) and
      ``None`` — the lenient run proceeds on defaults.
    """
    source = Path(path) if path is not None else default_model_path()
    if not source.exists():
        return None
    try:
        payload = json.loads(source.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return _reject(source, f"unreadable JSON ({exc})", strict)
    try:
        return CostModel.from_dict(payload)
    except TuningError as exc:
        return _reject(source, str(exc), strict)


def _reject(
    source: Path, reason: str, strict: bool
) -> CostModel | None:
    message = f"cost model {source} is invalid: {reason}"
    if strict:
        raise TuningError(message)
    warnings.warn(
        RepairWarning(
            message + "; falling back to the default plan",
            code="tuning_model_invalid",
        ),
        stacklevel=3,
    )
    return None
