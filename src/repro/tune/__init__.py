"""Cost-model-driven autotuning (``repro tune``).

The repo records rich per-run data — ``BENCH_allpairs.json`` /
``BENCH_scale.json`` from the bench harnesses, RunManifest JSONL run
logs, metrics snapshots — but until this subsystem every execution
knob (all-pairs backend, block size, shard ``n_jobs``, cache tier
size, in-core vs. mmap storage) was hand-set. :mod:`repro.tune` closes
the loop:

- :mod:`~repro.tune.features` — the graph statistics the model
  conditions on (n, nnz, degree skew, threshold), in log space;
- :mod:`~repro.tune.model` — per-target ridge log-log fits persisted
  to ``tuning/model.json`` under a versioned schema with
  goodness-of-fit stats;
- :mod:`~repro.tune.corpus` — extraction of (features, cost) samples
  from the recorded run data, and the plan-quality replay that scores
  the model against the hand-set configurations;
- :mod:`~repro.tune.planner` — the Executor-facing decision maker:
  ``tuning="auto"`` on a pipeline/Executor loads the persisted model
  and auto-selects the plan, recording chosen-vs-default provenance
  in the manifest's ``tuning`` section and the
  ``tuning_decisions_total`` metric.

See ``docs/tuning.md`` for the refit workflow (``repro tune fit``),
plan inspection (``repro tune explain``) and how to pin a manual plan.
"""

from repro.tune.corpus import (
    evaluate_plan_quality,
    load_corpus,
    samples_from_allpairs,
    samples_from_runlog,
    samples_from_scale,
)
from repro.tune.features import (
    FEATURE_NAMES,
    GraphFeatures,
    degree_skew,
    features_from_counts,
    features_from_graph,
)
from repro.tune.model import (
    DEFAULT_MODEL_PATH,
    MODEL_PATH_ENV,
    MODEL_SCHEMA,
    CostModel,
    Sample,
    TargetFit,
    default_model_path,
    fit_cost_model,
    load_model,
    save_model,
)
from repro.tune.planner import (
    BACKEND_CANDIDATES,
    DEFAULT_BACKEND,
    PlanDecision,
    Planner,
    choose_backend,
    default_plan,
)

__all__ = [
    "FEATURE_NAMES",
    "GraphFeatures",
    "degree_skew",
    "features_from_graph",
    "features_from_counts",
    "MODEL_SCHEMA",
    "MODEL_PATH_ENV",
    "DEFAULT_MODEL_PATH",
    "Sample",
    "TargetFit",
    "CostModel",
    "fit_cost_model",
    "default_model_path",
    "load_model",
    "save_model",
    "samples_from_allpairs",
    "samples_from_scale",
    "samples_from_runlog",
    "load_corpus",
    "evaluate_plan_quality",
    "DEFAULT_BACKEND",
    "BACKEND_CANDIDATES",
    "PlanDecision",
    "Planner",
    "default_plan",
    "choose_backend",
]
