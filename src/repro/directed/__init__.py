"""Directed-graph clustering baselines and cut objectives (§2).

The paper contrasts its symmetrization framework against the directed
normalized-cut line of work:

- :mod:`~repro.directed.objectives` — Ncut (Eq. 1), directed Ncut
  (Eq. 3) and the Meila–Pentney weighted cut WCut (Eq. 4).
- :mod:`~repro.directed.laplacian` — the directed Laplacian (Eq. 5).
- :class:`ZhouDirectedSpectral` — Zhou, Huang & Schölkopf's directed
  spectral clustering (the method that "did not finish execution" on
  the paper's datasets).
- :class:`WCutSpectral` / :func:`best_wcut` — Meila & Pentney's
  weighted-cut spectral clustering (the BestWCut baseline of
  Figures 6a/6b).
"""

from repro.directed.laplacian import directed_laplacian
from repro.directed.objectives import (
    clustering_ncut,
    ncut,
    ncut_directed,
    wcut,
)
from repro.directed.wcut import WCutSpectral, best_wcut
from repro.directed.zhou import ZhouDirectedSpectral

__all__ = [
    "ncut",
    "ncut_directed",
    "wcut",
    "clustering_ncut",
    "directed_laplacian",
    "ZhouDirectedSpectral",
    "WCutSpectral",
    "best_wcut",
]
