"""The directed Laplacian of Chung / Zhou et al. (Eq. 5).

``L = I - (Pi^{1/2} P Pi^{-1/2} + Pi^{-1/2} Pᵀ Pi^{1/2}) / 2``

where ``P`` is the random-walk transition matrix and ``Pi`` the
diagonal matrix of its stationary distribution. This is the operator
the directed spectral clustering methods (§2.1) eigendecompose — and
whose cost motivates the paper's symmetrize-then-cluster alternative.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.digraph import DirectedGraph
from repro.linalg.pagerank import pagerank, transition_matrix

__all__ = ["directed_laplacian", "directed_normalized_adjacency"]


def directed_normalized_adjacency(
    graph: DirectedGraph,
    teleport: float = 0.05,
    pi: np.ndarray | None = None,
) -> sp.csr_array:
    """The symmetric operator ``(Pi^½ P Pi^-½ + Pi^-½ Pᵀ Pi^½)/2``.

    Its top eigenvectors are the bottom eigenvectors of the directed
    Laplacian (Eq. 5). ``pi`` defaults to the teleporting stationary
    distribution (teleport 0.05, as in the paper's setup §4.2).
    """
    P, _ = transition_matrix(graph)
    if pi is None:
        pi = pagerank(graph, teleport=teleport)
    pi = np.asarray(pi, dtype=np.float64)
    sqrt_pi = np.sqrt(np.maximum(pi, 0.0))
    inv_sqrt = np.divide(
        1.0, sqrt_pi, out=np.zeros_like(sqrt_pi), where=sqrt_pi > 0
    )
    left = sp.diags_array(sqrt_pi).tocsr()
    right = sp.diags_array(inv_sqrt).tocsr()
    theta = (left @ P @ right).tocsr()
    return ((theta + theta.T) * 0.5).tocsr()


def directed_laplacian(
    graph: DirectedGraph,
    teleport: float = 0.05,
    pi: np.ndarray | None = None,
) -> sp.csr_array:
    """The directed Laplacian ``L`` of Eq. 5 (symmetric PSD)."""
    theta = directed_normalized_adjacency(graph, teleport=teleport, pi=pi)
    eye = sp.eye_array(graph.n_nodes, format="csr")
    return (eye - theta).tocsr()
