"""Meila & Pentney's weighted-cut spectral clustering (BestWCut).

Reference [17] of the paper: WCut (Eq. 4) is a family of cut
objectives on directed graphs parameterized by node-weight vectors
``T`` (the volume weights) and ``T'`` (the cut weights). Its spectral
relaxation reduces to a *symmetric* eigenproblem: with the cut-weighted
matrix ``Â(i,j) = T'(i) A(i,j)`` and its symmetric part
``W = (Â + Âᵀ)/2``, minimizing WCut relaxes to the top eigenvectors of
``D_T^{-1/2} W D_T^{-1/2}`` (``D_T = diag(T)``), discretized with
T-weighted k-means — exactly the Ncut relaxation with generalized
volumes.

``best_wcut`` instantiates the member of the family the original
authors found strongest and that recovers the directed normalized cut
(the paper notes Ncut_dir is the special case ``A := P``,
``T = T' = pi``): row-stochastic transition matrix with stationary
weights. This is the "BestWCut" baseline of Figures 6(a)/6(b); it is a
full spectral method, so it pays the eigendecomposition cost that the
paper's Figure 6(b) shows dominating its runtime.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.cluster.common import Clustering
from repro.cluster.spectral import discretize_embedding, spectral_embedding
from repro.exceptions import ClusteringError
from repro.graph.digraph import DirectedGraph
from repro.linalg.pagerank import pagerank, transition_matrix

__all__ = ["WCutSpectral", "best_wcut"]


class WCutSpectral:
    """Spectral minimization of the WCut objective (Eq. 4).

    Parameters
    ----------
    T, T_prime:
        Node-weight vectors. Strings select built-in choices computed
        from the graph at cluster time:

        - ``"pi"`` — the stationary distribution (teleporting walk);
        - ``"degree"`` — total degree;
        - ``"uniform"`` — all ones.

        Arrays are used as-is.
    use_transition_matrix:
        Replace ``A`` by the row-stochastic ``P`` before weighting —
        the Ncut_dir-recovering configuration.
    teleport:
        Teleport probability when the stationary distribution is
        needed.
    dense_cutoff, seed:
        Eigensolver controls (see
        :func:`repro.cluster.spectral.spectral_embedding`).
    """

    def __init__(
        self,
        T: str | np.ndarray = "pi",
        T_prime: str | np.ndarray = "pi",
        use_transition_matrix: bool = True,
        teleport: float = 0.05,
        dense_cutoff: int = 4000,
        seed: int = 0,
    ) -> None:
        for name, value in (("T", T), ("T_prime", T_prime)):
            if isinstance(value, str) and value not in (
                "pi",
                "degree",
                "uniform",
            ):
                raise ClusteringError(
                    f"{name} must be 'pi', 'degree', 'uniform' or an array"
                )
        self.T = T
        self.T_prime = T_prime
        self.use_transition_matrix = bool(use_transition_matrix)
        self.teleport = float(teleport)
        self.dense_cutoff = int(dense_cutoff)
        self.seed = int(seed)

    def _resolve_weights(
        self, spec: str | np.ndarray, graph: DirectedGraph
    ) -> np.ndarray:
        if isinstance(spec, str):
            if spec == "pi":
                return pagerank(graph, teleport=self.teleport)
            if spec == "degree":
                return np.maximum(graph.total_degrees(weighted=True), 1e-12)
            return np.ones(graph.n_nodes)
        weights = np.asarray(spec, dtype=np.float64)
        if weights.shape != (graph.n_nodes,):
            raise ClusteringError("weight vector has wrong length")
        if weights.min() < 0:
            raise ClusteringError("weights must be non-negative")
        return weights

    def cluster(self, graph: DirectedGraph, n_clusters: int) -> Clustering:
        """Cluster a *directed* graph into ``n_clusters`` parts."""
        if not isinstance(graph, DirectedGraph):
            raise ClusteringError(
                f"expected a DirectedGraph, got {type(graph).__name__}"
            )
        if not 1 <= n_clusters <= graph.n_nodes:
            raise ClusteringError(
                f"n_clusters={n_clusters} out of range for "
                f"{graph.n_nodes} nodes"
            )
        T = self._resolve_weights(self.T, graph)
        T_prime = self._resolve_weights(self.T_prime, graph)
        if self.use_transition_matrix:
            base, _ = transition_matrix(graph)
        else:
            base = graph.adjacency.tocsr()
        weighted = base.multiply(T_prime[:, None]).tocsr()
        W = ((weighted + weighted.T) * 0.5).tocsr()
        inv_sqrt_T = np.divide(
            1.0, np.sqrt(T), out=np.zeros_like(T), where=T > 0
        )
        D = sp.diags_array(inv_sqrt_T).tocsr()
        operator = (D @ W @ D).tocsr()
        embedding = spectral_embedding(
            operator,
            n_clusters,
            dense_cutoff=self.dense_cutoff,
            seed=self.seed,
        )
        labels = discretize_embedding(
            embedding, n_clusters, seed=self.seed, weights=T
        )
        return Clustering(labels)

    def __repr__(self) -> str:
        return (
            f"WCutSpectral(T={self.T!r}, T_prime={self.T_prime!r}, "
            f"use_transition_matrix={self.use_transition_matrix})"
        )


def best_wcut(
    teleport: float = 0.05, dense_cutoff: int = 4000, seed: int = 0
) -> WCutSpectral:
    """The BestWCut baseline configuration (see module docstring)."""
    return WCutSpectral(
        T="pi",
        T_prime="pi",
        use_transition_matrix=True,
        teleport=teleport,
        dense_cutoff=dense_cutoff,
        seed=seed,
    )
