"""Zhou, Huang & Schölkopf's directed spectral clustering.

The baseline of §2.1 / reference [24]: minimize the directed
normalized cut (Eq. 3) by post-processing the bottom eigenvectors of
the directed Laplacian (Eq. 5). The paper reports this method "did not
finish execution on any of our datasets" — the eigensolve on
million-node graphs is the bottleneck. Our implementation exhibits the
same asymptotics (it is the slowest method in the Figure-6b-style
timing bench) while completing at laptop scale.
"""

from __future__ import annotations


from repro.cluster.common import Clustering
from repro.cluster.spectral import discretize_embedding, spectral_embedding
from repro.directed.laplacian import directed_normalized_adjacency
from repro.exceptions import ClusteringError
from repro.graph.digraph import DirectedGraph

__all__ = ["ZhouDirectedSpectral"]


class ZhouDirectedSpectral:
    """Directed spectral clustering via the directed Laplacian.

    Parameters
    ----------
    teleport:
        Teleport probability of the stationary distribution.
    dense_cutoff:
        Below this node count the eigenproblem is solved densely —
        both for robustness and because it reproduces the cubic
        scaling wall of the original implementations.
    seed:
        Seed for the eigensolver/k-means randomness.
    """

    def __init__(
        self,
        teleport: float = 0.05,
        dense_cutoff: int = 4000,
        seed: int = 0,
    ) -> None:
        self.teleport = float(teleport)
        self.dense_cutoff = int(dense_cutoff)
        self.seed = int(seed)

    def cluster(self, graph: DirectedGraph, n_clusters: int) -> Clustering:
        """Cluster a *directed* graph into ``n_clusters`` parts."""
        if not isinstance(graph, DirectedGraph):
            raise ClusteringError(
                f"expected a DirectedGraph, got {type(graph).__name__}"
            )
        if not 1 <= n_clusters <= graph.n_nodes:
            raise ClusteringError(
                f"n_clusters={n_clusters} out of range for "
                f"{graph.n_nodes} nodes"
            )
        theta = directed_normalized_adjacency(
            graph, teleport=self.teleport
        )
        embedding = spectral_embedding(
            theta,
            n_clusters,
            dense_cutoff=self.dense_cutoff,
            seed=self.seed,
        )
        labels = discretize_embedding(embedding, n_clusters, seed=self.seed)
        return Clustering(labels)

    def __repr__(self) -> str:
        return f"ZhouDirectedSpectral(teleport={self.teleport})"
