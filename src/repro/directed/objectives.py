"""Cut objectives for undirected and directed graphs (Eqs. 1–4).

These are the quantities the prior work the paper reviews (§2)
optimizes, and the quantities our tests use to verify Gleich's
equivalence: the undirected Ncut of any vertex set on the random-walk
symmetrized graph equals the directed Ncut of the same set on the
original directed graph.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EvaluationError
from repro.graph.digraph import DirectedGraph
from repro.graph.ugraph import UndirectedGraph
from repro.linalg.pagerank import pagerank, transition_matrix

__all__ = [
    "ncut",
    "ncut_directed",
    "wcut",
    "conductance",
    "clustering_ncut",
]


def _as_mask(subset: object, n: int) -> np.ndarray:
    """Normalize a subset spec (indices or boolean mask) to a mask."""
    arr = np.asarray(subset)
    if arr.dtype == bool:
        if arr.shape != (n,):
            raise EvaluationError("boolean mask has wrong length")
        mask = arr.copy()
    else:
        mask = np.zeros(n, dtype=bool)
        if arr.size:
            if arr.min() < 0 or arr.max() >= n:
                raise EvaluationError("subset index out of range")
            mask[arr] = True
    if not mask.any() or mask.all():
        raise EvaluationError(
            "subset must be a proper non-empty subset of the nodes"
        )
    return mask


def ncut(graph: UndirectedGraph, subset: object) -> float:
    """Normalized cut of a vertex set ``S`` (Eq. 1).

    ``Ncut(S) = cut(S, S̄)/vol(S) + cut(S̄, S)/vol(S̄)`` with volumes
    the sums of (weighted) degrees. Zero-volume sides make the
    objective infinite by convention.
    """
    n = graph.n_nodes
    mask = _as_mask(subset, n)
    adj = graph.adjacency
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    cut_weight = float(adj[mask][:, ~mask].sum())
    vol_s = float(degrees[mask].sum())
    vol_rest = float(degrees[~mask].sum())
    if vol_s == 0 or vol_rest == 0:
        return float("inf")
    return cut_weight / vol_s + cut_weight / vol_rest


def ncut_directed(
    graph: DirectedGraph,
    subset: object,
    teleport: float = 1e-3,
    pi: np.ndarray | None = None,
) -> float:
    """Directed normalized cut (Eq. 3).

    ``Ncut_dir(S)`` is the probability that a stationary random walk
    crosses from ``S`` to ``S̄`` (or back) in one step, normalized by
    the stationary mass of each side::

        sum_{i in S, j in S̄} pi_i P_ij / pi(S)
      + sum_{j in S̄, i in S} pi_j P_ji / pi(S̄)

    ``pi`` defaults to the teleporting stationary distribution with a
    small teleport (the exact Eq. 3 uses the teleport-free stationary
    distribution, which need not exist on arbitrary graphs; a small
    teleport is the standard regularization and what Zhou et al. do in
    practice).
    """
    n = graph.n_nodes
    mask = _as_mask(subset, n)
    P, _ = transition_matrix(graph)
    if pi is None:
        pi = pagerank(graph, teleport=teleport)
    pi = np.asarray(pi, dtype=np.float64)
    if pi.shape != (n,):
        raise EvaluationError("pi has wrong length")
    flow = P.multiply(pi[:, None]).tocsr()  # pi_i * P_ij
    out_flow = float(flow[mask][:, ~mask].sum())
    in_flow = float(flow[~mask][:, mask].sum())
    mass_s = float(pi[mask].sum())
    mass_rest = float(pi[~mask].sum())
    if mass_s == 0 or mass_rest == 0:
        return float("inf")
    return out_flow / mass_s + in_flow / mass_rest


def wcut(
    graph: DirectedGraph,
    subset: object,
    T: np.ndarray,
    T_prime: np.ndarray,
) -> float:
    """Meila–Pentney weighted cut (Eq. 4).

    ``WCut(S) = sum_{i in S, j in S̄} T'(i) A(i, j) / sum_{i in S} T(i)
              + sum_{j in S̄, i in S} T'(j) A(j, i) / sum_{j in S̄} T(j)``

    Plugging ``A := P`` (the transition matrix), ``T' = T = pi``
    recovers ``Ncut_dir``; with a symmetric ``A``, ``T' = 1`` and
    ``T = degree`` it recovers the plain Ncut. Our tests verify both
    recoveries.
    """
    n = graph.n_nodes
    mask = _as_mask(subset, n)
    T = np.asarray(T, dtype=np.float64)
    T_prime = np.asarray(T_prime, dtype=np.float64)
    if T.shape != (n,) or T_prime.shape != (n,):
        raise EvaluationError("T and T' must have one entry per node")
    adj = graph.adjacency
    weighted = adj.multiply(T_prime[:, None]).tocsr()  # T'(i) A(i, j)
    out_cut = float(weighted[mask][:, ~mask].sum())
    in_cut = float(weighted[~mask][:, mask].sum())
    denom_s = float(T[mask].sum())
    denom_rest = float(T[~mask].sum())
    if denom_s == 0 or denom_rest == 0:
        return float("inf")
    return out_cut / denom_s + in_cut / denom_rest


def conductance(graph: UndirectedGraph, subset: object) -> float:
    """Conductance of a vertex set (§2.1's "closely related" cousin
    of Ncut).

    ``phi(S) = cut(S, S̄) / min(vol(S), vol(S̄))`` — like Ncut it is
    low for well-separated dense groups, but normalizes by the smaller
    side only. Included because the paper frames the normalized-cut
    literature through it (Kannan, Vempala & Vetta).
    """
    n = graph.n_nodes
    mask = _as_mask(subset, n)
    adj = graph.adjacency
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    cut_weight = float(adj[mask][:, ~mask].sum())
    vol_s = float(degrees[mask].sum())
    vol_rest = float(degrees[~mask].sum())
    smaller = min(vol_s, vol_rest)
    if smaller == 0:
        return float("inf")
    return cut_weight / smaller


def clustering_ncut(graph: UndirectedGraph, labels: np.ndarray) -> float:
    """Sum of per-cluster Ncut values of a full clustering.

    The standard k-way normalized-cut objective; the paper uses it
    (§5.4) to explain why degree-discounted graphs cluster faster —
    their normalized cuts are much lower, indicating well-separated
    clusters. Clusters covering the whole graph or with zero volume are
    skipped (they contribute no cut).
    """
    labels = np.asarray(labels)
    if labels.shape != (graph.n_nodes,):
        raise EvaluationError("labels must have one entry per node")
    adj = graph.adjacency
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    total_vol = float(degrees.sum())
    result = 0.0
    for c in np.unique(labels):
        mask = labels == c
        vol = float(degrees[mask].sum())
        if vol == 0 or vol == total_vol:
            continue
        internal = float(adj[mask][:, mask].sum())
        cut_weight = vol - internal
        result += cut_weight / vol
    return result
