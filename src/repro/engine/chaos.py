"""Chaos harness: deterministic fault injection for recovery testing.

A production claim like "a crashed worker cannot cost the sweep" is
only as good as the test that kills a worker. This module makes every
failure the fault-tolerance layer recovers from *injectable*:

>>> from repro.engine.chaos import Fault, FaultPlan, inject_faults
>>> plan = FaultPlan([Fault(site="stage:symmetrize", at=1)])
>>> with inject_faults(plan):                       # doctest: +SKIP
...     executor.execute(...)   # first symmetrize attempt raises
>>> plan.triggered_count("stage:symmetrize")        # doctest: +SKIP
1

Production code declares *chaos sites* by calling :func:`chaos` at the
point where a real fault would surface (``stage:<name>`` around stage
execution, ``journal.append`` before a journal write,
``cache.disk_put`` before persisting an artifact, ``allpairs.worker``
when submitting pool chunks, ``sweep.point`` after each grid point,
``service.store_put`` before the service store persists a graph or
result, ``service.worker`` when the supervisor dispatches a job to a
worker process — ``kill_worker`` faults here kill that worker —
``service.accept`` at job admission in the HTTP layer).
With no plan installed the call is a single contextvar read — the
harness costs nothing in normal runs and is invisible outside tests.

Fault kinds
-----------
- ``"raise"`` — raise ``exc`` (default
  :class:`~repro.exceptions.FaultInjected`, a transient error, so the
  retry path engages) on the ``at``-th matching call.
- ``"sleep"`` — delay ``sleep_s`` seconds (budget-overrun testing).
- ``"enospc"`` — raise ``OSError(ENOSPC)`` as a full disk would.
- ``"kill_process"`` — SIGKILL the current process (crash/resume
  testing from a parent process).
- ``"kill_worker"`` / ``"corrupt"`` — *flag* faults: :func:`chaos`
  returns the triggered :class:`Fault` instead of raising, and the
  call site implements the failure itself (kill a pool worker,
  garble a cache entry) because only it can.
"""

from __future__ import annotations

import contextlib
import contextvars
import errno
import os
import signal
import time
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import FaultInjected, ReproError

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "inject_faults",
    "current_faults",
    "chaos",
]

#: Recognized fault kinds (see the module docstring).
FAULT_KINDS = (
    "raise",
    "sleep",
    "enospc",
    "kill_process",
    "kill_worker",
    "corrupt",
)


@dataclass
class Fault:
    """One injectable failure at one chaos site.

    Attributes
    ----------
    site:
        The chaos-site name this fault arms (exact match).
    kind:
        One of :data:`FAULT_KINDS`.
    at:
        1-based index of the first matching call that triggers.
    times:
        How many consecutive matching calls trigger (calls
        ``at .. at + times - 1``); bound it so retry loops terminate.
    exc:
        Exception class for ``kind="raise"``.
    message:
        Message for the raised exception.
    sleep_s:
        Delay for ``kind="sleep"``.
    """

    site: str
    kind: str = "raise"
    at: int = 1
    times: int = 1
    exc: type[BaseException] = FaultInjected
    message: str | None = None
    sleep_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.at < 1 or self.times < 1:
            raise ReproError(
                "Fault.at and Fault.times must be >= 1 "
                f"(got at={self.at}, times={self.times})"
            )

    def armed_for(self, call_index: int) -> bool:
        """Whether the fault triggers on the given 1-based call."""
        return self.at <= call_index < self.at + self.times


class FaultPlan:
    """An armed set of faults plus per-site call/trigger accounting.

    The plan is the unit tests assert against: after the run,
    :meth:`triggered_count` says how many faults actually fired, so a
    recovery test can prove both that the failure happened *and* that
    the run survived it.
    """

    def __init__(self, faults: list[Fault] | None = None) -> None:
        self.faults = list(faults or [])
        self.calls: dict[str, int] = {}
        self.triggered: list[dict] = []

    def add(self, fault: Fault) -> "FaultPlan":
        """Arm one more fault; returns self for chaining."""
        self.faults.append(fault)
        return self

    def seen(self, site: str) -> int:
        """How many times ``site`` has been reached so far."""
        return self.calls.get(site, 0)

    def triggered_count(self, site: str | None = None) -> int:
        """Faults fired so far, optionally filtered by site."""
        return sum(
            1
            for record in self.triggered
            if site is None or record["site"] == site
        )

    def hit(self, site: str) -> Fault | None:
        """Register one call at ``site`` and apply any armed fault.

        Raising/sleeping/killing kinds are executed here; flag kinds
        (``kill_worker``, ``corrupt``) are returned to the caller.
        """
        count = self.calls.get(site, 0) + 1
        self.calls[site] = count
        for fault in self.faults:
            if fault.site != site or not fault.armed_for(count):
                continue
            self.triggered.append(
                {"site": site, "kind": fault.kind, "call": count}
            )
            message = fault.message or (
                f"chaos: injected {fault.kind} at {site} "
                f"(call {count})"
            )
            if fault.kind == "raise":
                raise fault.exc(message)
            if fault.kind == "sleep":
                time.sleep(fault.sleep_s)
                return None
            if fault.kind == "enospc":
                raise OSError(
                    errno.ENOSPC, f"chaos: no space left ({site})"
                )
            if fault.kind == "kill_process":
                os.kill(os.getpid(), signal.SIGKILL)
            return fault  # kill_worker / corrupt: caller implements
        return None

    def __repr__(self) -> str:
        return (
            f"FaultPlan({len(self.faults)} faults, "
            f"{self.triggered_count()} triggered)"
        )


_FAULTS: contextvars.ContextVar[FaultPlan | None] = (
    contextvars.ContextVar("repro_fault_plan", default=None)
)


def current_faults() -> FaultPlan | None:
    """The ambient fault plan, or ``None`` outside chaos tests."""
    return _FAULTS.get()


@contextlib.contextmanager
def inject_faults(
    plan: FaultPlan | list[Fault],
) -> Iterator[FaultPlan]:
    """Install ``plan`` (or build one from a fault list) as ambient."""
    installed = plan if isinstance(plan, FaultPlan) else FaultPlan(plan)
    token = _FAULTS.set(installed)
    try:
        yield installed
    finally:
        _FAULTS.reset(token)


def chaos(site: str) -> Fault | None:
    """Declare a chaos site; a no-op unless a fault plan is ambient.

    Returns a triggered flag-kind :class:`Fault` (``kill_worker`` /
    ``corrupt``) for the call site to act on, and ``None`` otherwise.
    """
    plan = _FAULTS.get()
    if plan is None:
        return None
    return plan.hit(site)
