"""The :class:`Executor`: runs a :class:`~repro.engine.Plan`.

Everything the old ``SymmetrizeClusterPipeline.run`` monolith did
around each stage now lives here, once, for every caller (pipeline
facade, sweeps, experiment runners):

- a tracing span per stage (:mod:`repro.obs.trace`);
- structured warning capture per stage — every
  :class:`~repro.exceptions.ReproWarning` raised inside a stage is
  recorded as a :class:`PipelineWarning` instead of reaching the
  user's warning filters;
- wall-clock timing per stage, optionally recorded into the ambient
  :class:`~repro.perf.PerfRecorder` under the stage's ``perf_tag``;
- validation strictness scoped to the run's mode;
- content-addressed artifact caching for cacheable stages, keyed on
  the input dataset fingerprint plus the stage lineage's canonical
  config hashes, metered as ``cache_hits_total`` /
  ``cache_misses_total``;
- fault tolerance: bounded retries of transient stage failures
  (:class:`~repro.engine.policy.RetryPolicy`), wall/memory budgets per
  stage and per plan (:class:`~repro.engine.policy.Budget`),
  write-ahead journaling of completed stages
  (:class:`~repro.engine.journal.RunJournal`) and journal-directed
  resume (``resume_from=``) that serves previously completed stages
  from the artifact cache instead of re-running them.
"""

from __future__ import annotations

import contextlib
import time
import warnings as _warnings
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.engine.cache import ArtifactCache, current_cache
from repro.engine.chaos import chaos
from repro.engine.journal import (
    JournalReplay,
    RunJournal,
    current_journal,
)
from repro.engine.plan import Plan
from repro.engine.policy import Budget, BudgetMeter, RetryPolicy
from repro.engine.stage import StageContext
from repro.exceptions import (
    BudgetExceeded,
    PipelineError,
    ReproWarning,
)
from repro.graph.digraph import DirectedGraph
from repro.graph.ugraph import UndirectedGraph
from repro.obs.metrics import metric_inc
from repro.obs.trace import span
from repro.perf.stopwatch import record_stage
from repro.validate.invariants import strictness

__all__ = [
    "EXECUTION_MODES",
    "Executor",
    "ExecutionResult",
    "StageExecution",
    "PipelineWarning",
    "capture_stage_warnings",
]

#: Recognized robustness modes (shared with the pipeline facade).
EXECUTION_MODES = ("strict", "lenient")


@dataclass(frozen=True)
class PipelineWarning:
    """One structured warning captured during a run.

    Attributes
    ----------
    stage:
        Which stage emitted it: ``"validate"``, ``"symmetrize"``,
        ``"prune"``, ``"cluster"`` or ``"evaluate"``.
    code:
        Machine-readable identifier from the originating
        :class:`~repro.exceptions.ReproWarning` (e.g.
        ``"all_dangling"``, ``"repaired_weights"``).
    message:
        Human-readable description.
    """

    stage: str
    code: str
    message: str


@contextlib.contextmanager
def capture_stage_warnings(
    stage: str, records: list[PipelineWarning]
) -> Iterator[None]:
    """Record every ReproWarning raised in the block as a structured
    :class:`PipelineWarning`; re-emit third-party warnings untouched."""
    with _warnings.catch_warnings(record=True) as caught:
        _warnings.simplefilter("always")
        yield
    for item in caught:
        if isinstance(item.message, ReproWarning):
            records.append(
                PipelineWarning(
                    stage=stage,
                    code=getattr(item.message, "code", "generic"),
                    message=str(item.message),
                )
            )
        else:
            _warnings.warn_explicit(
                item.message, item.category, item.filename, item.lineno
            )


@dataclass(frozen=True)
class StageExecution:
    """What happened to one stage of one run.

    ``cached`` is ``None`` for stages that are not cacheable (or ran
    without a cache), ``True`` for a cache hit and ``False`` for a
    miss that computed and stored the artifact. ``artifact_key`` is
    the content address consulted, when any. ``attempts`` counts every
    execution attempt including the successful one; ``resumed`` marks
    stages served from the cache because a resume journal recorded
    them as already complete.
    """

    stage: str
    seconds: float
    cached: bool | None = None
    artifact_key: str | None = None
    attempts: int = 1
    resumed: bool = False


@dataclass
class ExecutionResult:
    """Everything one plan execution produced."""

    values: dict[str, Any]
    executions: list[StageExecution] = field(default_factory=list)
    warnings: tuple[PipelineWarning, ...] = ()
    scratch: dict[str, Any] = field(default_factory=dict)
    #: Manifest-ready ``tuning`` section (the serialized
    #: :class:`~repro.tune.planner.PlanDecision`) when the run was
    #: auto-tuned; ``None`` for untuned runs.
    tuning: dict[str, Any] | None = None

    def seconds(self, stage: str) -> float:
        """Total wall time of every execution of ``stage``."""
        return sum(
            e.seconds for e in self.executions if e.stage == stage
        )

    def cache_summary(self) -> dict[str, Any]:
        """The manifest-ready cache section of this run."""
        hits = sum(1 for e in self.executions if e.cached is True)
        misses = sum(1 for e in self.executions if e.cached is False)
        keys = [
            e.artifact_key
            for e in self.executions
            if e.artifact_key is not None
        ]
        return {"hits": hits, "misses": misses, "artifact_keys": keys}

    def fault_summary(self) -> dict[str, Any]:
        """The manifest-ready fault-tolerance section of this run."""
        retries = sum(
            max(0, e.attempts - 1) for e in self.executions
        )
        resumed = sum(1 for e in self.executions if e.resumed)
        return {"stage_retries": retries, "stages_resumed": resumed}


def _fingerprint_sha(value: Any) -> str:
    from repro.obs.manifest import fingerprint_graph

    return fingerprint_graph(value)["sha256"]


class Executor:
    """Runs plans with per-stage validation, tracing and caching.

    Parameters
    ----------
    mode:
        ``"strict"`` (default) or ``"lenient"`` — scoped around the
        whole execution via :func:`repro.validate.strictness`.
    cache:
        The artifact cache to consult for cacheable stages. ``None``
        falls back to the ambient :func:`repro.engine.current_cache`;
        if there is none either, caching is off for the run.
    budgets:
        Optional per-stage :class:`Budget` ceilings keyed by stage
        name. An overrun raises :class:`BudgetExceeded` (never
        retried — budgets are deterministic in the work attempted).
    plan_budget:
        Optional whole-plan :class:`Budget`: cumulative wall clock
        across all stages, and a per-stage allocation-peak ceiling
        for memory (no single stage may allocate beyond it).
    retry:
        Optional :class:`RetryPolicy` for transient stage failures.
        ``None`` (default) disables retries.
    journal:
        The write-ahead :class:`RunJournal` to record progress into.
        ``None`` falls back to the ambient
        :func:`repro.engine.current_journal`; if there is none either,
        journaling is off.
    resume_from:
        A :class:`JournalReplay` of a previous (interrupted) run:
        stages it records as complete are served from the artifact
        cache without re-running, counted in
        ``resume_stages_skipped``.
    tuning:
        ``None`` (default) runs the hand-set configuration.
        ``"auto"`` loads the persisted cost model
        (``tuning/model.json``, see :mod:`repro.tune`) and lets the
        planner choose backend / block size / ``n_jobs`` / storage /
        cache sizing for this run. A
        :class:`~repro.tune.planner.Planner` or a pre-made
        :class:`~repro.tune.planner.PlanDecision` pins the behavior
        explicitly. Tuned knobs are execution strategy, not output
        identity: they never enter stage fingerprints or artifact
        keys.
    """

    def __init__(
        self,
        mode: str = "strict",
        cache: ArtifactCache | None = None,
        budgets: dict[str, Budget] | None = None,
        plan_budget: Budget | None = None,
        retry: RetryPolicy | None = None,
        journal: RunJournal | None = None,
        resume_from: JournalReplay | None = None,
        tuning: Any = None,
    ) -> None:
        if mode not in EXECUTION_MODES:
            raise PipelineError(
                f"unknown execution mode {mode!r}; "
                f"expected one of {EXECUTION_MODES}"
            )
        if isinstance(tuning, str) and tuning != "auto":
            raise PipelineError(
                f"unknown tuning setting {tuning!r}; expected None, "
                "'auto', a Planner or a PlanDecision"
            )
        self.mode = mode
        self._cache = cache
        self.budgets = dict(budgets or {})
        self.plan_budget = plan_budget
        self.retry = retry
        self._journal = journal
        self.resume_from = resume_from
        self.tuning = tuning

    @property
    def cache(self) -> ArtifactCache | None:
        """The effective cache (explicit, else ambient, else none)."""
        return self._cache if self._cache is not None else (
            current_cache()
        )

    @property
    def journal(self) -> RunJournal | None:
        """The effective journal (explicit, else ambient, else none)."""
        return self._journal if self._journal is not None else (
            current_journal()
        )

    def execute(
        self,
        plan: Plan,
        values: dict[str, Any],
        dataset_sha: str | None = None,
    ) -> ExecutionResult:
        """Run ``plan`` over initial ``values``.

        Parameters
        ----------
        plan:
            The stage graph to execute.
        values:
            Initial value namespace; must cover ``plan.initial``.
        dataset_sha:
            Pre-computed content fingerprint of the plan's input
            graph. When omitted it is derived (lazily, only if a
            cacheable stage actually runs with a cache installed) from
            the first graph-like initial value.
        """
        missing = [k for k in plan.initial if k not in values]
        if missing:
            raise PipelineError(
                f"plan {plan.name!r} expects initial values {missing}"
            )
        values = dict(values)
        records: list[PipelineWarning] = []
        executions: list[StageExecution] = []
        cache = self.cache
        journal = self.journal
        ctx = StageContext(mode=self.mode)
        tuning_section: dict[str, Any] | None = None
        if self.tuning is not None:
            with capture_stage_warnings("tuning", records):
                decision = self._tuning_decision(plan, values)
            if decision is not None:
                ctx.scratch["tuning"] = decision
                tuning_section = decision.as_dict()
                if cache is None and decision.cache_max_bytes:
                    # No cache anywhere: install a run-local memory
                    # tier sized by the planner (the memory tier
                    # stores object refs, so puts are near-free).
                    cache = ArtifactCache(
                        max_bytes=decision.cache_max_bytes
                    )
                    tuning_section["cache_installed"] = True
        plan_wall = 0.0
        with strictness(self.mode == "strict"):
            for index, stage in enumerate(plan.stages):
                if dataset_sha is None and cache is not None and (
                    stage.cacheable
                ):
                    dataset_sha = self._dataset_sha(plan, values)
                if journal is not None:
                    journal.ensure_started(
                        kind="plan",
                        name=plan.name,
                        dataset_sha=dataset_sha or "",
                        mode=self.mode,
                        config={
                            "stages": [s.name for s in plan.stages]
                        },
                    )
                execution = self._run_stage(
                    plan, index, stage, ctx, values, records,
                    cache, dataset_sha, journal,
                )
                executions.append(execution)
                plan_wall += execution.seconds
                if self.plan_budget is not None:
                    self.plan_budget.check_wall("plan", plan_wall)
        return ExecutionResult(
            values=values,
            executions=executions,
            warnings=tuple(records),
            scratch=ctx.scratch,
            tuning=tuning_section,
        )

    def _tuning_decision(
        self, plan: Plan, values: dict[str, Any]
    ) -> Any:
        """Resolve ``self.tuning`` into a PlanDecision (or None)."""
        from repro.tune.planner import PlanDecision, Planner

        tuning = self.tuning
        if isinstance(tuning, PlanDecision):
            return tuning
        if isinstance(tuning, Planner):
            planner = tuning
        elif tuning == "auto":
            planner = Planner(mode=self.mode)
        else:
            raise PipelineError(
                f"unknown tuning setting {tuning!r}; expected None, "
                "'auto', a Planner or a PlanDecision"
            )
        graph = None
        for name in plan.initial:
            value = values.get(name)
            if isinstance(value, (DirectedGraph, UndirectedGraph)):
                graph = value
                break
        if graph is None:
            return None
        threshold = 0.0
        for stage in plan.stages:
            t = getattr(stage, "threshold", None)
            if isinstance(t, (int, float)) and not isinstance(t, bool):
                threshold = float(t)
                break
        return planner.decide(graph, threshold)

    def _dataset_sha(
        self, plan: Plan, values: dict[str, Any]
    ) -> str:
        for name in plan.initial:
            value = values.get(name)
            if isinstance(value, (DirectedGraph, UndirectedGraph)):
                return _fingerprint_sha(value)
        raise PipelineError(
            f"plan {plan.name!r} has no graph-like initial value to "
            "fingerprint for the artifact cache"
        )

    def _budget_state(self, stage_name: str) -> dict[str, Any]:
        budget = self.budgets.get(stage_name)
        state: dict[str, Any] = {}
        if budget is not None:
            state["stage"] = {
                "wall_s": budget.wall_s,
                "mem_bytes": budget.mem_bytes,
            }
        if self.plan_budget is not None:
            state["plan"] = {
                "wall_s": self.plan_budget.wall_s,
                "mem_bytes": self.plan_budget.mem_bytes,
            }
        return state

    def _run_stage(
        self,
        plan: Plan,
        index: int,
        stage: Any,
        ctx: StageContext,
        values: dict[str, Any],
        records: list[PipelineWarning],
        cache: ArtifactCache | None,
        dataset_sha: str | None,
        journal: RunJournal | None,
    ) -> StageExecution:
        use_cache = (
            cache is not None
            and stage.cacheable
            and dataset_sha is not None
            and len(stage.outputs) == 1
        )
        key = (
            plan.artifact_key(dataset_sha, index, mode=self.mode)
            if use_cache
            else None
        )
        attempt = 0
        while True:
            attempt += 1
            try:
                execution = self._attempt_stage(
                    plan, index, stage, ctx, values, records,
                    cache, key, dataset_sha, attempt,
                )
            except BudgetExceeded as exc:
                # Deterministic in the work attempted: never retried.
                if journal is not None:
                    journal.record_attempt_failure(
                        plan.name, stage.name, attempt, exc,
                        budget=self._budget_state(stage.name),
                        fatal=True,
                    )
                raise
            except Exception as exc:
                policy = self.retry
                if policy is not None and policy.should_retry(
                    exc, attempt
                ):
                    if journal is not None:
                        journal.record_attempt_failure(
                            plan.name, stage.name, attempt, exc,
                            budget=self._budget_state(stage.name),
                        )
                    records.append(
                        PipelineWarning(
                            stage=stage.name,
                            code="stage_retried",
                            message=(
                                f"stage {stage.name!r} attempt "
                                f"{attempt} failed "
                                f"({type(exc).__name__}: {exc}); "
                                "retrying"
                            ),
                        )
                    )
                    metric_inc("stage_retries_total")
                    time.sleep(
                        policy.delay(
                            attempt,
                            token=f"{plan.name}:{stage.name}",
                        )
                    )
                    continue
                if journal is not None:
                    journal.record_attempt_failure(
                        plan.name, stage.name, attempt, exc,
                        budget=self._budget_state(stage.name),
                        fatal=True,
                    )
                raise
            if journal is not None:
                journal.record_stage(
                    plan.name,
                    index,
                    stage.name,
                    key,
                    execution.seconds,
                    attempt,
                )
            return execution

    def _attempt_stage(
        self,
        plan: Plan,
        index: int,
        stage: Any,
        ctx: StageContext,
        values: dict[str, Any],
        records: list[PipelineWarning],
        cache: ArtifactCache | None,
        key: str | None,
        dataset_sha: str | None,
        attempt: int,
    ) -> StageExecution:
        stage_budget = self.budgets.get(stage.name)
        plan_mem = (
            self.plan_budget.mem_bytes
            if self.plan_budget is not None
            else None
        )
        mem_limits = [
            limit
            for limit in (
                stage_budget.mem_bytes if stage_budget else None,
                plan_mem,
            )
            if limit is not None
        ]
        meter = BudgetMeter(
            Budget(
                wall_s=(
                    stage_budget.wall_s if stage_budget else None
                ),
                mem_bytes=min(mem_limits) if mem_limits else None,
            ),
            scope=stage.name,
        )
        cached: bool | None = None
        resumed = False
        t0 = time.perf_counter()
        with span(stage.name) as sp_, capture_stage_warnings(
            stage.name, records
        ):
            chaos(f"stage:{stage.name}")
            outputs = None
            if key is not None:
                artifact = cache.get(key)
                if artifact is not None:
                    outputs = {stage.outputs[0]: artifact}
                    cached = True
                    if (
                        self.resume_from is not None
                        and key in self.resume_from.completed_stages
                    ):
                        resumed = True
                        metric_inc("resume_stages_skipped")
                        sp_.set(resumed=True)
                    sp_.set(cache="hit", artifact_key=key[:16])
            if outputs is None:
                with meter:
                    outputs = stage.run(ctx, values)
                if stage_budget is not None:
                    stage_budget.check_wall(
                        stage.name, meter.seconds
                    )
                    stage_budget.check_mem(
                        stage.name, meter.peak_bytes
                    )
                if plan_mem is not None:
                    self.plan_budget.check_mem(
                        "plan", meter.peak_bytes
                    )
                if key is not None:
                    cached = False
                    cache.put(
                        key,
                        outputs[stage.outputs[0]],
                        meta={
                            "plan": plan.name,
                            "mode": self.mode,
                            "dataset_sha": dataset_sha,
                            "lineage": [
                                s.config()
                                for s in plan.stages[: index + 1]
                            ],
                        },
                    )
                    sp_.set(cache="miss", artifact_key=key[:16])
        seconds = time.perf_counter() - t0
        if stage.perf_tag is not None:
            record_stage(
                stage.perf_tag,
                seconds,
                **stage.counters(values, outputs),
            )
        values.update(outputs)
        return StageExecution(
            stage=stage.name,
            seconds=seconds,
            cached=cached,
            artifact_key=key,
            attempts=attempt,
            resumed=resumed,
        )
