"""One scope object for every piece of ambient execution state.

The library grew four independent ``contextvars``-based ambient
registries — the artifact cache (:mod:`repro.engine.cache`), the
worker pool (:mod:`repro.engine.pool`), the tracer
(:mod:`repro.obs.trace`) and the metrics registry
(:mod:`repro.obs.metrics`) — plus the run journal
(:mod:`repro.engine.journal`). Each has its own installer context
manager, which is fine for a one-shot CLI process but a trap for the
service daemon: a per-job scope assembled from four nested ``with``
blocks is easy to get subtly wrong (install one, forget to reset
another on an error path), and any token that is not reset leaks the
job's state into whatever runs next on that asyncio task or pooled
worker thread.

:func:`ambient_scope` is the single front door: it sets all five
variables in one call, records every reset token, and unwinds them in
reverse order on exit — unconditionally, including on exceptions — so
no job can ever observe another job's cache, pool, tracer, metrics or
journal. Parameters left unset inherit the enclosing scope; pass
``isolate=True`` to sever inheritance instead (unset state becomes
``None`` inside the scope), which is what the daemon uses between
jobs.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Iterator

from repro.engine import cache as _cache_mod
from repro.engine import journal as _journal_mod
from repro.engine import pool as _pool_mod
from repro.engine.cache import ArtifactCache
from repro.engine.journal import RunJournal
from repro.engine.pool import WorkerPool
from repro.obs import metrics as _metrics_mod
from repro.obs import trace as _trace_mod
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["AmbientState", "ambient_scope"]

#: Sentinel distinguishing "not passed" from an explicit ``None``.
_UNSET: Any = object()


@dataclass(frozen=True)
class AmbientState:
    """The effective ambient state inside an :func:`ambient_scope`."""

    cache: ArtifactCache | None
    pool: WorkerPool | None
    tracer: Tracer | None
    metrics: MetricsRegistry | None
    journal: RunJournal | None


# (ContextVar, value coercion) per ambient slot, in install order.
# Reaching for the modules' private vars is deliberate: this is the
# one place allowed to touch all of them, so the per-module installer
# CMs and this scope always agree on the same variables.
_SLOTS = (
    ("cache", _cache_mod, "_CACHE"),
    ("pool", _pool_mod, "_POOL"),
    ("tracer", _trace_mod, "_TRACER"),
    ("metrics", _metrics_mod, "_METRICS"),
    ("journal", _journal_mod, "_JOURNAL"),
)


@contextlib.contextmanager
def ambient_scope(
    cache: ArtifactCache | None = _UNSET,
    pool: WorkerPool | None = _UNSET,
    tracer: Tracer | None = _UNSET,
    metrics: MetricsRegistry | None = _UNSET,
    journal: RunJournal | None = _UNSET,
    isolate: bool = False,
) -> Iterator[AmbientState]:
    """Install ambient execution state for a block, leak-free.

    Parameters
    ----------
    cache, pool, tracer, metrics, journal:
        The state to install. Anything not passed inherits the
        enclosing scope's value (default) or is cleared to ``None``
        when ``isolate=True``.
    isolate:
        Sever inheritance: inside the scope, unset slots read
        ``None`` instead of the caller's ambient state. The service
        daemon wraps every job in an isolated scope so two jobs
        interleaved on one worker thread or asyncio task can never
        observe each other's registries.

    Yields the effective :class:`AmbientState`. Every contextvar
    token is reset on exit, in reverse install order, even when the
    body raises — the leak the daemon exposed was exactly a token
    that survived an error path.
    """
    requested = {
        "cache": cache,
        "pool": pool,
        "tracer": tracer,
        "metrics": metrics,
        "journal": journal,
    }
    tokens = []
    effective: dict[str, Any] = {}
    try:
        for name, module, var_name in _SLOTS:
            var = getattr(module, var_name)
            value = requested[name]
            if value is _UNSET:
                if not isolate:
                    effective[name] = var.get()
                    continue
                value = None
            tokens.append((var, var.set(value)))
            effective[name] = value
        if effective["tracer"] is not None:
            effective["tracer"]._enable_memory()
        yield AmbientState(**effective)
    finally:
        if effective.get("tracer") is not None:
            effective["tracer"]._disable_memory()
        for var, token in reversed(tokens):
            var.reset(token)
