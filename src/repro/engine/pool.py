"""A shared, crash-tolerant process pool for sharded kernels and sweeps.

The sharded all-pairs kernel (:mod:`repro.linalg.allpairs`) and the
sweep drivers (:mod:`repro.pipeline.sweep`) both fan work out over
processes. Before this module each call site built its own
:class:`~concurrent.futures.ProcessPoolExecutor`, so a threshold sweep
over an out-of-core graph would fork a fresh pool per grid point per
factor. :class:`WorkerPool` centralizes that: one pool, installed as
ambient state with :func:`worker_pool`, serves every fan-out beneath
it — sweep points and row-block shards share the same workers.

The pool carries the crash-recovery contract the kernels rely on:

- payloads are submitted as individual futures, so a worker that dies
  (OOM kill, segfault, injected ``kill_worker`` chaos fault) loses
  only its own payloads;
- lost payloads are re-executed *in-process* via the caller-supplied
  fallback (tasks are pure functions of their payload, so re-execution
  is exact), counted in the ``worker_crashes_total`` metric and
  surfaced as an :class:`~repro.exceptions.ExecutionWarning` with code
  ``worker_crash``;
- a broken executor is discarded and lazily rebuilt, so one crash does
  not poison the rest of a sweep;
- environments that cannot fork/spawn at all (sandboxes) make
  :meth:`WorkerPool.run` return ``None`` and callers fall back to
  their serial path.
"""

from __future__ import annotations

import atexit
import contextlib
import contextvars
import time
import warnings
import weakref
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.exceptions import ExecutionWarning
from repro.obs.metrics import metric_inc

__all__ = ["WorkerPool", "worker_pool", "current_pool"]

#: Every pool that ever created an executor, so the atexit guard can
#: close stragglers a long-lived process (the service daemon) failed
#: to close explicitly. Weak references: a garbage-collected pool has
#: already shut its executor down via ProcessPoolExecutor's finalizer.
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()
_ATEXIT_REGISTERED = False


def _close_live_pools() -> None:
    for pool in list(_LIVE_POOLS):
        with contextlib.suppress(Exception):
            pool.close(timeout=2.0)


class WorkerPool:
    """A lazily-created process pool with in-process crash recovery.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrent worker processes. Individual
        :meth:`run` calls may use fewer (one future per payload).
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = int(max_workers)
        self._executor: ProcessPoolExecutor | None = None
        self._unavailable = False

    # -- lifecycle -------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor | None:
        if self._unavailable:
            return None
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers
                )
            except (OSError, PermissionError, ValueError):
                # Sandboxed environment: no fork/spawn. Remember, so
                # later run() calls short-circuit to serial.
                self._unavailable = True
                return None
            global _ATEXIT_REGISTERED
            _LIVE_POOLS.add(self)
            if not _ATEXIT_REGISTERED:
                atexit.register(_close_live_pools)
                _ATEXIT_REGISTERED = True
        return self._executor

    def _discard_executor(self) -> None:
        # Crash path (broken pool): the workers are already dead or
        # dying, so a short drain window is enough to reap them.
        self._shutdown(timeout=1.0)

    def _shutdown(self, timeout: float) -> None:
        executor = self._executor
        if executor is None:
            return
        self._executor = None
        # Grab the worker processes before shutdown() forgets them:
        # shutdown(wait=False) only signals the workers, and a worker
        # mid-task keeps running past interpreter exit unless someone
        # reaps it. Drain gracefully within the timeout, then kill.
        processes = list(
            getattr(executor, "_processes", {}).values()
        )
        executor.shutdown(wait=False, cancel_futures=True)
        deadline = time.monotonic() + max(0.0, timeout)
        for process in processes:
            remaining = deadline - time.monotonic()
            if remaining > 0 and process.is_alive():
                with contextlib.suppress(Exception):
                    process.join(remaining)
        leaked = [p for p in processes if p.is_alive()]
        for process in leaked:
            with contextlib.suppress(Exception):
                process.kill()
                process.join(1.0)
        if leaked:
            metric_inc("worker_pool_kills_total", len(leaked))

    def close(self, timeout: float = 10.0) -> None:
        """Shut the executor down (idempotent).

        Waits up to ``timeout`` seconds for the worker processes to
        drain gracefully, then kills whatever is still alive — a
        long-lived server must never leak live workers past exit.
        """
        self._shutdown(timeout=timeout)
        _LIVE_POOLS.discard(self)

    def __enter__(self) -> WorkerPool:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- execution -------------------------------------------------

    def run(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        fallback: Callable[[Any], Any] | None = None,
    ) -> list[Any] | None:
        """``[fn(p) for p in payloads]`` across the pool.

        Each payload is one future; results come back in payload
        order. Payloads lost to a dead worker are re-executed
        in-process through ``fallback`` (default: ``fn`` itself) after
        emitting the ``worker_crash`` warning + metric. Returns
        ``None`` when no pool can be created in this environment —
        callers run their serial path instead.
        """
        executor = self._ensure_executor()
        if executor is None:
            return None
        results: list[Any] = [None] * len(payloads)
        lost: list[int] = []
        try:
            futures = {
                index: executor.submit(fn, payload)
                for index, payload in enumerate(payloads)
            }
            for index, future in futures.items():
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    # One dead worker breaks the executor: every
                    # unfinished payload surfaces here and is re-run
                    # in-process below.
                    lost.append(index)
        except (OSError, PermissionError):
            self._unavailable = True
            self._discard_executor()
            return None
        if lost:
            # The executor is unusable after a break; rebuild lazily
            # on the next run() so one crash does not end the sweep.
            self._discard_executor()
            metric_inc("worker_crashes_total")
            warnings.warn(
                ExecutionWarning(
                    f"a pool worker died; re-executing {len(lost)} "
                    "lost payload(s) in-process",
                    code="worker_crash",
                ),
                stacklevel=2,
            )
            rerun = fallback if fallback is not None else fn
            for index in lost:
                results[index] = rerun(payloads[index])
        return results

    def __repr__(self) -> str:
        state = (
            "unavailable"
            if self._unavailable
            else ("live" if self._executor is not None else "idle")
        )
        return f"WorkerPool(max_workers={self.max_workers}, {state})"


_POOL: contextvars.ContextVar[WorkerPool | None] = (
    contextvars.ContextVar("repro_worker_pool", default=None)
)


def current_pool() -> WorkerPool | None:
    """The ambient worker pool, or ``None`` when none is installed."""
    return _POOL.get()


@contextlib.contextmanager
def worker_pool(
    max_workers: int, pool: WorkerPool | None = None
) -> Iterator[WorkerPool]:
    """Install a :class:`WorkerPool` as the ambient pool.

    Sharded kernels and sweep drivers beneath the block pick it up via
    :func:`current_pool` instead of forking their own executors, so
    the whole run shares ``max_workers`` processes. The pool is closed
    when the block exits (unless a caller-owned ``pool`` was passed
    in).
    """
    owned = pool is None
    installed = pool if pool is not None else WorkerPool(max_workers)
    token = _POOL.set(installed)
    try:
        yield installed
    finally:
        _POOL.reset(token)
        if owned:
            installed.close()
