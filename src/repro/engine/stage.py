"""The :class:`Stage` protocol: one node of an execution plan.

A stage declares the named values it consumes (``inputs``) and
produces (``outputs``), carries a JSON-serializable configuration, and
derives a stable :meth:`fingerprint` from it — the unit the
content-addressed artifact cache keys on. Concrete stages for the
paper's pipeline (symmetrize → prune → cluster → evaluate) live in
:mod:`repro.engine.stages`.

Stages are *pure* with respect to the executor: ``run`` receives a
:class:`StageContext` (mode, per-run scratch) plus its declared inputs
and returns its outputs as a dict. Validation strictness, warning
capture, tracing spans, timing and caching are the
:class:`~repro.engine.executor.Executor`'s job, not the stage's.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.engine.cache import canonical_json

__all__ = ["Stage", "StageContext"]


@dataclass
class StageContext:
    """Ambient execution state handed to every stage.

    Attributes
    ----------
    mode:
        ``"strict"`` or ``"lenient"`` — the robustness mode of the
        surrounding run (see ``docs/robustness.md``).
    scratch:
        Per-execution scratch space stages may use to publish
        non-artifact side results (e.g. a chosen prune threshold).
    """

    mode: str = "strict"
    scratch: dict[str, Any] = field(default_factory=dict)

    @property
    def strict(self) -> bool:
        """Whether the run is in strict mode."""
        return self.mode == "strict"


class Stage(abc.ABC):
    """One named transformation in a :class:`~repro.engine.Plan`.

    Class attributes
    ----------------
    name:
        Span / warning-channel label (``"symmetrize"``, ``"prune"``,
        ``"cluster"``, ...).
    inputs, outputs:
        The named values consumed from and produced into the plan's
        value namespace.
    cacheable:
        Whether the stage's (single) output artifact may be served
        from the content-addressed cache. Cacheable stages must be
        deterministic functions of their inputs and configuration.
    perf_tag:
        When set, the executor records the stage's wall time under
        this :func:`repro.perf.record_stage` name.
    """

    name: str = "stage"
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    cacheable: bool = False
    perf_tag: str | None = None

    @abc.abstractmethod
    def run(
        self, ctx: StageContext, values: dict[str, Any]
    ) -> dict[str, Any]:
        """Execute the stage; returns ``{output_name: value, ...}``."""

    def config(self) -> dict[str, Any]:
        """The stage's JSON-serializable configuration.

        The default is empty; concrete stages override this with every
        parameter that affects their output, because the artifact
        cache key is derived from it.
        """
        return {}

    def fingerprint(self) -> str:
        """sha256 over the stage kind and canonical configuration.

        Stable across processes, dict orderings and platforms: two
        stages of the same class with equal configuration always
        fingerprint identically, and any config change (threshold,
        alpha, beta, method, ...) changes the fingerprint.
        """
        payload = canonical_json(
            {
                "stage": type(self).__name__,
                "name": self.name,
                "config": self.config(),
            }
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def counters(
        self, values: dict[str, Any], outputs: dict[str, Any]
    ) -> dict[str, int]:
        """Counters attached to the ``perf_tag`` timing record."""
        return {}

    def __repr__(self) -> str:
        cfg = ", ".join(
            f"{k}={v!r}" for k, v in sorted(self.config().items())
        )
        return f"{type(self).__name__}({cfg})"
