"""Write-ahead run journal: crash-safe progress records for resume.

Schema ``repro-journal/v1``: one JSON object per line, appended
*atomically* — each record is serialized to a single line, written
with one ``os.write`` on an ``O_APPEND`` descriptor and fsynced, so a
crash (SIGKILL, OOM, power loss) can lose at most a partial trailing
line, which :func:`read_journal` detects and skips. Record types:

- ``run_start`` — run id, kind/name, dataset fingerprint, mode and
  the driver's config (enough for ``repro resume`` to rebuild the
  work);
- ``stage_done`` — one per completed stage execution: plan name,
  stage index/name, artifact key, seconds, attempts;
- ``stage_attempt_failed`` — one per failed attempt: the exception
  type/message, attempt number and budget state (feeds
  ``repro runs show --failures``);
- ``point_done`` — one per completed sweep grid point: a
  deterministic *point key* (dataset × lineage × parameter × mode)
  plus the full scalar result payload, so a resumed sweep replays the
  point without recomputing anything;
- ``run_end`` — terminal status (missing after a crash).

Resume reads the journal through :class:`JournalReplay`:
``repro resume <journal>`` (and ``Executor(resume_from=...)`` /
``sweep_*(..., resume=True)``) replays every recorded ``point_done``
and serves recorded ``stage_done`` artifacts from the content-addressed
cache, recomputing only the unfinished tail. Replay is keyed on the
same content addresses as the artifact cache, so any change to the
dataset, stage configs or mode silently invalidates stale records
instead of resuming into wrong results.

Journal failures never kill the run they exist to protect: an
unwritable append (ENOSPC, permissions) disables the journal for the
rest of the run and emits an
:class:`~repro.exceptions.ExecutionWarning` (code
``journal_write_failed``).

An *ambient* journal can be installed for a block with
:func:`run_journal`; the executor, sweeps and experiment runners pick
it up automatically, mirroring :func:`repro.engine.artifact_cache`.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import threading
import time
import warnings
from pathlib import Path
from typing import Any, Iterator

from repro.engine.cache import canonical_json, config_hash
from repro.engine.chaos import chaos
from repro.exceptions import ExecutionWarning, ReproError
from repro.obs.metrics import metric_inc

__all__ = [
    "JOURNAL_SCHEMA",
    "RunJournal",
    "JournalReplay",
    "JournalTailer",
    "read_journal",
    "run_journal",
    "current_journal",
    "point_key",
]

#: Schema tag written into every journal record; bump on breaking
#: changes to the record shapes.
JOURNAL_SCHEMA = "repro-journal/v1"


def point_key(
    dataset_sha: str,
    lineage: list[str] | tuple[str, ...],
    parameter: Any,
    mode: str,
) -> str:
    """Deterministic identity of one sweep grid point.

    Hashes the dataset fingerprint, the point plan's stage lineage
    (so any config change — clusterer, threshold recipe, (α, β) —
    invalidates recorded results), the swept parameter and the
    robustness mode. Stable across processes, like artifact keys.
    """
    return config_hash(
        {
            "dataset": dataset_sha,
            "lineage": list(lineage),
            "parameter": parameter,
            "mode": mode,
        }
    )[:32]


class RunJournal:
    """Crash-safe, append-only progress log for one (or more) runs.

    Parameters
    ----------
    path:
        The JSONL journal file (created on first append; parent
        directories are created as needed).
    run_id:
        Identity of the run whose records this writer emits. Derived
        deterministically from the first :meth:`start` call when
        omitted, so an interrupted process and its resumer agree on
        the id without coordination.
    """

    def __init__(
        self, path: str | Path, run_id: str | None = None
    ) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.disabled = False
        self.started = False
        self.records_written = 0
        self._fd: int | None = None
        # The service daemon shares one journal between its event
        # loop and the worker thread executing the job; serialize fd
        # creation and the write/fsync/counter sequence.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Low-level atomic append
    # ------------------------------------------------------------------
    def _ensure_fd(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path,
                os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                0o644,
            )
        return self._fd

    def append(self, record: dict[str, Any]) -> bool:
        """Append one record atomically; returns False if disabled.

        The record is serialized to one canonical-JSON line and
        written with a single ``write`` + ``fsync``. Any ``OSError``
        (full disk, revoked permissions) disables the journal for the
        rest of the run with a structured warning — losing resume
        capability must never lose the run itself.
        """
        if self.disabled:
            return False
        payload = {
            "schema": JOURNAL_SCHEMA,
            "run_id": self.run_id,
            **record,
        }
        line = canonical_json(payload) + "\n"
        try:
            with self._lock:
                chaos("journal.append")
                fd = self._ensure_fd()
                os.write(fd, line.encode())
                os.fsync(fd)
                self.records_written += 1
        except OSError as exc:
            self.disabled = True
            self._close()
            warnings.warn(
                ExecutionWarning(
                    f"journal {self.path} disabled after write "
                    f"failure: {exc}",
                    code="journal_write_failed",
                ),
                stacklevel=2,
            )
            metric_inc("journal_write_failures_total")
            return False
        return True

    def _close(self) -> None:
        with self._lock:
            if self._fd is not None:
                with contextlib.suppress(OSError):
                    os.close(self._fd)
                self._fd = None

    def close(self) -> None:
        """Release the file descriptor (appends reopen lazily)."""
        self._close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Record writers
    # ------------------------------------------------------------------
    def start(
        self,
        kind: str,
        name: str,
        dataset_sha: str,
        mode: str,
        config: dict[str, Any] | None = None,
    ) -> str:
        """Write the ``run_start`` record (idempotent per writer).

        Derives and returns the run id when none was given: a hash of
        (kind, name, dataset, mode, config), so the resuming process
        recomputes the same id from the same work description.
        """
        if self.started:
            return self.run_id or ""
        if self.run_id is None:
            self.run_id = config_hash(
                {
                    "kind": kind,
                    "name": name,
                    "dataset_sha": dataset_sha,
                    "mode": mode,
                    "config": config or {},
                }
            )[:12]
        self.started = True
        self.append(
            {
                "type": "run_start",
                "kind": kind,
                "name": name,
                "dataset_sha": dataset_sha,
                "mode": mode,
                "config": config or {},
                "created_unix": time.time(),
            }
        )
        return self.run_id

    def ensure_started(
        self,
        kind: str,
        name: str,
        dataset_sha: str,
        mode: str,
        config: dict[str, Any] | None = None,
    ) -> None:
        """Write ``run_start`` unless one was already written."""
        if not self.started:
            self.start(kind, name, dataset_sha, mode, config)

    def record_stage(
        self,
        plan_name: str,
        index: int,
        stage: str,
        artifact_key: str | None,
        seconds: float,
        attempts: int,
    ) -> None:
        """Write one ``stage_done`` record."""
        self.append(
            {
                "type": "stage_done",
                "plan": plan_name,
                "index": index,
                "stage": stage,
                "artifact_key": artifact_key,
                "seconds": seconds,
                "attempts": attempts,
            }
        )

    def record_attempt_failure(
        self,
        plan_name: str,
        stage: str,
        attempt: int,
        exc: BaseException,
        budget: dict[str, Any] | None = None,
        fatal: bool = False,
    ) -> None:
        """Write one ``stage_attempt_failed`` record."""
        self.append(
            {
                "type": "stage_attempt_failed",
                "plan": plan_name,
                "stage": stage,
                "attempt": attempt,
                "error": type(exc).__name__,
                "message": str(exc),
                "budget": budget or {},
                "fatal": fatal,
            }
        )

    def record_point(
        self, key: str, parameter: Any, payload: dict[str, Any]
    ) -> None:
        """Write one ``point_done`` record for a sweep grid point."""
        self.append(
            {
                "type": "point_done",
                "point_key": key,
                "parameter": parameter,
                "payload": payload,
            }
        )

    def finish(self, status: str = "complete") -> None:
        """Write the terminal ``run_end`` record."""
        self.append({"type": "run_end", "status": status})

    def __repr__(self) -> str:
        state = "disabled" if self.disabled else "active"
        return (
            f"RunJournal({str(self.path)!r}, run_id={self.run_id!r}, "
            f"{state}, records={self.records_written})"
        )


def read_journal(path: str | Path) -> list[dict[str, Any]]:
    """Every well-formed record in the journal, in append order.

    A partial trailing line — the signature of a crash mid-append —
    is skipped with an :class:`ExecutionWarning` (code
    ``journal_truncated``); a malformed line *before* the end means
    real corruption and raises.
    """
    source = Path(path)
    if not source.exists():
        raise ReproError(f"journal not found: {source}")
    raw = source.read_text()
    lines = raw.split("\n")
    records: list[dict[str, Any]] = []
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            is_last = all(
                not later.strip() for later in lines[lineno:]
            )
            if is_last:
                warnings.warn(
                    ExecutionWarning(
                        f"journal {source}: skipped partial trailing "
                        f"record at line {lineno} (crash mid-append)",
                        code="journal_truncated",
                    ),
                    stacklevel=2,
                )
                break
            raise ReproError(
                f"{source}:{lineno}: malformed journal record: {exc}"
            ) from exc
        if record.get("schema") != JOURNAL_SCHEMA:
            raise ReproError(
                f"{source}:{lineno}: unsupported journal schema "
                f"{record.get('schema')!r}; expected {JOURNAL_SCHEMA}"
            )
        records.append(record)
    return records


class JournalTailer:
    """Incremental reader of a journal another process is appending to.

    The service daemon's ``GET /jobs/<id>/events`` endpoint streams a
    running job's progress by tailing its journal. Unlike
    :func:`read_journal` — which reads a *finished* file and treats a
    partial trailing line as a crash signature — a tailer must expect
    to race the writer: a record can be half-written when we poll
    (``os.write`` is atomic on the writer side, but the reader can
    still observe a short read of the file's tail growing under it),
    and the file may not even exist yet. Both are transient, so the
    tailer retries them instead of declaring truncation:

    - bytes after the last newline are left unconsumed; the offset
      only advances past complete lines, so the next :meth:`poll`
      re-reads the (by then completed) record;
    - a missing file polls as ``[]`` until the writer's first append
      creates it.

    A complete line that fails to parse is real corruption and
    raises, exactly like :func:`read_journal`.
    """

    def __init__(
        self, path: str | Path, run_id: str | None = None
    ) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.offset = 0
        self.records_read = 0

    def poll(self) -> list[dict[str, Any]]:
        """Every complete record appended since the last poll."""
        try:
            with self.path.open("rb") as handle:
                handle.seek(self.offset)
                chunk = handle.read()
        except FileNotFoundError:
            return []
        if not chunk:
            return []
        # Only consume up to the last newline: whatever follows is a
        # record the writer has not finished appending yet. Next poll
        # starts from the same offset and sees the completed line.
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return []
        complete, self.offset = chunk[: cut + 1], (
            self.offset + cut + 1
        )
        records: list[dict[str, Any]] = []
        for raw in complete.split(b"\n"):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{self.path}: malformed journal record while "
                    f"tailing: {exc}"
                ) from exc
            if record.get("schema") != JOURNAL_SCHEMA:
                raise ReproError(
                    f"{self.path}: unsupported journal schema "
                    f"{record.get('schema')!r} while tailing; "
                    f"expected {JOURNAL_SCHEMA}"
                )
            if (
                self.run_id is not None
                and record.get("run_id") != self.run_id
            ):
                continue
            records.append(record)
            self.records_read += 1
        return records

    def __repr__(self) -> str:
        return (
            f"JournalTailer({str(self.path)!r}, "
            f"offset={self.offset}, read={self.records_read})"
        )


class JournalReplay:
    """Completed work recorded in a journal, indexed for resume.

    Attributes
    ----------
    run_id:
        The run whose records were selected.
    run_start:
        The ``run_start`` record (or ``None`` if the journal never
        got that far).
    completed_stages:
        Artifact keys of every recorded ``stage_done`` — the executor
        serves these from the artifact cache without re-running the
        stage.
    completed_points:
        ``point_key -> payload`` of every recorded ``point_done`` —
        sweeps rebuild these grid points without executing anything.
    failures:
        Every ``stage_attempt_failed`` record, for the ``--failures``
        view.
    finished:
        Whether a terminal ``run_end`` record was found.
    """

    def __init__(
        self,
        records: list[dict[str, Any]],
        run_id: str | None = None,
    ) -> None:
        if run_id is None:
            for record in records:
                if record.get("type") == "run_start":
                    run_id = record.get("run_id")
                    break
        self.run_id = run_id
        selected = [
            r
            for r in records
            if run_id is None or r.get("run_id") == run_id
        ]
        self.run_start: dict[str, Any] | None = next(
            (r for r in selected if r.get("type") == "run_start"),
            None,
        )
        self.completed_stages: set[str] = {
            r["artifact_key"]
            for r in selected
            if r.get("type") == "stage_done"
            and r.get("artifact_key")
        }
        self.completed_points: dict[str, dict[str, Any]] = {
            r["point_key"]: r
            for r in selected
            if r.get("type") == "point_done"
        }
        self.failures: list[dict[str, Any]] = [
            r
            for r in selected
            if r.get("type") == "stage_attempt_failed"
        ]
        self.finished = any(
            r.get("type") == "run_end" for r in selected
        )

    @classmethod
    def from_path(
        cls, path: str | Path, run_id: str | None = None
    ) -> "JournalReplay":
        """Load and index a journal file."""
        return cls(read_journal(path), run_id=run_id)

    def point(self, key: str) -> dict[str, Any] | None:
        """The recorded payload for ``key``, or ``None``."""
        record = self.completed_points.get(key)
        return record["payload"] if record is not None else None

    def __len__(self) -> int:
        return len(self.completed_stages) + len(
            self.completed_points
        )

    def __repr__(self) -> str:
        return (
            f"JournalReplay(run_id={self.run_id!r}, "
            f"stages={len(self.completed_stages)}, "
            f"points={len(self.completed_points)}, "
            f"finished={self.finished})"
        )


_JOURNAL: contextvars.ContextVar[RunJournal | None] = (
    contextvars.ContextVar("repro_run_journal", default=None)
)


def current_journal() -> RunJournal | None:
    """The ambient run journal, or ``None`` when none is installed."""
    return _JOURNAL.get()


@contextlib.contextmanager
def run_journal(
    journal: RunJournal | str | Path,
) -> Iterator[RunJournal]:
    """Install ``journal`` (or open one at a path) as ambient.

    The executor, sweeps and experiment runners journal their
    progress automatically while the block is active.
    """
    installed = (
        journal
        if isinstance(journal, RunJournal)
        else RunJournal(journal)
    )
    token = _JOURNAL.set(installed)
    try:
        yield installed
    finally:
        _JOURNAL.reset(token)
